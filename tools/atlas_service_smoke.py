"""Smoke the atlas query service against a fused log, then exit.

Binds :func:`repro.atlas.serve_atlas` on an ephemeral port, issues one
request per route family with plain :mod:`urllib`, checks the
conditional-request contract (a matching ``If-None-Match`` must come
back ``304``), and exits non-zero on any surprise.  Pure standard
library; used by ``make atlas-shard-smoke`` and the CI job of the same
name.

Usage: ``python tools/atlas_service_smoke.py <atlas.jsonl>``
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.error
import urllib.request


def _get(base: str, path: str, headers: dict | None = None):
    request = urllib.request.Request(base + path, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, dict(exc.headers), exc.read()


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    from repro.atlas import serve_atlas

    server = serve_atlas(argv[1], port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        status, headers, body = _get(base, "/health")
        health = json.loads(body)
        assert status == 200 and health["status"] == "ok", health
        etag = headers["ETag"]

        row = server.index.rows[0]
        cell = row["cell"]
        checks = [
            ("/cells", 200),
            (f"/cells?n={cell['n']}&t={cell['t']}", 200),
            (f"/cell/{row['unit_id']}", 200),
            (f"/boundary/{cell['n']}/{cell['t']}", 200),
            ("/cells?bogus=1", 400),
            ("/cell/absent", 404),
        ]
        for path, expected in checks:
            status, _, body = _get(base, path)
            assert status == expected, (path, status, expected)
            json.loads(body)  # every body is JSON, errors included
        status, _, body = _get(
            base, "/cells", headers={"If-None-Match": etag}
        )
        assert (status, body) == (304, b""), (status, body)
        print(
            f"atlas service smoke ok: {health['rows']} cells, "
            f"{len(checks)} routes, etag {health['etag'][:12]}..., "
            f"conditional replay 304"
        )
        return 0
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
