"""The per-file AST rules: RL001, RL002, RL003, RL006.

Each rule is a small, deliberately syntactic check.  Static analysis
cannot prove dataflow facts ("this seed ultimately came from
``stable_seed``"), so the rules whitelist the *shapes* the repository
treats as safe and flag everything else; a deliberate exception gets a
justified inline suppression, which is itself a reviewable artifact.
"""

from __future__ import annotations

import ast

from tools.reprolint.engine import (
    Diagnostic,
    FileContext,
    FileRule,
    register_file_rule,
)

#: Attributes of the ``time`` module that read the wall clock (the
#: ``_ns`` twins included).  ``sleep`` is listed too: a sleeping
#: simulation is a timing dependency by another name.
_WALLCLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: ``datetime``-family constructors that capture "now".
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Module-level ``random.*`` functions (the shared global RNG).
_MODULE_RNG_FNS = frozenset(
    {
        "random",
        "seed",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "randbytes",
    }
)


def _call_name(node: ast.Call) -> str:
    """The trailing identifier of a call's function expression."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_stable_seed_call(node: ast.AST) -> bool:
    """Whether ``node`` is a call to (anything named) ``stable_seed``."""
    return isinstance(node, ast.Call) and _call_name(node) == "stable_seed"


def _is_int_literal(node: ast.AST) -> bool:
    """Whether ``node`` is an integer literal (unary minus included)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and type(node.value) is int  # bool is an int subclass; reject it
    )


@register_file_rule
class NoRawHashSeeding(FileRule):
    """RL001: builtin ``hash()`` must never feed a seed/RNG path.

    String hashing is salted per interpreter run (``PYTHONHASHSEED``),
    so ``hash()`` output is the canonical source of
    works-on-my-run nondeterminism.  A ``hash(...)`` call is flagged
    when it is (transitively) an argument to a call whose name
    mentions ``random``/``Random``/``seed``, the value of a
    ``seed=``-ish keyword, or assigned to a name mentioning ``seed``
    or ``rng``.  The sanctioned digest is
    :func:`repro.core.canonical.stable_seed`.
    """

    code = "RL001"
    name = "no-raw-hash-seeding"
    summary = "builtin hash() must not feed seed/RNG paths"

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        findings = []
        parents = ctx.parents()
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                continue
            reason = self._seeding_context(node, parents)
            if reason:
                findings.append(
                    Diagnostic(
                        rule=self.code,
                        path=ctx.rel_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"builtin hash() {reason}; hash() is "
                            "PYTHONHASHSEED-salted -- derive seeds with "
                            "repro.core.canonical.stable_seed instead"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _seeding_context(
        call: ast.Call, parents: dict[int, ast.AST]
    ) -> str | None:
        """Why this ``hash()`` call looks like seeding, or ``None``."""
        node: ast.AST = call
        for _ in range(32):  # bounded walk up the expression tree
            parent = parents.get(id(node))
            if parent is None:
                return None
            if isinstance(parent, ast.Call) and node is not parent.func:
                name = _call_name(parent).lower()
                if "random" in name or "seed" in name:
                    return f"feeds {_call_name(parent)}(...)"
            if isinstance(parent, ast.keyword) and parent.arg:
                if "seed" in parent.arg.lower():
                    return f"feeds keyword {parent.arg}="
            if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    parent.targets
                    if isinstance(parent, ast.Assign)
                    else [parent.target]
                )
                for target in targets:
                    text = ast.dump(target).lower()
                    if "seed" in text or "rng" in text:
                        return "is assigned to a seed/rng name"
                return None
            if isinstance(parent, ast.stmt):
                return None
            node = parent
        return None


@register_file_rule
class NoWallclockInSim(FileRule):
    """RL002: no wall-clock reads under ``src/repro/``.

    Simulated executions advance by rounds and ticks, never by host
    time; a wall-clock read in the package is either a determinism bug
    or a diagnostic that must be visibly declared (suppression with
    justification).  Benchmarks live outside ``src/repro/`` and are
    exempt by scope.
    """

    code = "RL002"
    name = "no-wallclock-in-sim"
    summary = "wall-clock reads are banned under src/repro/"

    def applies_to(self, rel_path: str) -> bool:
        return rel_path.startswith("src/repro/")

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        findings = []
        time_aliases, banned_names = self._imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            hit: str | None = None
            if isinstance(node, ast.Attribute):
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in time_aliases
                    and node.attr in _WALLCLOCK_TIME_ATTRS
                ):
                    hit = f"{base.id}.{node.attr}"
                elif node.attr in _WALLCLOCK_DATETIME_ATTRS and (
                    self._is_datetime_ref(base)
                ):
                    hit = f"datetime.{node.attr}"
            elif isinstance(node, ast.Name) and node.id in banned_names:
                hit = node.id
            if hit is not None:
                findings.append(
                    Diagnostic(
                        rule=self.code,
                        path=ctx.rel_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"wall-clock read {hit}() in simulation code; "
                            "simulated time advances by rounds/ticks -- if "
                            "this is a diagnostic, suppress with a "
                            "justification"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _imports(tree: ast.AST) -> tuple[set[str], set[str]]:
        """Names bound to the ``time`` module / wall-clock functions."""
        time_aliases: set[str] = set()
        banned_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALLCLOCK_TIME_ATTRS:
                        banned_names.add(alias.asname or alias.name)
        return time_aliases, banned_names

    @staticmethod
    def _is_datetime_ref(node: ast.AST) -> bool:
        """Whether ``node`` is a plausible ``datetime``/``date`` ref."""
        if isinstance(node, ast.Name):
            return node.id in {"datetime", "date"}
        return (
            isinstance(node, ast.Attribute)
            and node.attr in {"datetime", "date"}
            and isinstance(node.value, ast.Name)
            and node.value.id == "datetime"
        )


@register_file_rule
class NoUnseededRng(FileRule):
    """RL003: RNG construction must be explicitly, traceably seeded.

    Flags, under ``src/repro/`` and ``benchmarks/``:

    * ``random.Random()`` with no argument (falls back to OS entropy);
    * module-level ``random.random()``/``random.choice()``/... calls
      (the shared global RNG -- evaluation-order-dependent state);
    * ``random.SystemRandom`` (unseedable by design);
    * ``random.Random(expr)`` where ``expr`` is not an integer literal
      or a ``stable_seed(...)`` call.  ``Random(obj)`` falls back to
      ``hash(obj)`` for anything that is not int/str/bytes, which is
      PYTHONHASHSEED-salted; requiring the literal/``stable_seed``
      shape keeps the provenance checkable.  Pinned legacy streams
      (int-typed battery seeds) carry justified suppressions instead.
    """

    code = "RL003"
    name = "no-unseeded-rng"
    summary = "RNGs must be seeded via stable_seed (or an int literal)"

    def applies_to(self, rel_path: str) -> bool:
        return rel_path.startswith(("src/repro/", "benchmarks/"))

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        findings = []
        random_aliases, from_imports = self._imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._classify(node, random_aliases, from_imports)
            if kind is None:
                continue
            message = self._message(node, kind)
            if message is None:
                continue
            findings.append(
                Diagnostic(
                    rule=self.code,
                    path=ctx.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )
            )
        return findings

    @staticmethod
    def _imports(tree: ast.AST) -> tuple[set[str], dict[str, str]]:
        """Aliases of the ``random`` module / its from-imports."""
        aliases: set[str] = set()
        from_imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = alias.name
        return aliases, from_imports

    @staticmethod
    def _classify(
        call: ast.Call, aliases: set[str], from_imports: dict[str, str]
    ) -> str | None:
        """``"Random"``, ``"SystemRandom"``, a module fn name, or None."""
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in aliases:
                if func.attr in ("Random", "SystemRandom"):
                    return func.attr
                if func.attr in _MODULE_RNG_FNS:
                    return func.attr
        elif isinstance(func, ast.Name):
            original = from_imports.get(func.id)
            if original in ("Random", "SystemRandom"):
                return original
            if original in _MODULE_RNG_FNS:
                return original
        return None

    @staticmethod
    def _message(call: ast.Call, kind: str) -> str | None:
        if kind == "SystemRandom":
            return (
                "random.SystemRandom is OS entropy -- unreproducible by "
                "construction; use random.Random(stable_seed(...))"
            )
        if kind != "Random":
            return (
                f"module-level random.{kind}() uses the shared global RNG "
                "(unseeded, evaluation-order-dependent); construct "
                "random.Random(stable_seed(...)) instead"
            )
        if not call.args:
            return (
                "random.Random() without a seed falls back to OS entropy; "
                "pass stable_seed(...)"
            )
        seed = call.args[0]
        if _is_stable_seed_call(seed) or _is_int_literal(seed):
            return None
        return (
            "random.Random(...) seed is not traceable to stable_seed "
            "(or an int literal); non-int seeds degrade to the salted "
            "builtin hash() -- derive the seed with "
            "repro.core.canonical.stable_seed, or suppress with a "
            "justification for a deliberately pinned stream"
        )


@register_file_rule
class CanonicalIterationOrder(FileRule):
    """RL006: never iterate an unordered expression directly.

    Set iteration order follows hash-table layout, which is salted per
    run for strings -- anything it feeds (traces, JSONL streams,
    canonical keys, rendered reports) silently loses byte-stability.
    Flagged: ``for``-loop and comprehension iterables, and arguments
    to ``tuple``/``list``/``enumerate``/``map``/``join``, when the
    expression is *syntactically* set-typed (a set literal or
    comprehension, a ``set()``/``frozenset()`` call, a
    ``union``/``intersection``/``difference`` method call, a set
    algebra ``|&-^`` expression over those, or ``vars()``).  Wrap the
    expression in ``sorted(...)``.

    Order-insensitive sinks stay clean: a comprehension that feeds
    ``sorted``/``set``/``sum``/``min``/``max``/``any``/``all``/``len``
    directly, or a set comprehension (whose result is unordered
    anyway), is not flagged.
    """

    code = "RL006"
    name = "canonical-iteration-order"
    summary = "iteration over unordered expressions must be sorted"

    def applies_to(self, rel_path: str) -> bool:
        return rel_path.startswith(("src/repro/", "tools/"))

    _SET_METHODS = frozenset(
        {"union", "intersection", "difference", "symmetric_difference"}
    )
    _CONSUMERS = frozenset({"tuple", "list", "enumerate", "map", "iter"})
    _ORDER_INSENSITIVE = frozenset(
        {"sorted", "set", "frozenset", "sum", "min", "max", "any", "all",
         "len", "Counter"}
    )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        findings = []
        for node in ast.walk(ctx.tree):
            if self._order_insensitive_sink(node, ctx):
                continue
            for iterable in self._iterables(node):
                if self._is_unordered(iterable):
                    findings.append(
                        Diagnostic(
                            rule=self.code,
                            path=ctx.rel_path,
                            line=iterable.lineno,
                            col=iterable.col_offset,
                            message=(
                                "iteration over a set/unordered expression "
                                "follows salted hash order; wrap it in "
                                "sorted(...) before it can reach traces, "
                                "streams, or canonical keys"
                            ),
                        )
                    )
        return findings

    def _order_insensitive_sink(self, node: ast.AST, ctx: FileContext) -> bool:
        """Whether ``node`` is a comprehension whose order cannot leak."""
        if isinstance(node, ast.SetComp):
            return True
        if not isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return False
        parent = ctx.parents().get(id(node))
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in self._ORDER_INSENSITIVE
        )

    def _iterables(self, node: ast.AST) -> list[ast.expr]:
        """Expressions ``node`` iterates (loops, comprehensions, consumers)."""
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return [node.iter]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return [gen.iter for gen in node.generators]
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self._CONSUMERS:
                # map(f, iterable): the iterable is the second argument.
                args = node.args[1:] if func.id == "map" else node.args[:1]
                return list(args)
            if isinstance(func, ast.Attribute) and func.attr == "join":
                return list(node.args[:1])
        return []

    def _is_unordered(self, node: ast.expr) -> bool:
        """Whether ``node`` is syntactically a set-typed/unordered expr."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                "set",
                "frozenset",
                "vars",
            ):
                return True
            if isinstance(func, ast.Attribute) and (
                func.attr in self._SET_METHODS
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_unordered(node.left) or self._is_unordered(
                node.right
            )
        return False
