"""The repo-level pinned rules: RL004 and RL005.

Both rules compare the working tree against a committed pin file and
have no inline suppression -- the only way to silence them is to
regenerate the pin deliberately (``--update-oracles`` /
``--update-schema``), which turns "I touched a frozen oracle" and "I
changed a result shape" into explicit, reviewable diffs.

The check/update helpers take explicit ``root``/pin paths so the test
suite can exercise drift scenarios against throwaway repository
copies without touching the real pins.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from tools.reprolint.engine import (
    Diagnostic,
    RepoRule,
    register_repo_rule,
)

_HERE = Path(__file__).resolve().parent

#: Committed pin of the frozen-oracle content digests (RL004).
ORACLE_DIGESTS = _HERE / "oracle_digests.json"

#: Committed pin of the cache-schema result-shape fingerprint (RL005).
SCHEMA_FINGERPRINT = _HERE / "schema_fingerprint.json"


# ----------------------------------------------------------------------
# RL004: frozen-oracle drift
# ----------------------------------------------------------------------
def _symbol_source(source: str, symbol: str) -> str | None:
    """Source segment of top-level class/function ``symbol``, or None."""
    tree = ast.parse(source)
    for node in tree.body:
        if (
            isinstance(node, (ast.ClassDef, ast.FunctionDef,
                              ast.AsyncFunctionDef))
            and node.name == symbol
        ):
            return ast.get_source_segment(source, node)
    return None


def oracle_digest(root: Path, path: str, symbol: str | None) -> str | None:
    """SHA-256 digest of one pinned oracle.

    Args:
        root: Repository root.
        path: Repo-relative file holding the oracle.
        symbol: Top-level class/function to digest, or ``None`` for
            the whole module.

    Returns:
        The hex digest, or ``None`` when the file/symbol is missing.
    """
    target = root / path
    if not target.is_file():
        return None
    source = target.read_text(encoding="utf-8")
    if symbol is None:
        text = source
    else:
        segment = _symbol_source(source, symbol)
        if segment is None:
            return None
        text = segment
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def check_oracles(
    root: Path, manifest_path: Path = ORACLE_DIGESTS
) -> list[Diagnostic]:
    """Compare every pinned oracle digest against the working tree.

    Args:
        root: Repository root to digest.
        manifest_path: The pin file (``oracle_digests.json``).

    Returns:
        One diagnostic per drifted/missing oracle (empty when clean).
    """
    findings: list[Diagnostic] = []
    rel_manifest = manifest_path.name
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [
            Diagnostic(
                rule="RL004",
                path=rel_manifest,
                line=0,
                col=0,
                message=f"oracle digest pin unreadable: {exc}",
            )
        ]
    for name, entry in sorted(manifest.get("oracles", {}).items()):
        path, symbol = entry["path"], entry.get("symbol")
        where = path if symbol is None else f"{path}::{symbol}"
        try:
            actual = oracle_digest(root, path, symbol)
        except SyntaxError as exc:
            findings.append(
                Diagnostic(
                    rule="RL004",
                    path=path,
                    line=exc.lineno or 0,
                    col=0,
                    message=(
                        f"frozen oracle {name} at {where} no longer "
                        f"parses ({exc.msg}); the reference source has "
                        "drifted"
                    ),
                )
            )
            continue
        if actual is None:
            findings.append(
                Diagnostic(
                    rule="RL004",
                    path=path,
                    line=0,
                    col=0,
                    message=(
                        f"frozen oracle {name} not found at {where}; "
                        "reference oracles must not be moved or deleted "
                        "silently -- update oracle_digests.json via "
                        "--update-oracles if this is deliberate"
                    ),
                )
            )
        elif actual != entry["sha256"]:
            findings.append(
                Diagnostic(
                    rule="RL004",
                    path=path,
                    line=0,
                    col=0,
                    message=(
                        f"frozen oracle {name} ({where}) changed: digest "
                        f"{actual[:12]}... != pinned "
                        f"{entry['sha256'][:12]}...; a Reference* oracle "
                        "edit invalidates the conformance grid -- rerun "
                        "it, then regenerate the pin with "
                        "`python -m tools.reprolint --update-oracles`"
                    ),
                )
            )
    return findings


def update_oracles(
    root: Path, manifest_path: Path = ORACLE_DIGESTS
) -> list[str]:
    """Re-pin every oracle digest from the working tree.

    Args:
        root: Repository root to digest.
        manifest_path: The pin file to rewrite in place.

    Returns:
        The names of entries whose digest actually changed.

    Raises:
        ValueError: When a pinned oracle is missing from the tree (a
            pin must never silently drop coverage).
    """
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    changed: list[str] = []
    for name, entry in manifest.get("oracles", {}).items():
        actual = oracle_digest(root, entry["path"], entry.get("symbol"))
        if actual is None:
            raise ValueError(
                f"cannot re-pin oracle {name}: "
                f"{entry['path']}::{entry.get('symbol')} not found"
            )
        if actual != entry.get("sha256"):
            changed.append(name)
        entry["sha256"] = actual
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return changed


@register_repo_rule
class FrozenOracleDrift(RepoRule):
    """RL004: ``Reference*`` oracle sources are digest-pinned.

    The kernel-conformance grid is only as strong as its oracles; an
    oracle edit that slips in beside a kernel change re-defines
    correctness instead of testing it.  Every edit must therefore be
    acknowledged by regenerating ``oracle_digests.json``.
    """

    code = "RL004"
    name = "frozen-oracle-drift"
    summary = "Reference* oracle sources must match their pinned digests"

    def check_repo(self, root: Path) -> list[Diagnostic]:
        return check_oracles(root)


# ----------------------------------------------------------------------
# RL005: cache-schema fingerprint
# ----------------------------------------------------------------------
#: Where result shapes are extracted from, and how.
_CAMPAIGN = "src/repro/experiments/campaign.py"
_EVIDENCE = "src/repro/atlas/evidence.py"


def _return_dict_shapes(source: str, func_name: str) -> list[list[str]]:
    """Sorted key-lists of every dict literal returned by ``func_name``.

    Args:
        source: Module source text.
        func_name: Top-level function whose ``return {...}`` statements
            are fingerprinted.

    Returns:
        Deduplicated, sorted list of sorted key-name lists (one per
        distinct returned dict-literal shape).
    """
    tree = ast.parse(source)
    shapes: set[tuple[str, ...]] = set()
    for node in tree.body:
        if not (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == func_name
        ):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and isinstance(
                sub.value, ast.Dict
            ):
                keys = tuple(
                    sorted(
                        key.value
                        for key in sub.value.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    )
                )
                if keys:
                    shapes.add(keys)
    return sorted(list(shape) for shape in shapes)


def _string_constant(source: str, name: str) -> str | None:
    """Value of module-level string assignment ``name = "..."``."""
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if name in targets and isinstance(node.value, ast.Constant):
                value = node.value.value
                if isinstance(value, str):
                    return value
    return None


def _frozenset_literal(source: str, name: str) -> list[str]:
    """String elements of any ``name = frozenset((...))`` assignment."""
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if name not in targets:
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
            and value.args
            and isinstance(value.args[0], (ast.Tuple, ast.List, ast.Set))
        ):
            return sorted(
                elt.value
                for elt in value.args[0].elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            )
    return []


def current_fingerprint(root: Path) -> dict:
    """Extract the live cache-schema fingerprint from the working tree.

    The fingerprint covers the ``CACHE_SCHEMA`` string itself plus the
    structural result shapes that string vouches for: every dict
    literal returned by :func:`repro.experiments.campaign.execute_unit`
    and :func:`repro.atlas.evidence.run_atlas_unit`, and the cache's
    ``_RESULT_KEYS`` validation set.

    Args:
        root: Repository root.

    Returns:
        ``{"cache_schema": str | None, "result_shapes": {...}}``.
    """
    campaign_src = (root / _CAMPAIGN).read_text(encoding="utf-8")
    evidence_src = (root / _EVIDENCE).read_text(encoding="utf-8")
    return {
        "cache_schema": _string_constant(campaign_src, "CACHE_SCHEMA"),
        "result_shapes": {
            "campaign.execute_unit": _return_dict_shapes(
                campaign_src, "execute_unit"
            ),
            "campaign.CampaignCache._RESULT_KEYS": _frozenset_literal(
                campaign_src, "_RESULT_KEYS"
            ),
            "atlas.run_atlas_unit": _return_dict_shapes(
                evidence_src, "run_atlas_unit"
            ),
        },
    }


def check_schema(
    root: Path, pin_path: Path = SCHEMA_FINGERPRINT
) -> list[Diagnostic]:
    """Compare the live result-shape fingerprint against the pin.

    Args:
        root: Repository root.
        pin_path: The pin file (``schema_fingerprint.json``).

    Returns:
        One diagnostic per violation (empty when clean).
    """
    try:
        pinned = json.loads(pin_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [
            Diagnostic(
                rule="RL005",
                path=pin_path.name,
                line=0,
                col=0,
                message=f"schema fingerprint pin unreadable: {exc}",
            )
        ]
    try:
        live = current_fingerprint(root)
    except (OSError, SyntaxError) as exc:
        return [
            Diagnostic(
                rule="RL005",
                path=_CAMPAIGN,
                line=0,
                col=0,
                message=f"cannot extract cache-schema fingerprint: {exc}",
            )
        ]
    findings: list[Diagnostic] = []
    if live["cache_schema"] != pinned.get("cache_schema"):
        findings.append(
            Diagnostic(
                rule="RL005",
                path=_CAMPAIGN,
                line=0,
                col=0,
                message=(
                    f"CACHE_SCHEMA changed "
                    f"({pinned.get('cache_schema')!r} -> "
                    f"{live['cache_schema']!r}); acknowledge the bump by "
                    "regenerating the fingerprint with "
                    "`python -m tools.reprolint --update-schema`"
                ),
            )
        )
    elif live["result_shapes"] != pinned.get("result_shapes"):
        drifted = sorted(
            name
            for name in set(live["result_shapes"])
            | set(pinned.get("result_shapes", {}))
            if live["result_shapes"].get(name)
            != pinned.get("result_shapes", {}).get(name)
        )
        findings.append(
            Diagnostic(
                rule="RL005",
                path=_CAMPAIGN,
                line=0,
                col=0,
                message=(
                    "campaign/atlas result-dict shape changed without a "
                    f"CACHE_SCHEMA bump (drifted: {', '.join(drifted)}); "
                    "stale caches would silently serve results with the "
                    "old shape -- bump CACHE_SCHEMA, then run "
                    "`python -m tools.reprolint --update-schema`"
                ),
            )
        )
    return findings


def update_schema(
    root: Path, pin_path: Path = SCHEMA_FINGERPRINT
) -> dict:
    """Re-pin the cache-schema fingerprint from the working tree.

    Args:
        root: Repository root.
        pin_path: The pin file to rewrite in place.

    Returns:
        The fingerprint that was written.
    """
    live = current_fingerprint(root)
    pin_path.write_text(
        json.dumps(live, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return live


@register_repo_rule
class CacheSchemaFingerprint(RepoRule):
    """RL005: result-shape changes must bump ``CACHE_SCHEMA``.

    The campaign cache trusts ``CACHE_SCHEMA`` to gate reuse; a result
    shape change that forgets the bump makes every existing cache a
    source of silently wrong-shaped results.
    """

    code = "RL005"
    name = "cache-schema-fingerprint"
    summary = "campaign/atlas result shapes must match the pinned schema"

    def check_repo(self, root: Path) -> list[Diagnostic]:
        return check_schema(root)
