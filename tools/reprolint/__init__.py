"""reprolint: the repository's AST-based invariant linter.

Every load-bearing guarantee this reproduction makes -- byte-identical
atlas resume, replayable explorer witnesses, the kernel-conformance
grid against frozen ``Reference*`` oracles -- rests on conventions
that used to be hand-enforced: seed only via
:func:`repro.core.canonical.stable_seed`, never touch a reference
oracle without acknowledging it, bump ``CACHE_SCHEMA`` whenever a
campaign result shape changes.  reprolint turns those conventions into
machine-checked rules at lint time.

The linter is stdlib-only (``ast`` + ``tokenize``), honouring the
repository's no-third-party-runtime-deps rule.  Run it from the
repository root::

    python -m tools.reprolint src tests benchmarks tools

Rules
-----

==== =========================== ========================================
code name                        enforces
==== =========================== ========================================
RL001 no-raw-hash-seeding        ``hash()`` never feeds a seed/RNG path
RL002 no-wallclock-in-sim        no wall-clock reads under ``src/repro/``
RL003 no-unseeded-rng            RNGs are seeded, traceably deterministic
RL004 frozen-oracle-drift        ``Reference*`` oracle sources are pinned
RL005 cache-schema-fingerprint   result-dict shape changes bump the schema
RL006 canonical-iteration-order  no iteration over unordered expressions
==== =========================== ========================================

Findings are file/line-precise and individually suppressible with an
inline ``# reprolint: disable=RL003 -- justification`` comment (on the
flagged line, or alone on the line above it).  The two repo-level
rules (RL004/RL005) are not suppressible; their pins are regenerated
deliberately via ``--update-oracles`` / ``--update-schema``.
"""

from tools.reprolint.engine import (  # noqa: F401
    Diagnostic,
    FileContext,
    all_rules,
    lint_paths,
    lint_source,
)

__version__ = "1.0"
