"""The reprolint command line.

Run from the repository root::

    python -m tools.reprolint                      # lint the default tree
    python -m tools.reprolint src tests            # lint a subset
    python -m tools.reprolint --list-rules         # rule table
    python -m tools.reprolint --update-oracles     # re-pin RL004 digests
    python -m tools.reprolint --update-schema      # re-pin RL005 shapes
    python -m tools.reprolint --report lint.json   # machine-readable report

Exit status: 0 clean, 1 findings, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from tools.reprolint.engine import FileRule, all_rules, lint_paths
from tools.reprolint.rules_repo import update_oracles, update_schema

#: What `make lint` covers: the package, its tests, the benchmark
#: suites, and the tooling itself.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")


def _repo_root() -> Path:
    """The repository root (the parent of ``tools/``)."""
    return Path(__file__).resolve().parent.parent.parent


def _list_rules() -> str:
    """The rule table: code, name, scope summary."""
    lines = ["reprolint rules:"]
    for rule in all_rules():
        kind = "file" if isinstance(rule, FileRule) else "repo"
        lines.append(f"  {rule.code}  {rule.name:<28} [{kind}] {rule.summary}")
    lines.append(
        "\nsuppress a file-rule finding inline with "
        "`# reprolint: disable=CODE -- justification`"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point.

    Args:
        argv: Argument list (defaults to ``sys.argv[1:]``).

    Returns:
        The process exit status.
    """
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based invariant linter for this reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: autodetected from this file)",
    )
    parser.add_argument(
        "--update-oracles",
        action="store_true",
        help="re-pin the RL004 frozen-oracle digests, then exit",
    )
    parser.add_argument(
        "--update-schema",
        action="store_true",
        help="re-pin the RL005 cache-schema fingerprint, then exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format on stdout",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="also write a JSON report (findings + metadata) to this path",
    )
    args = parser.parse_args(argv)
    root = (args.root or _repo_root()).resolve()

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.update_oracles:
        changed = update_oracles(root)
        what = ", ".join(changed) if changed else "none drifted"
        print(f"reprolint: oracle digests re-pinned ({what})")
        return 0
    if args.update_schema:
        fingerprint = update_schema(root)
        print(
            "reprolint: cache-schema fingerprint re-pinned "
            f"(CACHE_SCHEMA={fingerprint['cache_schema']!r})"
        )
        return 0

    start = time.perf_counter()
    findings, files = lint_paths(root, args.paths)
    elapsed = time.perf_counter() - start
    rules = all_rules()

    if args.format == "json":
        print(
            json.dumps(
                [diag.to_dict() for diag in findings], indent=2, sort_keys=True
            )
        )
    else:
        for diag in findings:
            print(diag.format())
        if findings:
            print(
                f"reprolint: {len(findings)} finding(s) in {files} files "
                f"({len(rules)} rules, {elapsed:.2f}s)"
            )
        else:
            print(
                f"reprolint: ok ({files} files, {len(rules)} rules, "
                f"{elapsed:.2f}s)"
            )

    if args.report is not None:
        report = {
            "findings": [diag.to_dict() for diag in findings],
            "files_checked": files,
            "rules": [
                {"code": r.code, "name": r.name, "summary": r.summary}
                for r in rules
            ],
            "elapsed_s": round(elapsed, 3),
            "clean": not findings,
        }
        args.report.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
