"""The reprolint engine: rule registry, suppressions, file driver.

Two rule families plug into the same diagnostic stream:

* *File rules* (:class:`FileRule`) get a parsed :class:`FileContext`
  per Python file and emit line-precise findings.  They are the
  ``ast``-level conventions (RL001/RL002/RL003/RL006) and honour
  inline ``# reprolint: disable=CODE`` suppressions.
* *Repo rules* (:class:`RepoRule`) check whole-repository invariants
  against a committed pin file (RL004 oracle digests, RL005 the
  cache-schema fingerprint).  They are deliberately *not*
  suppressible: their escape hatch is regenerating the pin via the
  CLI's ``--update-oracles`` / ``--update-schema``.

The engine itself knows nothing about individual rules; they register
via :func:`register_file_rule` / :func:`register_repo_rule` on import
(:mod:`tools.reprolint.rules_ast`, :mod:`tools.reprolint.rules_repo`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "Diagnostic",
    "FileContext",
    "FileRule",
    "RepoRule",
    "register_file_rule",
    "register_repo_rule",
    "all_rules",
    "iter_python_files",
    "lint_source",
    "lint_paths",
]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, which rule, and what to do about it."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """Render the finding in the ``path:line:col: CODE message`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-compatible form for machine-readable reports."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a file rule may look at: one parsed Python file."""

    rel_path: str
    source: str
    tree: ast.AST

    _parents: dict[int, ast.AST] | None = field(default=None, repr=False)

    def parents(self) -> dict[int, ast.AST]:
        """``id(child) -> parent`` for every node; built once, on demand."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents


class FileRule:
    """Base class for per-file AST rules."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def applies_to(self, rel_path: str) -> bool:
        """Whether this rule runs on ``rel_path`` (repo-relative)."""
        return True

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        """Return this rule's findings for one file."""
        raise NotImplementedError


class RepoRule:
    """Base class for whole-repository rules pinned by a committed file."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check_repo(self, root: Path) -> list[Diagnostic]:
        """Return this rule's findings for the repository at ``root``."""
        raise NotImplementedError


_FILE_RULES: list[FileRule] = []
_REPO_RULES: list[RepoRule] = []


def register_file_rule(cls: type[FileRule]) -> type[FileRule]:
    """Class decorator: instantiate and register a :class:`FileRule`."""
    _FILE_RULES.append(cls())
    return cls


def register_repo_rule(cls: type[RepoRule]) -> type[RepoRule]:
    """Class decorator: instantiate and register a :class:`RepoRule`."""
    _REPO_RULES.append(cls())
    return cls


def all_rules() -> list[FileRule | RepoRule]:
    """Every registered rule, file rules first, in registration order."""
    _load_rules()
    return [*_FILE_RULES, *_REPO_RULES]


_LOADED = False


def _load_rules() -> None:
    """Import the rule modules exactly once (they register on import)."""
    global _LOADED
    if not _LOADED:
        from tools.reprolint import rules_ast, rules_repo  # noqa: F401

        _LOADED = True


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
_SUPPRESS = re.compile(
    r"#\s*reprolint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
)


def suppressed_lines(source: str) -> dict[int, set[str]]:
    """Map line number -> rule codes suppressed on that line.

    A ``# reprolint: disable=RL003`` comment suppresses the listed
    codes on its own line; a comment that is *alone* on its line also
    covers the next code line (skipping the rest of its comment block
    and blank lines), so a statement can carry a multi-line
    justification above it.  Comments are found with ``tokenize``, so
    the marker inside a string literal is never mistaken for a
    suppression.

    Args:
        source: The file's source text.

    Returns:
        The suppression map (absent lines suppress nothing).
    """
    result: dict[int, set[str]] = {}
    lines = source.splitlines()

    def next_code_line(after: int) -> int:
        line = after + 1
        while line <= len(lines):
            text = lines[line - 1].strip()
            if text and not text.startswith("#"):
                return line
            line += 1
        return after + 1

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS.search(tok.string)
            if not match:
                continue
            codes = {c.strip() for c in match.group(1).split(",")}
            line = tok.start[0]
            result.setdefault(line, set()).update(codes)
            standalone = not tok.line[: tok.start[1]].strip()
            if standalone:
                target = next_code_line(line)
                result.setdefault(target, set()).update(codes)
    except tokenize.TokenError:
        pass  # the parse error surfaces via ast in lint_source
    return result


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    rel_path: str,
    rules: Sequence[FileRule] | None = None,
) -> list[Diagnostic]:
    """Lint one in-memory Python source with the file rules.

    Args:
        source: The source text.
        rel_path: Repo-relative path (drives per-rule scoping).
        rules: File rules to run; defaults to every registered one.

    Returns:
        Unsuppressed findings, sorted by (line, col, rule).
    """
    _load_rules()
    if rules is None:
        rules = _FILE_RULES
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="RL000",
                path=rel_path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(rel_path=rel_path, source=source, tree=tree)
    suppressions = suppressed_lines(source)
    findings: list[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(rel_path):
            continue
        for diag in rule.check(ctx):
            if diag.rule in suppressions.get(diag.line, ()):
                continue
            findings.append(diag)
    return sorted(findings, key=lambda d: (d.line, d.col, d.rule))


def iter_python_files(root: Path, paths: Iterable[str]) -> list[Path]:
    """Expand ``paths`` (files or directories, relative to ``root``).

    Directories are walked recursively for ``*.py`` files; cache and
    VCS directories are skipped.  The result is sorted by repo-relative
    path so diagnostics order is stable across platforms.

    Args:
        root: Repository root.
        paths: Files or directories, relative to ``root``.

    Returns:
        Sorted absolute file paths.
    """
    skip_parts = {"__pycache__", ".git", ".pytest_cache"}
    found: set[Path] = set()
    for entry in paths:
        target = (root / entry).resolve()
        if target.is_file() and target.suffix == ".py":
            found.add(target)
        elif target.is_dir():
            for path in target.rglob("*.py"):
                if not skip_parts & set(path.parts):
                    found.add(path)
    return sorted(found, key=lambda p: p.relative_to(root).as_posix())


def lint_paths(
    root: Path,
    paths: Iterable[str],
    with_repo_rules: bool = True,
) -> tuple[list[Diagnostic], int]:
    """Lint files under ``paths`` plus the repo-level invariants.

    Args:
        root: Repository root (pins resolve against it).
        paths: Files or directories, relative to ``root``.
        with_repo_rules: Also run RL004/RL005 against their pins.

    Returns:
        ``(findings, files_checked)``; findings are sorted by path,
        line, column, rule.
    """
    _load_rules()
    findings: list[Diagnostic] = []
    files = iter_python_files(root, paths)
    for path in files:
        rel = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, rel))
    if with_repo_rules:
        for rule in _REPO_RULES:
            findings.extend(rule.check_repo(root))
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings, len(files)
