"""Repository tooling: docs checks, API-doc generation, reprolint.

The scripts here run directly (``python tools/docs_check.py``) or as
modules from the repository root (``python -m tools.reprolint``); none
of them are part of the installable :mod:`repro` package and none may
grow third-party runtime dependencies.
"""
