#!/usr/bin/env python
"""Diff ``BENCH_<topic>.json`` snapshots and gate on regressions.

``make bench-snapshot`` writes one machine-readable snapshot per
reference-comparison bench (topic, params, ops/s, speedup).  This tool
is the other half of the persisted perf trajectory: given two or more
snapshot directories in chronological order it

* diffs the **first** (baseline) against the **last** (current) run,
  topic by topic, and exits nonzero when any topic's ``ops_per_s``
  regresses by more than ``--max-regress`` percent (comparisons whose
  ``params`` changed are advisory only -- a different workload is not
  a regression);
* renders the speedup trajectory across *all* given runs, so a series
  of archived snapshot directories becomes the per-topic history the
  ROADMAP asks every "make it faster" PR to be checkable against.

Usage::

    python tools/bench_diff.py BASELINE_DIR [DIR ...] CURRENT_DIR \
        [--max-regress PCT] [--markdown PATH]

With a single directory the tool just renders the table (nothing to
diff, exit 0).  Stdlib only; snapshots missing from either side are
reported but never fail the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Snapshot filename shape written by ``benchmarks/conftest.py``.
SNAPSHOT_GLOB = "BENCH_*.json"


def load_snapshots(directory: Path) -> dict[str, dict]:
    """Load every ``BENCH_<topic>.json`` in ``directory``, by topic.

    Args:
        directory: A snapshot directory.

    Returns:
        ``topic -> snapshot dict``; unreadable files are skipped with
        a note on stderr.
    """
    snapshots: dict[str, dict] = {}
    for path in sorted(directory.glob(SNAPSHOT_GLOB)):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"bench-diff: skipping unreadable {path}: {exc}",
                  file=sys.stderr)
            continue
        topic = data.get("topic") or path.stem.removeprefix("BENCH_")
        snapshots[topic] = data
    return snapshots


def pct_change(old: float, new: float) -> float:
    """Percent change from ``old`` to ``new`` (positive = faster)."""
    if old == 0:
        return 0.0
    return (new - old) / old * 100.0


def diff_snapshots(
    baseline: dict[str, dict],
    current: dict[str, dict],
    max_regress: float,
) -> tuple[list[dict], list[str]]:
    """Compare two snapshot sets topic by topic.

    Args:
        baseline: ``topic -> snapshot`` of the baseline run.
        current: ``topic -> snapshot`` of the current run.
        max_regress: Regression tolerance on ``ops_per_s``, percent.

    Returns:
        ``(rows, regressions)``: one row dict per topic (keys
        ``topic``, ``old_ops``, ``new_ops``, ``ops_pct``,
        ``old_speedup``, ``new_speedup``, ``comparable``, ``note``)
        and the failing topics' messages.
    """
    rows: list[dict] = []
    regressions: list[str] = []
    for topic in sorted(set(baseline) | set(current)):
        old, new = baseline.get(topic), current.get(topic)
        if old is None or new is None:
            rows.append({
                "topic": topic,
                "old_ops": old.get("ops_per_s") if old else None,
                "new_ops": new.get("ops_per_s") if new else None,
                "ops_pct": None,
                "old_speedup": old.get("speedup") if old else None,
                "new_speedup": new.get("speedup") if new else None,
                "comparable": False,
                "note": "baseline only" if new is None else "current only",
            })
            continue
        comparable = old.get("params") == new.get("params")
        ops_pct = pct_change(
            float(old.get("ops_per_s", 0.0)), float(new.get("ops_per_s", 0.0))
        )
        note = "" if comparable else "params changed; advisory"
        if comparable and ops_pct < -max_regress:
            note = f"REGRESSION beyond -{max_regress:g}%"
            regressions.append(
                f"{topic}: ops/s {old.get('ops_per_s')} -> "
                f"{new.get('ops_per_s')} ({ops_pct:+.1f}%)"
            )
        rows.append({
            "topic": topic,
            "old_ops": old.get("ops_per_s"),
            "new_ops": new.get("ops_per_s"),
            "ops_pct": ops_pct,
            "old_speedup": old.get("speedup"),
            "new_speedup": new.get("speedup"),
            "comparable": comparable,
            "note": note,
        })
    return rows, regressions


def _fmt(value: object, spec: str = "") -> str:
    """Render one table cell (``-`` for missing values)."""
    if value is None:
        return "-"
    return format(value, spec) if spec else str(value)


def render_diff(rows: list[dict], max_regress: float) -> str:
    """The baseline-vs-current table as text."""
    lines = [
        f"bench-diff: baseline vs current (gate: ops/s regression "
        f"> {max_regress:g}% fails)",
        "",
        f"{'topic':<14} {'ops/s old':>12} {'ops/s new':>12} "
        f"{'change':>9} {'speedup old':>12} {'speedup new':>12}  note",
    ]
    for row in rows:
        lines.append(
            f"{row['topic']:<14} {_fmt(row['old_ops'], '.2f'):>12} "
            f"{_fmt(row['new_ops'], '.2f'):>12} "
            f"{_fmt(row['ops_pct'], '+.1f'):>8}{'%' if row['ops_pct'] is not None else ' '} "
            f"{_fmt(row['old_speedup'], '.2f'):>12} "
            f"{_fmt(row['new_speedup'], '.2f'):>12}  {row['note']}"
        )
    return "\n".join(lines)


def render_trajectory(
    labels: list[str], runs: list[dict[str, dict]]
) -> str:
    """The per-topic speedup trajectory across every given run."""
    topics = sorted({t for run in runs for t in run})
    lines = ["", "speedup trajectory (x over the frozen reference):", ""]
    header = f"{'topic':<14}" + "".join(f" {label:>14}" for label in labels)
    lines.append(header)
    for topic in topics:
        cells = []
        for run in runs:
            snap = run.get(topic)
            cells.append(
                _fmt(snap.get("speedup") if snap else None, ".2f")
            )
        lines.append(
            f"{topic:<14}" + "".join(f" {cell:>14}" for cell in cells)
        )
    return "\n".join(lines)


def render_markdown(
    rows: list[dict],
    labels: list[str],
    runs: list[dict[str, dict]],
) -> str:
    """Markdown rendering of the diff table plus the trajectory."""
    lines = [
        "# Benchmark diff",
        "",
        "| topic | ops/s old | ops/s new | change | speedup old "
        "| speedup new | note |",
        "|---|---:|---:|---:|---:|---:|---|",
    ]
    for row in rows:
        pct = (
            f"{row['ops_pct']:+.1f}%" if row["ops_pct"] is not None else "-"
        )
        lines.append(
            f"| {row['topic']} | {_fmt(row['old_ops'], '.2f')} "
            f"| {_fmt(row['new_ops'], '.2f')} | {pct} "
            f"| {_fmt(row['old_speedup'], '.2f')} "
            f"| {_fmt(row['new_speedup'], '.2f')} | {row['note']} |"
        )
    topics = sorted({t for run in runs for t in run})
    lines += [
        "",
        "## Speedup trajectory",
        "",
        "| topic | " + " | ".join(labels) + " |",
        "|---|" + "---:|" * len(labels),
    ]
    for topic in topics:
        cells = [
            _fmt((run.get(topic) or {}).get("speedup"), ".2f")
            for run in runs
        ]
        lines.append(f"| {topic} | " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    """Entry point.

    Args:
        argv: Argument list (defaults to ``sys.argv[1:]``).

    Returns:
        0 when clean (or nothing to gate), 1 on regression, 2 on bad
        invocation.
    """
    parser = argparse.ArgumentParser(
        prog="python tools/bench_diff.py",
        description="Diff BENCH_<topic>.json snapshots; fail on regression.",
    )
    parser.add_argument(
        "dirs",
        nargs="+",
        type=Path,
        help="snapshot directories, oldest first (first=baseline, "
        "last=current)",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=25.0,
        help="tolerated ops/s regression in percent (default: 25)",
    )
    parser.add_argument(
        "--markdown",
        type=Path,
        default=None,
        help="also write the diff + trajectory as Markdown to this path",
    )
    args = parser.parse_args(argv)
    for directory in args.dirs:
        if not directory.is_dir():
            parser.error(f"not a directory: {directory}")
    if args.max_regress < 0:
        parser.error("--max-regress must be >= 0")

    runs = [load_snapshots(d) for d in args.dirs]
    labels = [d.name or str(d) for d in args.dirs]
    if len(runs) == 1:
        rows, regressions = diff_snapshots(runs[0], runs[0], args.max_regress)
        for row in rows:
            row["note"] = "single run; nothing to diff"
        regressions = []
    else:
        rows, regressions = diff_snapshots(runs[0], runs[-1], args.max_regress)

    print(render_diff(rows, args.max_regress))
    print(render_trajectory(labels, runs))
    if args.markdown is not None:
        args.markdown.write_text(
            render_markdown(rows, labels, runs), encoding="utf-8"
        )
        print(f"\nbench-diff: wrote {args.markdown}")

    if regressions:
        print("\nbench-diff: FAILED")
        for message in regressions:
            print(f"  - {message}")
        return 1
    print("\nbench-diff: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
