#!/usr/bin/env python
"""Documentation checker: required README sections + intra-repo links.

Fails (exit 1) when:

* ``README.md`` is missing, or missing any required section heading;
* any relative link target in a checked Markdown file does not exist;
* a heading anchor referenced as ``file.md#anchor`` does not match a
  heading in the target file.

External (``http(s)://``) links are not fetched. Run from anywhere;
paths resolve against the repository root (the parent of ``tools/``).

Usage::

    python tools/docs_check.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links must resolve.
CHECKED_FILES = [
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/ATLAS.md",
    "docs/API.md",
]

#: Headings the README must contain (substring match on heading text).
REQUIRED_README_SECTIONS = [
    "Byzantine Agreement with Homonyms",
    "What the paper is about",
    "Install",
    "Quickstart",
    "A worked CLI session",
    "The campaign engine",
    "The message fabric and exact metrics",
    "The array fabric at large n",
    "The execution kernel and delay models",
    "The strategy explorer",
    "The solvability atlas",
    "The soak farm",
    "Examples",
    "Architecture",
    "Testing and benchmarks",
    "Static analysis",
]

#: Headings other checked docs must contain (substring match), keyed by
#: repo-relative path.
REQUIRED_DOC_SECTIONS = {
    "docs/ARCHITECTURE.md": [
        "The execution kernel",
        "Kernel coverage",
        "The message fabric",
        "The array fabric",
        "The solvability atlas",
        "The soak farm",
        "Static analysis",
    ],
    "docs/ATLAS.md": [
        "Evidence kinds and grades",
        "Cell verdicts",
        "The conflict policy",
        "Streaming at lattice scale",
        "Sharding and deterministic merge",
        "The campaign budget envelope",
        "Incremental re-rendering",
        "The query service",
    ],
}

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _anchor(heading: str) -> str:
    """GitHub-style anchor for a heading."""
    text = re.sub(r"[^\w\s-]", "", heading.strip().lower())
    return re.sub(r"\s+", "-", text)


def check_readme_sections(errors: list[str]) -> None:
    """Verify every required section heading exists in the README."""
    readme = REPO_ROOT / "README.md"
    if not readme.exists():
        errors.append("README.md is missing")
        return
    headings = _HEADING.findall(readme.read_text())
    for required in REQUIRED_README_SECTIONS:
        if not any(required in heading for heading in headings):
            errors.append(f"README.md: missing section {required!r}")


def check_doc_sections(errors: list[str]) -> None:
    """Verify required section headings in the other checked docs."""
    for name, required_sections in REQUIRED_DOC_SECTIONS.items():
        path = REPO_ROOT / name
        if not path.exists():
            errors.append(f"{name} is missing")
            continue
        headings = _HEADING.findall(path.read_text())
        for required in required_sections:
            if not any(required in heading for heading in headings):
                errors.append(f"{name}: missing section {required!r}")


def check_links(errors: list[str]) -> None:
    """Verify every relative link in the checked files resolves."""
    for name in CHECKED_FILES:
        source = REPO_ROOT / name
        if not source.exists():
            errors.append(f"{name} is missing")
            continue
        text = source.read_text()
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            resolved = (
                (source.parent / path_part).resolve()
                if path_part else source
            )
            if path_part and not resolved.exists():
                errors.append(f"{name}: broken link -> {target}")
                continue
            if fragment and resolved.suffix == ".md":
                anchors = {
                    _anchor(h) for h in _HEADING.findall(resolved.read_text())
                }
                if fragment not in anchors:
                    errors.append(f"{name}: broken anchor -> {target}")


def main() -> int:
    """Run all checks; print findings.

    Returns:
        0 when the docs are clean, 1 otherwise.
    """
    errors: list[str] = []
    check_readme_sections(errors)
    check_doc_sections(errors)
    check_links(errors)
    if errors:
        print("docs-check: FAILED")
        for error in errors:
            print(f"  - {error}")
        return 1
    checked = ", ".join(CHECKED_FILES)
    print(f"docs-check: ok ({checked}; "
          f"{len(REQUIRED_README_SECTIONS)} required README sections)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
