"""Tests for the delay-based models and their basic-model simulation.

The paper's Section 2 equivalence, executed: round algorithms run
unchanged over tick-based networks with adversarial delays, late
messages become basic-model losses, and post-stabilisation everything
is punctual -- so Figure 5 / Figure 7 keep their guarantees.  The
round simulation runs on the unified kernel
(:func:`repro.sim.delay.run_delay_execution`); the deprecated
:class:`~repro.sim.delay.DelayRoundSimulator` shim must warn and
delegate to it.
"""

import warnings

import pytest

from repro.core.errors import ConfigurationError
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY, check_agreement_properties
from repro.psync.dls_homonyms import DLSHomonymProcess, dls_horizon
from repro.psync.restricted import RestrictedNumerateProcess, restricted_horizon
from repro.sim.delay import (
    AlwaysBoundedUnknownDelays,
    DelayRoundSimulator,
    EventuallyBoundedDelays,
    equivalent_basic_gst,
    run_delay_execution,
)
from repro.sim.process import EchoProcess


def verdict_of(result, processes, correct, proposals):
    decisions = {k: processes[k].decision for k in correct
                 if processes[k].decided}
    rounds = {k: processes[k].decision_round for k in correct
              if processes[k].decided}
    return check_agreement_properties(
        proposals=proposals,
        decisions=decisions,
        decision_rounds=rounds,
        correct=correct,
        rounds_executed=len(result.trace),
    )


class TestDelayPolicies:
    def test_delta_validated(self):
        with pytest.raises(ConfigurationError):
            EventuallyBoundedDelays(delta=0, gst_tick=0)

    def test_post_gst_delays_within_delta(self):
        policy = EventuallyBoundedDelays(delta=4, gst_tick=20, seed=1)
        for tick in range(20, 60):
            for s in range(4):
                for q in range(4):
                    assert policy.delay(tick, s, q) < 4

    def test_pre_gst_delays_can_exceed_delta(self):
        policy = EventuallyBoundedDelays(delta=2, gst_tick=100,
                                         chaos_factor=5, seed=3)
        delays = {policy.delay(t, s, q)
                  for t in range(40) for s in range(3) for q in range(3)}
        assert max(delays) >= 2  # lateness actually happens

    def test_always_bounded_never_exceeds(self):
        policy = AlwaysBoundedUnknownDelays(true_delta=3, seed=2)
        for tick in range(50):
            assert policy.delay(tick, 0, 1) < 3

    def test_deterministic_per_seed(self):
        a = EventuallyBoundedDelays(delta=3, gst_tick=9, seed=5)
        b = EventuallyBoundedDelays(delta=3, gst_tick=9, seed=5)
        assert [a.delay(t, 0, 1) for t in range(30)] == \
               [b.delay(t, 0, 1) for t in range(30)]

    def test_equivalent_basic_gst(self):
        policy = EventuallyBoundedDelays(delta=4, gst_tick=10)
        assert equivalent_basic_gst(policy) == 3  # ceil(10/4)
        punctual = AlwaysBoundedUnknownDelays(true_delta=4)
        assert equivalent_basic_gst(punctual) == 0


class TestRoundSimulation:
    def make(self, n=3):
        params = SystemParams(n=n, ell=n, t=0)
        assignment = balanced_assignment(n, n)
        processes = [EchoProcess(assignment.identifier_of(k))
                     for k in range(n)]
        return params, assignment, processes

    def test_punctual_network_loses_nothing(self):
        params, assignment, procs = self.make()
        result = run_delay_execution(
            params, assignment, procs,
            AlwaysBoundedUnknownDelays(true_delta=3),
            max_rounds=5, stop_when_all_decided=False,
        )
        assert result.dropped == ()
        assert result.rounds_executed == 5
        assert result.ticks_executed == 15
        # Full inboxes every round.
        for r in range(5):
            assert len(procs[0].received[r]) == 3

    def test_late_messages_become_basic_model_losses(self):
        policy = EventuallyBoundedDelays(delta=2, gst_tick=20,
                                         chaos_factor=6, seed=11)
        params, assignment, procs = self.make()
        result = run_delay_execution(
            params, assignment, procs, policy,
            max_rounds=20, stop_when_all_decided=False,
        )
        assert result.dropped  # chaos did drop something
        gst_round = equivalent_basic_gst(policy)
        # The finiteness guarantee: no loss at or after the equivalent
        # basic-model GST round.
        assert result.last_lost_round() < gst_round

    def test_self_delivery_is_never_late(self):
        policy = EventuallyBoundedDelays(delta=2, gst_tick=50,
                                         chaos_factor=8, seed=4)
        params, assignment, procs = self.make()
        run_delay_execution(
            params, assignment, procs, policy,
            max_rounds=10, stop_when_all_decided=False,
        )
        for r in range(10):
            own = [m for m in procs[0].received[r] if m.sender_id == 1]
            assert own, f"round {r} lost the self-message"


class TestDeprecatedShim:
    """DelayRoundSimulator must warn and delegate to the kernel."""

    def _setup(self):
        params = SystemParams(n=3, ell=3, t=0)
        assignment = balanced_assignment(3, 3)
        processes = [EchoProcess(assignment.identifier_of(k))
                     for k in range(3)]
        return params, assignment, processes

    def test_construction_warns(self):
        params, assignment, processes = self._setup()
        with pytest.warns(DeprecationWarning, match="DelayRoundSimulator"):
            DelayRoundSimulator(
                params, assignment, processes,
                AlwaysBoundedUnknownDelays(true_delta=2),
            )

    def test_shim_matches_the_kernel_path(self):
        policy = EventuallyBoundedDelays(delta=2, gst_tick=10,
                                         chaos_factor=5, seed=6)
        params, assignment, shim_procs = self._setup()
        with pytest.warns(DeprecationWarning):
            shim = DelayRoundSimulator(params, assignment, shim_procs, policy)
        shim_result = shim.run(max_rounds=8, stop_when_all_decided=False)

        _, _, kernel_procs = self._setup()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            kernel_result = run_delay_execution(
                params, assignment, kernel_procs, policy,
                max_rounds=8, stop_when_all_decided=False,
            )
        assert shim_result.dropped == kernel_result.dropped
        assert shim_result.ticks_executed == kernel_result.ticks_executed
        assert len(shim.trace) == len(kernel_result.trace)
        for a, b in zip(shim.trace, kernel_result.trace):
            assert (a.payloads, a.decisions) == (b.payloads, b.decisions)

    def test_shim_exposes_trace_and_correct(self):
        params, assignment, processes = self._setup()
        with pytest.warns(DeprecationWarning):
            shim = DelayRoundSimulator(
                params, assignment, processes,
                AlwaysBoundedUnknownDelays(true_delta=2),
            )
        shim.run(max_rounds=3, stop_when_all_decided=False)
        assert len(shim.trace) == 3
        assert shim._correct == (0, 1, 2)


class TestAlgorithmsOverDelayNetworks:
    """The equivalence payoff: psync algorithms unchanged over delays."""

    def test_fig5_over_eventually_bounded_delays(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        assignment = balanced_assignment(7, 6)
        byz = (6,)
        proposals = {k: k % 2 for k in range(6)}
        processes = [
            None if k in byz else DLSHomonymProcess(
                params, BINARY, assignment.identifier_of(k), proposals.get(k)
            )
            for k in range(7)
        ]
        policy = EventuallyBoundedDelays(delta=3, gst_tick=30,
                                         chaos_factor=4, seed=9)
        gst_round = equivalent_basic_gst(policy)
        result = run_delay_execution(
            params, assignment, processes, policy, byzantine=byz,
            max_rounds=dls_horizon(params, gst_round * 1 + 8),
        )
        correct = tuple(k for k in range(7) if k not in byz)
        verdict = verdict_of(result, processes, correct, proposals)
        assert verdict.ok, verdict.summary()
        assert result.last_lost_round() < gst_round

    def test_fig7_over_unknown_bound_delays(self):
        params = SystemParams(
            n=4, ell=2, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        assignment = balanced_assignment(4, 2)
        byz = (3,)
        proposals = {k: k % 2 for k in range(3)}
        processes = [
            None if k in byz else RestrictedNumerateProcess(
                params, BINARY, assignment.identifier_of(k), proposals.get(k)
            )
            for k in range(4)
        ]
        policy = AlwaysBoundedUnknownDelays(true_delta=5, seed=3)
        result = run_delay_execution(
            params, assignment, processes, policy, byzantine=byz,
            max_rounds=restricted_horizon(params, 0),
        )
        correct = tuple(k for k in range(4) if k not in byz)
        verdict = verdict_of(result, processes, correct, proposals)
        assert verdict.ok
        assert result.dropped == ()  # always-bounded: a synchronous run
