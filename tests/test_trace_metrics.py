"""Tests for execution traces and metrics accounting."""

import pytest

from repro.core.errors import ReplayError
from repro.sim.metrics import Metrics, metrics_from_trace, payload_size
from repro.sim.trace import RoundRecord, Trace


def record(round_no, payloads=None, emissions=None, decisions=None):
    return RoundRecord(
        round_no=round_no,
        payloads=payloads or {},
        emissions=emissions or {},
        decisions=decisions or {},
    )


class TestTrace:
    def test_appends_in_order(self):
        trace = Trace()
        trace.append(record(0))
        trace.append(record(1))
        assert len(trace) == 2

    def test_rejects_out_of_order_rounds(self):
        trace = Trace()
        with pytest.raises(ReplayError):
            trace.append(record(1))

    def test_payload_lookup(self):
        trace = Trace()
        trace.append(record(0, payloads={2: "hello"}))
        assert trace.payload_of(0, 2) == "hello"
        assert trace.payload_of(0, 1) is None

    def test_missing_round_raises(self):
        trace = Trace()
        with pytest.raises(ReplayError):
            trace.record(0)

    def test_decisions_keep_first_occurrence(self):
        trace = Trace()
        trace.append(record(0, decisions={1: "a"}))
        trace.append(record(1, decisions={1: "b", 2: "c"}))
        assert trace.decisions() == {1: "a", 2: "c"}
        assert trace.decision_rounds() == {1: 0, 2: 1}

    def test_summary_is_bounded(self):
        trace = Trace()
        for r in range(30):
            trace.append(record(r, payloads={0: "x"}))
        text = trace.summary(max_rounds=5)
        assert "more rounds" in text


class TestRoundRecord:
    def test_byzantine_message_count(self):
        rec = record(
            0,
            emissions={3: {0: ("a", "b"), 1: ("c",)}},
        )
        assert rec.byzantine_message_count == 3

    def test_correct_message_count(self):
        assert record(0, payloads={0: "x", 1: "y"}).correct_message_count == 2


class TestMetrics:
    def test_payload_size_is_repr_length(self):
        assert payload_size("ab") == len(repr("ab"))

    def test_metrics_from_trace(self):
        trace = Trace()
        trace.append(record(0, payloads={0: "x", 1: "y"},
                            emissions={2: {0: ("e",)}}))
        trace.append(record(1, payloads={0: "x"}))
        m = metrics_from_trace(trace, fanout=3)
        assert m.rounds == 2
        assert m.correct_broadcasts == 3
        assert m.correct_messages == 9
        assert m.byzantine_messages == 1
        assert m.total_messages == 10

    def test_merge(self):
        a = Metrics(rounds=1, correct_broadcasts=2, correct_messages=4,
                    byzantine_messages=1, payload_bytes=10)
        b = Metrics(rounds=2, correct_broadcasts=1, correct_messages=2,
                    byzantine_messages=0, payload_bytes=5)
        c = a.merge(b)
        assert (c.rounds, c.correct_broadcasts, c.correct_messages,
                c.byzantine_messages, c.payload_bytes) == (3, 3, 6, 1, 15)

    def test_summary_format(self):
        assert "rounds" in Metrics().summary()
