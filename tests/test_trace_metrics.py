"""Tests for execution traces and metrics accounting."""

import pytest

from repro.core.errors import ReplayError
from repro.sim.metrics import (
    Metrics,
    RoundDeliveries,
    metrics_from_deliveries,
    metrics_from_trace,
    payload_size,
)
from repro.sim.trace import RoundRecord, Trace


def record(round_no, payloads=None, emissions=None, decisions=None):
    return RoundRecord(
        round_no=round_no,
        payloads=payloads or {},
        emissions=emissions or {},
        decisions=decisions or {},
    )


class TestTrace:
    def test_appends_in_order(self):
        trace = Trace()
        trace.append(record(0))
        trace.append(record(1))
        assert len(trace) == 2

    def test_rejects_out_of_order_rounds(self):
        trace = Trace()
        with pytest.raises(ReplayError):
            trace.append(record(1))

    def test_payload_lookup(self):
        trace = Trace()
        trace.append(record(0, payloads={2: "hello"}))
        assert trace.payload_of(0, 2) == "hello"
        assert trace.payload_of(0, 1) is None

    def test_missing_round_raises(self):
        trace = Trace()
        with pytest.raises(ReplayError):
            trace.record(0)

    def test_decisions_keep_first_occurrence(self):
        trace = Trace()
        trace.append(record(0, decisions={1: "a"}))
        trace.append(record(1, decisions={1: "b", 2: "c"}))
        assert trace.decisions() == {1: "a", 2: "c"}
        assert trace.decision_rounds() == {1: 0, 2: 1}

    def test_summary_is_bounded(self):
        trace = Trace()
        for r in range(30):
            trace.append(record(r, payloads={0: "x"}))
        text = trace.summary(max_rounds=5)
        assert "more rounds" in text


class TestRoundRecord:
    def test_byzantine_message_count(self):
        rec = record(
            0,
            emissions={3: {0: ("a", "b"), 1: ("c",)}},
        )
        assert rec.byzantine_message_count == 3

    def test_correct_message_count(self):
        assert record(0, payloads={0: "x", 1: "y"}).correct_message_count == 2


class TestMetrics:
    def test_payload_size_is_repr_length(self):
        assert payload_size("ab") == len(repr("ab"))

    def test_metrics_from_trace(self):
        trace = Trace()
        trace.append(record(0, payloads={0: "x", 1: "y"},
                            emissions={2: {0: ("e",)}}))
        trace.append(record(1, payloads={0: "x"}))
        with pytest.warns(DeprecationWarning):
            m = metrics_from_trace(trace, fanout=3)
        assert m.rounds == 2
        assert m.correct_broadcasts == 3
        assert m.correct_messages == 9
        assert m.byzantine_messages == 1
        assert m.total_messages == 10

    def test_merge(self):
        a = Metrics(rounds=1, correct_broadcasts=2, correct_messages=4,
                    byzantine_messages=1, payload_bytes=10)
        b = Metrics(rounds=2, correct_broadcasts=1, correct_messages=2,
                    byzantine_messages=0, payload_bytes=5)
        c = a.merge(b)
        assert (c.rounds, c.correct_broadcasts, c.correct_messages,
                c.byzantine_messages, c.payload_bytes) == (3, 3, 6, 1, 15)

    def test_summary_format(self):
        assert "rounds" in Metrics().summary()


class TestMetricsFromTraceDeprecation:
    """The deprecation path of the uniform-fanout estimator.

    ``metrics_from_trace`` must (a) always warn, (b) keep working on
    permissive topologies/schedules where the estimate is exact, and
    (c) refuse outright when the execution ran under anything that
    restricts delivery -- a silent overcount would poison reports.
    """

    def _trace(self):
        trace = Trace()
        trace.append(record(0, payloads={0: "x", 1: "y"}))
        return trace

    def test_always_warns(self):
        with pytest.warns(DeprecationWarning, match="metrics_from_deliveries"):
            metrics_from_trace(self._trace(), fanout=2)

    def test_permissive_topology_and_schedule_accepted(self):
        from repro.sim.partial import NoDrops
        from repro.sim.topology import CompleteTopology

        with pytest.warns(DeprecationWarning):
            m = metrics_from_trace(
                self._trace(), fanout=2,
                topology=CompleteTopology(), drop_schedule=NoDrops(),
            )
        assert m.correct_messages == 4

    def test_restricting_topology_raises(self):
        from repro.core.errors import ConfigurationError
        from repro.sim.topology import DirectedTopology

        topology = DirectedTopology({0: frozenset({1})})
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="restricted topolog"):
                metrics_from_trace(self._trace(), fanout=2, topology=topology)

    @pytest.mark.parametrize("schedule_name", ["silence", "random", "partition"])
    def test_dropping_schedules_raise(self, schedule_name):
        from repro.core.errors import ConfigurationError
        from repro.sim.partial import (
            PartitionSchedule,
            RandomDrops,
            SilenceUntil,
        )

        schedule = {
            "silence": SilenceUntil(4),
            "random": RandomDrops(gst=8, p=0.5),
            "partition": PartitionSchedule(3, {0}, {1}),
        }[schedule_name]
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="message loss"):
                metrics_from_trace(
                    self._trace(), fanout=2, drop_schedule=schedule
                )


class TestMetricsFromDeliveries:
    def test_fold(self):
        deliveries = [
            RoundDeliveries(
                round_no=0, correct_broadcasts=2, correct_deliveries=5,
                byzantine_deliveries=1, correct_payload_bytes=40,
                byzantine_payload_bytes=3,
            ),
            RoundDeliveries(
                round_no=1, correct_broadcasts=1, correct_deliveries=3,
                byzantine_deliveries=0, correct_payload_bytes=9,
                byzantine_payload_bytes=0,
            ),
        ]
        m = metrics_from_deliveries(deliveries)
        assert m.rounds == 2
        assert m.correct_broadcasts == 3
        assert m.correct_messages == 8
        assert m.byzantine_messages == 1
        assert m.total_messages == 9
        assert m.payload_bytes == 52

    def test_empty_log(self):
        assert metrics_from_deliveries([]) == Metrics()

    def test_matches_trace_estimate_on_full_fanout(self):
        """On the complete topology with no drops the estimate is exact."""
        from repro.core.identity import balanced_assignment
        from repro.core.params import SystemParams
        from repro.sim.network import RoundEngine
        from repro.sim.process import EchoProcess

        n = 5
        assignment = balanced_assignment(n, n)
        engine = RoundEngine(
            params=SystemParams(n=n, ell=n, t=0),
            assignment=assignment,
            processes=[EchoProcess(assignment.identifier_of(k))
                       for k in range(n)],
        )
        engine.run(max_rounds=4, stop_when_all_decided=False)
        exact = metrics_from_deliveries(engine.deliveries)
        with pytest.warns(DeprecationWarning):
            estimate = metrics_from_trace(engine.trace, fanout=n)
        assert exact == estimate
