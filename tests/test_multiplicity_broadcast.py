"""Tests for the Figure 6 multiplicity authenticated broadcast.

Checks the four specification properties -- Correctness (alpha' >= alpha
after stabilisation), Unforgeability (alpha' <= alpha + f_i), Relay and
Unicity -- at the unit level and through engine-driven executions with
restricted Byzantine processes inflating counts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.multiplicity import (
    ECHO_TAG,
    INIT_TAG,
    MultiplicityAccept,
    MultiplicityBroadcast,
)
from repro.broadcast.runner import run_multiplicity_broadcast
from repro.core.errors import BoundViolation
from repro.core.identity import stacked_assignment
from repro.sim.adversary import Adversary
from repro.sim.partial import SilenceUntil


class TestLayerUnit:
    def test_bound_enforced(self):
        with pytest.raises(BoundViolation):
            MultiplicityBroadcast(3, 1, ident=1)

    def test_init_emitted_in_first_round_of_superround(self):
        mb = MultiplicityBroadcast(4, 1, ident=1)
        mb.broadcast("m", superround=1)
        assert mb.outgoing(0) == ()
        assert (INIT_TAG, "m", 1) in mb.outgoing(2)
        assert mb.outgoing(3) == ()  # consumed

    def test_init_counting_with_multiplicity(self):
        mb = MultiplicityBroadcast(4, 1, ident=1)
        # Two homonyms of identifier 2 init "m" at superround 0.
        mb.note_message(2, [(INIT_TAG, "m", 0)], round_no=0)
        mb.note_message(2, [(INIT_TAG, "m", 0)], round_no=0)
        mb.end_round(0)
        assert mb.counter(2, "m", 0) == 2

    def test_invalid_message_discarded_wholesale(self):
        mb = MultiplicityBroadcast(4, 1, ident=1)
        # Duplicate init for the same m invalidates the whole message.
        mb.note_message(
            2, [(INIT_TAG, "m", 0), (INIT_TAG, "m", 0)], round_no=0
        )
        mb.end_round(0)
        assert mb.counter(2, "m", 0) == 0

    def test_init_for_wrong_round_invalidates(self):
        mb = MultiplicityBroadcast(4, 1, ident=1)
        mb.note_message(2, [(INIT_TAG, "m", 1)], round_no=0)  # 2r != 0
        mb.end_round(0)
        assert mb.counter(2, "m", 1) == 0

    def test_duplicate_echo_key_invalidates(self):
        mb = MultiplicityBroadcast(4, 1, ident=1)
        mb.note_message(
            2,
            [(ECHO_TAG, 1, 1, "m", 0), (ECHO_TAG, 1, 2, "m", 0)],
            round_no=3,
        )
        accepts = mb.end_round(3)
        assert accepts == [] and mb.counter(1, "m", 0) == 0

    def test_echo_threshold_raises_counter(self):
        mb = MultiplicityBroadcast(4, 1, ident=1)
        # n - 2t = 2 messages echoing alpha >= 3 raise a[..] to 3.
        mb.note_message(2, [(ECHO_TAG, 1, 3, "m", 0)], round_no=2)
        mb.note_message(3, [(ECHO_TAG, 1, 4, "m", 0)], round_no=2)
        mb.end_round(2)
        assert mb.counter(1, "m", 0) == 3

    def test_accept_only_in_odd_rounds_with_n_minus_t_support(self):
        mb = MultiplicityBroadcast(4, 1, ident=1)
        items = [(ECHO_TAG, 1, 2, "m", 0)]
        for sender in (1, 2, 3):
            mb.note_message(sender, items, round_no=2)
        assert mb.end_round(2) == []  # even round: no accept
        for sender in (1, 2, 3):
            mb.note_message(sender, items, round_no=3)
        accepts = mb.end_round(3)
        assert accepts == [
            MultiplicityAccept(ident=1, multiplicity=2, message="m",
                               superround=0, accepted_superround=1)
        ]

    def test_unicity_one_accept_per_superround(self):
        mb = MultiplicityBroadcast(4, 1, ident=1)
        items = [(ECHO_TAG, 1, 2, "m", 0)]
        for sender in (1, 2, 3):
            mb.note_message(sender, items, round_no=3)
        first = mb.end_round(3)
        assert len(first) == 1
        # Within one superround the tally was consumed; a later round's
        # fresh tally may accept again (next superround), per the spec.
        for sender in (1, 2, 3):
            mb.note_message(sender, items, round_no=5)
        second = mb.end_round(5)
        assert len(second) == 1
        assert second[0].accepted_superround == 2


def run_multiplicity(n, ell, t, broadcaster_ident, byz=(), adversary=None,
                     drop_schedule=None, rounds=8, assignment=None):
    run = run_multiplicity_broadcast(
        n, ell, t, broadcaster_ident, byzantine=byz, adversary=adversary,
        drop_schedule=drop_schedule, rounds=rounds, assignment=assignment,
    )
    return run.correct_processes, run.assignment


class TestCorrectnessProperty:
    def test_multiplicity_at_least_broadcaster_count(self):
        # Identifier 1 held by 3 correct processes, all broadcasting.
        procs, assignment = run_multiplicity(6, 4, 1, broadcaster_ident=1)
        alpha = len(assignment.group(1))
        for p in procs:
            mine = [a for a in p.accepts if a.ident == 1 and a.message == "m"]
            assert mine and mine[0].multiplicity >= alpha
            assert mine[0].accepted_superround == 0


class TestUnforgeabilityProperty:
    def test_byzantine_homonym_inflates_by_at_most_f_i(self):
        class CountInflator(Adversary):
            """Byzantine holder of identifier 1 echoes a huge alpha."""

            def emissions(self, view):
                items = ((INIT_TAG, "m", 0),) if view.round_no == 0 else ()
                echo = ((ECHO_TAG, 1, 99, "m", 0),)
                payload = ("mb", items + echo)
                return {
                    b: {q: (payload,) for q in range(view.params.n)}
                    for b in view.byzantine
                }

        # Identifier 1: 2 correct broadcasters + 1 Byzantine (f_1 = 1).
        assignment = stacked_assignment(6, 4)  # id1 x3, ids 2-4 x1
        byz = (assignment.group(1)[2],)
        procs, _ = run_multiplicity(
            6, 4, 1, broadcaster_ident=1, byz=byz,
            adversary=CountInflator(), assignment=assignment,
        )
        alpha_correct = 2
        f_1 = 1
        for p in procs:
            for a in p.accepts:
                if a.ident == 1 and a.message == "m":
                    assert a.multiplicity <= alpha_correct + f_1

    def test_phantom_broadcast_never_accepted(self):
        class PhantomEcho(Adversary):
            def emissions(self, view):
                payload = ("mb", ((ECHO_TAG, 2, 1, "phantom", 0),))
                return {
                    b: {q: (payload,) for q in range(view.params.n)}
                    for b in view.byzantine
                }

        assignment = stacked_assignment(6, 4)
        byz = (assignment.group(1)[0],)
        procs, _ = run_multiplicity(
            6, 4, 1, broadcaster_ident=3, byz=byz,
            adversary=PhantomEcho(), assignment=assignment, rounds=10,
        )
        for p in procs:
            assert not any(a.message == "phantom" for a in p.accepts)


class TestRelayProperty:
    def test_accepts_recur_and_spread_after_gst(self):
        procs, assignment = run_multiplicity(
            6, 4, 1, broadcaster_ident=1,
            drop_schedule=SilenceUntil(0),  # fully synchronous
            rounds=10,
        )
        # Every correct process re-accepts each superround (echoes
        # persist), so the relay invariant holds trivially here; check
        # multiplicities never decrease below the correct count.
        alpha = len(assignment.group(1))
        for p in procs:
            mults = [a.multiplicity for a in p.accepts
                     if a.ident == 1 and a.message == "m"]
            assert mults and all(m >= alpha for m in mults)


@given(gst=st.integers(0, 6), seed=st.integers(0, 12))
@settings(max_examples=15, deadline=None)
def test_post_gst_broadcast_accepted_with_full_multiplicity(gst, seed):
    """Property: all-correct system, chaotic drops before gst; a
    broadcast in the first superround at/after stabilisation is accepted
    with multiplicity >= the number of broadcasters."""
    from repro.sim.partial import RandomDrops

    n, ell, t = 5, 3, 1
    start_sr = (gst + 1) // 2 + 1
    run = run_multiplicity_broadcast(
        n, ell, t, broadcaster_ident=1,
        drop_schedule=RandomDrops(gst=gst, p=0.5, seed=seed),
        rounds=2 * start_sr + 6, broadcast_superround=start_sr,
    )
    alpha = len(run.assignment.group(1))
    for p in run.correct_processes:
        mine = [a for a in p.accepts if a.ident == 1 and a.message == "m"]
        assert mine and max(a.multiplicity for a in mine) >= alpha
