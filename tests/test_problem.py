"""Unit tests for the agreement problem spec and verdict checking."""

import pytest

from repro.core.problem import (
    BINARY,
    AgreementProblem,
    check_agreement_properties,
)


def check(proposals, decisions, correct, rounds=10, require_termination=True,
          decision_rounds=None):
    if decision_rounds is None:
        decision_rounds = {k: 1 for k in decisions}
    return check_agreement_properties(
        proposals=proposals,
        decisions=decisions,
        decision_rounds=decision_rounds,
        correct=correct,
        rounds_executed=rounds,
        require_termination=require_termination,
    )


class TestAgreementProblem:
    def test_binary_domain(self):
        assert BINARY.domain == (0, 1)
        assert BINARY.default == 0

    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            AgreementProblem((0,))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            AgreementProblem((0, 0))

    def test_validate_value(self):
        assert BINARY.validate_value(1) == 1
        with pytest.raises(ValueError):
            BINARY.validate_value(2)

    def test_larger_domains_supported(self):
        p = AgreementProblem(("a", "b", "c", "d"))
        assert p.default == "a"
        assert p.validate_value("d") == "d"


class TestVerdicts:
    def test_clean_execution(self):
        v = check({0: 1, 1: 1}, {0: 1, 1: 1}, correct=[0, 1])
        assert v.ok
        assert v.agreed_value == 1
        assert v.last_decision_round == 1

    def test_termination_violation(self):
        v = check({0: 1, 1: 1}, {0: 1}, correct=[0, 1])
        assert not v.ok
        assert v.violated("termination")
        assert "1" in str(v.violations[0])

    def test_termination_waived_for_truncated_runs(self):
        v = check({0: 1, 1: 1}, {0: 1}, correct=[0, 1], require_termination=False)
        assert v.ok

    def test_agreement_violation(self):
        v = check({0: 0, 1: 1}, {0: 0, 1: 1}, correct=[0, 1])
        assert not v.ok
        assert v.violated("agreement")
        assert v.agreed_value is None

    def test_validity_violation(self):
        v = check({0: 0, 1: 0}, {0: 1, 1: 1}, correct=[0, 1])
        assert not v.ok
        assert v.violated("validity")

    def test_mixed_inputs_allow_either_value(self):
        v = check({0: 0, 1: 1}, {0: 1, 1: 1}, correct=[0, 1])
        assert v.ok

    def test_byzantine_proposals_are_ignored(self):
        # Process 2 is not in the correct set; its entries never count.
        v = check({0: 0, 1: 0, 2: 1}, {0: 0, 1: 0, 2: 1}, correct=[0, 1])
        assert v.ok
        assert 2 not in v.decisions

    def test_agreement_and_validity_can_both_fire(self):
        v = check({0: 0, 1: 0, 2: 0}, {0: 0, 1: 1, 2: 0}, correct=[0, 1, 2])
        assert v.violated("agreement") and v.violated("validity")

    def test_summary_mentions_violations(self):
        v = check({0: 0, 1: 0}, {0: 0, 1: 1}, correct=[0, 1])
        assert "agreement" in v.summary()

    def test_summary_of_clean_run(self):
        v = check({0: 0}, {0: 0}, correct=[0])
        assert "OK" in v.summary()

    def test_distinguishes_equal_reprs_only(self):
        # Values are compared by repr for hashability safety; distinct
        # reprs are distinct decisions.
        v = check({0: "a", 1: "a"}, {0: "a", 1: "b"}, correct=[0, 1])
        assert v.violated("agreement")
