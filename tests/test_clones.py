"""Tests for the Theorem 19 clone machinery."""

import pytest

from repro.adversaries.clones import CloneFairAdversary, run_clone_experiment
from repro.adversaries.generic import InputFlipAdversary, RandomByzantineAdversary
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.homonyms.transform import transform_factory, transform_horizon
from repro.classic.eig import EIGSpec
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.adversary import NullAdversary
from repro.sim.partial import SilenceUntil


class TestCloneProperty:
    """Same identifier + same input + clone-fair adversary => identical
    payload streams: the premise of the Theorem 19 reduction."""

    def test_transform_clones_stay_identical(self):
        spec = EIGSpec(4, 1, BINARY)
        params = SystemParams(n=7, ell=4, t=1)
        report = run_clone_experiment(
            params,
            transform_factory(spec),
            NullAdversary(),
            proposals_by_ident={1: 0, 2: 1, 3: 0, 4: 1},
            byzantine=(6,),  # a singleton identifier's holder
            max_rounds=transform_horizon(spec),
        )
        assert report.clones_identical, report.summary()
        assert report.result.verdict.ok

    def test_dls_clones_stay_identical(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        report = run_clone_experiment(
            params,
            dls_factory(params, BINARY),
            NullAdversary(),
            proposals_by_ident={i: i % 2 for i in range(1, 7)},
            max_rounds=dls_horizon(params, 0),
        )
        assert report.clones_identical

    def test_clones_with_fair_byzantine(self):
        spec = EIGSpec(4, 1, BINARY)
        params = SystemParams(n=7, ell=4, t=1)
        report = run_clone_experiment(
            params,
            transform_factory(spec),
            InputFlipAdversary(transform_factory(spec), proposal=1),
            proposals_by_ident={1: 0, 2: 0, 3: 0, 4: 0},
            byzantine=(6,),
            max_rounds=transform_horizon(spec),
        )
        assert report.clones_identical
        assert report.result.verdict.agreed_value == 0  # validity intact

    def test_clones_under_clone_fair_chaos(self):
        spec = EIGSpec(4, 1, BINARY)
        params = SystemParams(n=8, ell=4, t=1)
        report = run_clone_experiment(
            params,
            transform_factory(spec),
            RandomByzantineAdversary(seed=4),
            proposals_by_ident={1: 1, 2: 0, 3: 1, 4: 0},
            byzantine=(7,),
            max_rounds=transform_horizon(spec),
        )
        assert report.clones_identical

    def test_clones_with_group_symmetric_drops(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        report = run_clone_experiment(
            params,
            dls_factory(params, BINARY),
            NullAdversary(),
            proposals_by_ident={i: i % 2 for i in range(1, 7)},
            drop_schedule=SilenceUntil(16),
            max_rounds=dls_horizon(params, 16),
        )
        assert report.clones_identical
        assert report.result.verdict.ok


class TestCloneFairWrapper:
    def test_wrapper_replicates_leader_messages_to_group(self):
        """Whatever the inner adversary sends to a group's first member
        is what every member receives."""
        from repro.core.identity import stacked_assignment
        from repro.sim.adversary import Adversary

        class Asymmetric(Adversary):
            def emissions(self, view):
                # Tries to send to only one member of each group.
                return {b: {0: ("x",)} for b in view.byzantine}

        params = SystemParams(n=5, ell=3, t=1)
        assignment = stacked_assignment(5, 3)  # id1: slots 0,1,2
        wrapped = CloneFairAdversary(Asymmetric())
        wrapped.setup(params, assignment, (4,), {})

        class FakeView:
            def __init__(self):
                self.byzantine = (4,)
                self.params = params
                self.assignment = assignment
                self.round_no = 0

        emissions = wrapped.emissions(FakeView())
        batch = emissions[4]
        # All three members of identifier 1's group got the message.
        assert batch[0] == batch[1] == batch[2] == ("x",)
