"""Unit and property tests for repro.core.identity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.identity import (
    IdentityAssignment,
    all_assignments,
    assignment_from_sizes,
    balanced_assignment,
    random_assignment,
    stacked_assignment,
)


class TestIdentityAssignmentValidation:
    def test_every_identifier_must_be_assigned(self):
        with pytest.raises(ConfigurationError):
            IdentityAssignment(3, (1, 1, 2))  # identifier 3 unassigned

    def test_identifiers_must_be_in_range(self):
        with pytest.raises(ConfigurationError):
            IdentityAssignment(2, (1, 2, 3))

    def test_needs_at_least_ell_processes(self):
        with pytest.raises(ConfigurationError):
            IdentityAssignment(3, (1, 2))

    def test_unknown_identifier_lookup_raises(self):
        a = IdentityAssignment(2, (1, 2, 2))
        with pytest.raises(ConfigurationError):
            a.group(3)


class TestGroups:
    def test_groups_partition_processes(self):
        a = IdentityAssignment(3, (1, 2, 3, 1, 2, 1))
        assert a.group(1) == (0, 3, 5)
        assert a.group(2) == (1, 4)
        assert a.group(3) == (2,)

    def test_sole_owner_and_homonym_ids(self):
        a = IdentityAssignment(3, (1, 2, 3, 1))
        assert a.sole_owner_ids() == (2, 3)
        assert a.homonym_ids() == (1,)

    def test_counts(self):
        a = IdentityAssignment(2, (1, 1, 2))
        assert a.counts() == {1: 2, 2: 1}

    def test_describe_contains_sizes(self):
        text = IdentityAssignment(2, (1, 1, 2)).describe()
        assert "1x2" in text and "2x1" in text


class TestGenerators:
    def test_balanced_spreads_evenly(self):
        a = balanced_assignment(7, 3)
        sizes = sorted(a.group_sizes().values())
        assert sizes == [2, 2, 3]

    def test_stacked_piles_on_one_identifier(self):
        a = stacked_assignment(8, 3, stacked_id=2)
        assert a.group_sizes() == {1: 1, 2: 6, 3: 1}

    def test_stacked_rejects_bad_id(self):
        with pytest.raises(ConfigurationError):
            stacked_assignment(5, 3, stacked_id=4)

    def test_from_sizes_round_trips(self):
        a = assignment_from_sizes({1: 2, 2: 1, 3: 3})
        assert a.group_sizes() == {1: 2, 2: 1, 3: 3}
        assert a.n == 6

    def test_from_sizes_rejects_zero_group(self):
        with pytest.raises(ConfigurationError):
            assignment_from_sizes({1: 0, 2: 2})

    def test_from_sizes_rejects_gap_in_ids(self):
        with pytest.raises(ConfigurationError):
            assignment_from_sizes({1: 1, 3: 1})

    def test_random_is_deterministic_per_seed(self):
        assert random_assignment(9, 4, seed=7).ids == random_assignment(9, 4, seed=7).ids

    def test_random_differs_across_seeds(self):
        results = {random_assignment(9, 4, seed=s).ids for s in range(8)}
        assert len(results) > 1

    def test_all_assignments_small_case(self):
        # 3 processes over 2 identifiers: surjections 2^3 - 2 = 6.
        assignments = list(all_assignments(3, 2))
        assert len(assignments) == 6
        assert len({a.ids for a in assignments}) == 6


@given(
    n=st.integers(min_value=1, max_value=24),
    ell=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=80)
def test_random_assignment_always_valid(n, ell, seed):
    """Property: every generated assignment covers all identifiers."""
    if ell > n:
        with pytest.raises(ConfigurationError):
            random_assignment(n, ell, seed)
        return
    a = random_assignment(n, ell, seed)
    assert a.n == n and a.ell == ell
    assert set(a.ids) == set(range(1, ell + 1))
    # Groups partition indices.
    seen = sorted(i for members in a.groups().values() for i in members)
    assert seen == list(range(n))


@given(
    n=st.integers(min_value=1, max_value=24),
    ell=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=80)
def test_balanced_group_sizes_differ_by_at_most_one(n, ell):
    if ell > n:
        return
    sizes = balanced_assignment(n, ell).group_sizes().values()
    assert max(sizes) - min(sizes) <= 1
