"""The reprolint rule suite: fixtures per rule, pins, self-check.

Every rule gets at least one known-bad and one known-clean snippet;
the two repo-level rules (RL004/RL005) additionally get pinned
regression scenarios against throwaway repository copies: editing a
frozen ``Reference*`` oracle, or changing a campaign result-dict key
without bumping ``CACHE_SCHEMA``, must each fail lint.  Finally the
repository itself must be lint-clean modulo committed suppressions.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import engine  # noqa: E402
from tools.reprolint import rules_repo  # noqa: E402
from tools.reprolint.cli import main as reprolint_main  # noqa: E402

SRC = "src/repro/module.py"


def codes(findings):
    return [f.rule for f in findings]


def lint(source, rel_path=SRC):
    return engine.lint_source(source, rel_path)


# ----------------------------------------------------------------------
# RL001: no-raw-hash-seeding
# ----------------------------------------------------------------------
class TestRL001:
    def test_hash_into_random_is_flagged(self):
        bad = "import random\nrng = random.Random(hash(('a', 1)))\n"
        assert "RL001" in codes(lint(bad))

    def test_hash_assigned_to_seed_name_is_flagged(self):
        bad = "seed = hash(('round', r, sender))\n"
        assert "RL001" in codes(lint(bad))

    def test_hash_into_seed_keyword_is_flagged(self):
        bad = "run(workload, seed=hash(key))\n"
        assert "RL001" in codes(lint(bad))

    def test_stable_seed_and_plain_hash_are_clean(self):
        clean = (
            "from repro.core.canonical import stable_seed\n"
            "seed = stable_seed(('round', 3))\n"
            "bucket = hash(payload)  # plain hashing, no seed path\n"
        )
        assert [c for c in codes(lint(clean)) if c == "RL001"] == []


# ----------------------------------------------------------------------
# RL002: no-wallclock-in-sim
# ----------------------------------------------------------------------
class TestRL002:
    BAD = "import time\nstamp = time.time()\n"

    def test_wallclock_under_src_repro_is_flagged(self):
        assert "RL002" in codes(lint(self.BAD))

    def test_from_import_alias_is_flagged(self):
        bad = "from time import perf_counter as clock\nt = clock()\n"
        assert "RL002" in codes(lint(bad))

    def test_datetime_now_is_flagged(self):
        bad = "import datetime\nstamp = datetime.datetime.now()\n"
        assert "RL002" in codes(lint(bad))

    def test_outside_src_repro_is_exempt(self):
        assert codes(lint(self.BAD, rel_path="benchmarks/test_bench.py")) == []
        assert codes(lint(self.BAD, rel_path="tests/test_x.py")) == []

    def test_tick_arithmetic_is_clean(self):
        clean = "tick = round_no * delta + offset\n"
        assert codes(lint(clean)) == []


# ----------------------------------------------------------------------
# RL003: no-unseeded-rng
# ----------------------------------------------------------------------
class TestRL003:
    def test_unseeded_random_is_flagged(self):
        bad = "import random\nrng = random.Random()\n"
        assert "RL003" in codes(lint(bad))

    def test_module_level_rng_is_flagged(self):
        bad = "import random\nvalue = random.random()\n"
        assert "RL003" in codes(lint(bad))

    def test_untraceable_seed_is_flagged(self):
        bad = "import random\nrng = random.Random(label)\n"
        assert "RL003" in codes(lint(bad))

    def test_stable_seed_and_int_literal_are_clean(self):
        clean = (
            "import random\n"
            "from repro.core.canonical import stable_seed\n"
            "a = random.Random(stable_seed((seed, r, s, q)))\n"
            "b = random.Random(0)\n"
        )
        assert codes(lint(clean)) == []

    def test_tests_are_out_of_scope(self):
        bad = "import random\nrng = random.Random()\n"
        assert codes(lint(bad, rel_path="tests/test_x.py")) == []


# ----------------------------------------------------------------------
# RL006: canonical-iteration-order
# ----------------------------------------------------------------------
class TestRL006:
    def test_set_intersection_loop_is_flagged(self):
        bad = "for ident in set(a) & set(b):\n    emit(ident)\n"
        assert "RL006" in codes(lint(bad))

    def test_tuple_of_set_is_flagged(self):
        bad = "order = tuple(set(names))\n"
        assert "RL006" in codes(lint(bad))

    def test_join_over_set_comprehension_is_flagged(self):
        bad = "text = ','.join({f(x) for x in xs})\n"
        assert "RL006" in codes(lint(bad))

    def test_sorted_wrapping_is_clean(self):
        clean = (
            "for ident in sorted(set(a) & set(b)):\n    emit(ident)\n"
            "order = tuple(sorted(set(names)))\n"
        )
        assert codes(lint(clean)) == []

    def test_order_insensitive_sinks_are_clean(self):
        clean = (
            "total = sum(x for x in set(a) | set(b))\n"
            "names = sorted(n for n in set(a) - set(b))\n"
            "union = {f(x) for x in set(a) | set(b)}\n"
        )
        assert codes(lint(clean)) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_suppression_silences_the_rule(self):
        source = (
            "import random\n"
            "rng = random.Random()  # reprolint: disable=RL003 -- fixture\n"
        )
        assert codes(lint(source)) == []

    def test_standalone_comment_covers_next_code_line(self):
        source = (
            "import random\n"
            "# reprolint: disable=RL003 -- justified: pinned stream,\n"
            "# see the conformance grid.\n"
            "rng = random.Random()\n"
        )
        assert codes(lint(source)) == []

    def test_wrong_code_does_not_suppress(self):
        source = (
            "import random\n"
            "rng = random.Random()  # reprolint: disable=RL002\n"
        )
        assert "RL003" in codes(lint(source))

    def test_marker_inside_string_is_not_a_suppression(self):
        source = (
            "import random\n"
            "note = '# reprolint: disable=RL003'\n"
            "rng = random.Random()\n"
        )
        assert "RL003" in codes(lint(source))


# ----------------------------------------------------------------------
# RL004: frozen-oracle drift (pinned regression scenarios)
# ----------------------------------------------------------------------
ORACLE_FILES = [
    "src/repro/sim/delay.py",
    "src/repro/sim/network.py",
    "src/repro/adversaries/scenario.py",
    "src/repro/broadcast/reference.py",
]


@pytest.fixture
def oracle_copy(tmp_path):
    """A throwaway tree holding copies of the four pinned oracle files."""
    for rel in ORACLE_FILES:
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / rel, target)
    return tmp_path


class TestRL004:
    def test_pristine_copy_is_clean(self, oracle_copy):
        assert rules_repo.check_oracles(oracle_copy) == []

    def test_editing_a_reference_class_fails_lint(self, oracle_copy):
        path = oracle_copy / "src/repro/sim/network.py"
        source = path.read_text()
        marker = "The pre-fabric delivery loop"
        assert marker in source
        path.write_text(source.replace(marker, "An edited delivery loop"))
        findings = rules_repo.check_oracles(oracle_copy)
        assert codes(findings) == ["RL004"]
        assert "ReferenceRoundEngine" in findings[0].message

    def test_unrelated_edit_in_the_same_file_is_clean(self, oracle_copy):
        # The class digests pin the oracle *segment*, not the module:
        # appending code after the class must not trip the rule.
        path = oracle_copy / "src/repro/sim/network.py"
        path.write_text(path.read_text() + "\n\nUNRELATED = 1\n")
        assert rules_repo.check_oracles(oracle_copy) == []

    def test_editing_the_reference_module_fails_lint(self, oracle_copy):
        path = oracle_copy / "src/repro/broadcast/reference.py"
        path.write_text(path.read_text() + "\n# drift\n")
        findings = rules_repo.check_oracles(oracle_copy)
        assert codes(findings) == ["RL004"]
        assert "broadcast-reference-module" in findings[0].message

    def test_update_oracles_re_pins_deliberately(self, oracle_copy, tmp_path):
        path = oracle_copy / "src/repro/broadcast/reference.py"
        path.write_text(path.read_text() + "\n# drift\n")
        manifest = tmp_path / "oracle_digests.json"
        shutil.copyfile(rules_repo.ORACLE_DIGESTS, manifest)
        changed = rules_repo.update_oracles(oracle_copy, manifest)
        assert changed == ["broadcast-reference-module"]
        assert rules_repo.check_oracles(oracle_copy, manifest) == []

    def test_missing_oracle_fails_lint(self, oracle_copy):
        (oracle_copy / "src/repro/broadcast/reference.py").unlink()
        findings = rules_repo.check_oracles(oracle_copy)
        assert codes(findings) == ["RL004"]
        assert "not found" in findings[0].message

    def test_unparseable_oracle_file_is_drift_not_a_crash(self, oracle_copy):
        path = oracle_copy / "src/repro/sim/network.py"
        path.write_text(path.read_text() + "\ndef broken(:\n")
        findings = rules_repo.check_oracles(oracle_copy)
        assert codes(findings) == ["RL004"]
        assert "no longer parses" in findings[0].message


# ----------------------------------------------------------------------
# RL005: cache-schema fingerprint (pinned regression scenarios)
# ----------------------------------------------------------------------
SCHEMA_FILES = [
    "src/repro/experiments/campaign.py",
    "src/repro/atlas/evidence.py",
]


@pytest.fixture
def schema_copy(tmp_path):
    """A throwaway tree holding copies of the fingerprinted modules."""
    for rel in SCHEMA_FILES:
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / rel, target)
    return tmp_path


class TestRL005:
    def test_pristine_copy_is_clean(self, schema_copy):
        assert rules_repo.check_schema(schema_copy) == []

    def test_key_change_without_schema_bump_fails_lint(self, schema_copy):
        path = schema_copy / "src/repro/experiments/campaign.py"
        source = path.read_text()
        assert '"unit_id": unit.unit_id,' in source
        path.write_text(
            source.replace('"unit_id": unit.unit_id,', '"uid": unit.unit_id,')
        )
        findings = rules_repo.check_schema(schema_copy)
        assert codes(findings) == ["RL005"]
        assert "without a CACHE_SCHEMA bump" in findings[0].message

    def test_schema_bump_requires_deliberate_re_pin(self, schema_copy):
        path = schema_copy / "src/repro/experiments/campaign.py"
        source = path.read_text()
        assert 'CACHE_SCHEMA = "campaign/7"' in source
        path.write_text(
            source.replace(
                'CACHE_SCHEMA = "campaign/7"', 'CACHE_SCHEMA = "campaign/8"'
            )
        )
        findings = rules_repo.check_schema(schema_copy)
        assert codes(findings) == ["RL005"]
        assert "--update-schema" in findings[0].message

    def test_update_schema_re_pins(self, schema_copy, tmp_path):
        path = schema_copy / "src/repro/experiments/campaign.py"
        source = path.read_text()
        path.write_text(
            source
            .replace('"unit_id": unit.unit_id,', '"uid": unit.unit_id,')
            .replace(
                'CACHE_SCHEMA = "campaign/7"', 'CACHE_SCHEMA = "campaign/8"'
            )
        )
        pin = tmp_path / "schema_fingerprint.json"
        rules_repo.update_schema(schema_copy, pin)
        assert rules_repo.check_schema(schema_copy, pin) == []
        written = json.loads(pin.read_text())
        assert written["cache_schema"] == "campaign/8"
        shapes = written["result_shapes"]["campaign.execute_unit"]
        assert any("uid" in shape for shape in shapes)


# ----------------------------------------------------------------------
# The repository itself, and the CLI
# ----------------------------------------------------------------------
class TestRepositoryIsClean:
    def test_src_tests_benchmarks_tools_are_lint_clean(self):
        findings, files = engine.lint_paths(
            REPO_ROOT, ["src", "tests", "benchmarks", "tools"]
        )
        assert files > 100  # the walk actually covered the tree
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_every_rule_is_registered(self):
        registered = {rule.code for rule in engine.all_rules()}
        assert registered >= {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006"
        }


class TestCli:
    def test_list_rules_exits_zero(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL004", "RL006"):
            assert code in out

    def test_clean_repo_exits_zero_and_writes_report(self, tmp_path, capsys):
        report = tmp_path / "lint-report.json"
        status = reprolint_main(["src", "--report", str(report)])
        assert status == 0
        data = json.loads(report.read_text())
        assert data["clean"] is True
        assert data["files_checked"] > 50
        assert len(data["rules"]) >= 6

    def test_findings_exit_nonzero(self, tmp_path):
        # A bad file outside the repo tree, linted via --root.
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrng = random.Random()\n")
        status = reprolint_main(
            ["src", "--root", str(tmp_path)]
        )
        assert status == 1

    def test_module_entry_point_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "RL005" in proc.stdout
