"""Campaign engine: determinism, caching, sharding, harness equality.

The engine's contract is that scheduling is invisible: the same seed
produces the same canonical report whether units run inline, across a
worker pool of any size, or half from the disk cache.  These tests pin
that contract on a cheap four-cell battery (one solvable and one
unsolvable cell from two model families) so the whole file stays fast.
"""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import SystemParams, Synchrony
from repro.experiments.campaign import (
    CACHE_SCHEMA,
    CampaignCache,
    CampaignUnit,
    delay_cells,
    enumerate_delay_units,
    enumerate_soak_units,
    enumerate_units,
    execute_unit,
    execute_units,
    run_campaign,
    shard_units,
    table1_cells,
)
from repro.experiments.harness import (
    delay_slice_keys,
    evaluate_cell,
    run_delay_slice,
    solvable_slice_keys,
)

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS

#: A cheap battery: seconds, not minutes (no heavy psync-unrestricted cells).
CHEAP_CELLS = [
    ("sync solvable", SystemParams(n=5, ell=4, t=1)),
    ("sync unsolvable", SystemParams(n=5, ell=3, t=1)),
    ("restricted-numerate solvable",
     SystemParams(n=4, ell=2, t=1, synchrony=PSYNC,
                  numerate=True, restricted=True)),
    ("restricted-numerate unsolvable",
     SystemParams(n=4, ell=1, t=1, synchrony=PSYNC,
                  numerate=True, restricted=True)),
]


class TestUnitEnumeration:
    def test_solvable_cells_expand_to_their_slices(self):
        units = enumerate_units(CHEAP_CELLS, seed=0, quick=True)
        for label, params in CHEAP_CELLS:
            cell_units = [u for u in units if u.label == label]
            if label.endswith("unsolvable"):
                assert [u.kind for u in cell_units] == ["demonstration"]
            else:
                keys = solvable_slice_keys(params, seed=0, quick=True)
                assert [
                    (u.assignment_index, u.byzantine_index)
                    for u in cell_units
                ] == keys
                assert all(u.kind == "slice" for u in cell_units)

    def test_unit_ids_unique_and_content_addressed(self):
        units = enumerate_units(CHEAP_CELLS, quick=True)
        ids = [u.unit_id for u in units]
        assert len(set(ids)) == len(ids)
        # Same spec -> same id; different seed -> different id.
        rebuilt = enumerate_units(CHEAP_CELLS, quick=True)
        assert [u.unit_id for u in rebuilt] == ids
        reseeded = enumerate_units(CHEAP_CELLS, seed=1, quick=True)
        assert set(u.unit_id for u in reseeded).isdisjoint(ids)

    def test_unit_roundtrips_through_dict(self):
        for unit in enumerate_units(CHEAP_CELLS, quick=True):
            clone = CampaignUnit.from_dict(
                json.loads(json.dumps(unit.to_dict()))
            )
            assert clone == unit
            assert clone.unit_id == unit.unit_id
            assert clone.params() == unit.params()

    def test_duplicate_labels_rejected(self):
        cells = [CHEAP_CELLS[0], CHEAP_CELLS[0]]
        with pytest.raises(ConfigurationError):
            enumerate_units(cells)

    def test_default_battery_is_table1(self):
        units = enumerate_units(quick=True)
        assert {u.label for u in units} == {l for l, _ in table1_cells()}


class TestSharding:
    def test_shards_partition_the_grid(self):
        units = enumerate_units(CHEAP_CELLS, quick=True)
        shards = [shard_units(units, i, 3) for i in range(3)]
        all_ids = [u.unit_id for shard in shards for u in shard]
        assert sorted(all_ids) == sorted(u.unit_id for u in units)
        assert len(set(all_ids)) == len(all_ids)

    def test_bad_shard_rejected(self):
        units = enumerate_units(CHEAP_CELLS, quick=True)
        with pytest.raises(ConfigurationError):
            shard_units(units, 3, 3)
        with pytest.raises(ConfigurationError):
            shard_units(units, 0, 0)


#: The cheap delay battery: the restricted-numerate psync solvable cell
#: only (the n=7 DLS cell is the expensive one).
CHEAP_DELAY_CELLS = [
    ("restricted-numerate solvable",
     SystemParams(n=4, ell=2, t=1, synchrony=PSYNC,
                  numerate=True, restricted=True)),
]


class TestDelayUnits:
    def test_cache_schema_is_campaign_7(self):
        assert CACHE_SCHEMA == "campaign/7"

    def test_delay_cells_are_the_psync_solvable_cells(self):
        labels = {label for label, _ in delay_cells()}
        assert labels == {"psync solvable", "restricted-numerate solvable"}

    def test_delay_units_share_the_slice_grid(self):
        units = enumerate_delay_units(CHEAP_DELAY_CELLS, seed=0, quick=True)
        keys = delay_slice_keys(CHEAP_DELAY_CELLS[0][1], seed=0, quick=True)
        assert [(u.assignment_index, u.byzantine_index) for u in units] == keys
        assert all(u.kind == "delay" for u in units)

    def test_non_psync_cells_rejected(self):
        with pytest.raises(ConfigurationError):
            enumerate_delay_units(
                [("sync", SystemParams(n=5, ell=4, t=1))]
            )
        with pytest.raises(ConfigurationError):
            run_delay_slice(SystemParams(n=5, ell=4, t=1), (0, 0))

    def test_execute_unit_matches_direct_slice(self):
        unit = enumerate_delay_units(CHEAP_DELAY_CELLS, quick=True)[0]
        result = execute_unit(unit)
        direct = run_delay_slice(
            CHEAP_DELAY_CELLS[0][1],
            (unit.assignment_index, unit.byzantine_index),
            seed=unit.seed, quick=unit.quick,
        )
        assert result["kind"] == "delay"
        assert [(r["label"], r["ok"], r["detail"])
                for r in result["records"]] == \
               [(r.label, r.ok, r.detail) for r in direct]

    def test_delay_campaign_caches_and_resumes(self, tmp_path):
        cache = CampaignCache(tmp_path / "units")
        fresh = run_campaign(
            CHEAP_DELAY_CELLS, cache=cache, resume=True, unit_kind="delay",
        )
        assert fresh.cached == 0
        assert fresh.executed == len(fresh.unit_results)
        assert fresh.all_consistent
        resumed = run_campaign(
            CHEAP_DELAY_CELLS, cache=cache, resume=True, unit_kind="delay",
        )
        assert resumed.executed == 0
        assert resumed.cached == len(resumed.unit_results)
        assert fresh.canonical_dict() == resumed.canonical_dict()


class TestHarnessEquality:
    def test_campaign_records_match_sequential_harness(self):
        report = run_campaign(CHEAP_CELLS, workers=1)
        sequential = [evaluate_cell(p, quick=True) for _, p in CHEAP_CELLS]
        campaign = report.cell_results()
        assert len(campaign) == len(sequential)
        for seq, par in zip(sequential, campaign):
            assert par.params == seq.params
            assert par.algorithm == seq.algorithm
            assert par.demonstration == seq.demonstration
            assert [(r.label, r.ok, r.detail) for r in par.runs] == [
                (r.label, r.ok, r.detail) for r in seq.runs
            ]
        assert report.all_consistent


class TestDeterminism:
    def test_same_seed_same_report_for_any_worker_count(self):
        inline = run_campaign(CHEAP_CELLS, seed=3, workers=1)
        pooled = run_campaign(CHEAP_CELLS, seed=3, workers=2)
        assert inline.canonical_dict() == pooled.canonical_dict()
        assert inline.to_json(canonical=True) == pooled.to_json(
            canonical=True
        )

    def test_resume_from_cache_equals_fresh_run(self, tmp_path):
        cache = CampaignCache(tmp_path / "units")
        fresh = run_campaign(CHEAP_CELLS, cache=cache, resume=True)
        assert fresh.executed == len(fresh.unit_results)
        assert fresh.cached == 0
        resumed = run_campaign(CHEAP_CELLS, cache=cache, resume=True)
        assert resumed.executed == 0
        assert resumed.cached == len(resumed.unit_results)
        assert fresh.canonical_dict() == resumed.canonical_dict()

    def test_partial_cache_executes_only_the_delta(self, tmp_path):
        cache = CampaignCache(tmp_path / "units")
        units = enumerate_units(CHEAP_CELLS, quick=True)
        for unit in units[: len(units) // 2]:
            cache.store(unit, execute_unit(unit))
        report = run_campaign(CHEAP_CELLS, cache=cache, resume=True)
        assert report.cached == len(units) // 2
        assert report.executed == len(units) - len(units) // 2
        baseline = run_campaign(CHEAP_CELLS)
        assert report.canonical_dict() == baseline.canonical_dict()

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = CampaignCache(tmp_path)
        unit = enumerate_units(CHEAP_CELLS, quick=True)[0]
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path(unit).write_text("not json {")
        assert cache.load(unit) is None
        cache.path(unit).write_text(json.dumps({"unit_id": "wrong"}))
        assert cache.load(unit) is None


class TestReportEmitters:
    def test_json_report_shape(self):
        report = run_campaign(CHEAP_CELLS)
        data = json.loads(report.to_json())
        assert set(data) == {
            "campaign", "cells", "units", "summary", "execution",
        }
        assert data["summary"]["all_consistent"] is True
        assert data["summary"]["evaluated_cells"] == len(CHEAP_CELLS)
        assert {c["label"] for c in data["cells"]} == {
            l for l, _ in CHEAP_CELLS
        }
        canonical = json.loads(report.to_json(canonical=True))
        assert "execution" not in canonical
        assert all("elapsed_s" not in u for u in canonical["units"])

    def test_markdown_report_mentions_every_cell(self):
        report = run_campaign(CHEAP_CELLS)
        text = report.to_markdown()
        for label, _ in CHEAP_CELLS:
            assert label in text
        assert "cells consistent" in text
        assert "Impossibility demonstrations" in text

    def test_sharded_report_covers_only_its_cells(self):
        units = enumerate_units(CHEAP_CELLS, quick=True)
        report = run_campaign(CHEAP_CELLS, shard=(0, len(units)))
        assert len(report.unit_results) == 1
        assert len(report.cell_results()) == 1


class TestCacheStoreDurability:
    """Regression: `CampaignCache.store` under concurrency and crashes.

    Pre-fix, every writer of a unit shared one tmp path
    (``<unit_id>.tmp``): two concurrent stores interleaved write and
    rename, so the loser's ``replace`` raised ``FileNotFoundError`` on
    the vanished tmp -- and nothing was fsynced, so a crash right after
    the rename could persist a truncated entry.
    """

    def _unit(self):
        return enumerate_units(CHEAP_CELLS, quick=True)[0]

    def test_concurrent_stores_of_one_unit_never_collide(self, tmp_path):
        import threading

        cache = CampaignCache(tmp_path)
        unit = self._unit()
        payloads = [
            dict(execute_unit(unit), writer=i, pad="x" * 2000)
            for i in range(8)
        ]
        errors = []

        def hammer(payload):
            try:
                for _ in range(100):
                    cache.store(unit, payload)
            except OSError as exc:  # pragma: no cover - the pre-fix bug
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(p,)) for p in payloads
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Last writer wins with a *complete* file: whatever survived
        # must be one of the exact payloads, never an interleaving.
        final = json.loads(cache.path(unit).read_text())
        assert final in [
            json.loads(json.dumps(p, sort_keys=True)) for p in payloads
        ]
        # No orphaned tmp files left behind.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_store_fsyncs_before_publishing(self, tmp_path, monkeypatch):
        import os as os_module

        cache = CampaignCache(tmp_path)
        unit = self._unit()
        result = execute_unit(unit)
        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.experiments.campaign.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd)),
        )
        cache.store(unit, result)
        assert synced, "store() published a result without fsyncing it"
        assert cache.load(unit) == json.loads(
            json.dumps(result, sort_keys=True)
        )

    def test_failed_write_leaves_no_tmp_and_no_entry(self, tmp_path):
        cache = CampaignCache(tmp_path)
        unit = self._unit()
        with pytest.raises(TypeError):
            cache.store(unit, {"unserialisable": object()})
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.load(unit) is None


class TestPoolFailureContract:
    """Regression: one poisoned unit must abort the batch promptly.

    Pre-fix, a worker exception propagated only after the executor's
    ``__exit__`` joined *every* outstanding future, so one bad unit made
    the campaign hang until all unrelated heavy units finished -- and
    the exception said nothing about which unit raised it.
    """

    def _poison(self):
        # An unknown soak profile fails validation in milliseconds.
        u = enumerate_soak_units("quick", 0, 10, 10)[0]
        return CampaignUnit.from_dict(
            dict(u.to_dict(), variant="no-such-profile",
                 byzantine_index=10_000)
        )

    def _heavies(self, count):
        # Real soak windows, a few hundred ms each.
        return enumerate_soak_units("quick", 0, 150 * count, 150)

    def test_inline_failure_attaches_unit_note(self):
        poison = self._poison()
        finished = []
        with pytest.raises(ConfigurationError) as err:
            execute_units(
                [poison, *self._heavies(1)], 1,
                lambda unit, result: finished.append(unit.unit_id),
            )
        assert any(poison.describe() in n for n in err.value.__notes__)
        assert any(poison.unit_id in n for n in err.value.__notes__)
        assert finished == []

    def test_pool_failure_cancels_queued_units(self):
        poison = self._poison()
        heavies = self._heavies(4)
        finished = []
        with pytest.raises(ConfigurationError) as err:
            execute_units(
                [*heavies, poison], 2,
                lambda unit, result: finished.append(unit.unit_id),
            )
        assert any(poison.describe() in n for n in err.value.__notes__)
        # The poison unit is the heaviest, so it is scheduled in the
        # first wave and fails while at most one heavy unit is in
        # flight; the cancelled tail must never reach ``finish``.
        assert len(finished) < len(heavies)


class TestSoakUnits:
    def test_budget_expands_to_windows_with_a_short_tail(self):
        units = enumerate_soak_units("quick", 5, 250, 100)
        assert [(u.assignment_index, u.byzantine_index) for u in units] \
            == [(0, 100), (100, 100), (200, 50)]
        assert all(u.kind == "soak" for u in units)
        assert all(u.variant == "quick" for u in units)
        assert all(u.seed == 5 for u in units)
        assert len({u.unit_id for u in units}) == len(units)

    def test_profile_seed_and_schema_separate_cache_keys(self):
        base = enumerate_soak_units("quick", 0, 100, 100)[0]
        other_profile = enumerate_soak_units("standard", 0, 100, 100)[0]
        other_seed = enumerate_soak_units("quick", 1, 100, 100)[0]
        assert len({base.unit_id, other_profile.unit_id,
                    other_seed.unit_id}) == 3

    def test_describe_names_the_stream_slice(self):
        unit = enumerate_soak_units("quick", 0, 250, 100)[1]
        assert "quick" in unit.describe()
        assert "100" in unit.describe()

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            enumerate_soak_units("quick", 0, 100, 0)
        with pytest.raises(ConfigurationError):
            enumerate_soak_units("quick", 0, -1, 100)

    def test_execute_unit_runs_the_window(self):
        unit = enumerate_soak_units("quick", 0, 8, 8)[0]
        result = execute_unit(unit.to_dict())
        assert result["kind"] == "soak"
        assert result["algorithm"] == "soak-mixture"
        assert len(result["records"]) == 8
        assert all(r["ok"] for r in result["records"])
