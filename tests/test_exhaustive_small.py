"""Exhaustive small-system sweeps.

For tiny systems we can afford to check agreement over *every* identity
assignment and Byzantine placement, not just sampled ones.  These
sweeps are the closest a simulation gets to the paper's "regardless of
the way the n processes are assigned the ell identifiers" quantifier.

Marked ``exhaustive``: excluded from tier-1, run via ``make test-all``
(or ``pytest --exhaustive``).
"""

import pytest

from repro.adversaries.generic import EquivocatorAdversary
from repro.classic.eig import EIGSpec
from repro.core.identity import all_assignments
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.homonyms.transform import transform_factory, transform_horizon
from repro.psync.restricted import restricted_factory, restricted_horizon
from repro.sim.runner import run_agreement


@pytest.mark.exhaustive
class TestTransformExhaustive:
    """T(EIG) at n=5, ell=4, t=1: every assignment x every Byzantine slot."""

    def test_every_assignment_and_placement(self):
        spec = EIGSpec(4, 1, BINARY)
        params = SystemParams(n=5, ell=4, t=1)
        factory = transform_factory(spec)
        horizon = transform_horizon(spec)
        assignments = list(all_assignments(5, 4))
        assert len(assignments) == 240  # surjections 5 -> 4
        checked = 0
        for assignment in assignments:
            # One Byzantine placement per homonym structure: corrupt a
            # member of the (unique) shared identifier, worst case.
            shared = assignment.homonym_ids()[0]
            byz = (assignment.group(shared)[0],)
            proposals = {
                k: k % 2 for k in range(5) if k not in byz
            }
            result = run_agreement(
                params=params,
                assignment=assignment,
                factory=factory,
                proposals=proposals,
                byzantine=byz,
                adversary=EquivocatorAdversary(factory),
                max_rounds=horizon,
            )
            assert result.verdict.ok, (
                f"{assignment.describe()} byz={byz}: "
                f"{result.verdict.summary()}"
            )
            checked += 1
        assert checked == 240


@pytest.mark.exhaustive
class TestRestrictedExhaustive:
    """Figure 7 at n=4, ell=2, t=1: every assignment x every Byzantine slot
    x both unanimous input patterns."""

    def test_full_product(self):
        params = SystemParams(
            n=4, ell=2, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        factory = restricted_factory(params, BINARY)
        horizon = restricted_horizon(params, 0)
        assignments = list(all_assignments(4, 2))
        assert len(assignments) == 14  # surjections 4 -> 2
        for assignment in assignments:
            for byz_slot in range(4):
                for value in (0, 1):
                    proposals = {
                        k: value for k in range(4) if k != byz_slot
                    }
                    result = run_agreement(
                        params=params,
                        assignment=assignment,
                        factory=factory,
                        proposals=proposals,
                        byzantine=(byz_slot,),
                        adversary=EquivocatorAdversary(factory),
                        max_rounds=horizon,
                    )
                    assert result.verdict.ok, (
                        f"{assignment.describe()} byz={byz_slot} "
                        f"value={value}: {result.verdict.summary()}"
                    )
                    # Unanimity: validity pins the decision.
                    assert result.verdict.agreed_value == value
