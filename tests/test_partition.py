"""Tests for the Figure 4 partition attack (Proposition 4)."""

import pytest

from repro.adversaries.partition import (
    PartitionLayout,
    partition_attack_feasible,
    run_partition_attack,
)
from repro.core.errors import ConfigurationError
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import DLSHomonymProcess, dls_horizon


def make_factory(n, ell, t):
    params = SystemParams(
        n=n, ell=ell, t=t, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )

    def factory(ident, value):
        return DLSHomonymProcess(params, BINARY, ident, value, unchecked=True)

    return factory, params


class TestFeasibility:
    def test_feasible_exactly_in_the_gap(self):
        # ell > 3t and 2*ell <= n + 3t.
        assert partition_attack_feasible(9, 6, 1)
        assert partition_attack_feasible(12, 6, 1)
        assert not partition_attack_feasible(7, 6, 1)  # 12 > 10: solvable
        assert not partition_attack_feasible(9, 3, 1)  # ell = 3t: sync case
        assert not partition_attack_feasible(9, 6, 0)  # no faults

    def test_layout_rejects_infeasible(self):
        with pytest.raises(ConfigurationError):
            PartitionLayout(7, 6, 1)


class TestLayoutArithmetic:
    @pytest.mark.parametrize("n,ell,t", [(9, 6, 1), (12, 6, 1), (16, 11, 2),
                                         (20, 8, 2)])
    def test_alpha_beta_have_n_processes(self, n, ell, t):
        layout = PartitionLayout(n, ell, t)
        assert sum(layout.alpha_sizes().values()) == n
        assert sum(layout.beta_sizes().values()) == n

    def test_alpha_stacks(self):
        layout = PartitionLayout(9, 6, 1)
        sizes = layout.alpha_sizes()
        assert sizes[1] == 6 - 3 + 1  # ell - 3t + 1 on the core
        assert sizes[3] == 9 - 12 + 3 + 1  # n - 2*ell + 3t + 1 on W0

    def test_beta_stack_is_n_minus_ell_plus_one(self):
        layout = PartitionLayout(9, 6, 1)
        assert layout.beta_sizes()[1] == 9 - 6 + 1

    def test_wings_cover_all_non_core_identifiers(self):
        layout = PartitionLayout(16, 11, 2)
        covered = set(layout.w0_ids()) | set(layout.w1_ids())
        assert covered == set(range(layout.t + 1, layout.ell + 1))


class TestAttackExecution:
    @pytest.mark.parametrize("n,ell,t", [(9, 6, 1), (10, 6, 1)])
    def test_attack_splits_the_wings(self, n, ell, t):
        factory, params = make_factory(n, ell, t)
        outcome = run_partition_attack(
            n, ell, t, factory, reference_rounds=dls_horizon(params, 0)
        )
        assert outcome.attack_succeeded
        # The reference executions are clean; gamma carries the blame.
        assert outcome.alpha.verdict.ok
        assert outcome.beta.verdict.ok
        assert outcome.gamma.verdict.violated("agreement")

    def test_wings_decide_their_reference_values(self):
        factory, params = make_factory(9, 6, 1)
        outcome = run_partition_attack(
            9, 6, 1, factory, reference_rounds=dls_horizon(params, 0)
        )
        gamma = outcome.gamma
        for k in outcome.w0:
            assert gamma.processes[k].decision == 0
        for k in outcome.w1:
            assert gamma.processes[k].decision == 1

    def test_alpha_validity_forces_zero(self):
        factory, params = make_factory(9, 6, 1)
        outcome = run_partition_attack(
            9, 6, 1, factory, reference_rounds=dls_horizon(params, 0)
        )
        assert outcome.alpha.verdict.agreed_value == 0
        assert outcome.beta.verdict.agreed_value == 1

    def test_summary_is_readable(self):
        factory, params = make_factory(9, 6, 1)
        outcome = run_partition_attack(
            9, 6, 1, factory, reference_rounds=dls_horizon(params, 0)
        )
        text = outcome.summary()
        assert "alpha" in text and "gamma" in text
