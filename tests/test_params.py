"""Unit tests for repro.core.params."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import Synchrony, SystemParams, model_space


class TestSystemParamsValidation:
    def test_accepts_classical_configuration(self):
        p = SystemParams(n=4, ell=4, t=1)
        assert p.classical and not p.anonymous

    def test_accepts_anonymous_configuration(self):
        p = SystemParams(n=4, ell=1, t=1)
        assert p.anonymous and not p.classical

    def test_rejects_ell_greater_than_n(self):
        with pytest.raises(ConfigurationError):
            SystemParams(n=3, ell=4, t=0)

    def test_rejects_zero_ell(self):
        with pytest.raises(ConfigurationError):
            SystemParams(n=3, ell=0, t=0)

    def test_rejects_negative_t(self):
        with pytest.raises(ConfigurationError):
            SystemParams(n=3, ell=2, t=-1)

    def test_rejects_zero_n(self):
        with pytest.raises(ConfigurationError):
            SystemParams(n=0, ell=1, t=0)


class TestDerivedQuantities:
    def test_psl_bound(self):
        assert SystemParams(n=4, ell=4, t=1).meets_psl_bound
        assert not SystemParams(n=3, ell=3, t=1).meets_psl_bound

    def test_identifier_range_matches_paper_numbering(self):
        p = SystemParams(n=5, ell=3, t=1)
        assert list(p.identifiers) == [1, 2, 3]

    def test_id_quorum_is_ell_minus_t(self):
        assert SystemParams(n=7, ell=6, t=1).id_quorum == 5

    def test_process_quorum_is_n_minus_t(self):
        assert SystemParams(n=7, ell=6, t=1).process_quorum == 6

    def test_min_sole_owner_ids(self):
        # n=7, ell=6: at most one identifier is shared, so at least
        # 2*6 - 7 = 5 identifiers are sole-owner.
        assert SystemParams(n=7, ell=6, t=1).min_sole_owner_ids == 5
        # Fully collapsed case: no guarantee.
        assert SystemParams(n=10, ell=2, t=1).min_sole_owner_ids == 0

    def test_with_model_replaces_flags(self):
        p = SystemParams(n=4, ell=4, t=1)
        q = p.with_model(
            synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True,
            restricted=True,
        )
        assert q.synchrony is Synchrony.PARTIALLY_SYNCHRONOUS
        assert q.numerate and q.restricted
        assert (q.n, q.ell, q.t) == (p.n, p.ell, p.t)
        # Original untouched.
        assert p.synchrony is Synchrony.SYNCHRONOUS

    def test_describe_mentions_all_flags(self):
        text = SystemParams(
            n=4, ell=2, t=1, numerate=True, restricted=True
        ).describe()
        assert "numerate" in text and "restricted" in text
        assert "n=4" in text and "ell=2" in text


class TestModelSpace:
    def test_has_eight_combinations(self):
        assert len(list(model_space())) == 8

    def test_covers_all_combinations_uniquely(self):
        combos = set(model_space())
        assert len(combos) == 8
        for synchrony, numerate, restricted in combos:
            assert isinstance(synchrony, Synchrony)
            assert isinstance(numerate, bool)
            assert isinstance(restricted, bool)

    def test_synchrony_short_names(self):
        assert Synchrony.SYNCHRONOUS.short == "sync"
        assert Synchrony.PARTIALLY_SYNCHRONOUS.short == "psync"
