"""The bounded adversary-strategy explorer (:mod:`repro.explore`).

Covers, fast enough for tier-1:

* engine checkpoint/restore (the DFS branching primitive);
* :func:`canonical_state_key` digests (the transposition/symmetry key);
* violation discovery at both just-past-the-bound scopes -- strategies
  *no handcrafted adversary in the attack library finds* -- plus the
  replay of each witness through the ordinary execution pipeline;
* a pinned explorer-found strategy replayed as a plain scripted
  adversary through :func:`run_agreement` (the regression the ISSUE
  asks for: the violating trace survives as an ordinary test);
* the campaign integration of ``"explore"`` units.

The full tightness matrix (both sides of both bounds, exhaustive
certificates included) is marked ``exhaustive`` and runs in
``make test-all``.
"""

from __future__ import annotations

import copy

import pytest

from repro.analysis.bounds import solvable, tightness_pairs
from repro.core.canonical import canonical_state_key
from repro.core.errors import ConfigurationError
from repro.core.identity import IdentityAssignment, balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.classic.eig import EIGSpec
from repro.experiments.campaign import (
    CampaignUnit,
    enumerate_explore_units,
    execute_unit,
    run_campaign,
)
from repro.explore import (
    StrategyScript,
    StrategyTreeAdversary,
    default_scenario,
    explore,
    explore_battery,
    explore_slice_keys,
    replay_witness,
)
from repro.homonyms.transform import transform_factory
from repro.psync.dls_homonyms import DLSHomonymProcess
from repro.sim.network import RoundEngine
from repro.sim.process import EchoProcess
from repro.sim.runner import run_agreement

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS


# ----------------------------------------------------------------------
# Engine checkpoint / restore
# ----------------------------------------------------------------------
class TestEngineCheckpoint:
    def _engine(self):
        params = SystemParams(n=3, ell=3, t=0)
        assignment = balanced_assignment(3, 3)
        processes = [EchoProcess(i + 1) for i in range(3)]
        return RoundEngine(params, assignment, processes)

    def test_restore_rewinds_and_rebranches(self):
        engine = self._engine()
        engine.step()
        checkpoint = engine.checkpoint()
        engine.step()
        engine.step()
        assert engine.round_no == 3
        engine.restore(checkpoint)
        assert engine.round_no == 1
        assert len(engine.trace) == 1
        assert len(engine.deliveries) == 1
        # The continuation after restore matches a straight run.
        engine.step()
        assert sorted(engine.processes[0].received) == [0, 1]

    def test_checkpoint_is_reusable_and_isolated(self):
        engine = self._engine()
        checkpoint = engine.checkpoint()
        for _ in range(2):  # two divergent branches off one snapshot
            engine.restore(checkpoint)
            engine.step()
            assert engine.round_no == 1
        # Branch mutations never leak into the snapshot's processes.
        assert checkpoint.processes[0].received == {}

    def test_split_phase_equals_step(self):
        one, two = self._engine(), self._engine()
        record_a = one.step()
        record_b = two.finish_round(two.compose_round())
        assert record_a == record_b


# ----------------------------------------------------------------------
# Canonical state digests
# ----------------------------------------------------------------------
class TestCanonicalStateKey:
    def test_equal_across_deepcopy(self):
        spec = EIGSpec(4, 1, BINARY)
        proc = transform_factory(spec)(1, 0)
        assert canonical_state_key(proc) == canonical_state_key(
            copy.deepcopy(proc)
        )

    def test_separates_distinct_states(self):
        spec = EIGSpec(4, 1, BINARY)
        factory = transform_factory(spec)
        assert canonical_state_key(factory(1, 0)) != canonical_state_key(
            factory(1, 1)
        )

    def test_mutable_protocol_state_digests_equal(self):
        params = SystemParams(n=4, ell=4, t=1, synchrony=PSYNC)
        a = DLSHomonymProcess(params, BINARY, 2, 1)
        b = copy.deepcopy(a)
        a.locks[0] = 3
        assert canonical_state_key(a) != canonical_state_key(b)
        b.locks[0] = 3
        assert canonical_state_key(a) == canonical_state_key(b)

    def test_cycles_degrade_instead_of_recursing(self):
        loop = []
        loop.append(loop)
        assert "cycle" in canonical_state_key(loop)


# ----------------------------------------------------------------------
# Violation discovery at the frontier (fast side)
# ----------------------------------------------------------------------
class TestFrontierViolations:
    def test_sync_n3_finds_agreement_violation(self):
        # n = ell = 3t: Theorem 3's bound is violated; the explorer must
        # find a strategy the handcrafted attack suite misses (the
        # equivocator leaves this configuration agreeing -- see the
        # exhaustive matrix for the certificate side).
        scenario = default_scenario(SystemParams(n=3, ell=3, t=1))
        certificate = explore(scenario)
        assert certificate.found_violation
        assert certificate.violation.startswith("agreement")
        assert certificate.consistent_with(False)
        assert not certificate.consistent_with(True)
        # The witness replays through the ordinary pipeline and pins
        # the same failing verdict.
        result = replay_witness(scenario, certificate.witness)
        assert not result.verdict.ok
        assert result.verdict.violated("agreement")

    def test_psync_n3_finds_partition_violation(self):
        # n = ell = 3t realises ell = (n + 3t) / 2, the partially
        # synchronous boundary (Theorem 13).  The witness is a live
        # re-derivation of the Figure 4 shape: one-sided ghost faces
        # plus a network cut.
        scenario = default_scenario(
            SystemParams(n=3, ell=3, t=1, synchrony=PSYNC)
        )
        certificate = explore(scenario)
        assert certificate.found_violation
        assert certificate.violation.startswith("agreement")
        assert certificate.witness.cut is not None
        result = replay_witness(scenario, certificate.witness)
        assert not result.verdict.ok
        assert result.verdict.violated("agreement")

    def test_witness_script_round_trips_to_json(self):
        scenario = default_scenario(SystemParams(n=3, ell=3, t=1))
        certificate = explore(scenario)
        data = certificate.to_dict()
        assert data["outcome"] == "violation"
        assert data["witness"]["emissions"]
        assert data["stats"]["nodes_expanded"] > 0


# ----------------------------------------------------------------------
# Replay regression: a pinned explorer-found strategy
# ----------------------------------------------------------------------
class TestPinnedWitnessReplay:
    #: The strategy the explorer discovered at n = ell = 3, t = 1
    #: (synchronous T(EIG), inputs 0/1, Byzantine slot 2).  Rounds 2
    #: and 5 equivocate inside the simulated EIG; round 7 feeds each
    #: victim a decide face matching its poisoned resolution.  Pinned
    #: literally so the violating trace survives as a regression test
    #: against the plain engine, independent of the explorer.
    SCRIPT = StrategyScript(emissions={
        2: {2: {0: (("T-run", 0, ("eig", 1, (((), 1),))),),
                1: (("T-run", 0, ("eig", 1, (((), 1),))),)}},
        5: {2: {0: (("T-run", 1, ("eig", 2, (((1,), 0), ((2,), 1)))),),
                1: (("T-run", 1, ("eig", 2, (((1,), 0), ((3,), 1)))),)}},
        7: {2: {0: (("T-decide", 2, 1),),
                1: (("T-decide", 2, 0),)}},
    })

    def test_pinned_strategy_breaks_agreement(self):
        spec = EIGSpec(3, 1, BINARY, unchecked=True)
        result = run_agreement(
            params=SystemParams(n=3, ell=3, t=1),
            assignment=IdentityAssignment(3, (1, 2, 3)),
            factory=transform_factory(spec, unchecked=True),
            proposals={0: 0, 1: 1},
            byzantine=(2,),
            adversary=StrategyTreeAdversary(self.SCRIPT),
            max_rounds=12,
            require_termination=False,
        )
        assert result.verdict.violated("agreement")
        assert result.verdict.decisions == {0: 1, 1: 0}

    def test_pinned_strategy_is_model_legal(self):
        # The same script passes normalize_emissions under the
        # restricted model too: one message per recipient per round.
        for per_slot in self.SCRIPT.emissions.values():
            for per_recipient in per_slot.values():
                assert all(
                    len(batch) == 1 for batch in per_recipient.values()
                )


# ----------------------------------------------------------------------
# Scenario construction and guard rails
# ----------------------------------------------------------------------
class TestScenarioConstruction:
    def test_default_modes_follow_synchrony(self):
        sync = default_scenario(SystemParams(n=3, ell=3, t=1))
        assert not sync.persistent_faces
        assert sync.cuts == (None,)
        psync = default_scenario(
            SystemParams(n=3, ell=3, t=1, synchrony=PSYNC)
        )
        assert psync.persistent_faces
        assert None in psync.cuts
        assert any(c is not None for c in psync.cuts)
        # Partition ghosts cover each side of each cut.
        assert any(p.visible is not None for p in psync.ghost_plans)

    def test_shallow_depth_disarms_termination_check(self):
        shallow = default_scenario(SystemParams(n=3, ell=3, t=1), depth=3)
        assert not shallow.require_termination
        deep = default_scenario(SystemParams(n=3, ell=3, t=1))
        assert deep.require_termination

    def test_branching_cap_raises(self):
        scenario = default_scenario(SystemParams(n=4, ell=4, t=1), depth=6)
        scenario.max_children = 8  # far below the real branching factor
        with pytest.raises(ConfigurationError):
            explore(scenario)

    def test_scope_guard_rejects_large_psync(self):
        with pytest.raises(ConfigurationError):
            default_scenario(
                SystemParams(n=9, ell=8, t=1, synchrony=PSYNC)
            )

    def test_tightness_pairs_sit_on_the_boundary(self):
        for pair in tightness_pairs():
            assert not solvable(pair.outside)
            assert solvable(pair.inside)
        psync_pair = tightness_pairs()[1]
        p = psync_pair.outside
        assert 2 * p.ell == p.n + 3 * p.t  # exactly ell = (n + 3t) / 2

    def test_shallow_certificate_counts_pruning(self):
        # A depth-limited sweep is still exhaustive for its depth and
        # must report the raw-tree comparison its pruning achieved.
        scenario = default_scenario(SystemParams(n=3, ell=3, t=1), depth=4)
        scenario.proposals = {0: 0, 1: 0}  # unanimity: no violation here
        certificate = explore(scenario)
        if certificate.found_violation:  # validity break would be fine too
            pytest.skip("found a violation even at depth 4")
        stats = certificate.stats
        assert stats.raw_tree_size >= stats.nodes_expanded
        assert stats.transposition_hits > 0


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------
class TestExploreCampaign:
    def test_unit_grid_shards_the_frontier(self):
        units = enumerate_explore_units(seed=0, quick=True)
        assert all(u.kind == "explore" for u in units)
        labels = {u.label for u in units}
        assert len(labels) == len(explore_battery())
        # One unit per (assignment, placement) pair of each cell.
        for label, params in explore_battery():
            expected = len(explore_slice_keys(params, quick=True))
            assert sum(1 for u in units if u.label == label) == expected

    def test_unit_ids_distinguish_kind_and_slice(self):
        params = SystemParams(n=3, ell=3, t=1, synchrony=PSYNC)
        a = CampaignUnit.for_cell("x", params, "explore",
                                  assignment_index=0, byzantine_index=0)
        b = CampaignUnit.for_cell("x", params, "explore",
                                  assignment_index=0, byzantine_index=1)
        c = CampaignUnit.for_cell("x", params, "demonstration")
        assert len({a.unit_id, b.unit_id, c.unit_id}) == 3

    def test_execute_unit_runs_explore_kind(self):
        params = SystemParams(n=3, ell=3, t=1, synchrony=PSYNC)
        unit = CampaignUnit.for_cell(
            "explore psync violation", params, "explore",
            assignment_index=0, byzantine_index=0, quick=True,
        )
        result = execute_unit(unit.to_dict())
        assert result["kind"] == "explore"
        assert result["algorithm"] == "fig5-dls"
        assert result["demonstration"].startswith("explorer witness")
        assert result["demonstration_kind"] == "explorer"
        assert all(r["ok"] for r in result["records"])

    def test_campaign_folds_explore_cells(self):
        cells = [(
            "explore psync violation",
            SystemParams(n=3, ell=3, t=1, synchrony=PSYNC),
        )]
        report = run_campaign(cells=cells, unit_kind="explore", quick=True)
        assert report.all_consistent
        (cell,) = report.cell_results()
        assert not cell.predicted_solvable
        assert cell.demonstration
        assert cell.demonstration_kind == "explorer"
        assert cell.demonstration_checked


# ----------------------------------------------------------------------
# The tightness matrix (exhaustive tier)
# ----------------------------------------------------------------------
@pytest.mark.exhaustive
class TestTightnessMatrix:
    """Both sides of both bounds, machine-checked at small scope."""

    def test_sync_pair(self):
        pair = tightness_pairs()[0]
        outside = explore(default_scenario(pair.outside))
        assert outside.consistent_with(False), outside.summary()
        inside = explore(default_scenario(pair.inside))
        assert inside.consistent_with(True), inside.summary()
        # The acceptance bar: transposition/symmetry pruning must beat
        # raw branching by at least 10x at n = 4 (it beats it by many
        # orders of magnitude).
        assert inside.stats.pruning_factor >= 10
        assert inside.stats.raw_tree_size > 10 ** 9

    def test_psync_pair(self):
        pair = tightness_pairs()[1]
        outside = explore(default_scenario(pair.outside))
        assert outside.consistent_with(False), outside.summary()
        assert outside.witness.cut is not None
        inside = explore(default_scenario(pair.inside))
        assert inside.consistent_with(True), inside.summary()

    def test_sync_certificate_covers_unanimous_inputs(self):
        # Validity-side certificate: unanimity must survive every
        # strategy in the family just inside the bound.
        pair = tightness_pairs()[0]
        scenario = default_scenario(
            pair.inside,
            proposals={k: 0 for k in range(pair.inside.n - 1)},
        )
        certificate = explore(scenario)
        assert certificate.consistent_with(True), certificate.summary()
