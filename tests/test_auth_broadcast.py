"""Tests for the Proposition 6 authenticated broadcast primitive.

Unit tests drive the layer directly; property tests run it through the
kernel via :func:`repro.broadcast.runner.run_authenticated_broadcast`
and check Correctness, Unforgeability and Relay under drop schedules
and Byzantine echo forgery.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.authenticated import (
    Accept,
    AuthenticatedBroadcast,
    parse_broadcast_items,
)
from repro.broadcast.runner import run_authenticated_broadcast
from repro.core.errors import BoundViolation
from repro.sim.adversary import Adversary
from repro.sim.partial import SilenceUntil


class TestLayerUnit:
    def test_bound_enforced(self):
        with pytest.raises(BoundViolation):
            AuthenticatedBroadcast(3, 1, ident=1)

    def test_init_rides_first_round_of_superround(self):
        ab = AuthenticatedBroadcast(4, 1, ident=1)
        ab.broadcast("m", superround=2)
        inits, _ = ab.outgoing(round_no=3)
        assert inits == ()  # not yet: superround 2 starts at round 4
        inits, _ = ab.outgoing(round_no=4)
        assert inits == (("init", "m", 2),)
        inits, _ = ab.outgoing(round_no=5)
        assert inits == ()  # consumed

    def test_init_outside_first_round_is_ignored(self):
        ab = AuthenticatedBroadcast(4, 1, ident=1)
        ab.note_init(sender_id=2, message="m", superround=2, round_no=5)
        _, echoes = ab.outgoing(round_no=6)
        assert echoes == ()

    def test_receiving_init_starts_echoing_forever(self):
        ab = AuthenticatedBroadcast(4, 1, ident=1)
        ab.note_init(sender_id=2, message="m", superround=0, round_no=0)
        for r in (1, 2, 7):
            _, echoes = ab.outgoing(round_no=r)
            assert ("echo", "m", 0, 2) in echoes

    def test_echo_quorum_triggers_accept_once(self):
        ab = AuthenticatedBroadcast(4, 1, ident=1)
        # ell - t = 3 distinct identifiers echoing triggers Accept.
        ab.note_echo(2, "m", 0, 3, round_no=1)
        ab.note_echo(3, "m", 0, 3, round_no=1)
        assert ab.drain_accepts() == []
        ab.note_echo(4, "m", 0, 3, round_no=1)
        accepts = ab.drain_accepts()
        assert accepts == [Accept("m", 3, 0)]
        # Re-crossing the threshold does not re-accept.
        ab.note_echo(1, "m", 0, 3, round_no=2)
        assert ab.drain_accepts() == []
        assert ab.has_accepted("m", 3)
        assert ab.accepted_superround("m", 3) == 0

    def test_echo_relay_joining_threshold(self):
        # ell - 2t = 2 identifiers make the process join the echoers.
        ab = AuthenticatedBroadcast(4, 1, ident=1)
        ab.note_echo(2, "m", 0, 3, round_no=1)
        _, echoes = ab.outgoing(round_no=2)
        assert echoes == ()
        ab.note_echo(4, "m", 0, 3, round_no=2)
        _, echoes = ab.outgoing(round_no=3)
        assert ("echo", "m", 0, 3) in echoes

    def test_parse_broadcast_items_drops_garbage(self):
        inits, echoes = parse_broadcast_items(
            [("init", "m", 4), ("echo", "m", 4, 2), ("init", "x"),
             ("echo", "m", "bad", 2), "noise", (), ("other", 1)]
        )
        assert inits == [("m", 4)]
        assert echoes == [("m", 4, 2)]


def run_hosts(n, ell, t, byz=(), adversary=None, drop_schedule=None,
              rounds=10, broadcast_sr=0, values=None):
    return run_authenticated_broadcast(
        n, ell, t, byzantine=byz, adversary=adversary,
        drop_schedule=drop_schedule, rounds=rounds,
        broadcast_superround=broadcast_sr, values=values,
    ).processes


class TestCorrectnessProperty:
    def test_broadcast_after_gst_accepted_same_superround(self):
        procs = run_hosts(4, 4, 1, rounds=2)
        for p in procs:
            accepted = {(a.message, a.ident) for a in p.accepts}
            assert {(("val", k), k + 1) for k in range(4)} <= accepted
            assert all(a.superround == 0 for a in p.accepts)

    def test_homonym_group_broadcast_accepted(self):
        # n=5, ell=4: identifier 1 has two holders broadcasting the
        # same value; everyone must accept it under identifier 1.
        procs = run_hosts(5, 4, 1, values={k: 7 for k in range(5)}, rounds=2)
        for p in procs:
            assert any(a.ident == 1 and a.message == ("val", 7)
                       for a in p.accepts)


class TestUnforgeabilityProperty:
    def test_never_broadcast_never_accepted(self):
        class EchoForger(Adversary):
            """Byzantine floods echoes for a phantom broadcast of
            identifier 1 (whose holders are all correct and silent)."""

            def emissions(self, view):
                echoes = tuple(
                    ("echo", ("val", "phantom"), 0, 1),
                )
                return {
                    b: {q: (("ab", (), echoes),)
                        for q in range(view.params.n)}
                    for b in view.byzantine
                }

        procs = run_hosts(4, 4, 1, byz=(3,), adversary=EchoForger(),
                          values={}, rounds=8)
        for p in procs:
            if p is None:
                continue
            assert not any(
                a.message == ("val", "phantom") and a.ident == 1
                for a in p.accepts
            )


class TestRelayProperty:
    def test_broadcast_after_stabilisation_is_accepted(self):
        # Chaos before round 4, broadcast in superround 3 (round 6,
        # safely past stabilisation): the Correctness property applies
        # and everyone accepts during superround 3.
        procs = run_hosts(
            4, 4, 1, drop_schedule=SilenceUntil(4),
            values={0: 9}, rounds=12, broadcast_sr=3,
        )
        for p in procs:
            mine = [a for a in p.accepts
                    if a.message == ("val", 9) and a.ident == 1]
            assert mine and mine[0].superround == 3

    def test_pre_gst_broadcast_with_lost_init_may_die(self):
        # The flip side: an init nobody (but the sender) received is
        # never accepted -- the primitive promises nothing about
        # broadcasts before stabilisation.
        procs = run_hosts(
            4, 4, 1, drop_schedule=SilenceUntil(4),
            values={0: 9}, rounds=12, broadcast_sr=0,
        )
        for p in procs:
            if p.identifier != 1:
                assert not any(a.message == ("val", 9) for a in p.accepts)

    def test_staggered_accept_relays_within_one_superround(self):
        """One process accepts in superround 0 (it alone hears the full
        echo quorum); everyone else must accept by superround
        max(0 + 1, T) = 1 -- the Relay property."""
        from repro.sim.partial import ExplicitDrops

        drops = {(0, 0, 3)}  # slot 3 misses the init
        # Round 1: all echoes reach slot 0 only (self-deliveries aside).
        for sender in (0, 1, 2):
            for recipient in (1, 2, 3):
                if sender != recipient:
                    drops.add((1, sender, recipient))
        procs = run_hosts(
            4, 4, 1, drop_schedule=ExplicitDrops(drops),
            values={0: 3}, rounds=6,
        )
        firsts = {}
        for p in procs:
            mine = [a.superround for a in p.accepts
                    if a.message == ("val", 3) and a.ident == 1]
            assert mine, "every correct process must accept eventually"
            firsts[p.identifier] = min(mine)
        assert firsts[1] == 0  # the early acceptor
        assert max(firsts.values()) <= 1  # relay bound


@given(gst=st.integers(0, 8), seed=st.integers(0, 20))
@settings(max_examples=20, deadline=None)
def test_correctness_under_random_pre_gst_drops(gst, seed):
    """Property: a broadcast performed after stabilisation is accepted by
    every correct process regardless of earlier chaos; and if anyone
    accepted an earlier broadcast, everyone does within a superround of
    stabilisation (relay)."""
    from repro.sim.partial import RandomDrops

    broadcast_sr = gst  # first round 2*gst >= gst: safely post-GST
    procs = run_hosts(
        4, 4, 1,
        drop_schedule=RandomDrops(gst=gst, p=0.6, seed=seed),
        values={1: 5}, rounds=2 * gst + 10, broadcast_sr=broadcast_sr,
    )
    for p in procs:
        mine = [a for a in p.accepts
                if a.message == ("val", 5) and a.ident == 2]
        assert mine
        assert min(a.superround for a in mine) == broadcast_sr
