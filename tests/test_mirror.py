"""Tests for the Lemma 17 mirror adversary and the valency-chain scan."""

import pytest

from repro.adversaries.mirror import (
    mirror_chain_scan,
    run_mirror_pair,
)
from repro.core.errors import ConfigurationError
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.restricted import restricted_factory, restricted_horizon


def make_params(n=4, ell=1, t=1):
    return SystemParams(
        n=n, ell=ell, t=t,
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        numerate=True, restricted=True,
    )


def make_factory(params):
    return restricted_factory(params, BINARY, unchecked=True)


class TestLemma17Indistinguishability:
    @pytest.mark.parametrize("position", [0, 1, 2])
    def test_non_flipped_processes_cannot_distinguish(self, position):
        """The heart of Lemma 17: for adjacent configurations, every
        correct process other than the flipped one receives identical
        message multisets and must decide identically."""
        params = make_params()
        report = run_mirror_pair(
            params, make_factory(params), position,
            max_rounds=restricted_horizon(params, 0),
        )
        assert report.indistinguishable, report.summary()

    def test_anonymous_system_two_faults(self):
        params = make_params(n=7, ell=2, t=2)
        report = run_mirror_pair(
            params, make_factory(params), 0,
            max_rounds=restricted_horizon(params, 0),
        )
        assert report.indistinguishable


class TestChainScan:
    def test_scan_produces_impossibility_evidence_at_ell_le_t(self):
        """Proposition 16's premise ell <= t: the scan must surface
        either an outright violation or a Lemma 21 multivalence witness."""
        params = make_params(n=4, ell=1, t=1)
        outcome = mirror_chain_scan(
            params, make_factory(params),
            max_rounds=restricted_horizon(params, 0),
        )
        assert outcome.impossibility_evidence, outcome.summary()

    def test_endpoint_configurations_respect_validity(self):
        """All-0 and all-1 configurations must decide 0 and 1 -- the
        anchors of the valency argument."""
        params = make_params(n=4, ell=1, t=1)
        horizon = restricted_horizon(params, 0)
        first = run_mirror_pair(params, make_factory(params), 0, horizon)
        last = run_mirror_pair(
            params, make_factory(params), params.n - params.ell - 1, horizon
        )
        assert set(first.run_low.verdict.decisions.values()) == {0}
        assert set(last.run_high.verdict.decisions.values()) == {1}

    def test_setup_rejects_ell_above_t(self):
        params = make_params(n=4, ell=2, t=1)
        with pytest.raises(ConfigurationError):
            mirror_chain_scan(params, make_factory(params), max_rounds=10)

    def test_scan_summary_readable(self):
        params = make_params(n=4, ell=1, t=1)
        outcome = mirror_chain_scan(
            params, make_factory(params),
            max_rounds=restricted_horizon(params, 0),
        )
        assert "mirror chain scan" in outcome.summary()
