"""Tests for the Figure 5 partially synchronous homonym algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.generic import (
    CrashAdversary,
    DuplicatorAdversary,
    EquivocatorAdversary,
    InputFlipAdversary,
    RandomByzantineAdversary,
)
from repro.core.errors import BoundViolation
from repro.core.identity import balanced_assignment, random_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import (
    DLSHomonymProcess,
    check_dls_bound,
    dls_factory,
    dls_horizon,
    leader_of_phase,
)
from repro.sim.partial import RandomDrops, SilenceUntil
from repro.sim.runner import run_agreement


def make_params(n=7, ell=6, t=1):
    return SystemParams(
        n=n, ell=ell, t=t, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )


def run_dls(params, proposals, byz=(), adversary=None, drop_schedule=None,
            assignment=None, gst=0):
    if assignment is None:
        assignment = balanced_assignment(params.n, params.ell)
    return run_agreement(
        params=params,
        assignment=assignment,
        factory=dls_factory(params, BINARY),
        proposals=proposals,
        byzantine=byz,
        adversary=adversary,
        drop_schedule=drop_schedule,
        max_rounds=dls_horizon(params, gst),
    )


class TestConstruction:
    def test_bound_enforced(self):
        with pytest.raises(BoundViolation):
            check_dls_bound(9, 6, 1)  # 12 <= 12
        check_dls_bound(7, 6, 1)  # 12 > 10: fine

    def test_process_creation_checks_bound(self):
        bad = make_params(n=9, ell=6, t=1)
        with pytest.raises(BoundViolation):
            DLSHomonymProcess(bad, BINARY, 1, 0)
        DLSHomonymProcess(bad, BINARY, 1, 0, unchecked=True)

    def test_leader_rotation(self):
        assert leader_of_phase(0, 6) == 1
        assert leader_of_phase(5, 6) == 6
        assert leader_of_phase(6, 6) == 1

    def test_position_mapping(self):
        # Phase = 4 superrounds = 8 rounds.
        assert DLSHomonymProcess.position(0) == (0, 0, True)
        assert DLSHomonymProcess.position(1) == (0, 0, False)
        assert DLSHomonymProcess.position(6) == (0, 3, True)
        assert DLSHomonymProcess.position(8) == (1, 0, True)


class TestSynchronousRuns:
    """GST = 0: the partially synchronous algorithm in a kind network."""

    def test_unanimous_zero(self):
        params = make_params()
        r = run_dls(params, {k: 0 for k in range(7)})
        assert r.verdict.ok and r.verdict.agreed_value == 0

    def test_unanimous_one(self):
        params = make_params()
        r = run_dls(params, {k: 1 for k in range(7)})
        assert r.verdict.ok and r.verdict.agreed_value == 1

    def test_mixed_inputs_agree_on_something(self):
        params = make_params()
        r = run_dls(params, {k: k % 2 for k in range(7)})
        assert r.verdict.ok
        assert r.verdict.agreed_value in (0, 1)

    def test_classical_configuration(self):
        # ell = n: the algorithm must still work (it generalises DLS).
        params = make_params(n=5, ell=5, t=1)
        r = run_dls(params, {k: k % 2 for k in range(4)}, byz=(4,))
        assert r.verdict.ok


class TestPartialSynchrony:
    def test_total_silence_until_gst(self):
        params = make_params()
        r = run_dls(params, {k: k % 2 for k in range(6)}, byz=(6,),
                    drop_schedule=SilenceUntil(24), gst=24)
        assert r.verdict.ok

    def test_random_drops(self):
        params = make_params()
        r = run_dls(params, {k: k % 2 for k in range(6)}, byz=(6,),
                    drop_schedule=RandomDrops(gst=20, p=0.5, seed=4), gst=20)
        assert r.verdict.ok

    def test_no_decision_before_messages_flow(self):
        params = make_params()
        r = run_dls(params, {k: 0 for k in range(7)},
                    drop_schedule=SilenceUntil(24), gst=24)
        assert r.verdict.ok
        # Nothing can be decided while every message is dropped:
        # deciding requires an ack quorum, which requires accepts.
        assert min(r.verdict.decision_rounds.values()) >= 24


class TestByzantineResilience:
    def test_silent_byzantine(self):
        params = make_params()
        r = run_dls(params, {k: k % 2 for k in range(6)}, byz=(6,))
        assert r.verdict.ok

    def test_byzantine_sharing_identifier_with_correct(self):
        # balanced_assignment(7, 6): identifier 1 is held by slots 0, 6.
        params = make_params()
        r = run_dls(params, {k: k % 2 for k in range(6)}, byz=(6,),
                    adversary=RandomByzantineAdversary(seed=3))
        assert r.verdict.ok
        assert 0 in r.verdict.decisions  # the poisoned group's correct member

    def test_validity_under_flip(self):
        params = make_params()
        r = run_dls(params, {k: 1 for k in range(6)}, byz=(6,),
                    adversary=InputFlipAdversary(
                        dls_factory(params, BINARY), proposal=0))
        assert r.verdict.ok and r.verdict.agreed_value == 1

    def test_equivocating_byzantine_leader(self):
        # Corrupt slot 0 (identifier 1, leader of phase 0) and equivocate.
        params = make_params()
        r = run_dls(params, {k: k % 2 for k in range(1, 7)}, byz=(0,),
                    adversary=EquivocatorAdversary(
                        dls_factory(params, BINARY)))
        assert r.verdict.ok

    def test_duplicating_byzantine(self):
        params = make_params()
        r = run_dls(params, {k: k % 2 for k in range(1, 7)}, byz=(0,),
                    adversary=DuplicatorAdversary(
                        dls_factory(params, BINARY)))
        assert r.verdict.ok

    def test_crash_byzantine(self):
        params = make_params()
        r = run_dls(params, {k: k % 2 for k in range(6)}, byz=(6,),
                    adversary=CrashAdversary(
                        dls_factory(params, BINARY), crash_round=10))
        assert r.verdict.ok

    def test_byzantine_with_drops_combined(self):
        params = make_params()
        r = run_dls(params, {k: k % 2 for k in range(6)}, byz=(6,),
                    adversary=RandomByzantineAdversary(seed=8),
                    drop_schedule=RandomDrops(gst=16, p=0.4, seed=2), gst=16)
        assert r.verdict.ok

    def test_two_byzantine_eleven_processes(self):
        params = make_params(n=11, ell=9, t=2)  # 18 > 11 + 6
        r = run_dls(params, {k: k % 2 for k in range(9)}, byz=(9, 10),
                    adversary=RandomByzantineAdversary(seed=13))
        assert r.verdict.ok


class TestBoundaryConfigurations:
    def test_exact_boundary_2ell_equals_n_3t_plus_1(self):
        # Smallest margin: 2*ell = n + 3t + 1.
        params = make_params(n=8, ell=6, t=1)  # 12 = 8 + 3 + 1
        r = run_dls(params, {k: k % 2 for k in range(7)}, byz=(7,),
                    adversary=RandomByzantineAdversary(seed=1))
        assert r.verdict.ok

    def test_paper_example_t1_ell4_n4_solvable(self):
        # The paper's curiosity: t=1, ell=4 works at n=4...
        params = make_params(n=4, ell=4, t=1)
        r = run_dls(params, {k: k % 2 for k in range(3)}, byz=(3,),
                    adversary=RandomByzantineAdversary(seed=6))
        assert r.verdict.ok


@given(seed=st.integers(0, 25), gst=st.sampled_from([0, 8, 16]),
       byz_slot=st.integers(0, 6))
@settings(max_examples=12, deadline=None)
def test_dls_fuzz(seed, gst, byz_slot):
    """Property: n=7, ell=6, t=1 survives chaos + drops, any Byzantine slot."""
    params = make_params()
    proposals = {k: (k + seed) % 2 for k in range(7) if k != byz_slot}
    r = run_dls(
        params, proposals, byz=(byz_slot,),
        adversary=RandomByzantineAdversary(seed=seed),
        drop_schedule=RandomDrops(gst=gst, p=0.5, seed=seed) if gst else None,
        gst=gst,
    )
    assert r.verdict.ok
