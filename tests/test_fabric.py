"""The array fabric: path parity, mask builders, memoization, COW.

Pins the three delivery implementations against each other:

* the numpy **array** path (``repro.sim.fabric._deliver_round_array``),
* the pure-Python **scalar** fallback (the pre-array dict/set loop),
* the frozen pre-fabric oracle
  (:class:`~repro.sim.network.ReferenceRoundEngine`),

asserting byte-identical per-receiver inboxes,
:class:`~repro.sim.metrics.RoundDeliveries`, traces and loss triples
across random (topology x drop schedule x adversary x timing) draws --
including n in the hundreds -- plus the unit seams the tentpole added:
vectorized ``blocked_mask`` / ``dropped_mask`` / ``delay_matrix``
builders vs their scalar queries, the per-kernel payload-size memo, and
the copy-on-write checkpoint scheme.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.generic import RandomByzantineAdversary
from repro.core.canonical import stable_seed
from repro.core.errors import SimulationError
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams
from repro.sim import fabric
from repro.sim.delay import EventuallyBoundedDelays
from repro.sim.kernel import (
    BasicPsync,
    ComposedTiming,
    DelayBased,
    ExecutionKernel,
    LockStep,
)
from repro.sim.network import ReferenceRoundEngine
from repro.sim.partial import (
    ExplicitDrops,
    NoDrops,
    PartitionSchedule,
    RandomDrops,
    SilenceUntil,
)
from repro.sim.process import EchoProcess, Process
from repro.sim.topology import CompleteTopology, DirectedTopology

needs_numpy = pytest.mark.skipif(
    not fabric.HAVE_NUMPY, reason="numpy unavailable (or REPRO_NO_NUMPY set)"
)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _build_kernel(n, ell, numerate, byzantine, adversary, timing):
    assignment = balanced_assignment(n, ell)
    params = SystemParams(
        n=n, ell=ell, t=max(len(byzantine), 1), numerate=numerate
    )
    processes = [
        None if k in byzantine else EchoProcess(
            assignment.identifier_of(k), tag=("v", k % 3)
        )
        for k in range(n)
    ]
    return ExecutionKernel(
        params=params,
        assignment=assignment,
        processes=processes,
        byzantine=byzantine,
        adversary=adversary(),
        timing=timing(),
    )


def _build_reference(n, ell, numerate, byzantine, adversary, drop, topo):
    assignment = balanced_assignment(n, ell)
    params = SystemParams(
        n=n, ell=ell, t=max(len(byzantine), 1), numerate=numerate
    )
    processes = [
        None if k in byzantine else EchoProcess(
            assignment.identifier_of(k), tag=("v", k % 3)
        )
        for k in range(n)
    ]
    return ReferenceRoundEngine(
        params=params,
        assignment=assignment,
        processes=processes,
        byzantine=byzantine,
        adversary=adversary(),
        drop_schedule=drop,
        topology=topo,
    )


def _run(engine, rounds):
    engine.run(max_rounds=rounds, stop_when_all_decided=False)
    return engine


def _assert_engines_identical(got, want, rounds, label):
    assert got.deliveries == want.deliveries, label
    assert got.losses == want.losses, label
    assert got.trace.snapshot() == want.trace.snapshot(), label
    for q in got.correct:
        for r in range(rounds):
            assert (
                got.processes[q].received[r].messages()
                == want.processes[q].received[r].messages()
            ), f"{label}: inbox of process {q} differs in round {r}"


def _compare_paths(n, ell, numerate, byzantine, adversary, timing, rounds,
                   label, reference=None):
    """Run array and scalar paths (and optionally the frozen oracle)."""
    with fabric.forced_path(False):
        scalar = _run(
            _build_kernel(n, ell, numerate, byzantine, adversary, timing),
            rounds,
        )
    if fabric.HAVE_NUMPY:
        with fabric.forced_path(True):
            array = _run(
                _build_kernel(n, ell, numerate, byzantine, adversary, timing),
                rounds,
            )
        _assert_engines_identical(array, scalar, rounds, f"{label}: array")
    if reference is not None:
        drop, topo = reference
        oracle = _run(
            _build_reference(
                n, ell, numerate, byzantine, adversary, drop, topo
            ),
            rounds,
        )
        _assert_engines_identical(scalar, oracle, rounds, f"{label}: oracle")


# ----------------------------------------------------------------------
# Property tests: random draws, three-way parity
# ----------------------------------------------------------------------
def _schedule_from(draw_kind, gst, seed, n):
    if draw_kind == "none":
        return None
    if draw_kind == "silence":
        return SilenceUntil(gst)
    if draw_kind == "partition":
        half = n // 2
        return PartitionSchedule(gst, tuple(range(half)), tuple(range(half, n)))
    if draw_kind == "random":
        return RandomDrops(gst=gst, p=0.5, seed=seed)
    assert draw_kind == "explicit"
    return ExplicitDrops({
        (r, s, (s + r + 1) % n)
        for r in range(gst)
        for s in range(0, n, 3)
    })


def _topology_from(draw_kind, n, seed):
    if draw_kind == "complete":
        return None
    wiring = {}
    for q in range(0, n, 2):
        allowed = {
            s for s in range(n) if stable_seed((seed, q, s)) % 3 != 0
        }
        wiring[q] = allowed
    return DirectedTopology(wiring)


@given(
    n=st.integers(3, 12),
    ell=st.integers(2, 3),
    numerate=st.booleans(),
    sched_kind=st.sampled_from(
        ["none", "silence", "partition", "random", "explicit"]
    ),
    topo_kind=st.sampled_from(["complete", "directed"]),
    gst=st.integers(1, 4),
    with_byz=st.booleans(),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_property_three_way_parity(
    n, ell, numerate, sched_kind, topo_kind, gst, with_byz, seed
):
    """Array path == scalar fallback == ReferenceRoundEngine across
    random basic-model draws: inboxes, deliveries, traces."""
    ell = min(ell, n)
    byzantine = (n - 1,) if with_byz else ()
    sched = lambda: _schedule_from(sched_kind, gst, seed, n)  # noqa: E731
    topo = lambda: _topology_from(topo_kind, n, seed)  # noqa: E731
    adversary = (
        (lambda: RandomByzantineAdversary(seed=seed)) if with_byz
        else (lambda: None)
    )
    timing = lambda: BasicPsync(sched(), topo())  # noqa: E731
    _compare_paths(
        n, ell, numerate, byzantine, adversary, timing,
        rounds=gst + 2,
        label=f"{sched_kind}/{topo_kind}/n={n}",
        reference=(sched(), topo()),
    )


@given(
    n=st.sampled_from([100, 180, 256]),
    numerate=st.booleans(),
    sched_kind=st.sampled_from(["silence", "partition", "explicit"]),
    seed=st.integers(0, 10),
)
@settings(max_examples=5, deadline=None)
def test_property_three_way_parity_large_n(n, numerate, sched_kind, seed):
    """The same three-way parity with n in the hundreds (structural
    schedules, where the mask builders do real array work)."""
    sched = lambda: _schedule_from(sched_kind, 2, seed, n)  # noqa: E731
    timing = lambda: BasicPsync(sched(), None)  # noqa: E731
    _compare_paths(
        n, 3, numerate, (), lambda: None, timing,
        rounds=3,
        label=f"large-{sched_kind}/n={n}",
        reference=(sched(), None),
    )


@given(
    n=st.integers(3, 10),
    numerate=st.booleans(),
    gst_tick=st.integers(0, 12),
    delta=st.integers(1, 4),
    seed=st.integers(0, 50),
)
@settings(max_examples=20, deadline=None)
def test_property_delay_parity_with_losses(
    n, numerate, gst_tick, delta, seed
):
    """Array vs scalar under ``DelayBased``: identical inboxes *and*
    identical loss-triple logs (both paths log (receiver-ascending,
    sender-ascending) per round)."""
    timing = lambda: DelayBased(  # noqa: E731
        EventuallyBoundedDelays(delta, gst_tick, seed=seed)
    )
    _compare_paths(
        n, 3, numerate, (), lambda: None, timing,
        rounds=gst_tick // delta + 2,
        label=f"delay/n={n}/delta={delta}",
    )


def test_composed_timing_parity_with_losses():
    """ComposedTiming (structural + delay layers) stays path-identical,
    including the union mask and the merged loss log."""
    timing = lambda: ComposedTiming(  # noqa: E731
        BasicPsync(SilenceUntil(2), DirectedTopology({0: {1, 2}, 3: set()})),
        DelayBased(EventuallyBoundedDelays(2, 8, seed=3)),
    )
    for numerate in (False, True):
        _compare_paths(
            9, 3, numerate, (8,),
            lambda: RandomByzantineAdversary(seed=7), timing,
            rounds=6, label=f"composed/numerate={numerate}",
        )


def test_large_n_deterministic_partition():
    """n=256 under an always-active partition: the shared-row inbox
    grouping (two distinct mask rows) stays oracle-identical."""
    n = 256
    half = n // 2
    sched = lambda: PartitionSchedule(  # noqa: E731
        10**9, tuple(range(half)), tuple(range(half, n))
    )
    timing = lambda: BasicPsync(sched(), None)  # noqa: E731
    _compare_paths(
        n, 4, True, (), lambda: None, timing,
        rounds=3, label="partition-256", reference=(sched(), None),
    )


# ----------------------------------------------------------------------
# Mask builders vs their scalar queries
# ----------------------------------------------------------------------
@needs_numpy
class TestMaskBuilders:
    def _assert_mask_matches(self, mask, removed_of, receivers, senders):
        for i, q in enumerate(receivers):
            expected = set(removed_of(q))
            got = {senders[j] for j in range(len(senders)) if mask[i, j]}
            assert got == expected, f"receiver {q}"

    def test_topology_masks(self):
        n = 12
        receivers = tuple(range(n))
        senders = tuple(range(0, n, 2))
        for topo in (
            CompleteTopology(),
            DirectedTopology({0: {2, 4}, 5: set(), 6: {6}}),
        ):
            mask = topo.blocked_mask(receivers, senders)
            assert mask.shape == (len(receivers), len(senders))
            self._assert_mask_matches(
                mask, lambda q: topo.blocked_senders(q, senders),
                receivers, senders,
            )

    def test_drop_schedule_masks(self):
        n = 10
        receivers = tuple(range(n))
        senders = tuple(range(n))
        schedules = [
            NoDrops(),
            SilenceUntil(3),
            PartitionSchedule(3, (0, 1, 2), (5, 6)),
            RandomDrops(gst=3, p=0.5, seed=9),
            ExplicitDrops({(0, 1, 2), (1, 2, 2), (2, 0, 0), (1, 9, 0)}),
        ]
        for sched in schedules:
            for round_no in range(5):
                mask = sched.dropped_mask(round_no, receivers, senders)
                self._assert_mask_matches(
                    mask,
                    lambda q: sched.dropped_senders(round_no, q, senders),
                    receivers, senders,
                )

    def test_delay_matrix_matches_scalar_delay(self):
        policy = EventuallyBoundedDelays(3, 9, seed=4)
        receivers = tuple(range(8))
        senders = tuple(range(0, 8, 2))
        for send_tick in (0, 3, 9, 12):
            delays = policy.delay_matrix(send_tick, receivers, senders)
            for i, q in enumerate(receivers):
                for j, s in enumerate(senders):
                    if s == q:
                        assert delays[i, j] == 0
                    else:
                        assert delays[i, j] == policy.delay(send_tick, s, q)

    def test_removed_mask_never_reports_self(self):
        timing = BasicPsync(SilenceUntil(5), None)
        receivers = senders = tuple(range(6))
        mask = timing.removed_mask(0, receivers, senders)
        for k in range(6):
            assert not mask[k, k]
        assert mask.sum() == 30  # everything else dropped

    def test_mask_from_rows_bridges_scalar_queries(self):
        mask = fabric.mask_from_rows(
            lambda q: (0, 2) if q == 1 else (),
            receivers=(0, 1, 3),
            senders=(0, 2, 3),
        )
        assert mask.tolist() == [
            [False, False, False],
            [True, True, False],
            [False, False, False],
        ]


# ----------------------------------------------------------------------
# Path selection
# ----------------------------------------------------------------------
def test_forced_path_restores_previous_mode():
    before = fabric.array_path_enabled()
    with fabric.forced_path(False):
        assert not fabric.array_path_enabled()
        if fabric.HAVE_NUMPY:
            with fabric.forced_path(True):
                assert fabric.array_path_enabled()
            assert not fabric.array_path_enabled()
    assert fabric.array_path_enabled() == before


def test_forced_array_path_without_numpy_raises(monkeypatch):
    monkeypatch.setattr(fabric, "np", None)
    monkeypatch.setattr(fabric, "HAVE_NUMPY", False)
    with pytest.raises(SimulationError):
        with fabric.forced_path(True):
            pass  # pragma: no cover - unreachable
    with pytest.raises(SimulationError):
        fabric.require_numpy()


# ----------------------------------------------------------------------
# Payload-size memoization
# ----------------------------------------------------------------------
class _ConstantProcess(Process):
    """Broadcasts the same payload every round (memo-friendliest case)."""

    def compose(self, round_no):
        return ("const", self.identifier % 2)

    def deliver(self, round_no, inbox):
        pass


def _counting_payload_size(monkeypatch):
    from repro.sim import metrics

    calls = []

    def counted(payload):
        calls.append(payload)
        return len(repr(payload))

    monkeypatch.setattr(fabric, "payload_size", counted)
    return calls, metrics.payload_size


def test_payload_size_memoized_across_rounds(monkeypatch):
    """Regression: ``_deliver_round`` used to recompute ``payload_size``
    for every sender every round; the memo computes once per distinct
    payload per kernel."""
    calls, _ = _counting_payload_size(monkeypatch)
    n, rounds = 8, 5
    assignment = balanced_assignment(n, 4)
    params = SystemParams(n=n, ell=4, t=1)
    processes = [
        _ConstantProcess(assignment.identifier_of(k)) for k in range(n)
    ]
    kernel = ExecutionKernel(
        params=params, assignment=assignment, processes=processes,
        timing=LockStep(),
    )
    kernel.run(max_rounds=rounds, stop_when_all_decided=False)
    # Two distinct payloads across all senders and rounds -> two calls,
    # not n * rounds.
    assert len(calls) == 2
    assert sorted(set(calls), key=repr) == [("const", 0), ("const", 1)]


def test_payload_size_memo_keys_by_type(monkeypatch):
    """``1`` and ``True`` are equal but repr differently; the memo must
    not conflate them."""
    calls, real = _counting_payload_size(monkeypatch)
    cache = {}
    assert fabric.memoized_payload_size(cache, 1) == real(1)
    assert fabric.memoized_payload_size(cache, True) == real(True)
    assert fabric.memoized_payload_size(cache, 1) == real(1)
    assert len(calls) == 2  # third call hit the memo
    assert real(True) != real(1)


def test_payload_size_memo_is_bounded(monkeypatch):
    calls, _ = _counting_payload_size(monkeypatch)
    cache = {}
    limit = fabric._SIZE_CACHE_LIMIT
    for i in range(limit + 10):
        fabric.memoized_payload_size(cache, ("p", i))
    assert len(cache) <= limit


# ----------------------------------------------------------------------
# Copy-on-write checkpoints
# ----------------------------------------------------------------------
def _cow_kernel():
    n = 5
    assignment = balanced_assignment(n, n)
    params = SystemParams(n=n, ell=n, t=1)
    processes = [
        EchoProcess(assignment.identifier_of(k), tag=("v", k))
        for k in range(n)
    ]
    return ExecutionKernel(
        params=params, assignment=assignment, processes=processes,
        timing=LockStep(),
    )


def test_checkpoint_is_frozen_after_later_rounds():
    """Rounds executed after a snapshot never leak into it (the COW copy
    happens before the mutation)."""
    kernel = _cow_kernel()
    kernel.run(2, stop_when_all_decided=False)
    cp = kernel.checkpoint()
    snapshot_received = {
        q: dict(cp.processes[q].received) for q in kernel.correct
    }
    kernel.run(3, stop_when_all_decided=False)
    for q in kernel.correct:
        assert dict(cp.processes[q].received) == snapshot_received[q]
        assert len(kernel.processes[q].received) == 5
        assert kernel.processes[q] is not cp.processes[q]


def test_checkpoint_restore_roundtrip_shares_until_mutation():
    """A checkpoint/restore round-trip costs zero copies until the next
    mutating phase; the first step after it copies exactly once."""
    kernel = _cow_kernel()
    kernel.run(2, stop_when_all_decided=False)
    cp = kernel.checkpoint()
    assert kernel.processes[0] is cp.processes[0]  # aliased, not copied
    kernel.restore(cp)
    assert kernel.processes[0] is cp.processes[0]  # still aliased
    kernel.step()
    assert kernel.processes[0] is not cp.processes[0]  # owned now


def test_checkpoint_seeds_multiple_identical_branches():
    """One snapshot replayed twice produces byte-identical branches."""
    kernel = _cow_kernel()
    kernel.run(2, stop_when_all_decided=False)
    cp = kernel.checkpoint()

    def branch():
        kernel.restore(cp)
        kernel.run(3, stop_when_all_decided=False)
        return (
            kernel.trace.snapshot(),
            tuple(kernel.deliveries),
            [
                kernel.processes[q].received[4].messages()
                for q in kernel.correct
            ],
        )

    assert branch() == branch()


def test_restore_then_finish_round_copies_before_delivery():
    """The explorer's restore -> finish_round (no re-compose) pattern:
    delivery must not mutate the snapshot's processes."""
    kernel = _cow_kernel()
    payloads = kernel.compose_round()
    cp = kernel.checkpoint()
    kernel.finish_round(payloads)
    assert 0 in kernel.processes[0].received
    assert 0 not in cp.processes[0].received  # snapshot untouched
    kernel.restore(cp)
    kernel.finish_round(payloads)
    assert 0 not in cp.processes[0].received  # still untouched
