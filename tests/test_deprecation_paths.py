"""Tests for the kernel facades' deprecation paths.

Two shims survive from the pre-kernel era:

* :class:`repro.sim.delay.DelayRoundSimulator` -- the old delay entry
  point, now a thin wrapper over an :class:`ExecutionKernel` with a
  :class:`DelayBased` timing model;
* :func:`repro.sim.metrics.metrics_from_trace` -- the uniform-fanout
  cost estimate superseded by exact delivery accounting.

Each must emit a :class:`DeprecationWarning` exactly once per use and
remain behaviorally identical to its replacement.
"""

import warnings
from typing import Hashable

import pytest

from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.sim.delay import (
    DelayRoundSimulator,
    EventuallyBoundedDelays,
    run_delay_execution,
)
from repro.sim.metrics import metrics_from_deliveries, metrics_from_trace
from repro.sim.network import RoundEngine
from repro.sim.process import Process


class CountingProcess(Process):
    """Deterministic sender that decides after a fixed round budget."""

    def compose(self, round_no: int) -> Hashable:
        return ("count", self.identifier, round_no)

    def deliver(self, round_no: int, inbox) -> None:
        if round_no >= 5:
            self.record_decision(("done", self.identifier), round_no)


def _workload(n: int = 5, ell: int = 3):
    params = SystemParams(
        n=n, ell=ell, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
    )
    assignment = balanced_assignment(n, ell)
    processes = [
        CountingProcess(assignment.identifier_of(k)) for k in range(n)
    ]
    return params, assignment, processes


def _policy(seed: int = 3) -> EventuallyBoundedDelays:
    return EventuallyBoundedDelays(
        delta=2, gst_tick=8, chaos_factor=3, seed=seed
    )


def _canonical(trace):
    return [
        (r.round_no, r.payloads, r.emissions, r.decisions) for r in trace
    ]


class TestDelayRoundSimulatorShim:
    def test_construction_warns_exactly_once(self):
        params, assignment, processes = _workload()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sim = DelayRoundSimulator(params, assignment, processes,
                                      _policy())
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1
            assert "DelayRoundSimulator is deprecated" in str(
                deprecations[0].message
            )
        # Running the shim does not warn again.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sim.run(max_rounds=8)
            assert not [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]

    def test_warning_points_at_the_caller(self):
        params, assignment, processes = _workload()
        with pytest.warns(DeprecationWarning) as record:
            DelayRoundSimulator(params, assignment, processes, _policy())
        assert record[0].filename == __file__

    def test_shim_matches_run_delay_execution(self):
        params, assignment, processes = _workload()
        with pytest.warns(DeprecationWarning):
            shim = DelayRoundSimulator(params, assignment, processes,
                                       _policy())
        shim_result = shim.run(max_rounds=12)

        params, assignment, processes = _workload()
        kernel_result = run_delay_execution(
            params, assignment, processes, _policy(), max_rounds=12,
        )
        assert _canonical(shim_result.trace) == _canonical(kernel_result.trace)
        assert shim_result.dropped == kernel_result.dropped
        assert shim_result.ticks_executed == kernel_result.ticks_executed
        assert shim_result.rounds_executed == kernel_result.rounds_executed

    def test_shim_matches_under_byzantine_slots(self):
        params, assignment, processes = _workload()
        byz = (params.n - 1,)
        processes[-1] = None
        with pytest.warns(DeprecationWarning):
            shim = DelayRoundSimulator(
                params, assignment, processes, _policy(), byzantine=byz,
            )
        shim_result = shim.run(max_rounds=10)

        params, assignment, processes = _workload()
        processes[-1] = None
        kernel_result = run_delay_execution(
            params, assignment, processes, _policy(), byzantine=byz,
            max_rounds=10,
        )
        assert _canonical(shim_result.trace) == _canonical(kernel_result.trace)
        assert shim_result.dropped == kernel_result.dropped


class TestMetricsFromTraceShim:
    def _run_engine(self):
        params, assignment, processes = _workload()
        engine = RoundEngine(
            params=params, assignment=assignment, processes=processes,
        )
        engine.run(max_rounds=8)
        return engine

    def test_warns_exactly_once_per_call(self):
        engine = self._run_engine()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            metrics_from_trace(engine.trace, fanout=engine.params.n)
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1
            assert "metrics_from_deliveries" in str(deprecations[0].message)

    def test_estimate_matches_exact_accounting_on_clean_runs(self):
        # Full fanout, no drops: the deprecated estimate and the exact
        # per-delivery accounting must agree.
        engine = self._run_engine()
        with pytest.warns(DeprecationWarning):
            estimated = metrics_from_trace(
                engine.trace, fanout=engine.params.n
            )
        exact = metrics_from_deliveries(engine.deliveries)
        assert estimated == exact
