"""Cross-surface kernel conformance grid.

Every execution surface now drives :class:`~repro.sim.kernel.ExecutionKernel`;
each kept its pre-port loop as a frozen ``Reference*`` oracle.  This
suite runs (surface x timing model x topology x drop schedule x
adversary mixture) pairs and asserts byte-identical inboxes, traces,
:class:`~repro.sim.metrics.RoundDeliveries` and verdicts between the
kernelised surface and its oracle:

* Figure 1 scenario -- :class:`~repro.adversaries.scenario.ScenarioSystem`
  vs :class:`~repro.adversaries.scenario.ReferenceScenarioSystem`;
* classic EIG / phase-king -- :func:`~repro.classic.runner.run_classic`
  vs :func:`~repro.classic.runner.run_classic_reference`;
* the three broadcast primitives -- :mod:`repro.broadcast.runner` vs
  :mod:`repro.broadcast.reference`;
* delay-based timing -- the kernel's
  :class:`~repro.sim.kernel.DelayBased` model vs the per-message tick
  loop (:class:`~repro.sim.delay.ReferenceDelaySimulator`), and, where
  the oracle predates timing models (scenario), by replaying the
  kernel's logged losses through the oracle as
  :class:`~repro.sim.partial.ExplicitDrops`.

Test ids embed the timing-model family (``lockstep`` / ``basic-*`` /
``delay-*``) so CI can slice the grid with ``-k``.  Property tests
sample seeded random configurations via
:func:`~repro.core.canonical.stable_seed`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.generic import RandomByzantineAdversary
from repro.adversaries.scenario import ReferenceScenarioSystem, ScenarioSystem
from repro.broadcast.hosts import AuthenticatedBroadcastHost
from repro.broadcast.reference import (
    run_authenticated_broadcast_reference,
    run_multiplicity_broadcast_reference,
    run_reliable_broadcast_reference,
)
from repro.broadcast.runner import (
    run_authenticated_broadcast,
    run_multiplicity_broadcast,
    run_reliable_broadcast,
)
from repro.classic.eig import EIGSpec
from repro.classic.phase_king import PhaseKingSpec
from repro.classic.runner import run_classic, run_classic_reference
from repro.core.canonical import stable_seed
from repro.core.identity import IdentityAssignment, balanced_assignment
from repro.core.params import SystemParams
from repro.core.problem import BINARY
from repro.homonyms.transform import transform_factory, transform_horizon
from repro.sim.delay import ReferenceDelaySimulator
from repro.sim.kernel import BasicPsync, ComposedTiming, DelayBased, ExecutionKernel
from repro.sim.network import ReferenceRoundEngine
from repro.sim.partial import (
    ExplicitDrops,
    PartitionSchedule,
    RandomDrops,
    SilenceUntil,
)
from repro.sim.process import EchoProcess
from repro.sim.runner import make_processes
from repro.experiments.workloads import delay_policy_battery


# ----------------------------------------------------------------------
# Shared grid axes and helpers
# ----------------------------------------------------------------------
def canonical(trace):
    return [
        (
            r.round_no,
            sorted(r.payloads.items(), key=repr),
            sorted(
                (b, sorted(pr.items(), key=repr))
                for b, pr in r.emissions.items()
            ),
            sorted(r.decisions.items(), key=repr),
        )
        for r in trace
    ]


#: Basic-model drop schedules: (timing-family id, schedule factory).
SCHEDULES = [
    ("lockstep", lambda: None),
    ("basic-silence", lambda: SilenceUntil(3)),
    ("basic-random", lambda: RandomDrops(gst=5, p=0.4, seed=11)),
    ("basic-explicit",
     lambda: ExplicitDrops({(0, 1, 2), (1, 0, 3), (2, 2, 0)})),
]

#: Byzantine mixtures: (id, adversary factory) -- factories because the
#: random adversary is stateful and each engine needs a fresh instance.
ADVERSARIES = [
    ("silent", lambda: None),
    ("random-byz", lambda: RandomByzantineAdversary(seed=5)),
]

SCHEDULE_IDS = [s[0] for s in SCHEDULES]
ADVERSARY_IDS = [a[0] for a in ADVERSARIES]

DELAY_POLICIES = ["punctual-d3", "eventual-d2-gst24"]


def scenario_factory(t):
    spec = EIGSpec(3 * t, t, BINARY, unchecked=True)
    return transform_factory(spec, unchecked=True), transform_horizon(spec)


def view_digest(outcome):
    return [
        (v.name, v.satisfied, v.detail,
         sorted(v.decisions.items(), key=repr))
        for v in outcome.views
    ]


def assert_scenario_conformance(kernel_outcome, reference_outcome):
    assert canonical(kernel_outcome.trace) == canonical(reference_outcome.trace)
    assert kernel_outcome.deliveries == reference_outcome.deliveries
    assert kernel_outcome.metrics == reference_outcome.metrics
    assert kernel_outcome.rounds_executed == reference_outcome.rounds_executed
    assert view_digest(kernel_outcome) == view_digest(reference_outcome)


def assert_result_conformance(kernel_result, reference_result):
    assert canonical(kernel_result.trace) == canonical(reference_result.trace)
    assert kernel_result.metrics == reference_result.metrics
    assert kernel_result.verdict.ok == reference_result.verdict.ok
    assert kernel_result.verdict.summary() == reference_result.verdict.summary()
    assert [
        (p.decision, p.decision_round)
        for p in kernel_result.processes if p is not None
    ] == [
        (p.decision, p.decision_round)
        for p in reference_result.processes if p is not None
    ]


def assert_broadcast_conformance(kernel_run, reference_run):
    assert canonical(kernel_run.trace) == canonical(reference_run.trace)
    assert kernel_run.deliveries == reference_run.deliveries
    assert kernel_run.metrics == reference_run.metrics
    assert kernel_run.rounds_executed == reference_run.rounds_executed
    for got, want in zip(
        kernel_run.correct_processes, reference_run.correct_processes
    ):
        assert got.accepts == want.accepts


# ----------------------------------------------------------------------
# Surface: Figure 1 scenario
# ----------------------------------------------------------------------
class TestScenarioConformance:
    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1), (7, 2)])
    @pytest.mark.parametrize("sched_name,sched_fn", SCHEDULES, ids=SCHEDULE_IDS)
    def test_views_traces_and_deliveries(self, n, t, sched_name, sched_fn):
        factory, horizon = scenario_factory(t)
        kernel_outcome = ScenarioSystem(n, t).run(
            factory, max_rounds=horizon, drop_schedule=sched_fn()
        )
        reference_outcome = ReferenceScenarioSystem(n, t).run(
            factory, max_rounds=horizon, drop_schedule=sched_fn()
        )
        assert_scenario_conformance(kernel_outcome, reference_outcome)

    @pytest.mark.parametrize("sched_name,sched_fn", SCHEDULES, ids=SCHEDULE_IDS)
    def test_inboxes_over_view_wiring(self, sched_name, sched_fn):
        """Receiver-by-receiver inbox equality on the scenario wiring."""
        system = ScenarioSystem(4, 1)
        params = SystemParams(n=system.total, ell=system.ell, t=0)
        rounds = 6

        def echo_procs():
            return [EchoProcess(system.ids[k]) for k in range(system.total)]

        assignment = IdentityAssignment(system.ell, system.ids)
        procs_k = echo_procs()
        kernel = ExecutionKernel(
            params=params, assignment=assignment, processes=procs_k,
            timing=BasicPsync(sched_fn(), system.topology()),
        )
        procs_r = echo_procs()
        reference = ReferenceRoundEngine(
            params=params, assignment=assignment, processes=procs_r,
            drop_schedule=sched_fn(), topology=system.topology(),
        )
        kernel.run(max_rounds=rounds, stop_when_all_decided=False)
        reference.run(max_rounds=rounds, stop_when_all_decided=False)
        assert kernel.deliveries == reference.deliveries
        for k in range(system.total):
            for r in range(rounds):
                got = procs_k[k].received[r]
                want = procs_r[k].received[r]
                assert got.messages() == want.messages(), (
                    f"{sched_name}: inbox of process {k} differs in round {r}"
                )

    @pytest.mark.parametrize("policy_name", DELAY_POLICIES)
    def test_delay_timing_by_loss_replay(self, policy_name):
        """``delay-*``: the oracle predates timing models, so the logged
        losses replay through it as explicit basic-model drops -- the
        executable form of the paper's loss-equivalence argument."""
        factory, horizon = scenario_factory(1)
        policy = dict(delay_policy_battery(7))[policy_name]
        kernel_outcome = ScenarioSystem(4, 1).run(
            factory, max_rounds=horizon, timing=DelayBased(policy)
        )
        reference_outcome = ReferenceScenarioSystem(4, 1).run(
            factory,
            max_rounds=horizon,
            drop_schedule=ExplicitDrops(set(kernel_outcome.losses)),
        )
        assert canonical(kernel_outcome.trace) == \
               canonical(reference_outcome.trace)
        assert kernel_outcome.deliveries == reference_outcome.deliveries
        assert view_digest(kernel_outcome) == view_digest(reference_outcome)

    def test_checkpoints_resume_to_identical_trace(self):
        """A mid-run checkpoint restored into a fresh kernel replays the
        remainder byte for byte."""
        factory, horizon = scenario_factory(1)
        system = ScenarioSystem(4, 1)
        outcome = system.run(factory, max_rounds=horizon, checkpoint_every=2)
        assert outcome.checkpoints, "expected mid-run checkpoints"
        assert [cp.round_no for cp in outcome.checkpoints] == list(
            range(2, outcome.rounds_executed + 1, 2)
        )

        cp = outcome.checkpoints[0]
        params, assignment, processes = system._build(factory)
        engine = ExecutionKernel(
            params=params, assignment=assignment, processes=processes,
            timing=BasicPsync(None, system.topology()),
        )
        engine.restore(cp)
        while len(engine.trace) < horizon and not engine.all_correct_decided():
            engine.finish_round(engine.compose_round())
        assert canonical(engine.trace) == canonical(outcome.trace)

    def test_composed_timing_unions_removals(self):
        """ComposedTiming = union of layer removals, first-seen order."""
        topo = ScenarioSystem(4, 1).topology()
        structural = BasicPsync(None, topo)
        drops = BasicPsync(ExplicitDrops({(0, 2, 5)}), None)
        composed = ComposedTiming(structural, drops)
        senders = tuple(range(8))
        want = set(structural.removed_senders(0, 5, senders)) | {2}
        got = composed.removed_senders(0, 5, senders)
        assert set(got) == want
        assert len(got) == len(set(got))  # no duplicates
        assert composed.active(0) and composed.ticks_executed(3) == 3


# ----------------------------------------------------------------------
# Surface: classic EIG / phase-king
# ----------------------------------------------------------------------
CLASSIC_SPECS = [
    ("eig", lambda: EIGSpec(4, 1, BINARY)),
    ("phase-king", lambda: PhaseKingSpec(5, 1, BINARY)),
]


def classic_fixture(spec):
    byz = (spec.ell - 1,)
    proposals = {k: k % 2 for k in range(spec.ell) if k not in byz}
    return byz, proposals


class TestClassicConformance:
    @pytest.mark.parametrize("spec_name,spec_fn", CLASSIC_SPECS,
                             ids=[s[0] for s in CLASSIC_SPECS])
    @pytest.mark.parametrize("sched_name,sched_fn", SCHEDULES, ids=SCHEDULE_IDS)
    @pytest.mark.parametrize("adv_name,adv_fn", ADVERSARIES, ids=ADVERSARY_IDS)
    def test_traces_verdicts_and_decisions(
        self, spec_name, spec_fn, sched_name, sched_fn, adv_name, adv_fn
    ):
        spec = spec_fn()
        byz, proposals = classic_fixture(spec)
        kernel_result = run_classic(
            spec, proposals, byzantine=byz, adversary=adv_fn(),
            drop_schedule=sched_fn(), require_termination=False,
        )
        reference_result = run_classic_reference(
            spec, proposals, byzantine=byz, adversary=adv_fn(),
            drop_schedule=sched_fn(), require_termination=False,
        )
        assert_result_conformance(kernel_result, reference_result)

    def test_partition_schedule(self):
        """``basic-partition``: a pre-GST network split."""
        spec = EIGSpec(4, 1, BINARY)
        byz, proposals = classic_fixture(spec)
        sched = lambda: PartitionSchedule(3, {0, 1}, {2, 3})  # noqa: E731
        kernel_result = run_classic(
            spec, proposals, byzantine=byz, drop_schedule=sched(),
            require_termination=False,
        )
        reference_result = run_classic_reference(
            spec, proposals, byzantine=byz, drop_schedule=sched(),
            require_termination=False,
        )
        assert_result_conformance(kernel_result, reference_result)

    @pytest.mark.parametrize("spec_name,spec_fn", CLASSIC_SPECS,
                             ids=[s[0] for s in CLASSIC_SPECS])
    @pytest.mark.parametrize("policy_name", DELAY_POLICIES)
    def test_delay_timing_vs_tick_loop(self, spec_name, spec_fn, policy_name):
        """``delay-*``: the kernel facade under ``DelayBased`` equals
        the per-message tick-loop oracle."""
        spec = spec_fn()
        byz, proposals = classic_fixture(spec)
        policy = dict(delay_policy_battery(3))[policy_name]
        max_rounds = spec.max_rounds + 2

        kernel_result = run_classic(
            spec, proposals, byzantine=byz,
            adversary=RandomByzantineAdversary(seed=9),
            timing=DelayBased(policy), require_termination=False,
        )

        from repro.classic.runner import classic_factory
        params = SystemParams(n=spec.ell, ell=spec.ell, t=spec.t)
        assignment = balanced_assignment(spec.ell, spec.ell)
        procs = make_processes(
            classic_factory(spec), assignment, proposals, byz
        )
        reference = ReferenceDelaySimulator(
            params, assignment, procs, policy, byzantine=byz,
            adversary=RandomByzantineAdversary(seed=9),
        )
        ref_result = reference.run(max_rounds=max_rounds)

        assert canonical(kernel_result.trace) == canonical(ref_result.trace)
        assert kernel_result.ticks == ref_result.ticks_executed
        assert [
            p.decision for p in kernel_result.processes if p is not None
        ] == [p.decision for p in procs if p is not None]
        byz_set = set(byz)
        assert sorted(kernel_result.losses) == sorted(
            d for d in ref_result.dropped if d[2] not in byz_set
        )


# ----------------------------------------------------------------------
# Surface: the three broadcast primitives
# ----------------------------------------------------------------------
BROADCAST_RUNNERS = [
    ("auth",
     lambda **kw: run_authenticated_broadcast(5, 4, 1, **kw),
     lambda **kw: run_authenticated_broadcast_reference(5, 4, 1, **kw)),
    ("reliable",
     lambda **kw: run_reliable_broadcast(
         5, 4, 1, sender_ident=2, values_by_slot={1: "v"}, **kw),
     lambda **kw: run_reliable_broadcast_reference(
         5, 4, 1, sender_ident=2, values_by_slot={1: "v"}, **kw)),
    ("multiplicity",
     lambda **kw: run_multiplicity_broadcast(6, 4, 1, broadcaster_ident=1, **kw),
     lambda **kw: run_multiplicity_broadcast_reference(
         6, 4, 1, broadcaster_ident=1, **kw)),
]


class TestBroadcastConformance:
    @pytest.mark.parametrize("surface,kernel_fn,ref_fn", BROADCAST_RUNNERS,
                             ids=[b[0] for b in BROADCAST_RUNNERS])
    @pytest.mark.parametrize("sched_name,sched_fn", SCHEDULES, ids=SCHEDULE_IDS)
    @pytest.mark.parametrize("adv_name,adv_fn", ADVERSARIES, ids=ADVERSARY_IDS)
    def test_traces_deliveries_and_accepts(
        self, surface, kernel_fn, ref_fn, sched_name, sched_fn,
        adv_name, adv_fn
    ):
        byzantine = (4,) if adv_name != "silent" else ()
        kernel_run = kernel_fn(
            byzantine=byzantine, adversary=adv_fn(), drop_schedule=sched_fn()
        )
        reference_run = ref_fn(
            byzantine=byzantine, adversary=adv_fn(), drop_schedule=sched_fn()
        )
        if surface == "reliable":
            assert canonical(kernel_run.trace) == canonical(reference_run.trace)
            assert kernel_run.deliveries == reference_run.deliveries
            assert kernel_run.metrics == reference_run.metrics
            assert [
                (p.delivered, p.decision_round)
                for p in kernel_run.correct_processes
            ] == [
                (p.delivered, p.decision_round)
                for p in reference_run.correct_processes
            ]
        else:
            assert_broadcast_conformance(kernel_run, reference_run)

    @pytest.mark.parametrize("sched_name,sched_fn", SCHEDULES, ids=SCHEDULE_IDS)
    def test_inboxes_on_recording_hosts(self, sched_name, sched_fn):
        """Receiver-by-receiver inbox equality for the broadcast payload
        shapes, kernel vs the pre-fabric loop."""

        class RecordingHost(AuthenticatedBroadcastHost):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.received = {}

            def deliver(self, round_no, inbox):
                self.received[round_no] = inbox
                super().deliver(round_no, inbox)

        n, ell, t, byz, rounds = 5, 4, 1, (4,), 6
        params = SystemParams(n=n, ell=ell, t=t)
        assignment = balanced_assignment(n, ell)

        def hosts():
            return [
                None if k in byz else RecordingHost(
                    assignment.identifier_of(k), ell, t, value=k
                )
                for k in range(n)
            ]

        procs_k = hosts()
        kernel = ExecutionKernel(
            params=params, assignment=assignment, processes=procs_k,
            byzantine=byz, adversary=RandomByzantineAdversary(seed=2),
            timing=BasicPsync(sched_fn(), None),
        )
        procs_r = hosts()
        reference = ReferenceRoundEngine(
            params=params, assignment=assignment, processes=procs_r,
            byzantine=byz, adversary=RandomByzantineAdversary(seed=2),
            drop_schedule=sched_fn(),
        )
        kernel.run(max_rounds=rounds, stop_when_all_decided=False)
        reference.run(max_rounds=rounds, stop_when_all_decided=False)
        for k in range(n):
            if k in byz:
                continue
            for r in range(rounds):
                got = procs_k[k].received[r]
                want = procs_r[k].received[r]
                assert got.messages() == want.messages(), (
                    f"{sched_name}: inbox of host {k} differs in round {r}"
                )
        assert kernel.deliveries == reference.deliveries


# ----------------------------------------------------------------------
# Large-n fabric cases: the array path's target range
# ----------------------------------------------------------------------
class TestLargeNConformance:
    """The array fabric's raison d'etre is n in the hundreds; pin the
    kernel against :class:`ReferenceRoundEngine` there too (whichever
    delivery path is active -- both run under CI)."""

    @pytest.mark.parametrize("sched_name,sched_fn", SCHEDULES, ids=SCHEDULE_IDS)
    @pytest.mark.parametrize("n", [200])
    def test_inboxes_and_deliveries_at_large_n(self, n, sched_name, sched_fn):
        ell, rounds = 8, 4
        params = SystemParams(n=n, ell=ell, t=1)
        assignment = balanced_assignment(n, ell)

        def procs():
            return [
                EchoProcess(assignment.identifier_of(k), tag=("v", k % 5))
                for k in range(n)
            ]

        procs_k = procs()
        kernel = ExecutionKernel(
            params=params, assignment=assignment, processes=procs_k,
            timing=BasicPsync(sched_fn(), None),
        )
        procs_r = procs()
        reference = ReferenceRoundEngine(
            params=params, assignment=assignment, processes=procs_r,
            drop_schedule=sched_fn(),
        )
        kernel.run(max_rounds=rounds, stop_when_all_decided=False)
        reference.run(max_rounds=rounds, stop_when_all_decided=False)
        assert kernel.deliveries == reference.deliveries
        for k in range(n):
            for r in range(rounds):
                got = procs_k[k].received[r]
                want = procs_r[k].received[r]
                assert got.messages() == want.messages(), (
                    f"{sched_name}: inbox of process {k} differs in round {r}"
                )

    def test_delay_losses_at_large_n(self):
        """n=128 under a delay policy vs the per-message tick loop."""
        n, ell = 128, 8
        policy_fn = lambda: dict(delay_policy_battery(5))[  # noqa: E731
            "eventual-d2-gst24"
        ]
        params = SystemParams(n=n, ell=ell, t=1)
        assignment = balanced_assignment(n, ell)

        def procs():
            return [
                EchoProcess(assignment.identifier_of(k), tag=("v", k % 5))
                for k in range(n)
            ]

        procs_k = procs()
        kernel = ExecutionKernel(
            params=params, assignment=assignment, processes=procs_k,
            timing=DelayBased(policy_fn()),
        )
        kernel.run(max_rounds=14, stop_when_all_decided=False)

        procs_r = procs()
        reference = ReferenceDelaySimulator(
            params, assignment, procs_r, policy_fn()
        )
        ref_result = reference.run(
            max_rounds=14, stop_when_all_decided=False
        )
        assert canonical(kernel.trace) == canonical(ref_result.trace)
        assert sorted(kernel.losses) == sorted(ref_result.dropped)
        for k in range(n):
            for r in range(14):
                assert (
                    procs_k[k].received[r].messages()
                    == procs_r[k].received[r].messages()
                ), f"inbox of process {k} differs in round {r}"


# ----------------------------------------------------------------------
# Property tests: seeded random configurations
# ----------------------------------------------------------------------
@given(gst=st.integers(0, 6), seed=st.integers(0, 40))
@settings(max_examples=12, deadline=None)
def test_property_classic_conformance_random_drops(gst, seed):
    """Random pre-GST chaos + random Byzantine noise: the classic kernel
    facade and its oracle stay byte-identical."""
    spec = EIGSpec(4, 1, BINARY)
    byz, proposals = classic_fixture(spec)
    drop_seed = stable_seed(("conformance-classic", gst, seed))

    def run(fn):
        return fn(
            spec, proposals, byzantine=byz,
            adversary=RandomByzantineAdversary(seed=seed),
            drop_schedule=RandomDrops(gst=gst, p=0.5, seed=drop_seed),
            require_termination=False,
        )

    assert_result_conformance(run(run_classic), run(run_classic_reference))


@given(gst=st.integers(0, 6), seed=st.integers(0, 40))
@settings(max_examples=12, deadline=None)
def test_property_broadcast_conformance_random_drops(gst, seed):
    """The authenticated-broadcast runner equals its oracle under seeded
    random drop schedules and Byzantine mixtures."""
    drop_seed = stable_seed(("conformance-broadcast", gst, seed))

    def run(fn):
        return fn(
            5, 4, 1, byzantine=(4,),
            adversary=RandomByzantineAdversary(seed=seed),
            drop_schedule=RandomDrops(gst=gst, p=0.5, seed=drop_seed),
            rounds=2 * gst + 6,
        )

    assert_broadcast_conformance(
        run(run_authenticated_broadcast),
        run(run_authenticated_broadcast_reference),
    )


@given(seed=st.integers(0, 40))
@settings(max_examples=8, deadline=None)
def test_property_scenario_conformance_random_drops(seed):
    """The kernelised scenario orchestration equals the pre-port loop
    under seeded random drop schedules stacked on the view wiring."""
    factory, horizon = scenario_factory(1)
    drop_seed = stable_seed(("conformance-scenario", seed))
    sched = lambda: RandomDrops(gst=4, p=0.3, seed=drop_seed)  # noqa: E731
    kernel_outcome = ScenarioSystem(4, 1).run(
        factory, max_rounds=horizon, drop_schedule=sched()
    )
    reference_outcome = ReferenceScenarioSystem(4, 1).run(
        factory, max_rounds=horizon, drop_schedule=sched()
    )
    assert_scenario_conformance(kernel_outcome, reference_outcome)
