"""Tests for proper-set maintenance (both trackers)."""

import pytest

from repro.core.problem import BINARY, AgreementProblem
from repro.psync.proper import (
    IdentifierProperTracker,
    MessageProperTracker,
    decode_proper,
    encode_proper,
)


class TestEncoding:
    def test_encode_sorts_and_dedupes(self):
        assert encode_proper([1, 0, 1]) == (0, 1)

    def test_decode_filters_out_of_domain(self):
        assert decode_proper((0, 7, 1), BINARY) == (0, 1)

    def test_decode_rejects_non_tuples(self):
        assert decode_proper("junk", BINARY) is None
        assert decode_proper(None, BINARY) is None


class TestIdentifierTracker:
    def test_starts_with_own_value(self):
        tr = IdentifierProperTracker(BINARY, own_value=1, t=1)
        assert tr.proper == {1}
        assert 1 in tr

    def test_t_plus_one_identifiers_admit_a_value(self):
        tr = IdentifierProperTracker(BINARY, own_value=0, t=1)
        tr.note(1, (1,))
        assert 1 not in tr  # only one identifier so far
        tr.note(2, (1,))
        assert 1 in tr  # two identifiers >= t+1

    def test_same_identifier_twice_does_not_count_twice(self):
        tr = IdentifierProperTracker(BINARY, own_value=0, t=1)
        tr.note(3, (1,))
        tr.note(3, (1,))
        assert 1 not in tr

    def test_2t_plus_one_split_admits_whole_domain(self):
        tr = IdentifierProperTracker(BINARY, own_value=0, t=1)
        # Three identifiers, each with a different singleton proper set
        # drawn from a 4-value domain: no value reaches t+1 = 2.
        problem = AgreementProblem((0, 1, 2, 3))
        tr = IdentifierProperTracker(problem, own_value=0, t=1)
        tr.note(1, (1,))
        tr.note(2, (2,))
        tr.note(3, (3,))
        assert tr.proper == {0, 1, 2, 3}

    def test_unanimity_never_triggers_domain_flood(self):
        tr = IdentifierProperTracker(BINARY, own_value=0, t=1)
        for ident in (1, 2, 3, 4, 5):
            tr.note(ident, (0,))
        assert tr.proper == {0}

    def test_out_of_domain_values_ignored(self):
        tr = IdentifierProperTracker(BINARY, own_value=0, t=1)
        tr.note(1, ("bogus",))
        tr.note(2, ("bogus",))
        assert "bogus" not in tr.proper

    def test_encoded_form(self):
        tr = IdentifierProperTracker(BINARY, own_value=1, t=1)
        assert tr.encoded() == (1,)


class TestMessageTracker:
    def test_counts_messages_within_round(self):
        tr = MessageProperTracker(BINARY, own_value=0, t=1)
        tr.note((1,))
        tr.end_round()
        assert 1 not in tr  # one message < t+1
        tr.note((1,))
        tr.note((1,))
        tr.end_round()
        assert 1 in tr

    def test_counts_reset_between_rounds(self):
        tr = MessageProperTracker(BINARY, own_value=0, t=1)
        tr.note((1,))
        tr.end_round()
        tr.note((1,))
        tr.end_round()
        # One message per round never reaches t+1 within a round.
        assert 1 not in tr

    def test_domain_flood_on_2t_plus_one_split(self):
        problem = AgreementProblem((0, 1, 2, 3))
        tr = MessageProperTracker(problem, own_value=0, t=1)
        tr.note((1,))
        tr.note((2,))
        tr.note((3,))
        tr.end_round()
        assert tr.proper == {0, 1, 2, 3}

    def test_no_flood_when_value_has_support(self):
        tr = MessageProperTracker(BINARY, own_value=0, t=1)
        tr.note((0,))
        tr.note((0,))
        tr.note((1,))
        tr.end_round()
        assert tr.proper == {0}

    def test_proper_is_monotone(self):
        tr = MessageProperTracker(BINARY, own_value=0, t=1)
        tr.note((1,))
        tr.note((1,))
        tr.end_round()
        before = set(tr.proper)
        tr.end_round()
        tr.end_round()
        assert tr.proper >= before
