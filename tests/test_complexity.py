"""The cost models of analysis.complexity, pinned against measured runs."""

import pytest

from repro.adversaries.generic import RandomByzantineAdversary
from repro.analysis.complexity import (
    CostEstimate,
    dls_all_decided_bound,
    eig_level_nodes,
    eig_rounds,
    eig_tree_nodes,
    phase_king_rounds,
    restricted_all_decided_bound,
    transform_decision_round,
)
from repro.classic.eig import EIGSpec
from repro.classic.phase_king import PhaseKingSpec
from repro.classic.runner import classic_factory
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.homonyms.transform import transform_factory, transform_horizon
from repro.psync.dls_homonyms import dls_factory
from repro.psync.restricted import restricted_factory
from repro.sim.partial import SilenceUntil
from repro.sim.runner import run_agreement


class TestClassicModels:
    @pytest.mark.parametrize("ell,t", [(4, 1), (7, 2), (10, 3)])
    def test_eig_round_model_matches_measurement(self, ell, t):
        spec = EIGSpec(ell, t, BINARY)
        params = SystemParams(n=ell, ell=ell, t=t)
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(ell, ell),
            factory=classic_factory(spec),
            proposals={k: k % 2 for k in range(ell - t)},
            byzantine=tuple(range(ell - t, ell)),
            max_rounds=spec.max_rounds + 2,
        )
        # 0-indexed last decision round = rounds - 1.
        assert result.verdict.last_decision_round == eig_rounds(t) - 1

    @pytest.mark.parametrize("ell,t", [(5, 1), (9, 2)])
    def test_phase_king_round_model(self, ell, t):
        spec = PhaseKingSpec(ell, t, BINARY)
        params = SystemParams(n=ell, ell=ell, t=t)
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(ell, ell),
            factory=classic_factory(spec),
            proposals={k: k % 2 for k in range(ell - t)},
            byzantine=tuple(range(ell - t, ell)),
            max_rounds=spec.max_rounds + 2,
        )
        assert result.verdict.last_decision_round == phase_king_rounds(t) - 1

    def test_eig_tree_node_formula(self):
        # ell=4, t=1: levels 0..2 -> 1 + 4 + 12 = 17 nodes.
        assert eig_tree_nodes(4, 1) == 17
        assert eig_level_nodes(4, 0) == 1
        assert eig_level_nodes(4, 1) == 4
        assert eig_level_nodes(4, 2) == 12

    def test_eig_state_never_exceeds_tree_bound(self):
        spec = EIGSpec(4, 1, BINARY)
        params = SystemParams(n=4, ell=4, t=1)
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(4, 4),
            factory=classic_factory(spec),
            proposals={k: k % 2 for k in range(3)},
            byzantine=(3,),
            adversary=RandomByzantineAdversary(seed=1),
            max_rounds=spec.max_rounds + 1,
        )
        for proc in result.processes:
            if proc is not None:
                assert len(proc.state.tree) <= eig_tree_nodes(4, 1)


class TestTransformModel:
    @pytest.mark.parametrize("ell,t,n", [(4, 1, 6), (7, 2, 9)])
    def test_decision_round_formula_exact(self, ell, t, n):
        spec = EIGSpec(ell, t, BINARY)
        params = SystemParams(n=n, ell=ell, t=t)
        byz = tuple(range(n - t, n))
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(n, ell),
            factory=transform_factory(spec),
            proposals={k: k % 2 for k in range(n - t)},
            byzantine=byz,
            max_rounds=transform_horizon(spec),
        )
        assert result.verdict.last_decision_round == \
            transform_decision_round(spec.max_rounds)


class TestPsyncBounds:
    @pytest.mark.parametrize("gst", [0, 16])
    def test_dls_bound_is_sound(self, gst):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(7, 6),
            factory=dls_factory(params, BINARY),
            proposals={k: k % 2 for k in range(6)},
            byzantine=(6,),
            adversary=RandomByzantineAdversary(seed=2),
            drop_schedule=SilenceUntil(gst) if gst else None,
            max_rounds=dls_all_decided_bound(params, gst) + 8,
        )
        assert result.verdict.ok
        assert result.verdict.last_decision_round <= \
            dls_all_decided_bound(params, gst)

    @pytest.mark.parametrize("gst", [0, 16])
    def test_restricted_bound_is_sound(self, gst):
        params = SystemParams(
            n=4, ell=2, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(4, 2),
            factory=restricted_factory(params, BINARY),
            proposals={k: k % 2 for k in range(3)},
            byzantine=(3,),
            drop_schedule=SilenceUntil(gst) if gst else None,
            max_rounds=restricted_all_decided_bound(params, gst) + 8,
        )
        assert result.verdict.ok
        assert result.verdict.last_decision_round <= \
            restricted_all_decided_bound(params, gst)

    def test_message_budget_covers_measurement(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        estimate = CostEstimate.for_dls(params, 0)
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(7, 6),
            factory=dls_factory(params, BINARY),
            proposals={k: k % 2 for k in range(6)},
            byzantine=(6,),
            max_rounds=estimate.rounds,
        )
        assert result.verdict.ok
        assert result.metrics.correct_messages <= estimate.correct_messages
