"""Solvability atlas: provenance fusion, streaming resume, conflicts.

The atlas's three contracts, pinned here:

* **fusion** -- a cell verdict needs the closed-form claim *and*
  non-symbolic evidence; decisive evidence contradicting the closed
  form is a hard :class:`~repro.core.errors.AtlasConflict`; weaker
  grades corroborate without proving.
* **streaming** -- the JSONL log is append-only and resumable: a run
  resumed mid-lattice (including from a torn final line) finishes
  byte-for-byte identical to a fresh run.
* **conflict policy end to end** -- a seeded known-violation witness
  planted inside the predicted-solvable region fails the whole sweep.
"""

import json

import pytest

from repro.analysis.bounds import governing_condition, solvable
from repro.atlas import (
    CONFLICT,
    CONSISTENT,
    PROVED_SOLVABLE,
    WITNESSED_UNSOLVABLE,
    AtlasLog,
    LatticeSpec,
    aggregate,
    aggregate_incremental,
    budget_skipped_evidence,
    closed_form_evidence,
    fuse_evidence,
    known_violation_fixture,
    quick_lattice,
    render_json,
    render_markdown,
    run_atlas,
    run_atlas_unit,
)
from repro.cli import main
from repro.core.errors import (
    AtlasConflict,
    AtlasLogCorrupt,
    ConfigurationError,
    ProvenanceError,
)
from repro.core.params import Synchrony, SystemParams
from repro.experiments.campaign import CampaignCache, enumerate_atlas_units

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS

SOLVABLE = SystemParams(n=4, ell=4, t=1)
UNSOLVABLE = SystemParams(n=3, ell=3, t=1)

#: A one-n lattice: 24 cells, all predicted unsolvable, seconds to run.
TINY = LatticeSpec(n_min=3, n_max=3, t_values=(1,), explore_max_n=3)


def _ev(kind, claim, grade, source="test", detail="detail"):
    return {"kind": kind, "source": source, "claim": claim, "grade": grade,
            "detail": detail}


class TestClosedForm:
    def test_claim_matches_the_predicate(self):
        assert closed_form_evidence(SOLVABLE)["claim"] == "solvable"
        assert closed_form_evidence(UNSOLVABLE)["claim"] == "unsolvable"

    def test_detail_instantiates_the_condition(self):
        item = closed_form_evidence(
            SystemParams(n=9, ell=6, t=1, synchrony=PSYNC)
        )
        assert "2*ell" in item["detail"]
        assert item["grade"] == "theorem"
        assert item["kind"] == "closed-form"


class TestFusion:
    def test_missing_closed_form_raises(self):
        with pytest.raises(ProvenanceError):
            fuse_evidence(
                SOLVABLE, [_ev("campaign", "solvable", "verdict")]
            )

    def test_symbolic_only_raises(self):
        # ``consistent`` requires both evidence kinds present: the
        # closed form alone is never enough for a verdict.
        with pytest.raises(ProvenanceError):
            fuse_evidence(SOLVABLE, [closed_form_evidence(SOLVABLE)])

    def test_consistent_needs_only_presence_not_decision(self):
        verdict = fuse_evidence(UNSOLVABLE, [
            closed_form_evidence(UNSOLVABLE),
            _ev("campaign", None, "inconclusive"),
        ])
        assert verdict == CONSISTENT

    def test_certificate_supports_without_proving(self):
        verdict = fuse_evidence(SOLVABLE, [
            closed_form_evidence(SOLVABLE),
            _ev("explorer", "solvable", "certificate"),
        ])
        assert verdict == CONSISTENT

    def test_derived_demonstration_supports_without_proving(self):
        verdict = fuse_evidence(UNSOLVABLE, [
            closed_form_evidence(UNSOLVABLE),
            _ev("campaign", "unsolvable", "derived"),
        ])
        assert verdict == CONSISTENT

    def test_campaign_verdict_proves_solvable(self):
        verdict = fuse_evidence(SOLVABLE, [
            closed_form_evidence(SOLVABLE),
            _ev("campaign", "solvable", "verdict"),
        ])
        assert verdict == PROVED_SOLVABLE

    def test_witness_proves_unsolvable(self):
        verdict = fuse_evidence(UNSOLVABLE, [
            closed_form_evidence(UNSOLVABLE),
            _ev("explorer", "unsolvable", "witness"),
        ])
        assert verdict == WITNESSED_UNSOLVABLE

    def test_closed_form_vs_witness_conflict_raises(self):
        with pytest.raises(AtlasConflict):
            fuse_evidence(SOLVABLE, [
                closed_form_evidence(SOLVABLE),
                _ev("explorer", "unsolvable", "witness"),
            ])

    def test_closed_form_vs_battery_conflict_raises(self):
        with pytest.raises(AtlasConflict):
            fuse_evidence(SOLVABLE, [
                closed_form_evidence(SOLVABLE),
                _ev("campaign", "unsolvable", "verdict"),
            ])

    def test_non_strict_returns_conflict_verdict(self):
        verdict = fuse_evidence(
            SOLVABLE,
            [closed_form_evidence(SOLVABLE),
             _ev("explorer", "unsolvable", "witness")],
            strict=False,
        )
        assert verdict == CONFLICT

    def test_unconfirmed_witness_never_conflicts(self):
        verdict = fuse_evidence(SOLVABLE, [
            closed_form_evidence(SOLVABLE),
            _ev("explorer", "unsolvable", "unconfirmed"),
        ])
        assert verdict == CONSISTENT

    def test_fixture_conflicts_on_any_solvable_cell(self):
        with pytest.raises(AtlasConflict):
            fuse_evidence(SOLVABLE, [
                closed_form_evidence(SOLVABLE),
                _ev("campaign", "solvable", "verdict"),
                known_violation_fixture(),
            ])


class TestLattice:
    def test_enumeration_is_deterministic_with_unique_labels(self):
        cells_a = quick_lattice().cells()
        cells_b = quick_lattice().cells()
        assert cells_a == cells_b
        labels = [c.label for c in cells_a]
        assert len(set(labels)) == len(labels)
        # n=3..5 x ell=1..n x 8 models.
        assert len(cells_a) == (3 + 4 + 5) * 8

    def test_explorer_scope_gates_size_and_family(self):
        lattice = LatticeSpec(n_min=3, n_max=4, explore_max_n=3)
        for cell in lattice.cells():
            restricted_numerate = (
                cell.params.restricted and cell.params.numerate
            )
            expected = cell.params.n <= 3 and not restricted_numerate
            assert cell.with_explorer is expected

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            LatticeSpec(n_min=5, n_max=4)
        with pytest.raises(ConfigurationError):
            LatticeSpec(t_values=())
        with pytest.raises(ConfigurationError):
            LatticeSpec(models=())


class TestAtlasUnit:
    def test_solvable_psync_cell_covers_both_timing_models(self):
        result = run_atlas_unit(
            SystemParams(n=4, ell=2, t=1, synchrony=PSYNC,
                         numerate=True, restricted=True),
            quick=True,
        )
        sources = [e["source"] for e in result["evidence"]]
        assert any(s.startswith("validation slice") for s in sources)
        assert any(s.startswith("delay-model slice") for s in sources)
        assert all(e["claim"] == "solvable" for e in result["evidence"])

    def test_unsolvable_cell_yields_witness_demonstration(self):
        # n=5, ell=3t: the Figure 1 scenario runs and exhibits the
        # contradiction, so the demonstration is witness-grade.
        result = run_atlas_unit(SystemParams(n=5, ell=3, t=1), quick=True)
        (item,) = result["evidence"]
        assert item["claim"] == "unsolvable"
        assert item["grade"] == "witness"
        assert result["demonstration"]
        assert result["demonstration_kind"] == "scenario"

    def test_psl_reduction_is_derived_not_witness(self):
        # n=3 <= 3t: the PSL impossibility is cited, not machine-checked
        # here, so its campaign evidence only supports the claim.
        result = run_atlas_unit(UNSOLVABLE, quick=True)
        (item,) = result["evidence"]
        assert item["claim"] == "unsolvable"
        assert item["grade"] == "derived"

    def test_explorer_evidence_carries_replayed_witness(self):
        result = run_atlas_unit(
            SystemParams(n=3, ell=3, t=1, synchrony=PSYNC),
            quick=True, with_explorer=True,
        )
        explorer = [e for e in result["evidence"]
                    if e["kind"] == "explorer"]
        assert explorer, "explorer evidence missing"
        assert explorer[0]["grade"] == "witness"
        assert "witness" in explorer[0]


class TestStream:
    def test_append_then_stream_roundtrips(self, tmp_path):
        log = AtlasLog(tmp_path / "log.jsonl")
        log.reset()
        rows = [{"unit_id": f"u{i}", "value": i} for i in range(5)]
        for row in rows:
            log.append(row)
        assert list(log.rows()) == rows
        assert list(log.rows(limit=2)) == rows[:2]

    def test_torn_final_line_is_invisible(self, tmp_path):
        log = AtlasLog(tmp_path / "log.jsonl")
        log.reset()
        log.append({"unit_id": "u0"})
        with log.path.open("a") as fh:
            fh.write('{"unit_id": "u1"')  # no newline: torn append
        assert [r["unit_id"] for r in log.rows()] == ["u0"]

    def test_resume_prefix_truncates_at_first_mismatch(self, tmp_path):
        log = AtlasLog(tmp_path / "log.jsonl")
        log.reset()
        for uid in ("a", "b", "stale", "d"):
            log.append({"unit_id": uid})
        kept = log.resume_prefix(["a", "b", "c", "d"])
        assert kept == 2
        assert [r["unit_id"] for r in log.rows()] == ["a", "b"]

    def test_resume_prefix_of_missing_file_is_zero(self, tmp_path):
        log = AtlasLog(tmp_path / "fresh.jsonl")
        assert log.resume_prefix(["a"]) == 0
        assert log.path.exists()


class TestDriver:
    def _fresh(self, tmp_path, name, **kwargs):
        path = tmp_path / name
        outcome = run_atlas(TINY, path, quick=True, **kwargs)
        return path, outcome

    def test_jsonl_resume_mid_lattice_equals_fresh_byte_for_byte(
        self, tmp_path
    ):
        fresh_path, fresh = self._fresh(tmp_path, "fresh.jsonl")
        assert fresh.written == fresh.cells_total

        resumed_path = tmp_path / "resumed.jsonl"
        lines = fresh_path.read_bytes().splitlines(keepends=True)
        resumed_path.write_bytes(b"".join(lines[:7]) + b'{"torn')
        resumed = run_atlas(TINY, resumed_path, quick=True, resume=True)
        assert resumed.resumed == 7
        assert resumed.written == resumed.cells_total - 7
        assert resumed_path.read_bytes() == fresh_path.read_bytes()

    def test_crash_mid_cell_then_resume_is_byte_identical(
        self, tmp_path, monkeypatch
    ):
        """Kill the driver mid-cell; resume must finish byte-for-byte.

        The crash is injected into the unit executor itself (the driver
        dies *between* appends), then the torn-final-line case is
        layered on top by appending the partial row the dying process
        would have been writing.
        """
        import repro.atlas.driver as driver_mod

        fresh_path, fresh = self._fresh(tmp_path, "fresh.jsonl")

        crash_after = 5
        calls = {"n": 0}
        real_execute = driver_mod.execute_unit

        def dying_execute(unit):
            if calls["n"] >= crash_after:
                raise KeyboardInterrupt("simulated mid-cell kill")
            calls["n"] += 1
            return real_execute(unit)

        crashed_path = tmp_path / "crashed.jsonl"
        monkeypatch.setattr(driver_mod, "execute_unit", dying_execute)
        with pytest.raises(KeyboardInterrupt):
            run_atlas(TINY, crashed_path, quick=True)
        monkeypatch.setattr(driver_mod, "execute_unit", real_execute)

        # The log holds exactly the cells fused before the kill...
        survivors = crashed_path.read_bytes()
        assert survivors.endswith(b"\n")
        assert len(survivors.splitlines()) == crash_after
        # ...plus, in the worst crash, a torn final line mid-append.
        with crashed_path.open("ab") as fh:
            fh.write(b'{"unit_id": "torn')

        resumed = run_atlas(TINY, crashed_path, quick=True, resume=True)
        assert resumed.resumed == crash_after
        assert resumed.written == resumed.cells_total - crash_after
        assert crashed_path.read_bytes() == fresh_path.read_bytes()

    def test_crash_before_any_cell_resumes_from_scratch(
        self, tmp_path, monkeypatch
    ):
        import repro.atlas.driver as driver_mod

        fresh_path, _ = self._fresh(tmp_path, "fresh.jsonl")

        def dying_execute(unit):
            raise KeyboardInterrupt("simulated kill before first cell")

        crashed_path = tmp_path / "crashed.jsonl"
        monkeypatch.setattr(driver_mod, "execute_unit", dying_execute)
        with pytest.raises(KeyboardInterrupt):
            run_atlas(TINY, crashed_path, quick=True)
        monkeypatch.undo()

        assert crashed_path.read_bytes() == b""
        resumed = run_atlas(TINY, crashed_path, quick=True, resume=True)
        assert resumed.resumed == 0
        assert resumed.written == resumed.cells_total
        assert crashed_path.read_bytes() == fresh_path.read_bytes()

    def test_unit_cache_skips_execution_on_resume(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        first_path, first = self._fresh(tmp_path, "a.jsonl", cache=cache)
        second_path, second = self._fresh(
            tmp_path, "b.jsonl", cache=cache, resume=True
        )
        assert first.executed == first.cells_total
        assert second.executed == 0
        assert second.cached == second.cells_total
        assert second_path.read_bytes() == first_path.read_bytes()

    def test_every_cell_carries_non_symbolic_evidence(self, tmp_path):
        path, outcome = self._fresh(tmp_path, "atlas.jsonl")
        agg = aggregate(AtlasLog(path).rows())
        assert agg.symbolic_only == []
        assert agg.conflicts == []
        assert outcome.ok

    def test_injected_witness_conflict_fails_the_run(self, tmp_path):
        target = next(
            c.label for c in TINY.cells()
            if c.params.synchrony is PSYNC
        )
        with pytest.raises(AtlasConflict):
            run_atlas(
                TINY, tmp_path / "log.jsonl", quick=True,
                inject={target: [
                    {"kind": "explorer", "source": "fixture",
                     "claim": "solvable", "grade": "witness",
                     "detail": "forged"},
                ]},
            )

    def test_injection_is_incompatible_with_resume(self, tmp_path):
        # A resumed prefix would bypass the injected evidence, turning
        # the conflict fixture into a silent no-op; refuse the combo.
        with pytest.raises(ConfigurationError):
            run_atlas(
                TINY, tmp_path / "log.jsonl", quick=True, resume=True,
                inject={TINY.cells()[0].label: [known_violation_fixture()]},
            )

    def test_non_strict_records_conflict_rows(self, tmp_path):
        target = TINY.cells()[0].label
        path = tmp_path / "log.jsonl"
        outcome = run_atlas(
            TINY, path, quick=True, strict=False,
            inject={target: [
                {"kind": "explorer", "source": "fixture",
                 "claim": "solvable", "grade": "witness",
                 "detail": "forged"},
            ]},
        )
        assert not outcome.ok
        assert outcome.verdicts[CONFLICT] == 1
        rows = list(AtlasLog(path).rows())
        assert rows[0]["verdict"] == CONFLICT


class TestRender:
    def _rows(self, tmp_path):
        path, _ = TestDriver()._fresh(tmp_path, "render.jsonl")
        return path, list(AtlasLog(path).rows())

    def test_markdown_reproduces_the_four_conditions(self, tmp_path):
        path, rows = self._rows(tmp_path)
        agg = aggregate(iter(rows))
        text = render_markdown(agg, TINY.describe(), path.name)
        for condition in ("ell > 3t", "2*ell > n + 3t", "ell > t"):
            assert condition in text
        assert "zero CONFLICT cells" in text
        assert "non-symbolic evidence" in text

    def test_json_document_is_valid_and_consistent(self, tmp_path):
        path, rows = self._rows(tmp_path)
        agg = aggregate(iter(rows))
        data = json.loads(render_json(agg, TINY.describe(), path.name))
        assert data["cells"] == len(rows)
        assert data["ok"] is True
        assert len(data["table1"]) == 4
        assert all(entry["condition"] for entry in data["table1"])

    def test_boundary_map_glyphs_cover_every_ell(self, tmp_path):
        path, rows = self._rows(tmp_path)
        agg = aggregate(iter(rows))
        ((n, t), per_model) = next(iter(agg.maps.items()))
        assert (n, t) == (3, 1)
        for per_ell in per_model.values():
            assert set(per_ell) == {1, 2, 3}


class TestUnits:
    def test_atlas_units_hash_the_variant(self):
        cells = [("cell", SOLVABLE, "campaign"),
                 ("cell2", SOLVABLE, "campaign+explorer")]
        units = enumerate_atlas_units(cells, seed=0, quick=True)
        assert units[0].unit_id != units[1].unit_id
        assert all(u.kind == "atlas" for u in units)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            enumerate_atlas_units(
                [("cell", SOLVABLE, ""), ("cell", SOLVABLE, "")]
            )


class TestCLI:
    def test_atlas_subcommand_quick_smoke(self, tmp_path, capsys):
        code = main([
            "atlas", "--max-n", "3", "--explore-max-n", "0",
            "--log", str(tmp_path / "atlas.jsonl"),
            "--markdown", str(tmp_path / "atlas.md"),
            "--json", str(tmp_path / "atlas.json"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 CONFLICT cells" in out
        assert (tmp_path / "atlas.md").exists()
        assert (tmp_path / "atlas.json").exists()

    def test_atlas_inject_conflict_exits_nonzero(self, tmp_path, capsys):
        code = main([
            "atlas", "--max-n", "4", "--explore-max-n", "0",
            "--log", str(tmp_path / "atlas.jsonl"),
            "--inject-conflict",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "ATLAS CONFLICT" in captured.err


class TestStreamCorruption:
    """Regression: `AtlasLog.rows` must not swallow mid-file corruption.

    Pre-fix, *any* unparsable line silently ended iteration, so a
    corrupt line in the middle of a log made every later row -- real,
    fsynced data -- vanish without a whisper.  Only a torn **final**
    line (the one failure mode append-only writing can produce) is
    legitimate wear; anything else must raise
    :class:`~repro.core.errors.AtlasLogCorrupt`.
    """

    def _log(self, tmp_path):
        log = AtlasLog(tmp_path / "log.jsonl")
        log.reset()
        for uid in ("u0", "u1", "u2"):
            log.append({"unit_id": uid})
        return log

    def test_mid_file_corruption_raises(self, tmp_path):
        log = self._log(tmp_path)
        lines = log.path.read_text().splitlines(keepends=True)
        lines[1] = "!! not json !!\n"
        log.path.write_text("".join(lines))
        rows = []
        with pytest.raises(AtlasLogCorrupt) as err:
            for row in log.rows():
                rows.append(row)
        # Rows before the corruption are still yielded; the error names
        # both the corrupt line and the well-formed row after it.
        assert [r["unit_id"] for r in rows] == ["u0"]
        assert "line 2" in str(err.value)
        assert "line 3" in str(err.value)

    def test_non_dict_row_mid_file_raises(self, tmp_path):
        log = self._log(tmp_path)
        lines = log.path.read_text().splitlines(keepends=True)
        lines[1] = "[1, 2, 3]\n"
        log.path.write_text("".join(lines))
        with pytest.raises(AtlasLogCorrupt):
            list(log.rows())

    def test_torn_final_line_is_still_tolerated(self, tmp_path):
        log = self._log(tmp_path)
        with log.path.open("a") as fh:
            fh.write('{"unit_id": "torn"')  # crash mid-append
        assert [r["unit_id"] for r in log.rows()] == ["u0", "u1", "u2"]

    def test_corrupt_final_line_with_newline_is_tolerated(self, tmp_path):
        # A torn line can end exactly at a flushed newline boundary
        # when the tear happened inside an earlier buffered batch write.
        log = self._log(tmp_path)
        with log.path.open("a") as fh:
            fh.write("{half a row\n")
        assert [r["unit_id"] for r in log.rows()] == ["u0", "u1", "u2"]

    def test_limit_short_of_corruption_does_not_raise(self, tmp_path):
        log = self._log(tmp_path)
        lines = log.path.read_text().splitlines(keepends=True)
        lines[2] = "!! not json !!\n"
        log.path.write_text("".join(lines) + '{"unit_id": "u3"}\n')
        # A bounded read that never reaches the damage stays clean.
        assert [r["unit_id"] for r in log.rows(limit=2)] == ["u0", "u1"]


class TestAppendMany:
    def test_batch_append_equals_row_appends(self, tmp_path):
        one = AtlasLog(tmp_path / "one.jsonl")
        one.reset()
        rows = [{"unit_id": f"u{i}", "value": i} for i in range(10)]
        for row in rows:
            one.append(row)
        batch = AtlasLog(tmp_path / "batch.jsonl")
        batch.reset()
        batch.append_many(rows)
        assert batch.path.read_bytes() == one.path.read_bytes()

    def test_batch_append_fsyncs_once(self, tmp_path, monkeypatch):
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.atlas.stream.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd)),
        )
        log = AtlasLog(tmp_path / "log.jsonl")
        log.reset()
        log.append_many([{"unit_id": f"u{i}"} for i in range(50)])
        assert len(synced) == 1


class TestClosedFormT2:
    """Table 1 regressions at ``t = 2``: the n = 3t and 3t + 1 walls."""

    def test_n_equals_3t_is_unsolvable_in_every_model(self):
        # n = 6 = 3t: the universal PSL requirement fails, so every
        # model family is unsolvable regardless of ell.
        for synchrony in (Synchrony.SYNCHRONOUS, PSYNC):
            for numerate in (False, True):
                for restricted in (False, True):
                    params = SystemParams(
                        n=6, ell=6, t=2, synchrony=synchrony,
                        numerate=numerate, restricted=restricted,
                    )
                    assert not solvable(params)
                    assert "n > 3t" in governing_condition(params)
                    item = closed_form_evidence(params)
                    assert item["claim"] == "unsolvable"
                    assert item["grade"] == "theorem"

    def test_sync_boundary_at_n_3t_plus_1(self):
        # n = 7 > 3t: synchronous solvability turns exactly at
        # ell > 3t = 6.
        assert solvable(SystemParams(n=7, ell=7, t=2))
        assert not solvable(SystemParams(n=7, ell=6, t=2))

    def test_psync_boundary_at_n_3t_plus_1(self):
        # n = 7, t = 2: partially synchronous needs 2*ell > n + 3t
        # = 13, so ell = 7 squeaks through and ell = 6 does not.
        assert solvable(SystemParams(n=7, ell=7, t=2, synchrony=PSYNC))
        assert not solvable(
            SystemParams(n=7, ell=6, t=2, synchrony=PSYNC)
        )

    def test_restricted_numerate_boundary_is_ell_over_t(self):
        # Theorems 14/15 at t = 2: ell > t in both synchrony models.
        for synchrony in (Synchrony.SYNCHRONOUS, PSYNC):
            assert solvable(SystemParams(
                n=7, ell=3, t=2, synchrony=synchrony,
                numerate=True, restricted=True,
            ))
            assert not solvable(SystemParams(
                n=7, ell=2, t=2, synchrony=synchrony,
                numerate=True, restricted=True,
            ))

    def test_t2_lattice_predictions_match_the_predicate(self, tmp_path):
        # A t = 2 lattice spanning both walls, swept entirely outside
        # the campaign envelope: every row's closed-form prediction
        # must reproduce the Table 1 predicate cell by cell.
        spec = LatticeSpec(
            n_min=6, n_max=7, t_values=(2,), explore_max_n=0,
            campaign_max_n=3,
        )
        path = tmp_path / "t2.jsonl"
        outcome = run_atlas(spec, path, quick=True)
        assert outcome.ok
        rows = list(AtlasLog(path).rows())
        assert len(rows) == len(spec.cells()) == (6 + 7) * 8
        for row, cell in zip(rows, spec.cells()):
            expected = "solvable" if solvable(cell.params) else "unsolvable"
            assert row["predicted"] == expected


class TestBudgetTiers:
    """The campaign cost envelope: explicit, provenance-visible skips."""

    def test_cells_beyond_the_envelope_lose_workloads(self):
        spec = LatticeSpec(
            n_min=3, n_max=4, t_values=(1,), explore_max_n=4,
            campaign_max_n=3,
        )
        inside = [c for c in spec.cells() if c.params.n == 3]
        beyond = [c for c in spec.cells() if c.params.n == 4]
        assert beyond and all(not c.with_campaign for c in beyond)
        assert all(c.variant == "budget-skipped" for c in beyond)
        # Outside the campaign envelope the explorer is off too.
        assert all(not c.with_explorer for c in beyond)
        assert all(c.with_campaign for c in inside)

    def test_no_envelope_means_every_cell_runs(self):
        spec = LatticeSpec(n_min=3, n_max=4, t_values=(1,),
                           explore_max_n=0)
        assert all(c.with_campaign for c in spec.cells())

    def test_envelope_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            LatticeSpec(n_min=3, n_max=4, campaign_max_n=0)

    def test_describe_names_the_envelope(self):
        spec = LatticeSpec(n_min=3, n_max=8, campaign_max_n=4)
        assert "campaign budget n<=4" in spec.describe()

    def test_budget_skipped_evidence_is_inconclusive(self):
        item = budget_skipped_evidence(SystemParams(n=9, ell=9, t=2))
        assert item["kind"] == "campaign"
        assert item["claim"] is None
        assert item["grade"] == "inconclusive"
        assert "budget-skipped" in item["detail"]
        assert "n=9" in item["detail"]

    def test_budget_skipped_unit_runs_no_workloads(self):
        result = run_atlas_unit(
            SystemParams(n=9, ell=9, t=2), quick=True,
            budget_skipped=True,
        )
        assert result["records"] == []
        assert result["algorithm"] == ""
        assert result["demonstration_kind"] == ""
        (item,) = result["evidence"]
        assert "budget-skipped" in item["detail"]

    def test_budget_rows_fuse_consistent_with_explicit_note(
        self, tmp_path
    ):
        spec = LatticeSpec(
            n_min=3, n_max=4, t_values=(1,), explore_max_n=0,
            campaign_max_n=3,
        )
        path = tmp_path / "budget.jsonl"
        outcome = run_atlas(spec, path, quick=True)
        assert outcome.ok
        skipped = [r for r in AtlasLog(path).rows()
                   if r["cell"]["n"] == 4]
        assert skipped
        for row in skipped:
            # Never silently absent: the cell is in the atlas, graded
            # ``consistent``, and says *why* nothing empirical ran.
            assert row["verdict"] == CONSISTENT
            assert row["runs"] == 0
            notes = [e for e in row["evidence"]
                     if "budget-skipped" in e.get("detail", "")]
            assert notes, "budget exclusion missing from provenance"

    def test_budget_rows_are_never_symbolic_only(self, tmp_path):
        spec = LatticeSpec(
            n_min=3, n_max=4, t_values=(1,), explore_max_n=0,
            campaign_max_n=3,
        )
        path = tmp_path / "budget.jsonl"
        run_atlas(spec, path, quick=True)
        agg = aggregate(AtlasLog(path).rows())
        assert agg.symbolic_only == []


class TestIncrementalRender:
    """Cursor-backed re-rendering: O(new rows), never O(log)."""

    def _log(self, tmp_path):
        path, _ = TestDriver()._fresh(tmp_path, "atlas.jsonl")
        return path

    def test_first_fold_is_full_then_zero_incremental(self, tmp_path):
        path = self._log(tmp_path)
        cursor = tmp_path / "cursor.json"
        agg, folded, incremental = aggregate_incremental(path, cursor)
        assert (folded, incremental) == (agg.cells, False)
        agg2, folded2, incremental2 = aggregate_incremental(path, cursor)
        assert (folded2, incremental2) == (0, True)
        assert agg2.cells == agg.cells

    def test_appended_rows_fold_incrementally(self, tmp_path):
        path = self._log(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:10]))
        cursor = tmp_path / "cursor.json"
        aggregate_incremental(path, cursor)
        with path.open("ab") as fh:
            fh.write(b"".join(lines[10:]))
        agg, folded, incremental = aggregate_incremental(path, cursor)
        assert incremental
        assert folded == len(lines) - 10
        assert agg.cells == len(lines)

    def test_incremental_fold_equals_the_full_aggregate(self, tmp_path):
        path = self._log(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:7]))
        cursor = tmp_path / "cursor.json"
        aggregate_incremental(path, cursor)
        with path.open("ab") as fh:
            fh.write(b"".join(lines[7:]))
        agg, _, _ = aggregate_incremental(path, cursor)
        full = aggregate(AtlasLog(path).rows())
        assert agg.to_dict() == full.to_dict()

    def test_rewritten_log_falls_back_to_full_refold(self, tmp_path):
        path = self._log(tmp_path)
        cursor = tmp_path / "cursor.json"
        aggregate_incremental(path, cursor)
        # Rewrite the log with a different prefix (drop the first row):
        # the prefix hash no longer matches, so the cursor is unusable.
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[1:]))
        agg, folded, incremental = aggregate_incremental(path, cursor)
        assert not incremental
        assert folded == agg.cells == len(lines) - 1

    def test_garbage_cursor_is_ignored(self, tmp_path):
        path = self._log(tmp_path)
        cursor = tmp_path / "cursor.json"
        cursor.write_text("not json{")
        agg, folded, incremental = aggregate_incremental(path, cursor)
        assert not incremental
        assert folded == agg.cells

    def test_torn_final_line_stays_unfolded(self, tmp_path):
        path = self._log(tmp_path)
        cursor = tmp_path / "cursor.json"
        total, _, _ = aggregate_incremental(path, cursor)
        with path.open("ab") as fh:
            fh.write(b'{"unit_id": "torn')
        agg, folded, incremental = aggregate_incremental(path, cursor)
        assert incremental
        assert folded == 0
        assert agg.cells == total.cells

    def test_aggregates_round_trip_through_the_cursor_dict(
        self, tmp_path
    ):
        path = self._log(tmp_path)
        full = aggregate(AtlasLog(path).rows())
        from repro.atlas import AtlasAggregates

        clone = AtlasAggregates.from_dict(full.to_dict())
        assert clone.to_dict() == full.to_dict()
        assert clone.maps == full.maps
        assert clone.families == full.families

    def test_cli_render_is_incremental_on_the_second_call(
        self, tmp_path, capsys
    ):
        path = self._log(tmp_path)
        args = ["atlas", "render", "--log", str(path),
                "--markdown", str(tmp_path / "atlas.md")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "full refold" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "incremental: 0 rows folded" in second
        assert (tmp_path / "atlas.md").exists()
