"""Tests for the Figure 3 transformation T(A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.generic import (
    CrashAdversary,
    DuplicatorAdversary,
    EquivocatorAdversary,
    InputFlipAdversary,
    RandomByzantineAdversary,
)
from repro.classic.eig import EIGSpec
from repro.classic.phase_king import PhaseKingSpec
from repro.core.errors import BoundViolation
from repro.core.identity import (
    balanced_assignment,
    random_assignment,
    stacked_assignment,
)
from repro.core.params import SystemParams
from repro.core.problem import BINARY
from repro.homonyms.transform import (
    HomonymProcess,
    ROUNDS_PER_PHASE,
    transform_factory,
    transform_horizon,
)
from repro.sim.runner import run_agreement


def run_transform(n, ell, t, proposals, byz=(), adversary=None,
                  assignment=None, spec_cls=EIGSpec, numerate=False):
    spec = spec_cls(ell, t, BINARY)
    params = SystemParams(n=n, ell=ell, t=t, numerate=numerate)
    if assignment is None:
        assignment = balanced_assignment(n, ell)
    return run_agreement(
        params=params,
        assignment=assignment,
        factory=transform_factory(spec),
        proposals=proposals,
        byzantine=byz,
        adversary=adversary,
        max_rounds=transform_horizon(spec),
    )


class TestConstruction:
    def test_bound_enforced_at_process_creation(self):
        spec = EIGSpec(3, 1, BINARY, unchecked=True)
        with pytest.raises(BoundViolation):
            HomonymProcess(spec, 1, 0)

    def test_unchecked_escape_hatch(self):
        spec = EIGSpec(3, 1, BINARY, unchecked=True)
        proc = HomonymProcess(spec, 1, 0, unchecked=True)
        assert proc.identifier == 1

    def test_phase_mapping(self):
        assert HomonymProcess.phase_of(0) == (0, 0)
        assert HomonymProcess.phase_of(1) == (0, 1)
        assert HomonymProcess.phase_of(2) == (0, 2)
        assert HomonymProcess.phase_of(3) == (1, 0)
        assert HomonymProcess.phase_of(7) == (2, 1)


class TestHomonymRuns:
    """T(EIG) across assignments, Byzantine placements and attacks."""

    def test_no_homonyms_reduces_to_classic(self):
        result = run_transform(4, 4, 1, {k: 1 for k in range(3)}, byz=(3,))
        assert result.verdict.ok and result.verdict.agreed_value == 1

    def test_balanced_homonyms(self):
        result = run_transform(7, 4, 1, {k: k % 2 for k in range(6)}, byz=(6,))
        assert result.verdict.ok

    def test_stacked_homonyms(self):
        a = stacked_assignment(8, 4)
        result = run_transform(8, 4, 1, {k: k % 2 for k in range(7)},
                               byz=(7,), assignment=a)
        assert result.verdict.ok

    def test_byzantine_inside_homonym_group_still_terminates(self):
        # Assignment: id 1 held by slots 0 and 3; corrupt slot 0.  The
        # correct homonym slot 3 must terminate via the deciding round.
        a = balanced_assignment(7, 4)  # ids: 1,2,3,4,1,2,3
        result = run_transform(
            7, 4, 1, {k: 1 for k in range(1, 7)}, byz=(0,), assignment=a,
            adversary=RandomByzantineAdversary(seed=2),
        )
        assert result.verdict.ok and result.verdict.agreed_value == 1
        # The sharing slot decided despite its poisoned group.
        assert 4 in result.verdict.decisions

    def test_validity_all_zero_with_flip_attack(self):
        spec = EIGSpec(4, 1, BINARY)
        result = run_transform(
            7, 4, 1, {k: 0 for k in range(6)}, byz=(6,),
            adversary=InputFlipAdversary(transform_factory(spec), proposal=1),
        )
        assert result.verdict.ok and result.verdict.agreed_value == 0

    def test_equivocator_inside_group(self):
        spec = EIGSpec(4, 1, BINARY)
        result = run_transform(
            7, 4, 1, {k: k % 2 for k in range(1, 7)}, byz=(0,),
            adversary=EquivocatorAdversary(transform_factory(spec)),
        )
        assert result.verdict.ok

    def test_duplicator_attack(self):
        spec = EIGSpec(4, 1, BINARY)
        result = run_transform(
            7, 4, 1, {k: k % 2 for k in range(1, 7)}, byz=(0,),
            adversary=DuplicatorAdversary(transform_factory(spec)),
        )
        assert result.verdict.ok

    def test_crash_attack(self):
        spec = EIGSpec(4, 1, BINARY)
        result = run_transform(
            7, 4, 1, {k: k % 2 for k in range(6)}, byz=(6,),
            adversary=CrashAdversary(transform_factory(spec), crash_round=4),
        )
        assert result.verdict.ok

    def test_two_faults(self):
        result = run_transform(
            9, 7, 2, {k: k % 2 for k in range(7)}, byz=(7, 8),
            adversary=RandomByzantineAdversary(seed=9),
        )
        assert result.verdict.ok

    def test_phase_king_as_base_algorithm(self):
        result = run_transform(
            7, 5, 1, {k: k % 2 for k in range(6)}, byz=(6,),
            spec_cls=PhaseKingSpec,
        )
        assert result.verdict.ok

    def test_numerate_delivery_also_works(self):
        # Proposition 2 promises correctness for innumerate processes;
        # numerate delivery only adds information.
        result = run_transform(7, 4, 1, {k: 1 for k in range(6)}, byz=(6,),
                               numerate=True)
        assert result.verdict.ok and result.verdict.agreed_value == 1


class TestRoundOverhead:
    def test_three_rounds_per_simulated_round(self):
        """The transformation takes exactly 3x the base algorithm's
        rounds, plus the deciding round of the following phase."""
        spec = EIGSpec(4, 1, BINARY)
        result = run_transform(7, 4, 1, {k: 0 for k in range(6)}, byz=(6,))
        last = result.verdict.last_decision_round
        # EIG decides after t+1 = 2 simulated rounds (phases 0 and 1);
        # the earliest group decision appears in the deciding round of
        # phase 2, engine round 3*2 + 1 = 7.
        assert last == ROUNDS_PER_PHASE * spec.max_rounds + 1


@given(
    seed=st.integers(0, 30),
    byz_slot=st.integers(0, 6),
    assign_seed=st.integers(0, 10),
)
@settings(max_examples=20, deadline=None)
def test_transform_agreement_fuzz(seed, byz_slot, assign_seed):
    """Property: T(EIG) at n=7, ell=4, t=1 survives seeded chaos with any
    Byzantine slot on any random assignment."""
    assignment = random_assignment(7, 4, seed=assign_seed)
    proposals = {k: (k * 7 + seed) % 2 for k in range(7) if k != byz_slot}
    result = run_transform(
        7, 4, 1, proposals, byz=(byz_slot,), assignment=assignment,
        adversary=RandomByzantineAdversary(seed=seed),
    )
    assert result.verdict.ok
