"""Tests for the ASCII renderer and the command-line interface."""

import pytest

from repro.cli import main
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.render import (
    render_decision_summary,
    render_round,
    render_timeline,
)
from repro.sim.runner import run_agreement


@pytest.fixture(scope="module")
def sample_run():
    # n=6, ell=5: 2*ell = 10 > n + 3t = 9.  (n=5, ell=4 would be the
    # paper's famous *unsolvable* point!)
    params = SystemParams(
        n=6, ell=5, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )
    assignment = balanced_assignment(6, 5)
    proposals = {k: k % 2 for k in range(5)}
    result = run_agreement(
        params=params,
        assignment=assignment,
        factory=dls_factory(params, BINARY),
        proposals=proposals,
        byzantine=(5,),
        max_rounds=dls_horizon(params, 0),
    )
    return result, assignment, proposals


class TestTimeline:
    def test_has_one_row_per_process(self, sample_run):
        result, assignment, _ = sample_run
        text = render_timeline(result.trace, assignment, byzantine=(5,))
        rows = [line for line in text.splitlines() if line.startswith("p")]
        assert len(rows) == 6

    def test_marks_byzantine_rows(self, sample_run):
        result, assignment, _ = sample_run
        text = render_timeline(result.trace, assignment, byzantine=(5,))
        byz_row = [l for l in text.splitlines() if l.startswith("p5")][0]
        assert "byz" in byz_row and ("B" in byz_row or "b" in byz_row)

    def test_marks_decisions_with_value_digit(self, sample_run):
        result, assignment, _ = sample_run
        text = render_timeline(result.trace, assignment, byzantine=(5,))
        correct_rows = [l for l in text.splitlines()
                        if l.startswith("p") and "byz" not in l]
        assert all(("0" in row or "1" in row) for row in correct_rows)

    def test_phase_ruler(self, sample_run):
        result, assignment, _ = sample_run
        text = render_timeline(result.trace, assignment, byzantine=(5,),
                               rounds_per_phase=8)
        assert text.splitlines()[0].startswith("phase")

    def test_max_rounds_truncation(self, sample_run):
        result, assignment, _ = sample_run
        text = render_timeline(result.trace, assignment, max_rounds=4)
        row = [l for l in text.splitlines() if l.startswith("p0")][0]
        grid = row.split()[-1]
        assert len(grid) == 4


class TestRoundDump:
    def test_shows_payloads_and_decisions(self, sample_run):
        result, assignment, _ = sample_run
        last = result.verdict.last_decision_round
        text = render_round(result.trace, last, assignment)
        assert "DECIDES" in text

    def test_truncates_long_payloads(self, sample_run):
        result, assignment, _ = sample_run
        text = render_round(result.trace, 0, assignment)
        assert all(len(line) < 140 for line in text.splitlines())


class TestDecisionSummary:
    def test_lists_all_processes(self, sample_run):
        result, _, proposals = sample_run
        text = render_decision_summary(result.trace, proposals)
        for k in proposals:
            assert f"p{k}" in text


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1", "--n", "7", "--t", "1"]) == 0
        out = capsys.readouterr().out
        assert "ell > 3t" in out and "n=7" in out

    def test_check_reports_all_four_models(self, capsys):
        assert main(["check", "9", "6", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("solvable") == 4  # includes 'unsolvable'
        assert "unsolvable" in out

    def test_run_solvable_exits_zero(self, capsys):
        code = main([
            "run", "--n", "5", "--ell", "4", "--t", "1",
            "--model", "sync", "--attack", "silent", "--timeline",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK:" in out and "legend" in out

    def test_run_restricted_model(self, capsys):
        code = main([
            "run", "--n", "4", "--ell", "2", "--t", "1",
            "--numerate", "--restricted", "--attack", "chaos",
        ])
        assert code == 0
        assert "fig7-restricted" in capsys.readouterr().out

    def test_attack_fig1(self, capsys):
        assert main(["attack", "fig1", "--n", "4", "--t", "1"]) == 0
        assert "VIOLATED" in capsys.readouterr().out

    def test_attack_fig4(self, capsys):
        code = main(["attack", "fig4", "--n", "9", "--ell", "6", "--t", "1"])
        assert code == 0
        assert "gamma" in capsys.readouterr().out

    def test_attack_mirror(self, capsys):
        code = main(["attack", "mirror", "--n", "4", "--ell", "1", "--t", "1"])
        assert code == 0
        assert "multivalence" in capsys.readouterr().out

    def test_run_refuses_unsolvable_configuration(self, capsys):
        code = main(["run", "--n", "9", "--ell", "6", "--t", "1"])
        assert code == 2
        assert "UNSOLVABLE" in capsys.readouterr().out

    def test_run_eventual_delay_timing(self, capsys):
        code = main([
            "run", "--n", "6", "--ell", "5", "--t", "1", "--model", "psync",
            "--attack", "silent", "--timing", "eventual",
            "--delta", "2", "--gst-tick", "8", "--chaos", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "delay-based (delta=2" in out
        assert "network ticks" in out
        assert "basic-model" in out

    def test_run_bounded_delay_timing_is_punctual(self, capsys):
        code = main([
            "run", "--n", "6", "--ell", "5", "--t", "1", "--model", "psync",
            "--attack", "silent", "--timing", "bounded", "--delta", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no message was ever late" in out

    def test_run_rejects_delay_timing_with_gst_drops(self, capsys):
        code = main([
            "run", "--n", "6", "--ell", "5", "--t", "1", "--model", "psync",
            "--timing", "eventual", "--gst", "4",
        ])
        assert code == 2
        assert "drop --gst" in capsys.readouterr().err

    def test_run_rejects_delay_flags_without_delay_timing(self, capsys):
        code = main([
            "run", "--n", "6", "--ell", "5", "--t", "1", "--model", "psync",
            "--delta", "3",
        ])
        assert code == 2
        assert "--timing" in capsys.readouterr().err

    def test_run_rejects_eventual_only_flags_with_bounded_timing(self, capsys):
        code = main([
            "run", "--n", "6", "--ell", "5", "--t", "1", "--model", "psync",
            "--timing", "bounded", "--gst-tick", "50", "--chaos", "8",
        ])
        assert code == 2
        assert "--timing eventual" in capsys.readouterr().err

    def test_campaign_help_exposes_the_delay_family(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["campaign", "--help"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert "--delay" in out and "delay-model workload family" in out

    def test_campaign_delay_and_explore_are_exclusive(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["campaign", "--delay", "--explore"])
        assert exit_info.value.code == 2

    def test_table1_without_map(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "ell > 3t" in out and "boundary" not in out
