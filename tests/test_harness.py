"""Integration tests for the Table 1 experiment harness."""

import pytest

from repro.analysis.tables import boundary_map, table1_text
from repro.core.params import SystemParams, Synchrony
from repro.experiments.harness import (
    algorithm_for,
    evaluate_cell,
    evaluate_unsolvable_cell,
)
from repro.experiments.report import cell_grid_report, failures_report


class TestAlgorithmSelection:
    def test_sync_uses_transform(self):
        params = SystemParams(n=5, ell=4, t=1)
        name, _, _ = algorithm_for(params)
        assert name == "T(EIG)"

    def test_psync_uses_dls(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        name, _, _ = algorithm_for(params)
        assert name == "fig5-dls"

    def test_restricted_numerate_uses_fig7(self):
        params = SystemParams(
            n=4, ell=2, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        name, _, _ = algorithm_for(params)
        assert name == "fig7-restricted"

    def test_restricted_innumerate_falls_back(self):
        # Theorem 19: restriction without numeracy buys nothing; the
        # harness must use the general algorithms.
        params = SystemParams(n=5, ell=4, t=1, restricted=True)
        name, _, _ = algorithm_for(params)
        assert name == "T(EIG)"


class TestSolvableCells:
    def test_sync_cell_quick(self):
        cell = evaluate_cell(SystemParams(n=5, ell=4, t=1), quick=True)
        assert cell.predicted_solvable
        assert cell.empirically_consistent, failures_report([cell])
        assert len(cell.runs) > 10

    def test_restricted_cell_quick(self):
        cell = evaluate_cell(
            SystemParams(
                n=4, ell=2, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
                numerate=True, restricted=True,
            ),
            quick=True,
        )
        assert cell.empirically_consistent, failures_report([cell])


class TestUnsolvableCells:
    def test_sync_at_3t_uses_scenario(self):
        cell = evaluate_unsolvable_cell(SystemParams(n=4, ell=3, t=1))
        assert not cell.predicted_solvable
        assert "figure-1" in cell.demonstration
        assert cell.demonstration_kind == "scenario"
        assert cell.demonstration_checked
        assert cell.empirically_consistent

    def test_psync_gap_uses_partition(self):
        cell = evaluate_unsolvable_cell(
            SystemParams(
                n=9, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
            )
        )
        assert "figure-4" in cell.demonstration
        assert cell.demonstration_kind == "partition"
        assert cell.demonstration_checked
        assert cell.empirically_consistent

    def test_restricted_at_ell_le_t_uses_mirror(self):
        cell = evaluate_unsolvable_cell(
            SystemParams(
                n=4, ell=1, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
                numerate=True, restricted=True,
            )
        )
        assert "mirror" in cell.demonstration
        assert cell.demonstration_kind == "mirror"
        assert cell.demonstration_checked
        assert cell.empirically_consistent

    def test_below_psl_is_cited_not_run(self):
        cell = evaluate_unsolvable_cell(SystemParams(n=3, ell=3, t=1))
        assert "PSL" in cell.demonstration
        assert cell.demonstration_kind == "psl-citation"
        assert not cell.demonstration_checked

    def test_small_ell_dominated(self):
        cell = evaluate_unsolvable_cell(SystemParams(n=8, ell=2, t=1))
        assert "dominated" in cell.demonstration
        assert cell.demonstration_kind == "dominance"
        assert not cell.demonstration_checked

    def test_grading_ignores_message_text(self):
        # Provenance rides the structured kind: a checked-looking
        # message with a derived kind (or no kind) never upgrades.
        cell = evaluate_unsolvable_cell(SystemParams(n=4, ell=3, t=1))
        cell.demonstration_kind = "dominance"
        assert not cell.demonstration_checked
        cell.demonstration_kind = ""
        assert not cell.demonstration_checked


class TestReports:
    def test_grid_report_counts_consistency(self):
        cells = [
            evaluate_unsolvable_cell(SystemParams(n=4, ell=3, t=1)),
            evaluate_unsolvable_cell(SystemParams(n=3, ell=3, t=1)),
        ]
        text = cell_grid_report(cells)
        assert "2/2 cells consistent" in text

    def test_table1_text_contains_conditions(self):
        text = table1_text()
        assert "ell > 3t" in text and "2*ell > n + 3t" in text
        assert "n must be greater than 3t" in text

    def test_boundary_map_marks_thresholds(self):
        text = boundary_map(7, 1)
        lines = {
            line.split("  ")[0].strip(): line
            for line in text.splitlines()
            if "unrestricted" in line or "restricted" in line
        }
        sync_row = [l for l in text.splitlines() if l.startswith("sync  unres")][0]
        # ell = 4 is the first synchronous S for t=1.
        assert sync_row.index("S") > 0
