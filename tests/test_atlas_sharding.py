"""Shard striping and deterministic merge: the differential grid.

The sharded atlas's core promise, pinned property-style: for random
lattice specs, shard counts in 1..5, and kill points -- including torn
final JSONL lines per shard -- fusing the per-shard logs with
:func:`repro.atlas.merge.merge_shards` reproduces the unsharded
``atlas.jsonl`` **byte-for-byte**.  The merge's trust-boundary checks
get their own fixtures: divergent cross-shard duplicates raise
:class:`~repro.core.errors.AtlasConflict` with both provenance rows
attached, tampered verdicts raise
:class:`~repro.core.errors.AtlasMergeError`, and incomplete shard sets
surface as gaps instead of a silently partial atlas.  The shard
selector parser (shared with the campaign CLI) is pinned here too.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atlas import AtlasLog, LatticeSpec, merge_shards, run_atlas
from repro.cli import main
from repro.core.canonical import canonical_json
from repro.core.errors import (
    AtlasConflict,
    AtlasMergeError,
    ConfigurationError,
)
from repro.experiments.campaign import CampaignCache, parse_shard

#: The one-n lattice from test_atlas.py: 24 cells, seconds to sweep.
TINY = LatticeSpec(n_min=3, n_max=3, t_values=(1,), explore_max_n=3)

_dirs = itertools.count()


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    """One unit cache for the whole grid: each cell executes once."""
    return CampaignCache(tmp_path_factory.mktemp("unit-cache"))


@pytest.fixture(scope="module")
def scratch(tmp_path_factory):
    """Fresh directories inside hypothesis examples (tmp_path is
    function-scoped and would be reused across examples)."""

    def make() -> "object":
        return tmp_path_factory.mktemp(f"case{next(_dirs)}")

    return make


def _sweep(lattice, path, cache, shard=None):
    """Run one (possibly sharded) sweep through the shared cache."""
    return run_atlas(
        lattice, path, quick=True, cache=cache, resume=True, shard=shard
    )


_reference: dict[LatticeSpec, bytes] = {}


def _reference_bytes(lattice, scratch, cache) -> bytes:
    """The unsharded log for a lattice, computed once per module."""
    if lattice not in _reference:
        path = scratch() / "unsharded.jsonl"
        outcome = _sweep(lattice, path, cache)
        assert outcome.ok
        _reference[lattice] = path.read_bytes()
    return _reference[lattice]


def lattices() -> st.SearchStrategy:
    """Small random lattice specs (budget-tiered half the time)."""
    return st.builds(
        LatticeSpec,
        n_min=st.just(3),
        n_max=st.integers(3, 4),
        t_values=st.just((1,)),
        explore_max_n=st.sampled_from((0, 3)),
        campaign_max_n=st.sampled_from((None, 3)),
    )


class TestDifferentialGrid:
    @given(lattice=lattices(), shard_count=st.integers(1, 5))
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_merge_of_shards_is_byte_identical_to_unsharded(
        self, lattice, shard_count, scratch, cache
    ):
        expected = _reference_bytes(lattice, scratch, cache)
        case = scratch()
        shard_paths = []
        for index in range(shard_count):
            path = case / f"atlas-{index}-of-{shard_count}.jsonl"
            outcome = _sweep(
                lattice, path, cache, shard=(index, shard_count)
            )
            assert outcome.ok
            shard_paths.append(path)
        fused = case / "atlas.jsonl"
        outcome = merge_shards(shard_paths, fused)
        assert outcome.ok
        assert outcome.shards == shard_count
        assert outcome.overlaps == 0
        assert fused.read_bytes() == expected

    @given(
        shard_count=st.integers(2, 4),
        kill_after=st.integers(0, 5),
        torn=st.booleans(),
    )
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_killed_shard_resumes_then_merges_byte_identically(
        self, shard_count, kill_after, torn, scratch, cache
    ):
        """Kill shard 0 mid-sweep (optionally tearing its final line),
        resume it, sweep the rest, merge: still byte-identical."""
        import repro.atlas.driver as driver_mod

        expected = _reference_bytes(TINY, scratch, cache)
        case = scratch()
        killed = case / f"atlas-0-of-{shard_count}.jsonl"

        calls = {"n": 0}
        real_execute = driver_mod.execute_unit

        def dying_execute(unit):
            if calls["n"] >= kill_after:
                raise KeyboardInterrupt("simulated mid-shard kill")
            calls["n"] += 1
            return real_execute(unit)

        # No cache on the dying run: cached cells bypass the executor,
        # which would let the sweep outrun its own kill point.
        driver_mod.execute_unit = dying_execute
        try:
            with pytest.raises(KeyboardInterrupt):
                run_atlas(TINY, killed, quick=True,
                          shard=(0, shard_count))
        finally:
            driver_mod.execute_unit = real_execute

        survivors = killed.read_bytes()
        assert len(survivors.splitlines()) == kill_after
        if torn:
            with killed.open("ab") as fh:
                fh.write(b'{"unit_id": "torn')

        resumed = _sweep(TINY, killed, cache, shard=(0, shard_count))
        assert resumed.resumed == kill_after
        assert resumed.written == resumed.cells_total - kill_after

        shard_paths = [killed]
        for index in range(1, shard_count):
            path = case / f"atlas-{index}-of-{shard_count}.jsonl"
            _sweep(TINY, path, cache, shard=(index, shard_count))
            shard_paths.append(path)
        fused = case / "atlas.jsonl"
        merge_shards(shard_paths, fused)
        assert fused.read_bytes() == expected

    def test_rows_carry_global_indices_not_shard_local(
        self, scratch, cache
    ):
        case = scratch()
        path = case / "atlas-1-of-3.jsonl"
        _sweep(TINY, path, cache, shard=(1, 3))
        indices = [row["index"] for row in AtlasLog(path).rows()]
        assert indices == list(range(1, len(TINY.cells()), 3))

    def test_single_shard_covers_the_whole_lattice(self, scratch, cache):
        case = scratch()
        path = case / "atlas-0-of-1.jsonl"
        outcome = _sweep(TINY, path, cache, shard=(0, 1))
        assert outcome.cells_total == len(TINY.cells())
        assert path.read_bytes() == _reference_bytes(
            TINY, scratch, cache
        )

    def test_overlapping_identical_shards_dedupe(self, scratch, cache):
        # Re-running a shard into a second log is the benign overlap:
        # identical bytes dedupe (and get the full cross-check).
        case = scratch()
        first = case / "atlas-0-of-2.jsonl"
        second = case / "atlas-1-of-2.jsonl"
        rerun = case / "atlas-0-of-2-rerun.jsonl"
        _sweep(TINY, first, cache, shard=(0, 2))
        _sweep(TINY, second, cache, shard=(1, 2))
        _sweep(TINY, rerun, cache, shard=(0, 2))
        fused = case / "atlas.jsonl"
        outcome = merge_shards([first, second, rerun], fused)
        assert outcome.overlaps == len(list(AtlasLog(first).rows()))
        assert fused.read_bytes() == _reference_bytes(
            TINY, scratch, cache
        )


def _rewrite_row(path, index, mutate) -> dict:
    """Rewrite one row of a shard log in place; returns the new row."""
    log = AtlasLog(path)
    rows = list(log.rows())
    mutated = None
    for row in rows:
        if row["index"] == index:
            mutate(row)
            mutated = row
    log.reset()
    log.append_many(rows)
    assert mutated is not None
    return mutated


class TestMergeTrustBoundary:
    def test_divergent_duplicates_conflict_with_both_rows(
        self, scratch, cache
    ):
        """The cross-shard conflict fixture: two shards vouch for the
        same global index with different bytes -- merge must refuse and
        attach both provenance rows."""
        case = scratch()
        a = case / "atlas-0-of-2.jsonl"
        b = case / "atlas-1-of-2.jsonl"
        _sweep(TINY, a, cache, shard=(0, 2))
        _sweep(TINY, b, cache, shard=(1, 2))
        forged = case / "atlas-0-of-2-forged.jsonl"
        forged.write_bytes(a.read_bytes())
        _rewrite_row(
            forged, 0,
            lambda row: row.update(algorithm="forged-by-other-machine"),
        )
        with pytest.raises(AtlasConflict) as excinfo:
            merge_shards([a, b, forged], case / "atlas.jsonl")
        kept, offender = excinfo.value.rows
        assert kept["index"] == offender["index"] == 0
        assert kept["algorithm"] != offender["algorithm"]
        # Both attached rows carry full provenance.
        for row in (kept, offender):
            assert row["label"] and row["evidence"]

    def test_recorded_conflict_rows_refuse_strict_merge(
        self, scratch, cache
    ):
        # A non-strict sweep records CONFLICT rows; a strict merge
        # re-fuses each row's evidence and surfaces the conflict with
        # the offending row attached.
        case = scratch()
        path = case / "atlas-0-of-1.jsonl"
        target = TINY.cells()[0].label
        outcome = run_atlas(
            TINY, path, quick=True, strict=False, shard=(0, 1),
            inject={target: [
                {"kind": "explorer", "source": "fixture",
                 "claim": "solvable", "grade": "witness",
                 "detail": "forged"},
            ]},
        )
        assert not outcome.ok
        with pytest.raises(AtlasConflict) as excinfo:
            merge_shards([path], case / "atlas.jsonl")
        (row,) = excinfo.value.rows
        assert row["label"] == target
        assert row["verdict"] == "CONFLICT"

    def test_non_strict_merge_passes_recorded_conflicts_through(
        self, scratch, cache
    ):
        case = scratch()
        path = case / "atlas-0-of-1.jsonl"
        run_atlas(
            TINY, path, quick=True, strict=False, shard=(0, 1),
            inject={TINY.cells()[0].label: [
                {"kind": "explorer", "source": "fixture",
                 "claim": "solvable", "grade": "witness",
                 "detail": "forged"},
            ]},
        )
        fused = case / "atlas.jsonl"
        outcome = merge_shards([path], fused, strict=False)
        assert not outcome.ok
        assert outcome.verdicts["CONFLICT"] == 1
        rows = list(AtlasLog(fused).rows())
        assert rows[0]["verdict"] == "CONFLICT"

    def test_tampered_verdict_is_a_merge_error(self, scratch, cache):
        case = scratch()
        path = case / "atlas-0-of-1.jsonl"
        _sweep(TINY, path, cache, shard=(0, 1))
        _rewrite_row(
            path, 3, lambda row: row.update(verdict="proved-solvable")
        )
        with pytest.raises(AtlasMergeError, match="tampered"):
            merge_shards([path], case / "atlas.jsonl")

    def test_structurally_unusable_row_is_a_merge_error(
        self, scratch, cache
    ):
        case = scratch()
        path = case / "shard.jsonl"
        log = AtlasLog(path)
        log.reset()
        log.append({"index": 0, "not": "an atlas row"})
        with pytest.raises(AtlasMergeError, match="missing required"):
            merge_shards([path], case / "atlas.jsonl")

    def test_row_without_global_index_is_a_merge_error(
        self, scratch, cache
    ):
        case = scratch()
        path = case / "shard.jsonl"
        log = AtlasLog(path)
        log.reset()
        log.append({"unit_id": "u0"})
        with pytest.raises(AtlasMergeError, match="unusable global"):
            merge_shards([path], case / "atlas.jsonl")

    def test_incomplete_shard_set_surfaces_as_gaps(self, scratch, cache):
        case = scratch()
        path = case / "atlas-0-of-2.jsonl"
        _sweep(TINY, path, cache, shard=(0, 2))
        with pytest.raises(AtlasMergeError, match="missing global"):
            merge_shards([path], case / "atlas.jsonl")

    def test_empty_inputs_are_a_merge_error(self, scratch, cache):
        case = scratch()
        path = case / "shard.jsonl"
        AtlasLog(path).reset()
        with pytest.raises(AtlasMergeError, match="nothing to merge"):
            merge_shards([path], case / "atlas.jsonl")

    def test_output_colliding_with_an_input_is_refused(
        self, scratch, cache
    ):
        case = scratch()
        path = case / "atlas-0-of-1.jsonl"
        _sweep(TINY, path, cache, shard=(0, 1))
        with pytest.raises(AtlasMergeError, match="collides"):
            merge_shards([path], path)


class TestShardSelector:
    def test_parse_shard_accepts_index_slash_count(self):
        assert parse_shard("0/3") == (0, 3)
        assert parse_shard("2/5") == (2, 5)

    @pytest.mark.parametrize("text", ["0/0", "3/2", "x/y", "1", "1/",
                                      "/3", "-1/3"])
    def test_parse_shard_rejects_bad_selectors(self, text):
        with pytest.raises(ConfigurationError):
            parse_shard(text)

    def test_run_atlas_rejects_out_of_range_shard(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_atlas(TINY, tmp_path / "log.jsonl", quick=True,
                      shard=(3, 2))
        with pytest.raises(ConfigurationError):
            run_atlas(TINY, tmp_path / "log.jsonl", quick=True,
                      shard=(0, 0))


class TestCLI:
    def test_sharded_sweep_merge_render_roundtrip(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        for index in range(2):
            code = main([
                "atlas", "--max-n", "3", "--explore-max-n", "0",
                "--shard", f"{index}/2",
            ])
            assert code == 0
        out = capsys.readouterr().out
        assert "(shard 0/2)" in out and "(shard 1/2)" in out
        # --log left at its default gets the per-shard name.
        assert (tmp_path / "atlas-0-of-2.jsonl").exists()
        assert (tmp_path / "atlas-1-of-2.jsonl").exists()

        code = main([
            "atlas", "merge",
            str(tmp_path / "atlas-0-of-2.jsonl"),
            str(tmp_path / "atlas-1-of-2.jsonl"),
            "--out", str(tmp_path / "fused.jsonl"),
        ])
        assert code == 0
        assert "merged 24 rows from 2 shard log(s)" in (
            capsys.readouterr().out
        )

        code = main([
            "atlas", "--max-n", "3", "--explore-max-n", "0",
            "--log", str(tmp_path / "unsharded.jsonl"),
        ])
        assert code == 0
        assert (tmp_path / "fused.jsonl").read_bytes() == (
            tmp_path / "unsharded.jsonl"
        ).read_bytes()

    def test_merge_without_inputs_is_an_error(self, tmp_path, capsys):
        code = main(["atlas", "merge", "--out",
                     str(tmp_path / "fused.jsonl")])
        assert code == 2
        assert "at least one shard log" in capsys.readouterr().err

    def test_merge_conflict_prints_both_rows_and_fails(
        self, tmp_path, capsys
    ):
        code = main([
            "atlas", "--max-n", "3", "--explore-max-n", "0",
            "--log", str(tmp_path / "a.jsonl"), "--shard", "0/1",
        ])
        assert code == 0
        forged = tmp_path / "b.jsonl"
        forged.write_bytes((tmp_path / "a.jsonl").read_bytes())
        row = _rewrite_row(
            forged, 0, lambda r: r.update(algorithm="forged")
        )
        code = main([
            "atlas", "merge", str(tmp_path / "a.jsonl"), str(forged),
            "--out", str(tmp_path / "fused.jsonl"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "ATLAS CONFLICT" in captured.err
        assert canonical_json(row) in captured.err

    def test_bad_shard_selector_is_rejected(self, tmp_path, capsys):
        code = main([
            "atlas", "--max-n", "3", "--explore-max-n", "0",
            "--log", str(tmp_path / "atlas.jsonl"),
            "--shard", "2/2",
        ])
        assert code == 2
        assert "bad shard" in capsys.readouterr().err
