"""Edge cases and determinism guarantees across the stack."""

import pytest

from repro.adversaries.generic import RandomByzantineAdversary
from repro.classic.eig import EIGSpec
from repro.core.identity import balanced_assignment, stacked_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY, AgreementProblem
from repro.experiments.harness import algorithm_for
from repro.homonyms.transform import transform_factory, transform_horizon
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.psync.restricted import restricted_factory, restricted_horizon
from repro.sim.runner import run_agreement


class TestFaultFreeSystems:
    """t = 0: every model family must work with any ell >= 1."""

    def test_transform_anonymous_no_faults(self):
        # ell = 1, t = 0: fully anonymous but fault-free.
        spec = EIGSpec(1, 0, BINARY)
        params = SystemParams(n=4, ell=1, t=0)
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(4, 1),
            factory=transform_factory(spec),
            proposals={k: 1 for k in range(4)},
            max_rounds=transform_horizon(spec),
        )
        assert result.verdict.ok and result.verdict.agreed_value == 1

    def test_dls_anonymous_no_faults(self):
        params = SystemParams(
            n=3, ell=1, t=0, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(3, 1),
            factory=dls_factory(params, BINARY),
            proposals={k: 0 for k in range(3)},
            max_rounds=dls_horizon(params, 0),
        )
        assert result.verdict.ok and result.verdict.agreed_value == 0

    def test_minimal_two_process_system(self):
        params = SystemParams(
            n=2, ell=1, t=0, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(2, 1),
            factory=restricted_factory(params, BINARY),
            proposals={0: 1, 1: 0},
            max_rounds=restricted_horizon(params, 0),
        )
        assert result.verdict.ok


class TestTightestSolvablePoints:
    """n = 3t + 1 exactly: the PSL edge in every family."""

    def test_transform_n_3t_plus_1(self):
        spec = EIGSpec(7, 2, BINARY)
        params = SystemParams(n=7, ell=7, t=2)
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(7, 7),
            factory=transform_factory(spec),
            proposals={k: k % 2 for k in range(5)},
            byzantine=(5, 6),
            adversary=RandomByzantineAdversary(seed=3),
            max_rounds=transform_horizon(spec),
        )
        assert result.verdict.ok

    def test_fig7_n_3t_plus_1_ell_t_plus_1(self):
        # Both bounds tight simultaneously: n = 3t+1, ell = t+1.
        params = SystemParams(
            n=7, ell=3, t=2, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        result = run_agreement(
            params=params,
            assignment=stacked_assignment(7, 3),
            factory=restricted_factory(params, BINARY),
            proposals={k: k % 2 for k in range(5)},
            byzantine=(5, 6),
            adversary=RandomByzantineAdversary(seed=4),
            max_rounds=restricted_horizon(params, 0),
        )
        assert result.verdict.ok


class TestLargeDomains:
    def test_eight_value_domain_through_the_transform(self):
        problem = AgreementProblem(tuple(range(8)))
        spec = EIGSpec(4, 1, problem)
        params = SystemParams(n=6, ell=4, t=1)
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(6, 4),
            factory=transform_factory(spec),
            proposals={k: (k * 3) % 8 for k in range(5)},
            byzantine=(5,),
            max_rounds=transform_horizon(spec),
        )
        assert result.verdict.ok
        assert result.verdict.agreed_value in problem.domain

    def test_string_domain_fig7(self):
        problem = AgreementProblem(("commit", "abort", "retry"))
        params = SystemParams(
            n=4, ell=2, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(4, 2),
            factory=restricted_factory(params, problem),
            proposals={0: "commit", 1: "abort", 2: "commit"},
            byzantine=(3,),
            max_rounds=restricted_horizon(params, 0),
        )
        assert result.verdict.ok
        assert result.verdict.agreed_value in problem.domain


ALGOS = [
    ("T(EIG)", SystemParams(n=6, ell=4, t=1)),
    ("fig5", SystemParams(n=7, ell=6, t=1,
                          synchrony=Synchrony.PARTIALLY_SYNCHRONOUS)),
    ("fig7", SystemParams(n=4, ell=2, t=1,
                          synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
                          numerate=True, restricted=True)),
]


@pytest.mark.parametrize("name,params", ALGOS, ids=[a[0] for a in ALGOS])
class TestDeterminism:
    """Identical inputs must yield byte-identical traces for every
    algorithm family -- the property all seeded debugging relies on."""

    def run_once(self, params):
        _name, factory, horizon = algorithm_for(params)
        byz = (params.n - 1,)
        result = run_agreement(
            params=params,
            assignment=balanced_assignment(params.n, params.ell),
            factory=factory,
            proposals={k: k % 2 for k in range(params.n - 1)},
            byzantine=byz,
            adversary=RandomByzantineAdversary(seed=9),
            max_rounds=horizon,
        )
        return [
            (r.round_no, sorted(r.payloads.items(), key=repr),
             sorted(r.decisions.items(), key=repr))
            for r in result.trace
        ]

    def test_traces_identical_across_runs(self, name, params):
        assert self.run_once(params) == self.run_once(params)
