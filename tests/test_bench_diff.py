"""tools/bench_diff.py: snapshot diffing, the gate, the trajectory."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.bench_diff import (  # noqa: E402
    diff_snapshots,
    load_snapshots,
    main as bench_diff_main,
)


def write_snapshot(directory, topic, ops_per_s, speedup=2.0, params=None):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{topic}.json").write_text(
        json.dumps(
            {
                "topic": topic,
                "params": params if params is not None else {"n": 16},
                "ops_per_s": ops_per_s,
                "speedup": speedup,
            }
        )
    )


class TestDiff:
    def test_improvement_and_small_noise_pass(self, tmp_path):
        write_snapshot(tmp_path / "old", "fabric", 100.0)
        write_snapshot(tmp_path / "old", "delay", 50.0)
        write_snapshot(tmp_path / "new", "fabric", 140.0)
        write_snapshot(tmp_path / "new", "delay", 45.0)  # -10%: tolerated
        rows, regressions = diff_snapshots(
            load_snapshots(tmp_path / "old"),
            load_snapshots(tmp_path / "new"),
            max_regress=25.0,
        )
        assert regressions == []
        by_topic = {row["topic"]: row for row in rows}
        assert by_topic["fabric"]["ops_pct"] > 39
        assert by_topic["delay"]["comparable"]

    def test_regression_beyond_threshold_fails(self, tmp_path):
        write_snapshot(tmp_path / "old", "fabric", 100.0)
        write_snapshot(tmp_path / "new", "fabric", 60.0)  # -40%
        rows, regressions = diff_snapshots(
            load_snapshots(tmp_path / "old"),
            load_snapshots(tmp_path / "new"),
            max_regress=25.0,
        )
        assert len(regressions) == 1
        assert "fabric" in regressions[0]

    def test_changed_params_are_advisory_only(self, tmp_path):
        write_snapshot(tmp_path / "old", "fabric", 100.0, params={"n": 16})
        write_snapshot(tmp_path / "new", "fabric", 10.0, params={"n": 256})
        rows, regressions = diff_snapshots(
            load_snapshots(tmp_path / "old"),
            load_snapshots(tmp_path / "new"),
            max_regress=25.0,
        )
        assert regressions == []
        assert rows[0]["note"] == "params changed; advisory"

    def test_one_sided_topics_are_reported_not_gated(self, tmp_path):
        write_snapshot(tmp_path / "old", "fabric", 100.0)
        write_snapshot(tmp_path / "new", "fabric", 100.0)
        write_snapshot(tmp_path / "new", "soak", 10.0)
        rows, regressions = diff_snapshots(
            load_snapshots(tmp_path / "old"),
            load_snapshots(tmp_path / "new"),
            max_regress=25.0,
        )
        assert regressions == []
        notes = {row["topic"]: row["note"] for row in rows}
        assert notes["soak"] == "current only"


class TestCli:
    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        write_snapshot(tmp_path / "a", "fabric", 100.0)
        write_snapshot(tmp_path / "b", "fabric", 110.0)
        status = bench_diff_main([str(tmp_path / "a"), str(tmp_path / "b")])
        assert status == 0
        assert "bench-diff: ok" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        write_snapshot(tmp_path / "a", "fabric", 100.0)
        write_snapshot(tmp_path / "b", "fabric", 10.0)
        status = bench_diff_main([str(tmp_path / "a"), str(tmp_path / "b")])
        assert status == 1
        assert "FAILED" in capsys.readouterr().out

    def test_trajectory_spans_all_runs(self, tmp_path, capsys):
        for pos, speed in enumerate([1.0, 4.0, 9.0]):
            write_snapshot(
                tmp_path / f"run{pos}", "fabric", 100.0 * (pos + 1),
                speedup=speed,
            )
        status = bench_diff_main(
            [str(tmp_path / f"run{pos}") for pos in range(3)]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "speedup trajectory" in out
        assert "9.00" in out and "1.00" in out

    def test_markdown_rendering(self, tmp_path):
        write_snapshot(tmp_path / "a", "fabric", 100.0, speedup=40.0)
        write_snapshot(tmp_path / "b", "fabric", 120.0, speedup=44.0)
        report = tmp_path / "diff.md"
        status = bench_diff_main(
            [str(tmp_path / "a"), str(tmp_path / "b"),
             "--markdown", str(report)]
        )
        assert status == 0
        text = report.read_text()
        assert "## Speedup trajectory" in text
        assert "| fabric |" in text

    def test_single_directory_renders_without_gating(self, tmp_path, capsys):
        write_snapshot(tmp_path / "only", "fabric", 100.0)
        status = bench_diff_main([str(tmp_path / "only")])
        assert status == 0
        assert "nothing to diff" in capsys.readouterr().out

    def test_committed_snapshots_load(self):
        snapshots = load_snapshots(REPO_ROOT / "bench-snapshots")
        assert {"fabric", "delay_kernel", "campaign"} <= set(snapshots)
