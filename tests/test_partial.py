"""Tests for the partially synchronous drop schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.sim.partial import (
    ExplicitDrops,
    NoDrops,
    PartitionSchedule,
    PredicateDrops,
    RandomDrops,
    SilenceUntil,
)


class TestNoDrops:
    def test_never_drops(self):
        s = NoDrops()
        assert s.gst == 0
        assert not any(
            s.drops(r, a, b) for r in range(5) for a in range(3) for b in range(3)
        )


class TestSilenceUntil:
    def test_drops_everything_before_gst(self):
        s = SilenceUntil(3)
        assert s.drops(0, 0, 1) and s.drops(2, 1, 0)
        assert not s.drops(3, 0, 1) and not s.drops(10, 0, 1)

    def test_self_messages_never_dropped(self):
        s = SilenceUntil(3)
        assert not s.drops(0, 1, 1)

    def test_negative_gst_rejected(self):
        with pytest.raises(ConfigurationError):
            SilenceUntil(-1)


class TestPartitionSchedule:
    def test_blocks_cross_traffic_both_directions(self):
        s = PartitionSchedule(4, block_a=[0, 1], block_b=[2])
        assert s.drops(0, 0, 2) and s.drops(0, 2, 1)

    def test_intra_block_traffic_flows(self):
        s = PartitionSchedule(4, block_a=[0, 1], block_b=[2])
        assert not s.drops(0, 0, 1) and not s.drops(0, 2, 2)

    def test_outside_processes_unaffected(self):
        s = PartitionSchedule(4, block_a=[0], block_b=[1])
        assert not s.drops(0, 3, 0) and not s.drops(0, 0, 3)

    def test_heals_at_gst(self):
        s = PartitionSchedule(4, block_a=[0], block_b=[1])
        assert not s.drops(4, 0, 1)

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionSchedule(4, block_a=[0, 1], block_b=[1, 2])


class TestRandomDrops:
    def test_deterministic_per_seed(self):
        a = RandomDrops(gst=10, p=0.5, seed=3)
        b = RandomDrops(gst=10, p=0.5, seed=3)
        decisions_a = [a.drops(r, s, q) for r in range(10) for s in range(4) for q in range(4)]
        decisions_b = [b.drops(r, s, q) for r in range(10) for s in range(4) for q in range(4)]
        assert decisions_a == decisions_b

    def test_order_independent(self):
        s = RandomDrops(gst=10, p=0.5, seed=3)
        first = s.drops(2, 1, 0)
        # query other links, then re-query
        s.drops(5, 0, 1)
        s.drops(1, 3, 2)
        assert s.drops(2, 1, 0) == first

    def test_extreme_probabilities(self):
        always = RandomDrops(gst=5, p=1.0, seed=0)
        never = RandomDrops(gst=5, p=0.0, seed=0)
        assert all(always.drops(r, 0, 1) for r in range(5))
        assert not any(never.drops(r, 0, 1) for r in range(5))

    def test_probability_validated(self):
        with pytest.raises(ConfigurationError):
            RandomDrops(gst=5, p=1.5)


class TestExplicitDrops:
    def test_drops_exactly_the_listed_messages(self):
        s = ExplicitDrops({(1, 0, 2), (3, 2, 0)})
        assert s.drops(1, 0, 2) and s.drops(3, 2, 0)
        assert not s.drops(1, 2, 0) and not s.drops(2, 0, 2)

    def test_gst_derived_from_latest_drop(self):
        s = ExplicitDrops({(1, 0, 2), (7, 2, 0)})
        assert s.gst == 8

    def test_empty_set_is_synchronous(self):
        s = ExplicitDrops(set())
        assert s.gst == 0
        assert not s.drops(0, 0, 1)


class TestPredicateDrops:
    def test_predicate_limited_to_pre_gst(self):
        s = PredicateDrops(3, lambda r, a, b: True)
        assert s.drops(2, 0, 1)
        assert not s.drops(3, 0, 1)


@given(
    gst=st.integers(min_value=0, max_value=30),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
    queries=st.lists(
        st.tuples(st.integers(0, 60), st.integers(0, 5), st.integers(0, 5)),
        max_size=40,
    ),
)
@settings(max_examples=60)
def test_dls_finiteness_invariant(gst, p, seed, queries):
    """Property: no schedule ever drops at or after its gst (the DLS
    basic-model guarantee), and never drops self-messages."""
    schedule = RandomDrops(gst=gst, p=p, seed=seed)
    for r, s, q in queries:
        dropped = schedule.drops(r, s, q)
        if r >= gst or s == q:
            assert not dropped
