"""Tests for the EIG baseline (classic unique-identifier BA)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.generic import (
    CrashAdversary,
    DuplicatorAdversary,
    EquivocatorAdversary,
    InputFlipAdversary,
    RandomByzantineAdversary,
)
from repro.classic.eig import EIGSpec, EIGState
from repro.classic.runner import ClassicProcess, classic_factory
from repro.core.errors import BoundViolation
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams
from repro.core.problem import BINARY, AgreementProblem
from repro.sim.runner import run_agreement


def run_eig(ell, t, proposals, byz=(), adversary=None, problem=BINARY):
    spec = EIGSpec(ell, t, problem)
    params = SystemParams(n=ell, ell=ell, t=t)
    return run_agreement(
        params=params,
        assignment=balanced_assignment(ell, ell),
        factory=classic_factory(spec),
        proposals=proposals,
        byzantine=byz,
        adversary=adversary,
        max_rounds=spec.max_rounds + 2,
    ), spec


class TestSpecBasics:
    def test_bound_enforced(self):
        with pytest.raises(BoundViolation):
            EIGSpec(3, 1, BINARY)

    def test_unchecked_escape_hatch(self):
        spec = EIGSpec(3, 1, BINARY, unchecked=True)
        assert spec.ell == 3

    def test_init_state_has_root_value(self):
        spec = EIGSpec(4, 1, BINARY)
        state = spec.init(2, 1)
        assert state.tree_dict()[()] == 1
        assert state.rounds_done == 0

    def test_init_validates_value(self):
        spec = EIGSpec(4, 1, BINARY)
        with pytest.raises(ValueError):
            spec.init(1, 7)

    def test_round_one_message_is_own_value(self):
        spec = EIGSpec(4, 1, BINARY)
        state = spec.init(2, 1)
        tag, r, entries = spec.message(state, 1)
        assert tag == "eig" and r == 1
        assert entries == (((), 1),)

    def test_silent_after_max_rounds(self):
        spec = EIGSpec(4, 1, BINARY)
        state = spec.init(1, 0)
        assert spec.message(state, spec.max_rounds + 1) is None

    def test_decide_none_before_completion(self):
        spec = EIGSpec(4, 1, BINARY)
        assert spec.decide(spec.init(1, 0)) is None

    def test_state_repr_is_canonical(self):
        # Two states built from the same entries in different orders must
        # have equal reprs (required by the T(A) selection round).
        spec = EIGSpec(4, 1, BINARY)
        s1 = spec.init(1, 0)
        s2 = spec.transition(s1, 1, {2: ("eig", 1, (((), 1),)),
                                     3: ("eig", 1, (((), 0),))})
        s3 = spec.transition(s1, 1, {3: ("eig", 1, (((), 0),)),
                                     2: ("eig", 1, (((), 1),))})
        assert repr(s2) == repr(s3)


class TestTransitionRobustness:
    """Byzantine payloads must never corrupt the tree structurally."""

    def test_malformed_payloads_ignored(self):
        spec = EIGSpec(4, 1, BINARY)
        state = spec.init(1, 0)
        for junk in (None, 42, ("eig",), ("eig", 1, "nope"),
                     ("wrong", 1, ()), ("eig", 2, (((), 0),))):
            after = spec.transition(state, 1, {2: junk})
            assert after.tree_dict() == {(): 0}
        assert spec.is_state(state)

    def test_path_with_sender_already_in_it_ignored(self):
        spec = EIGSpec(4, 1, BINARY)
        state = spec.init(1, 0)
        state = spec.transition(state, 1, {2: ("eig", 1, (((), 1),))})
        # Round 2: sender 2 relays a path already containing 2 -> ignored.
        after = spec.transition(state, 2, {2: ("eig", 2, (((2,), 1),))})
        assert (2, 2) not in after.tree_dict()

    def test_duplicate_paths_in_payload_first_wins(self):
        spec = EIGSpec(4, 1, BINARY)
        state = spec.init(1, 0)
        after = spec.transition(
            state, 1, {2: ("eig", 1, (((), 1), ((), 0)))}
        )
        assert after.tree_dict()[(2,)] == 1

    def test_out_of_range_identifiers_in_path_ignored(self):
        spec = EIGSpec(4, 1, BINARY)
        state = spec.init(1, 0)
        state = spec.transition(state, 1, {2: ("eig", 1, (((), 1),))})
        after = spec.transition(state, 2, {3: ("eig", 2, (((9,), 1),))})
        assert all(
            all(1 <= j <= 4 for j in path) for path in after.tree_dict()
        )

    def test_is_state_rejects_structural_garbage(self):
        spec = EIGSpec(4, 1, BINARY)
        assert not spec.is_state("not a state")
        assert not spec.is_state(
            EIGState(ident=9, rounds_done=0, tree=(((), 0),))
        )
        assert not spec.is_state(
            EIGState(ident=1, rounds_done=0, tree=(((1, 1), 0),))
        )


class TestAgreementRuns:
    def test_all_correct_unanimous(self):
        result, _ = run_eig(4, 1, {k: 1 for k in range(4)})
        assert result.verdict.ok and result.verdict.agreed_value == 1

    def test_silent_byzantine(self):
        result, _ = run_eig(4, 1, {0: 0, 1: 1, 2: 0}, byz=(3,))
        assert result.verdict.ok

    def test_validity_under_input_flip_attack(self):
        spec = EIGSpec(4, 1, BINARY)
        adversary = InputFlipAdversary(classic_factory(spec), proposal=1)
        result, _ = run_eig(4, 1, {0: 0, 1: 0, 2: 0}, byz=(3,),
                            adversary=adversary)
        assert result.verdict.ok and result.verdict.agreed_value == 0

    def test_equivocator_cannot_split(self):
        spec = EIGSpec(4, 1, BINARY)
        adversary = EquivocatorAdversary(classic_factory(spec))
        result, _ = run_eig(4, 1, {0: 0, 1: 1, 2: 0}, byz=(3,),
                            adversary=adversary)
        assert result.verdict.ok

    def test_duplicator_cannot_split(self):
        spec = EIGSpec(4, 1, BINARY)
        adversary = DuplicatorAdversary(classic_factory(spec))
        result, _ = run_eig(4, 1, {0: 1, 1: 0, 2: 1}, byz=(3,),
                            adversary=adversary)
        assert result.verdict.ok

    def test_crash_mid_protocol(self):
        spec = EIGSpec(4, 1, BINARY)
        adversary = CrashAdversary(classic_factory(spec), crash_round=1,
                                   proposal=1)
        result, _ = run_eig(4, 1, {0: 0, 1: 0, 2: 1}, byz=(3,),
                            adversary=adversary)
        assert result.verdict.ok

    def test_two_faults_seven_processes(self):
        result, _ = run_eig(7, 2, {k: k % 2 for k in range(5)}, byz=(5, 6),
                            adversary=RandomByzantineAdversary(seed=11))
        assert result.verdict.ok

    def test_larger_domain(self):
        problem = AgreementProblem(("a", "b", "c"))
        result, _ = run_eig(4, 1, {k: "b" for k in range(4)}, problem=problem)
        assert result.verdict.ok and result.verdict.agreed_value == "b"

    def test_decides_at_round_t_plus_one(self):
        result, spec = run_eig(4, 1, {k: 0 for k in range(4)})
        # Engine rounds are 0-indexed: round t+1 of the paper is index t.
        assert result.verdict.last_decision_round == spec.max_rounds - 1


@given(
    seed=st.integers(0, 50),
    inputs=st.tuples(*[st.integers(0, 1)] * 3),
)
@settings(max_examples=25, deadline=None)
def test_eig_agreement_under_random_byzantine(seed, inputs):
    """Property: EIG with n=4, t=1 survives any seeded chaos adversary."""
    result, _ = run_eig(
        4, 1, {k: inputs[k] for k in range(3)}, byz=(3,),
        adversary=RandomByzantineAdversary(seed=seed),
    )
    assert result.verdict.ok
