"""Tests for the round engine: delivery, authentication, restriction."""

import pytest

from repro.core.errors import AdversaryViolation, ConfigurationError
from repro.core.identity import IdentityAssignment, balanced_assignment
from repro.core.messages import Message
from repro.core.params import SystemParams
from repro.sim.adversary import Adversary
from repro.sim.network import RoundEngine
from repro.sim.partial import ExplicitDrops, PartitionSchedule
from repro.sim.process import EchoProcess
from repro.sim.topology import DirectedTopology


def build(n=3, ell=3, t=0, byz=(), adversary=None, numerate=False,
          restricted=False, drop_schedule=None, topology=None):
    params = SystemParams(n=n, ell=ell, t=t, numerate=numerate,
                          restricted=restricted)
    assignment = balanced_assignment(n, ell)
    processes = [
        None if k in byz else EchoProcess(assignment.identifier_of(k))
        for k in range(n)
    ]
    engine = RoundEngine(
        params=params, assignment=assignment, processes=processes,
        byzantine=byz, adversary=adversary, drop_schedule=drop_schedule,
        topology=topology,
    )
    return engine, processes


class FixedAdversary(Adversary):
    """Sends a fixed payload batch from every Byzantine slot to everyone."""

    def __init__(self, batch):
        self.batch = tuple(batch)

    def emissions(self, view):
        return {
            b: {q: self.batch for q in range(view.params.n)}
            for b in view.byzantine
        }


class TestDelivery:
    def test_everyone_receives_everyone_including_self(self):
        engine, procs = build(n=3)
        engine.step()
        for p in procs:
            ids = {m.sender_id for m in p.received[0]}
            assert ids == {1, 2, 3}

    def test_messages_carry_authenticated_identifiers(self):
        engine, procs = build(n=4, ell=2)
        engine.step()
        inbox = procs[0].received[0]
        assert all(m.sender_id in (1, 2) for m in inbox)

    def test_innumerate_collapses_homonym_duplicates(self):
        # Two processes share identifier 1 and send identical payloads.
        engine, procs = build(n=4, ell=2)
        engine.step()
        inbox = procs[0].received[0]
        # ids 1 and 2 each appear once despite two homonym senders each.
        assert len(inbox) == 2

    def test_numerate_preserves_homonym_duplicates(self):
        engine, procs = build(n=4, ell=2, numerate=True)
        engine.step()
        inbox = procs[0].received[0]
        assert len(inbox) == 4
        assert inbox.count_matching(lambda m: m.sender_id == 1) == 2

    def test_byzantine_slots_do_not_send_implicitly(self):
        engine, procs = build(n=3, t=1, byz=(2,))
        engine.step()
        ids = {m.sender_id for m in procs[0].received[0]}
        assert ids == {1, 2}  # identifier 3's slot is Byzantine and silent


class TestAdversaryEnforcement:
    def test_adversary_messages_are_stamped_with_slot_identifier(self):
        engine, procs = build(n=3, t=1, byz=(2,),
                              adversary=FixedAdversary(("evil",)))
        engine.step()
        evil = [m for m in procs[0].received[0] if m.payload == "evil"]
        assert evil and all(m.sender_id == 3 for m in evil)

    def test_restricted_model_caps_one_message_per_recipient(self):
        engine, _ = build(n=4, ell=4, t=1, byz=(3,), restricted=True,
                          adversary=FixedAdversary(("a", "b"))
                          )
        with pytest.raises(AdversaryViolation):
            engine.step()

    def test_unrestricted_model_allows_bursts(self):
        engine, procs = build(n=4, ell=4, t=1, byz=(3,),
                              adversary=FixedAdversary(("a", "b")),
                              numerate=True)
        engine.step()
        inbox = procs[0].received[0]
        assert inbox.count_matching(lambda m: m.sender_id == 4) == 2

    def test_emitting_for_correct_slot_is_rejected(self):
        class Forger(Adversary):
            def emissions(self, view):
                return {0: {1: ("forged",)}}  # slot 0 is correct

        engine, _ = build(n=3, t=1, byz=(2,), adversary=Forger())
        with pytest.raises(AdversaryViolation):
            engine.step()

    def test_out_of_range_recipient_is_rejected(self):
        class Sprayer(Adversary):
            def emissions(self, view):
                return {2: {99: ("x",)}}

        engine, _ = build(n=3, t=1, byz=(2,), adversary=Sprayer())
        with pytest.raises(AdversaryViolation):
            engine.step()


class TestSchedulesAndTopology:
    def test_explicit_drop_removes_single_link_message(self):
        engine, procs = build(
            n=3, drop_schedule=ExplicitDrops({(0, 1, 0)})
        )
        engine.step()
        # Process 0 misses sender index 1 (identifier 2) in round 0...
        assert {m.sender_id for m in procs[0].received[0]} == {1, 3}
        # ...but everyone else gets everything.
        assert {m.sender_id for m in procs[1].received[0]} == {1, 2, 3}
        engine.step()  # past gst: all delivered
        assert {m.sender_id for m in procs[0].received[1]} == {1, 2, 3}

    def test_self_delivery_cannot_be_dropped(self):
        engine, procs = build(
            n=3, drop_schedule=ExplicitDrops({(0, 0, 0)})
        )
        engine.step()
        assert any(m.sender_id == 1 for m in procs[0].received[0])

    def test_partition_schedule_blocks_cross_traffic(self):
        engine, procs = build(
            n=4, ell=4,
            drop_schedule=PartitionSchedule(5, block_a=[0, 1], block_b=[2, 3]),
        )
        engine.step()
        assert {m.sender_id for m in procs[0].received[0]} == {1, 2}
        assert {m.sender_id for m in procs[3].received[0]} == {3, 4}

    def test_directed_topology_filters_links(self):
        topo = DirectedTopology({0: {0, 1}})  # process 0 hears only 0, 1
        engine, procs = build(n=3, topology=topo)
        engine.step()
        assert {m.sender_id for m in procs[0].received[0]} == {1, 2}
        assert {m.sender_id for m in procs[1].received[0]} == {1, 2, 3}


class TestEngineValidation:
    def test_identifier_mismatch_is_rejected(self):
        params = SystemParams(n=2, ell=2, t=0)
        assignment = balanced_assignment(2, 2)
        processes = [EchoProcess(2), EchoProcess(2)]  # slot 0 should be id 1
        with pytest.raises(ConfigurationError):
            RoundEngine(params, assignment, processes)

    def test_missing_correct_process_is_rejected(self):
        params = SystemParams(n=2, ell=2, t=0)
        assignment = balanced_assignment(2, 2)
        with pytest.raises(ConfigurationError):
            RoundEngine(params, assignment, [EchoProcess(1), None])

    def test_assignment_params_size_mismatch(self):
        params = SystemParams(n=3, ell=2, t=0)
        with pytest.raises(ConfigurationError):
            RoundEngine(params, balanced_assignment(2, 2),
                        [EchoProcess(1), EchoProcess(2)])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            engine, _ = build(n=4, ell=3, t=1, byz=(3,),
                              adversary=FixedAdversary(("x",)))
            for _ in range(5):
                engine.step()
            return [
                (r.round_no, sorted(r.payloads.items(), key=repr))
                for r in engine.trace
            ]

        assert run_once() == run_once()
