"""Tests for the Figure 1 scenario construction (Proposition 1)."""

import pytest

from repro.adversaries.scenario import ScenarioSystem, run_scenario
from repro.classic.eig import EIGSpec
from repro.core.errors import ConfigurationError
from repro.core.problem import BINARY
from repro.homonyms.transform import transform_factory, transform_horizon


def eig_factory(t):
    spec = EIGSpec(3 * t, t, BINARY, unchecked=True)
    return transform_factory(spec, unchecked=True), transform_horizon(spec)


class TestConstruction:
    def test_total_process_count_is_2n(self):
        for n, t in [(4, 1), (5, 1), (7, 2), (10, 3)]:
            system = ScenarioSystem(n, t)
            assert system.total == 2 * n

    def test_two_stacks_of_correct_size(self):
        system = ScenarioSystem(7, 2)
        sizes = sorted(len(m) for m in system.column_members)
        stack = 7 - 3 * 2 + 1  # n - 3t + 1
        assert sizes.count(stack) >= 2 or stack == 1
        assert len(system.column_members[0]) == stack
        assert len(system.column_members[4 * 2]) == stack

    def test_identifiers_cycle_through_copies(self):
        system = ScenarioSystem(4, 1)
        # 6t = 6 columns; identifiers 1..3 twice.
        idents = [(c % 3) + 1 for c in range(6)]
        for c, members in enumerate(system.column_members):
            for k in members:
                assert system.ids[k] == idents[c]

    def test_inputs_zero_then_one(self):
        system = ScenarioSystem(4, 1)
        for c, members in enumerate(system.column_members):
            expected = 0 if c < 3 else 1
            for k in members:
                assert system.inputs[k] == expected

    def test_views_have_n_minus_t_members(self):
        for n, t in [(4, 1), (6, 1), (7, 2)]:
            system = ScenarioSystem(n, t)
            for name, columns in system.view_columns().items():
                members = system.view_members(columns)
                assert len(members) == n - t, f"{name} wrong size"

    def test_every_column_hears_itself(self):
        system = ScenarioSystem(5, 1)
        for c in range(6):
            assert c in system.in_columns[c]

    def test_view_members_hear_exactly_one_stream_per_view_identifier(self):
        """Inside a view, every view identifier comes from exactly one
        column (the view column itself): the consistency requirement."""
        system = ScenarioSystem(5, 1)
        t = 1
        views = system.view_columns()
        for name, columns in views.items():
            view_idents = {(c % (3 * t)) + 1 for c in columns}
            for c in columns:
                heard_columns = system.in_columns[c]
                for ident in view_idents:
                    sources = [
                        cc for cc in heard_columns
                        if (cc % (3 * t)) + 1 == ident
                    ]
                    assert len(sources) == 1, (
                        f"{name}: column {c} hears identifier {ident} "
                        f"from columns {sources}"
                    )

    def test_rejects_t_zero(self):
        with pytest.raises(ConfigurationError):
            ScenarioSystem(4, 0)

    def test_rejects_n_below_3t(self):
        with pytest.raises(ConfigurationError):
            ScenarioSystem(5, 2)


class TestContradiction:
    """Running a claimed ell = 3t algorithm must break a view."""

    @pytest.mark.parametrize("n,t", [(4, 1), (5, 1), (6, 1), (7, 2)])
    def test_t_eig_at_3t_identifiers_breaks(self, n, t):
        factory, horizon = eig_factory(t)
        outcome = run_scenario(n, t, factory, max_rounds=horizon)
        assert outcome.contradiction_exhibited, outcome.summary()

    def test_summary_names_the_broken_view(self):
        factory, horizon = eig_factory(1)
        outcome = run_scenario(4, 1, factory, max_rounds=horizon)
        assert "VIOLATED" in outcome.summary()

    def test_minimal_case_matches_flm_hexagon(self):
        # n = 3t = ell: the degenerate stacks (size 1) reduce the system
        # to the classic Fischer-Lynch-Merritt ring; the contradiction
        # must still appear (this is the Theorem 19 reduction endpoint).
        factory, horizon = eig_factory(1)
        outcome = run_scenario(3, 1, factory, max_rounds=horizon)
        assert outcome.contradiction_exhibited
