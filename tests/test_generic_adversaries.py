"""Tests for the generic adversary library itself."""

import pytest

from repro.adversaries.generic import (
    CrashAdversary,
    DuplicatorAdversary,
    EquivocatorAdversary,
    InputFlipAdversary,
    RandomByzantineAdversary,
    standard_attack_suite,
)
from repro.classic.eig import EIGSpec
from repro.classic.runner import classic_factory
from repro.core.errors import AdversaryViolation
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams
from repro.core.problem import BINARY
from repro.sim.network import RoundEngine
from repro.sim.process import EchoProcess


def make_engine(adversary, n=4, ell=4, t=1, byz=(3,), restricted=False,
                numerate=True):
    params = SystemParams(n=n, ell=ell, t=t, restricted=restricted,
                          numerate=numerate)
    assignment = balanced_assignment(n, ell)
    processes = [
        None if k in byz else EchoProcess(assignment.identifier_of(k))
        for k in range(n)
    ]
    engine = RoundEngine(
        params=params, assignment=assignment, processes=processes,
        byzantine=byz, adversary=adversary,
    )
    return engine, processes


def eig_fact():
    return classic_factory(EIGSpec(4, 1, BINARY))


class TestCrashAdversary:
    def test_speaks_then_goes_silent(self):
        engine, procs = make_engine(CrashAdversary(eig_fact(), crash_round=2))
        for _ in range(4):
            engine.step()
        byz_rounds = [
            r.round_no for r in engine.trace if r.byzantine_message_count
        ]
        assert byz_rounds == [0, 1]

    def test_pre_crash_messages_mimic_the_protocol(self):
        engine, procs = make_engine(CrashAdversary(eig_fact(), crash_round=2,
                                                   proposal=1))
        engine.step()
        inbox = procs[0].received[0]
        from_byz = [m for m in inbox if m.sender_id == 4]
        assert from_byz and from_byz[0].payload[0] == "eig"


class TestEquivocator:
    def test_sends_different_faces_by_recipient_parity(self):
        engine, procs = make_engine(EquivocatorAdversary(eig_fact()))
        engine.step()
        even_face = [m.payload for m in procs[0].received[0]
                     if m.sender_id == 4]
        odd_face = [m.payload for m in procs[1].received[0]
                    if m.sender_id == 4]
        assert even_face and odd_face and even_face != odd_face

    def test_legal_under_restriction(self):
        engine, _ = make_engine(EquivocatorAdversary(eig_fact()),
                                restricted=True)
        engine.step()  # must not raise


class TestDuplicator:
    def test_sends_two_messages_per_recipient(self):
        engine, procs = make_engine(DuplicatorAdversary(eig_fact()))
        engine.step()
        copies = [m for m in procs[0].received[0] if m.sender_id == 4]
        assert len(copies) == 2

    def test_illegal_under_restriction(self):
        engine, _ = make_engine(DuplicatorAdversary(eig_fact()),
                                restricted=True)
        with pytest.raises(AdversaryViolation):
            engine.step()


class TestInputFlip:
    def test_behaves_exactly_like_a_correct_process(self):
        engine, procs = make_engine(InputFlipAdversary(eig_fact(), proposal=1))
        for _ in range(2):
            engine.step()
        # Its round-0 message equals a correct process's with input 1.
        inbox = procs[0].received[0]
        from_byz = [m.payload for m in inbox if m.sender_id == 4]
        assert from_byz == [("eig", 1, (((), 1),))]


class TestRandomByzantine:
    def test_deterministic_per_seed(self):
        def emissions_of(seed):
            engine, _ = make_engine(RandomByzantineAdversary(seed=seed))
            records = []
            for _ in range(5):
                records.append(engine.step().emissions)
            return repr(records)

        assert emissions_of(3) == emissions_of(3)
        assert emissions_of(3) != emissions_of(4)

    def test_respects_restriction(self):
        engine, _ = make_engine(RandomByzantineAdversary(seed=1),
                                restricted=True)
        for _ in range(6):
            record = engine.step()
            for per_recipient in record.emissions.values():
                assert all(len(batch) <= 1 for batch in per_recipient.values())


class TestStandardSuite:
    def test_unrestricted_suite_contains_duplicator(self):
        names = [name for name, _ in standard_attack_suite(eig_fact(), False)]
        assert "duplicator" in names
        assert "equivocator" in names

    def test_restricted_suite_excludes_duplicator(self):
        names = [name for name, _ in standard_attack_suite(eig_fact(), True)]
        assert "duplicator" not in names

    def test_seeded_attacks_included(self):
        names = [name for name, _ in
                 standard_attack_suite(eig_fact(), False, seeds=(7, 9))]
        assert "random-7" in names and "random-9" in names
