"""Tests for the quorum-intersection lemmas (7, 30, 31)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.quorum import (
    lemma7_exhaustive_check,
    lemma7_holds,
    lemma30_min_correct_broadcasters,
    lemma31_shared_broadcaster_guaranteed,
    quorum_intersection_size,
    sole_owner_correct_in_intersection,
    witness_bounds,
)
from repro.core.identity import balanced_assignment, random_assignment


class TestLemma7Arithmetic:
    def test_threshold_matches_the_paper_bound(self):
        # lemma7 arithmetic holds exactly when 2*ell > n + 3t.
        assert lemma7_holds(7, 6, 1)  # 12 > 10
        assert lemma7_holds(8, 6, 1)  # 12 > 11
        assert not lemma7_holds(9, 6, 1)  # 12 <= 12

    def test_intersection_size(self):
        assert quorum_intersection_size(6, 5) == 4
        assert quorum_intersection_size(6, 3) == 0


class TestLemma7Concrete:
    def test_sole_owner_extraction(self):
        a = balanced_assignment(7, 6)  # identifier 1 shared by 0 and 6
        result = sole_owner_correct_in_intersection(
            a, byzantine=(1,), quorum_a=(1, 2, 3, 4, 5), quorum_b=(2, 3, 4, 5, 6)
        )
        # Identifier 2 belongs to Byzantine slot 1; identifier 1 is shared.
        assert result == (3, 4, 5)

    def test_exhaustive_check_above_the_bound(self):
        # n=7, ell=6, t=1: bound holds; every quorum pair must intersect
        # in a sole-owner correct identifier whatever the adversary does.
        a = balanced_assignment(7, 6)
        for byz in range(7):
            assert lemma7_exhaustive_check(a, t=1, byzantine=(byz,))

    def test_exhaustive_check_fails_below_the_bound(self):
        # n=9, ell=6, t=1: 2*ell = n + 3t; there must exist an assignment,
        # Byzantine placement and quorum pair with no safe identifier.
        a = balanced_assignment(9, 6)  # ids 1,2,3 shared
        found_gap = any(
            not lemma7_exhaustive_check(a, t=1, byzantine=(byz,))
            for byz in range(9)
        )
        assert found_gap


class TestLemmas30And31:
    def test_lemma30_bound(self):
        assert lemma30_min_correct_broadcasters(7, 2, 2, witnesses=5) == 3
        assert lemma30_min_correct_broadcasters(7, 2, 2, witnesses=1) == 0

    def test_lemma31_positive_under_psl(self):
        for n, t in [(4, 1), (7, 2), (10, 3)]:
            for f in range(t + 1):
                assert lemma31_shared_broadcaster_guaranteed(n, t, f)

    def test_lemma31_can_fail_without_psl(self):
        assert not lemma31_shared_broadcaster_guaranteed(6, 2, 2)

    def test_witness_bounds(self):
        low, high = witness_bounds(3, {1: 1, 2: 0})
        assert (low, high) == (3, 4)


@given(
    n=st.integers(4, 16),
    t=st.integers(1, 4),
    seed=st.integers(0, 20),
)
@settings(max_examples=60, deadline=None)
def test_lemma7_arithmetic_matches_exhaustive_reality(n, t, seed):
    """Property: whenever the arithmetic says quorum intersections are
    safe, every concrete quorum pair of a random assignment contains a
    sole-owner correct identifier, for every Byzantine placement of size
    t.  (Exhaustive over quorums; sampled over placements.)"""
    ell = min(n, 3 * t + max(1, (n - t) // 2))
    if ell > n or ell - t < 1 or ell > 7:
        return
    if not lemma7_holds(n, ell, t):
        return
    a = random_assignment(n, ell, seed)
    import random as _random

    rng = _random.Random(seed)
    placements = [
        tuple(sorted(rng.sample(range(n), t))) for _ in range(3)
    ]
    for byz in placements:
        assert lemma7_exhaustive_check(a, t=t, byzantine=byz)
