"""The soak farm: deterministic mixtures, batch equivalence, resume.

The farm's three contracts, pinned here:

* **determinism** -- the instance stream is a pure function of
  ``(profile, seed, index)``: the same spec, the same per-instance
  seed, the same content-addressed ids, on every call and machine.
* **replay** -- any instance executed inside a batched window is
  bit-identical to a solo :func:`~repro.soak.mixture.run_instance`
  replay of just that index; kernels share no state.
* **kill/resume** -- a run killed anywhere (mid-window, mid-line)
  and resumed finishes with a metrics log byte-identical to an
  uninterrupted run of the same seed and budget.
"""

import hashlib
import json

import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError, SimulationError
from repro.experiments.campaign import CampaignCache
from repro.sim.metrics import WindowAggregator
from repro.soak import (
    PROFILES,
    checkpoint_id,
    expected_row_ids,
    get_profile,
    run_instance,
    run_soak,
    run_soak_window,
    sample_instance,
    stream_rows,
    window_plan,
)

PROFILE = "quick"
SEED = 42


def _digest(path):
    return hashlib.sha1(path.read_bytes()).hexdigest()


class TestMixture:
    def test_profiles_are_well_formed(self):
        assert "quick" in PROFILES and "standard" in PROFILES
        for name, profile in PROFILES.items():
            assert profile.name == name
            assert profile.cells, f"profile {name} has no cells"
            labels = [cell.label for cell in profile.cells]
            assert len(set(labels)) == len(labels)
            for cell in profile.cells:
                cell.params()  # must validate as a real system

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            get_profile("no-such-profile")

    def test_sampling_is_deterministic(self):
        a = [sample_instance(PROFILE, SEED, i) for i in range(40)]
        b = [sample_instance(PROFILE, SEED, i) for i in range(40)]
        assert a == b
        assert [s.instance_id for s in a] == [s.instance_id for s in b]

    def test_instance_ids_are_unique_across_the_stream(self):
        ids = {sample_instance(PROFILE, SEED, i).instance_id
               for i in range(200)}
        assert len(ids) == 200

    def test_seed_and_profile_move_the_stream(self):
        base = sample_instance(PROFILE, SEED, 3)
        assert sample_instance(PROFILE, SEED + 1, 3) != base
        assert sample_instance("standard", SEED, 3).instance_id \
            != base.instance_id

    def test_mixture_covers_every_adversary_and_timing_kind(self):
        specs = [sample_instance(PROFILE, SEED, i) for i in range(600)]
        kinds = {s.adversary for s in specs}
        timings = {s.timing for s in specs}
        cells = {s.cell for s in specs}
        assert {"silent", "crash", "flip", "equivocator", "chaos",
                "clone-chaos", "mirror", "ghost-imposter",
                "ghost-partition"} <= kinds
        assert {"none", "silence-gst", "drops", "punctual",
                "eventual"} <= timings
        assert cells == {c.label for c in get_profile(PROFILE).cells}

    def test_every_sampled_instance_satisfies_agreement(self):
        # Every cell in every profile is predicted solvable; no
        # adversary/timing draw may break agreement.
        for i in range(60):
            record = run_instance(sample_instance(PROFILE, SEED, i))
            assert record["ok"], (
                f"instance {i} violated agreement: {record}"
            )

    def test_restricted_cells_never_draw_unrestricted_faces(self):
        for i in range(400):
            spec = sample_instance(PROFILE, SEED, i)
            if spec.restricted:
                assert spec.adversary != "duplicator"


class TestWindowExecution:
    def test_window_records_equal_solo_replays(self):
        records = run_soak_window(PROFILE, SEED, 10, 30)
        solo = [run_instance(sample_instance(PROFILE, SEED, i))
                for i in range(10, 40)]
        assert [
            {"label": r.label, "ok": r.ok, "detail": r.detail,
             "rounds": r.rounds, "messages": r.messages,
             "losses": r.losses}
            for r in records
        ] == solo

    def test_batch_size_does_not_change_records(self):
        wide = run_soak_window(PROFILE, SEED, 0, 20, batch=32)
        narrow = run_soak_window(PROFILE, SEED, 0, 20, batch=1)
        assert wide == narrow

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            run_soak_window(PROFILE, SEED, 0, 0)
        with pytest.raises(ConfigurationError):
            run_soak_window(PROFILE, SEED, -1, 5)
        with pytest.raises(ConfigurationError):
            run_soak_window("no-such-profile", SEED, 0, 5)


class TestStreamPlan:
    def test_window_plan_partitions_the_budget(self):
        plan = window_plan(250, 100)
        assert plan == [(0, 0, 100), (1, 100, 100), (2, 200, 50)]
        assert window_plan(0, 100) == []

    def test_expected_ids_interleave_checkpoints(self):
        ids = expected_row_ids(PROFILE, SEED, 5, 2)
        assert len(ids) == 5 + 3  # 5 instances + 3 checkpoints
        assert ids[2] == checkpoint_id(PROFILE, SEED, 0, 2)
        assert ids[5] == checkpoint_id(PROFILE, SEED, 1, 4)
        assert ids[7] == checkpoint_id(PROFILE, SEED, 2, 5)
        assert ids[0] == sample_instance(PROFILE, SEED, 0).instance_id

    def test_checkpoint_ids_bind_position_and_offset(self):
        assert checkpoint_id(PROFILE, SEED, 0, 100) \
            != checkpoint_id(PROFILE, SEED, 0, 50)
        assert checkpoint_id(PROFILE, SEED, 0, 100) \
            != checkpoint_id(PROFILE, SEED + 1, 0, 100)


class TestAggregator:
    def test_counters_fold_records_and_rows(self):
        agg = WindowAggregator()
        agg.add(ok=True, rounds=3, messages=10, losses=1)
        agg.add_record({"ok": False, "rounds": 5, "messages": 7,
                        "losses": 0})
        snap = agg.snapshot()
        assert snap == {"instances": 2, "ok": 1, "violations": 1,
                        "rounds": 8, "messages": 17, "losses": 1}


class TestDriver:
    BUDGET = 90
    WINDOW = 30

    def _run(self, path, **kwargs):
        defaults = dict(seed=SEED, instances=self.BUDGET,
                        window=self.WINDOW, log_path=str(path))
        defaults.update(kwargs)
        return run_soak(PROFILE, **defaults)

    def test_bounded_run_streams_instances_and_checkpoints(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        outcome = self._run(path)
        assert outcome.passed
        assert outcome.instances == self.BUDGET
        assert outcome.executed_windows == 3
        rows = list(stream_rows(str(path)))
        instances = [r for r in rows if r["kind"] == "instance"]
        checkpoints = [r for r in rows if r["kind"] == "checkpoint"]
        assert len(instances) == self.BUDGET
        assert len(checkpoints) == 3
        # Checkpoints carry cumulative counters in window order.
        assert [c["instances"] for c in checkpoints] == [30, 60, 90]
        assert checkpoints[-1]["ok"] == outcome.ok
        assert checkpoints[-1]["messages"] == outcome.messages

    def test_instance_rows_match_solo_replay(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        self._run(path, instances=10, window=5)
        for row in stream_rows(str(path)):
            if row["kind"] != "instance":
                continue
            spec = sample_instance(PROFILE, SEED, row["index"])
            solo = run_instance(spec)
            assert row["unit_id"] == spec.instance_id
            assert {k: row[k] for k in solo} == solo

    @pytest.mark.parametrize("cut", (0.15, 0.5, 0.83))
    def test_kill_anywhere_then_resume_is_byte_identical(
        self, tmp_path, cut
    ):
        fresh = tmp_path / "fresh.jsonl"
        self._run(fresh)
        reference = _digest(fresh)
        killed = tmp_path / "killed.jsonl"
        data = fresh.read_bytes()
        killed.write_bytes(data[: int(len(data) * cut)])  # torn line
        outcome = self._run(killed, resume=True)
        assert outcome.passed
        assert outcome.instances == self.BUDGET
        assert _digest(killed) == reference

    def test_resume_of_finished_log_executes_nothing(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        self._run(path)
        reference = _digest(path)
        outcome = self._run(path, resume=True)
        assert outcome.executed_windows == 0
        assert outcome.executed_instances == 0
        assert outcome.instances == self.BUDGET
        assert _digest(path) == reference

    def test_stale_log_prefix_is_discarded(self, tmp_path):
        # A log written under a different farm seed shares no row ids:
        # resume must keep nothing and rebuild from scratch.
        path = tmp_path / "soak.jsonl"
        run_soak(PROFILE, seed=SEED + 1, instances=self.BUDGET,
                 window=self.WINDOW, log_path=str(path))
        outcome = self._run(path, resume=True)
        assert outcome.resumed_rows == 0
        fresh = tmp_path / "fresh.jsonl"
        self._run(fresh)
        assert _digest(path) == _digest(fresh)

    def test_pool_run_matches_serial_bytes(self, tmp_path):
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        self._run(serial)
        outcome = self._run(pooled, workers=2)
        assert outcome.passed
        assert _digest(serial) == _digest(pooled)

    def test_warm_unit_cache_skips_execution(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        first = self._run(tmp_path / "a.jsonl", cache=cache)
        assert first.executed_windows == 3
        second = self._run(tmp_path / "b.jsonl", cache=cache, resume=True)
        assert second.executed_windows == 0
        assert second.cached_windows == 3
        assert _digest(tmp_path / "a.jsonl") == _digest(tmp_path / "b.jsonl")

    def test_duration_budget_stops_and_resumes(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        outcome = run_soak(PROFILE, seed=SEED, duration=0.3, window=10,
                           log_path=str(path))
        assert outcome.instances > 0
        assert outcome.instances % 10 == 0  # whole windows only
        more = run_soak(PROFILE, seed=SEED, duration=0.2, window=10,
                        log_path=str(path), resume=True)
        assert more.instances >= outcome.instances
        # The combined log is a prefix of the deterministic stream:
        # identical to a bounded run of the same length.
        bounded = tmp_path / "bounded.jsonl"
        run_soak(PROFILE, seed=SEED, instances=more.instances, window=10,
                 log_path=str(bounded))
        assert _digest(path) == _digest(bounded)

    def test_budget_is_mandatory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_soak(PROFILE, seed=SEED,
                     log_path=str(tmp_path / "soak.jsonl"))

    def test_bad_parameters_rejected(self, tmp_path):
        log = str(tmp_path / "soak.jsonl")
        with pytest.raises(ConfigurationError):
            run_soak("no-such-profile", instances=10, log_path=log)
        with pytest.raises(ConfigurationError):
            run_soak(PROFILE, instances=-1, log_path=log)
        with pytest.raises(ConfigurationError):
            run_soak(PROFILE, instances=10, window=0, log_path=log)

    def test_worker_label_drift_is_a_hard_error(self, tmp_path, monkeypatch):
        # If the worker's sampled stream diverges from the driver's
        # (schema drift between builds), the farm must stop, not log
        # rows under the wrong content ids.
        import repro.soak.driver as driver_module

        real = driver_module.sample_instance

        def drifted(profile, seed, index):
            spec = real(profile, seed, index)
            return real(profile, seed + 1, index) if index == 2 else spec

        monkeypatch.setattr(driver_module, "sample_instance", drifted)
        with pytest.raises(SimulationError, match="label mismatch"):
            run_soak(PROFILE, seed=SEED, instances=5, window=5,
                     log_path=str(tmp_path / "soak.jsonl"))


class TestCLI:
    def test_soak_subcommand_smoke(self, tmp_path, capsys):
        log = tmp_path / "soak.jsonl"
        report = tmp_path / "soak.json"
        code = main([
            "soak", "--profile", "quick", "--instances", "40",
            "--window", "20", "--seed", str(SEED),
            "--log", str(log), "--report", str(report),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "40 instances" in out
        assert log.exists()
        data = json.loads(report.read_text())
        assert data["schema"] == "soak-report/1"
        assert data["instances"] == 40
        assert data["passed"] is True

    def test_soak_requires_a_budget(self, tmp_path, capsys):
        code = main(["soak", "--log", str(tmp_path / "soak.jsonl")])
        assert code == 2
        assert "budget" in capsys.readouterr().err

    def test_soak_rejects_unknown_profile(self, tmp_path, capsys):
        code = main([
            "soak", "--profile", "bogus", "--instances", "5",
            "--log", str(tmp_path / "soak.jsonl"),
        ])
        assert code == 2
        assert "bogus" in capsys.readouterr().err

    def test_soak_resume_continues_the_log(self, tmp_path, capsys):
        log = tmp_path / "soak.jsonl"
        args = ["soak", "--profile", "quick", "--window", "20",
                "--seed", str(SEED), "--log", str(log),
                "--cache-dir", str(tmp_path / "cache")]
        assert main([*args, "--instances", "20"]) == 0
        assert main([*args, "--instances", "60", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "60 instances" in out
        rows = list(stream_rows(str(log)))
        assert sum(1 for r in rows if r["kind"] == "checkpoint") == 3
