"""Tests for the Phase-King baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.generic import (
    CrashAdversary,
    EquivocatorAdversary,
    InputFlipAdversary,
    RandomByzantineAdversary,
)
from repro.classic.phase_king import PhaseKingSpec, PhaseKingState
from repro.classic.runner import classic_factory
from repro.core.errors import BoundViolation
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams
from repro.core.problem import BINARY
from repro.sim.runner import run_agreement


def run_pk(ell, t, proposals, byz=(), adversary=None):
    spec = PhaseKingSpec(ell, t, BINARY)
    params = SystemParams(n=ell, ell=ell, t=t)
    return run_agreement(
        params=params,
        assignment=balanced_assignment(ell, ell),
        factory=classic_factory(spec),
        proposals=proposals,
        byzantine=byz,
        adversary=adversary,
        max_rounds=spec.max_rounds + 2,
    ), spec


class TestSpecBasics:
    def test_bound_is_four_t(self):
        with pytest.raises(BoundViolation):
            PhaseKingSpec(4, 1, BINARY)
        assert PhaseKingSpec(5, 1, BINARY).ell == 5

    def test_round_count(self):
        assert PhaseKingSpec(5, 1, BINARY).max_rounds == 4
        assert PhaseKingSpec(9, 2, BINARY).max_rounds == 6

    def test_only_king_speaks_in_even_rounds(self):
        spec = PhaseKingSpec(5, 1, BINARY)
        king_state = spec.init(1, 0)
        other_state = spec.init(2, 0)
        assert spec.message(king_state, 2) is not None
        assert spec.message(other_state, 2) is None

    def test_everyone_speaks_in_odd_rounds(self):
        spec = PhaseKingSpec(5, 1, BINARY)
        for ident in range(1, 6):
            assert spec.message(spec.init(ident, 1), 1) == ("pk-pref", 1, 1)

    def test_is_state_checks_domain(self):
        spec = PhaseKingSpec(5, 1, BINARY)
        good = spec.init(1, 0)
        assert spec.is_state(good)
        bad = PhaseKingState(ident=1, rounds_done=0, pref=7, maj=0, mult=0)
        assert not spec.is_state(bad)

    def test_malformed_king_message_falls_to_default(self):
        spec = PhaseKingSpec(5, 1, BINARY)
        state = spec.init(2, 1)
        state = spec.transition(state, 1, {})  # no prefs at all: mult 0
        after = spec.transition(state, 2, {1: ("pk-king", 2, "garbage")})
        assert after.pref == BINARY.default


class TestAgreementRuns:
    def test_unanimous_no_faults(self):
        result, _ = run_pk(5, 1, {k: 1 for k in range(5)})
        assert result.verdict.ok and result.verdict.agreed_value == 1

    def test_silent_byzantine_king(self):
        # Slot 0 holds identifier 1 = king of phase 1; make it Byzantine.
        result, _ = run_pk(5, 1, {k: k % 2 for k in range(1, 5)}, byz=(0,))
        assert result.verdict.ok

    def test_validity_under_flip(self):
        spec = PhaseKingSpec(5, 1, BINARY)
        result, _ = run_pk(
            5, 1, {k: 1 for k in range(4)}, byz=(4,),
            adversary=InputFlipAdversary(classic_factory(spec), proposal=0),
        )
        assert result.verdict.ok and result.verdict.agreed_value == 1

    def test_equivocating_king(self):
        spec = PhaseKingSpec(5, 1, BINARY)
        result, _ = run_pk(
            5, 1, {k: k % 2 for k in range(1, 5)}, byz=(0,),
            adversary=EquivocatorAdversary(classic_factory(spec)),
        )
        assert result.verdict.ok

    def test_crash_during_kingship(self):
        spec = PhaseKingSpec(5, 1, BINARY)
        result, _ = run_pk(
            5, 1, {k: k % 2 for k in range(1, 5)}, byz=(0,),
            adversary=CrashAdversary(classic_factory(spec), crash_round=1),
        )
        assert result.verdict.ok

    def test_two_faults_nine_processes(self):
        result, _ = run_pk(
            9, 2, {k: k % 2 for k in range(7)}, byz=(7, 8),
            adversary=RandomByzantineAdversary(seed=5),
        )
        assert result.verdict.ok


@given(
    seed=st.integers(0, 40),
    byz_slot=st.integers(0, 4),
    inputs=st.tuples(*[st.integers(0, 1)] * 5),
)
@settings(max_examples=30, deadline=None)
def test_phase_king_agreement_under_random_byzantine(seed, byz_slot, inputs):
    """Property: any Byzantine slot, any inputs, seeded chaos -> clean."""
    proposals = {k: inputs[k] for k in range(5) if k != byz_slot}
    result, _ = run_pk(
        5, 1, proposals, byz=(byz_slot,),
        adversary=RandomByzantineAdversary(seed=seed),
    )
    assert result.verdict.ok
