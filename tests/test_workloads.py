"""Tests for the experiment workload generators and reports."""

import pytest

from repro.core.identity import balanced_assignment, byzantine_sets, stacked_assignment
from repro.core.problem import BINARY, AgreementProblem
from repro.experiments.report import latency_series_report
from repro.experiments.workloads import (
    alternating_inputs,
    assignment_battery,
    byzantine_batteries,
    byzantine_on_homonyms,
    byzantine_on_sole_owners,
    input_patterns,
    random_byzantine,
    random_inputs,
    unanimous_inputs,
)


class TestInputGenerators:
    def test_unanimous(self):
        assert unanimous_inputs([0, 2, 5], 1) == {0: 1, 2: 1, 5: 1}

    def test_alternating_cycles_domain(self):
        problem = AgreementProblem(("a", "b", "c"))
        inputs = alternating_inputs([3, 1, 2], problem)
        assert inputs == {1: "a", 2: "b", 3: "c"}

    def test_random_deterministic_and_in_domain(self):
        a = random_inputs(range(10), BINARY, seed=4)
        b = random_inputs(range(10), BINARY, seed=4)
        assert a == b
        assert set(a.values()) <= set(BINARY.domain)

    def test_pattern_battery_shape(self):
        patterns = input_patterns([0, 1, 2], BINARY, seed=1)
        names = [name for name, _ in patterns]
        assert len(patterns) == 4
        assert any("all-0" in name for name in names)
        assert any("random" in name for name in names)
        for _name, proposals in patterns:
            assert set(proposals) == {0, 1, 2}


class TestAssignmentBattery:
    def test_contains_balanced_and_stacked(self):
        names = [name for name, _ in assignment_battery(7, 4)]
        assert "balanced" in names and "stacked" in names

    def test_no_random_when_classical(self):
        names = [name for name, _ in assignment_battery(4, 4)]
        assert not any("random" in name for name in names)

    def test_all_assignments_valid(self):
        for _name, assignment in assignment_battery(9, 4, seed=2):
            assert assignment.n == 9 and assignment.ell == 4


class TestByzantinePlacements:
    def test_homonym_targeting_prefers_shared_ids(self):
        assignment = stacked_assignment(6, 4)  # identifier 1 shared
        placement = byzantine_on_homonyms(assignment, 1)
        assert assignment.identifier_of(placement[0]) == 1

    def test_sole_owner_targeting_prefers_singletons(self):
        assignment = stacked_assignment(6, 4)
        placement = byzantine_on_sole_owners(assignment, 1)
        assert assignment.identifier_of(placement[0]) in (2, 3, 4)

    def test_random_placement_seeded(self):
        assignment = balanced_assignment(8, 4)
        assert random_byzantine(assignment, 2, 5) == \
            random_byzantine(assignment, 2, 5)
        assert len(random_byzantine(assignment, 2, 5)) == 2

    def test_batteries_deduplicate(self):
        assignment = balanced_assignment(4, 4)  # no homonyms at all
        batteries = byzantine_batteries(assignment, 1, seed=0)
        placements = [p for _n, p in batteries]
        assert len(placements) == len(set(placements))

    def test_t_zero_battery(self):
        assignment = balanced_assignment(4, 4)
        assert byzantine_batteries(assignment, 0) == [("none", ())]

    def test_core_helper_byzantine_sets(self):
        assignment = balanced_assignment(8, 4)
        chosen = byzantine_sets(assignment, 3, seed=1)
        assert len(chosen) == 3
        assert all(0 <= k < 8 for k in chosen)


class TestReports:
    def test_latency_series_report_layout(self):
        text = latency_series_report(
            "latency", [("gst=0", 23.0), ("gst=16", 39.0)]
        )
        assert "latency" in text
        assert "23.0 rounds" in text and "39.0 rounds" in text

    def test_latency_series_custom_unit(self):
        text = latency_series_report("bytes", [("x", 1.0)], unit="KiB")
        assert "KiB" in text
