"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY


@pytest.fixture
def binary():
    """The binary agreement problem used by most tests."""
    return BINARY


def psync_params(n: int, ell: int, t: int, numerate: bool = False,
                 restricted: bool = False) -> SystemParams:
    """Partially synchronous parameter shorthand."""
    return SystemParams(
        n=n, ell=ell, t=t,
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        numerate=numerate, restricted=restricted,
    )


def sync_params(n: int, ell: int, t: int, numerate: bool = False,
                restricted: bool = False) -> SystemParams:
    """Synchronous parameter shorthand."""
    return SystemParams(
        n=n, ell=ell, t=t,
        synchrony=Synchrony.SYNCHRONOUS,
        numerate=numerate, restricted=restricted,
    )
