"""Cross-cutting property tests: the solvability boundary, end to end.

These are the highest-level invariants of the reproduction: everywhere
the paper says "solvable", our algorithms survive seeded chaos;
everywhere it says "unsolvable", the constructions break them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.generic import RandomByzantineAdversary
from repro.analysis.bounds import solvable
from repro.classic.eig import EIGSpec
from repro.core.identity import random_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY, AgreementProblem
from repro.experiments.harness import algorithm_for
from repro.homonyms.transform import transform_factory, transform_horizon
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.psync.restricted import restricted_factory, restricted_horizon
from repro.sim.partial import RandomDrops
from repro.sim.runner import run_agreement


# A hand-picked frontier of solvable configurations, one per model family,
# spanning homonym patterns.
SOLVABLE_FRONTIER = [
    # (params, gst) -- gst 0 means synchronous scheduling.
    (SystemParams(n=4, ell=4, t=1), 0),
    (SystemParams(n=6, ell=4, t=1), 0),
    (SystemParams(n=8, ell=4, t=1), 0),  # heavy homonyms, sync
    (SystemParams(n=7, ell=6, t=1,
                  synchrony=Synchrony.PARTIALLY_SYNCHRONOUS), 8),
    (SystemParams(n=8, ell=6, t=1,
                  synchrony=Synchrony.PARTIALLY_SYNCHRONOUS), 8),  # boundary
    (SystemParams(n=4, ell=2, t=1,
                  synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
                  numerate=True, restricted=True), 8),
    (SystemParams(n=7, ell=3, t=2,
                  synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
                  numerate=True, restricted=True), 8),
]


@pytest.mark.parametrize("params,gst", SOLVABLE_FRONTIER)
def test_frontier_configurations_are_predicted_solvable(params, gst):
    assert solvable(params)


@given(seed=st.integers(0, 15), which=st.integers(0, len(SOLVABLE_FRONTIER) - 1))
@settings(max_examples=25, deadline=None)
def test_solvable_frontier_survives_chaos(seed, which):
    """Property: every frontier configuration survives a seeded chaos
    adversary on a random assignment with random inputs."""
    params, gst = SOLVABLE_FRONTIER[which]
    _, factory, horizon = algorithm_for(params)
    assignment = random_assignment(params.n, params.ell, seed)
    byz = (seed % params.n,)
    if params.t == 2:
        byz = (seed % params.n, (seed + 3) % params.n)
        if len(set(byz)) == 1:
            byz = (byz[0],)
    proposals = {
        k: (k * 31 + seed) % 2 for k in range(params.n) if k not in byz
    }
    schedule = RandomDrops(gst=gst, p=0.5, seed=seed) if gst else None
    result = run_agreement(
        params=params,
        assignment=assignment,
        factory=factory,
        proposals=proposals,
        byzantine=byz,
        adversary=RandomByzantineAdversary(seed=seed),
        drop_schedule=schedule,
        max_rounds=horizon,
    )
    assert result.verdict.ok, result.verdict.summary()


class TestCrossAlgorithmConsistency:
    """The three algorithm families must agree with each other where
    their domains overlap."""

    def test_sync_and_psync_agree_on_classical_config(self):
        # n = ell = 4, t = 1: both T(EIG) and Figure 5 apply.
        proposals = {k: k % 2 for k in range(3)}

        sync_params = SystemParams(n=4, ell=4, t=1)
        spec = EIGSpec(4, 1, BINARY)
        r1 = run_agreement(
            params=sync_params,
            assignment=random_assignment(4, 4, 0),
            factory=transform_factory(spec),
            proposals=proposals,
            byzantine=(3,),
            max_rounds=transform_horizon(spec),
        )
        psync_params = SystemParams(
            n=4, ell=4, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        r2 = run_agreement(
            params=psync_params,
            assignment=random_assignment(4, 4, 0),
            factory=dls_factory(psync_params, BINARY),
            proposals=proposals,
            byzantine=(3,),
            max_rounds=dls_horizon(psync_params, 0),
        )
        assert r1.verdict.ok and r2.verdict.ok

    def test_fig7_works_wherever_fig5_does_with_flags(self):
        # Restricted + numerate at a Figure 5-solvable point.
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        r = run_agreement(
            params=params,
            assignment=random_assignment(7, 6, 1),
            factory=restricted_factory(params, BINARY),
            proposals={k: k % 2 for k in range(6)},
            byzantine=(6,),
            max_rounds=restricted_horizon(params, 0),
        )
        assert r.verdict.ok


class TestLargerDomains:
    """Binary agreement is the paper's focus but nothing restricts the
    domain; exercise 3- and 4-value agreement."""

    def test_transform_with_four_values(self):
        problem = AgreementProblem((0, 1, 2, 3))
        spec = EIGSpec(4, 1, problem)
        params = SystemParams(n=6, ell=4, t=1)
        r = run_agreement(
            params=params,
            assignment=random_assignment(6, 4, 2),
            factory=transform_factory(spec),
            proposals={k: k % 4 for k in range(5)},
            byzantine=(5,),
            max_rounds=transform_horizon(spec),
        )
        assert r.verdict.ok

    def test_dls_with_three_values_unanimity(self):
        problem = AgreementProblem(("x", "y", "z"))
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        r = run_agreement(
            params=params,
            assignment=random_assignment(7, 6, 3),
            factory=dls_factory(params, problem),
            proposals={k: "y" for k in range(6)},
            byzantine=(6,),
            max_rounds=dls_horizon(params, 0),
        )
        assert r.verdict.ok and r.verdict.agreed_value == "y"
