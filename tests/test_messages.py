"""Unit tests for repro.core.messages: set vs multiset inboxes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ProtocolViolation
from repro.core.messages import Inbox, Message, ensure_hashable, merge_inboxes


def msg(ident, payload):
    return Message(ident, payload)


class TestMessage:
    def test_paper_aliases(self):
        m = msg(3, ("hello",))
        assert m.id == 3 and m.val == ("hello",)

    def test_sort_key_is_deterministic_across_types(self):
        messages = [msg(1, "b"), msg(1, 2), msg(2, "a"), msg(1, (0,))]
        assert sorted(messages) == sorted(reversed(messages))

    def test_equality_is_structural(self):
        assert msg(1, (1, 2)) == msg(1, (1, 2))
        assert msg(1, (1, 2)) != msg(2, (1, 2))


class TestEnsureHashable:
    def test_accepts_tuples_and_scalars(self):
        for payload in (0, "x", (1, (2, 3)), frozenset({1})):
            assert ensure_hashable(payload) is payload

    def test_rejects_lists_and_dicts(self):
        for payload in ([1], {"a": 1}, {1, 2}):
            with pytest.raises(ProtocolViolation):
                ensure_hashable(payload)


class TestInnumerateInbox:
    def test_collapses_identical_messages(self):
        inbox = Inbox([msg(1, "v"), msg(1, "v"), msg(1, "v")], numerate=False)
        assert len(inbox) == 1

    def test_keeps_distinct_payloads_from_same_id(self):
        inbox = Inbox([msg(1, "v"), msg(1, "w")], numerate=False)
        assert len(inbox) == 2

    def test_counting_is_forbidden(self):
        inbox = Inbox([msg(1, "v")], numerate=False)
        with pytest.raises(ProtocolViolation):
            inbox.count_copies(msg(1, "v"))
        with pytest.raises(ProtocolViolation):
            inbox.count_matching(lambda m: True)
        with pytest.raises(ProtocolViolation):
            inbox.payload_counter()

    def test_distinct_ids_still_available(self):
        inbox = Inbox([msg(1, "v"), msg(2, "v"), msg(2, "w")], numerate=False)
        assert inbox.distinct_ids() == {1, 2}
        assert inbox.distinct_ids(lambda m: m.payload == "v") == {1, 2}
        assert inbox.count_distinct_ids(lambda m: m.payload == "w") == 1


class TestNumerateInbox:
    def test_preserves_copies(self):
        inbox = Inbox([msg(1, "v")] * 3 + [msg(2, "v")], numerate=True)
        assert len(inbox) == 4
        assert inbox.count_copies(msg(1, "v")) == 3
        assert inbox.count_matching(lambda m: m.payload == "v") == 4

    def test_payload_counter(self):
        inbox = Inbox([msg(1, "v"), msg(1, "v"), msg(2, "w")], numerate=True)
        assert inbox.payload_counter() == {(1, "v"): 2, (2, "w"): 1}

    def test_from_identifier_ordering_is_deterministic(self):
        inbox = Inbox([msg(2, "b"), msg(2, "a"), msg(1, "z")], numerate=True)
        assert [m.payload for m in inbox.from_identifier(2)] == ["a", "b"]


class TestSupportHelper:
    def test_values_with_id_support(self):
        inbox = Inbox(
            [msg(1, ("dec", 0)), msg(2, ("dec", 0)), msg(3, ("dec", 1)),
             msg(1, "noise")],
            numerate=False,
        )

        def extract(m):
            return m.payload[1] if isinstance(m.payload, tuple) else None

        support = inbox.values_with_id_support(extract)
        assert support[0] == {1, 2}
        assert support[1] == {3}


def test_merge_inboxes_unions_messages():
    a = Inbox([msg(1, "x")], numerate=True)
    b = Inbox([msg(1, "x"), msg(2, "y")], numerate=True)
    merged = merge_inboxes([a, b], numerate=True)
    assert merged.count_copies(msg(1, "x")) == 2
    merged_set = merge_inboxes([a, b], numerate=False)
    assert len(merged_set) == 2


@given(
    entries=st.lists(
        st.tuples(st.integers(1, 5), st.integers(0, 3)), max_size=30
    )
)
@settings(max_examples=60)
def test_innumerate_is_numerate_deduplicated(entries):
    """Property: the innumerate view is exactly the numerate view's set."""
    messages = [msg(i, v) for i, v in entries]
    innumerate = Inbox(messages, numerate=False)
    numerate = Inbox(messages, numerate=True)
    assert set(innumerate.messages()) == set(numerate.messages())
    assert len(innumerate) == len(set(messages))
    assert innumerate.distinct_ids() == numerate.distinct_ids()
