"""Tests for the one-shot reliable broadcast extension."""

import pytest

from repro.broadcast.reliable import (
    ReliableBroadcastProcess,
    reliable_broadcast_factory,
)
from repro.broadcast.runner import run_reliable_broadcast
from repro.core.errors import BoundViolation
from repro.core.identity import stacked_assignment
from repro.sim.adversary import Adversary
from repro.sim.partial import SilenceUntil


def run_rbc(n, ell, t, sender_ident, values_by_slot, byz=(),
            adversary=None, drop_schedule=None, rounds=14,
            assignment=None, start_superround=0):
    run = run_reliable_broadcast(
        n, ell, t, sender_ident, values_by_slot, byzantine=byz,
        adversary=adversary, drop_schedule=drop_schedule, rounds=rounds,
        assignment=assignment, start_superround=start_superround,
    )
    return run.correct_processes, run.assignment


class TestConstruction:
    def test_bound_enforced(self):
        with pytest.raises(BoundViolation):
            ReliableBroadcastProcess(3, 1, 1, 1)

    def test_factory_only_arms_sender_identifier(self):
        factory = reliable_broadcast_factory(4, 1, sender_ident=2)
        sender = factory(2, "v")
        bystander = factory(3, "v")
        assert sender.proposal == "v"
        assert bystander.proposal is None


class TestValidity:
    def test_sole_correct_sender_delivers_everywhere(self):
        procs, _ = run_rbc(5, 4, 1, sender_ident=2, values_by_slot={1: "hi"})
        for p in procs:
            assert p.delivered == "hi"

    def test_correct_homonym_group_with_common_value(self):
        # Identifier 1 held by two processes, both broadcasting "x".
        assignment = stacked_assignment(5, 4)
        group = assignment.group(1)
        values = {k: "x" for k in group}
        procs, _ = run_rbc(5, 4, 1, sender_ident=1, values_by_slot=values,
                           assignment=assignment)
        for p in procs:
            assert p.delivered == "x"

    def test_divergent_correct_homonyms_deliver_deterministically(self):
        # Two correct holders of identifier 1 broadcast different values:
        # the model cannot tell them from one equivocator, but delivery
        # is still the deterministic minimum at every process that has
        # seen both by its delivery round (all of them, synchronously).
        assignment = stacked_assignment(5, 4)
        group = assignment.group(1)
        values = {group[0]: "b", group[1]: "a"}
        procs, _ = run_rbc(5, 4, 1, sender_ident=1, values_by_slot=values,
                           assignment=assignment)
        delivered = {p.delivered for p in procs}
        assert delivered == {"a"}  # repr-min of the pair


class TestIntegrity:
    def test_never_delivers_unsent_value_for_correct_identifier(self):
        class Forger(Adversary):
            """Byzantine (identifier 4) floods echoes for a phantom
            broadcast of the correct identifier 2."""

            def emissions(self, view):
                echo = (("echo", ("rbc-value", "fake"), 0, 2),)
                bundle = ("rbc", (), echo)
                return {
                    b: {q: (bundle,) for q in range(view.params.n)}
                    for b in view.byzantine
                }

        procs, _ = run_rbc(
            5, 4, 1, sender_ident=2, values_by_slot={1: "real"},
            byz=(4,), adversary=Forger(),
        )
        for p in procs:
            assert p.delivered == "real"

    def test_no_delivery_without_any_broadcast(self):
        procs, _ = run_rbc(5, 4, 1, sender_ident=2, values_by_slot={},
                           rounds=10)
        for p in procs:
            assert not p.decided


class TestTotality:
    def test_all_deliver_despite_pre_gst_chaos(self):
        # Broadcast after stabilisation: everyone must deliver.
        procs, _ = run_rbc(
            5, 4, 1, sender_ident=3, values_by_slot={2: 9},
            drop_schedule=SilenceUntil(6), rounds=20,
            start_superround=4,
        )
        for p in procs:
            assert p.delivered == 9

    def test_delivery_times_within_one_superround(self):
        procs, _ = run_rbc(5, 4, 1, sender_ident=2, values_by_slot={1: "v"})
        rounds = [p.decision_round for p in procs]
        assert max(rounds) - min(rounds) <= 2  # one superround
