"""Tests for the machine-readable benchmark snapshot writer.

``benchmarks.conftest.snapshot`` backs ``make bench-snapshot``: the
reference-comparison benches call it unconditionally, and it writes
``BENCH_<topic>.json`` only when ``BENCH_SNAPSHOT_DIR`` points
somewhere, so plain benchmark runs stay side-effect free.
"""

import json

from benchmarks.conftest import snapshot


class TestSnapshotWriter:
    def test_noop_without_snapshot_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("BENCH_SNAPSHOT_DIR", raising=False)
        assert snapshot("fabric", {"n": 64}, ops_per_s=123.4) is None
        assert list(tmp_path.iterdir()) == []

    def test_writes_topic_named_json(self, monkeypatch, tmp_path):
        monkeypatch.setenv("BENCH_SNAPSHOT_DIR", str(tmp_path / "snaps"))
        path = snapshot(
            "delay_kernel",
            {"n": 64, "rounds": 32},
            ops_per_s=1234.5678,
            speedup=3.14159,
        )
        assert path is not None
        assert path.name == "BENCH_delay_kernel.json"
        data = json.loads(path.read_text())
        assert data == {
            "topic": "delay_kernel",
            "params": {"n": 64, "rounds": 32},
            "ops_per_s": 1234.57,
            "speedup": 3.14,
        }

    def test_speedup_optional_and_extra_fields_merge(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("BENCH_SNAPSHOT_DIR", str(tmp_path))
        path = snapshot(
            "campaign", {"workers": 4}, ops_per_s=10.0,
            extra={"cpus": 8},
        )
        data = json.loads(path.read_text())
        assert data["speedup"] is None
        assert data["cpus"] == 8

    def test_rewrites_deterministically(self, monkeypatch, tmp_path):
        monkeypatch.setenv("BENCH_SNAPSHOT_DIR", str(tmp_path))
        first = snapshot("fabric", {"n": 16}, ops_per_s=5.0, speedup=2.0)
        second = snapshot("fabric", {"n": 16}, ops_per_s=5.0, speedup=2.0)
        assert first == second
        # sort_keys + trailing newline: stable bytes for artefact diffing.
        text = first.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(
            json.loads(text), indent=2, sort_keys=True
        ) + "\n"
