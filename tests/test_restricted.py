"""Tests for the Figure 7 restricted-numerate algorithm (ell > t)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.generic import (
    CrashAdversary,
    EquivocatorAdversary,
    InputFlipAdversary,
    RandomByzantineAdversary,
)
from repro.core.errors import BoundViolation
from repro.core.identity import balanced_assignment, stacked_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.restricted import (
    RestrictedNumerateProcess,
    check_restricted_bound,
    restricted_factory,
    restricted_horizon,
)
from repro.sim.partial import RandomDrops, SilenceUntil
from repro.sim.runner import run_agreement


def make_params(n=4, ell=2, t=1):
    return SystemParams(
        n=n, ell=ell, t=t,
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        numerate=True, restricted=True,
    )


def run_fig7(params, proposals, byz=(), adversary=None, drop_schedule=None,
             assignment=None, gst=0):
    if assignment is None:
        assignment = balanced_assignment(params.n, params.ell)
    return run_agreement(
        params=params,
        assignment=assignment,
        factory=restricted_factory(params, BINARY),
        proposals=proposals,
        byzantine=byz,
        adversary=adversary,
        drop_schedule=drop_schedule,
        max_rounds=restricted_horizon(params, gst),
    )


class TestConstruction:
    def test_bound_checks(self):
        with pytest.raises(BoundViolation):
            check_restricted_bound(3, 2, 1)  # n <= 3t
        with pytest.raises(BoundViolation):
            check_restricted_bound(4, 1, 1)  # ell <= t
        check_restricted_bound(4, 2, 1)

    def test_requires_numerate_and_restricted_flags(self):
        sloppy = SystemParams(
            n=4, ell=2, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=False, restricted=True,
        )
        with pytest.raises(BoundViolation):
            RestrictedNumerateProcess(sloppy, BINARY, 1, 0)
        unrestricted = SystemParams(
            n=4, ell=2, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=False,
        )
        with pytest.raises(BoundViolation):
            RestrictedNumerateProcess(unrestricted, BINARY, 1, 0)

    def test_unchecked_escape_hatch(self):
        bad = SystemParams(
            n=4, ell=1, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        proc = RestrictedNumerateProcess(bad, BINARY, 1, 0, unchecked=True)
        assert proc.identifier == 1


class TestFarBelowClassicBound:
    """ell = t + 1 identifiers: far fewer than the 3t + 1 of Theorem 3."""

    def test_two_identifiers_one_fault(self):
        params = make_params(n=4, ell=2, t=1)
        r = run_fig7(params, {k: k % 2 for k in range(3)}, byz=(3,))
        assert r.verdict.ok

    def test_three_identifiers_two_faults(self):
        params = make_params(n=7, ell=3, t=2)
        r = run_fig7(params, {k: k % 2 for k in range(5)}, byz=(5, 6),
                     adversary=RandomByzantineAdversary(seed=2))
        assert r.verdict.ok

    def test_unanimity_validity(self):
        params = make_params()
        r = run_fig7(params, {k: 1 for k in range(3)}, byz=(3,),
                     adversary=InputFlipAdversary(
                         restricted_factory(params, BINARY), proposal=0))
        assert r.verdict.ok and r.verdict.agreed_value == 1

    def test_stacked_assignment(self):
        params = make_params(n=6, ell=2, t=1)
        r = run_fig7(params, {k: k % 2 for k in range(5)}, byz=(5,),
                     assignment=stacked_assignment(6, 2))
        assert r.verdict.ok


class TestPartialSynchrony:
    def test_silence_until_gst(self):
        params = make_params()
        r = run_fig7(params, {k: k % 2 for k in range(3)}, byz=(3,),
                     drop_schedule=SilenceUntil(16), gst=16)
        assert r.verdict.ok

    def test_random_drops(self):
        params = make_params()
        r = run_fig7(params, {k: k % 2 for k in range(3)}, byz=(3,),
                     drop_schedule=RandomDrops(gst=12, p=0.5, seed=7), gst=12)
        assert r.verdict.ok


class TestByzantineResilience:
    def test_equivocating_byzantine(self):
        params = make_params()
        r = run_fig7(params, {k: k % 2 for k in range(1, 4)}, byz=(0,),
                     adversary=EquivocatorAdversary(
                         restricted_factory(params, BINARY)))
        assert r.verdict.ok

    def test_crashing_byzantine(self):
        params = make_params()
        r = run_fig7(params, {k: k % 2 for k in range(3)}, byz=(3,),
                     adversary=CrashAdversary(
                         restricted_factory(params, BINARY), crash_round=6))
        assert r.verdict.ok

    def test_byzantine_sharing_leader_identifier(self):
        # Slot 0 holds identifier 1 (leader of even phases); corrupt it.
        params = make_params()
        r = run_fig7(params, {k: k % 2 for k in range(1, 4)}, byz=(0,),
                     adversary=RandomByzantineAdversary(seed=5))
        assert r.verdict.ok

    def test_combined_drops_and_chaos(self):
        params = make_params(n=5, ell=2, t=1)
        r = run_fig7(params, {k: k % 2 for k in range(4)}, byz=(4,),
                     adversary=RandomByzantineAdversary(seed=11),
                     drop_schedule=RandomDrops(gst=10, p=0.4, seed=3),
                     gst=10)
        assert r.verdict.ok


class TestSynchronousCorollary:
    """Theorem 14: the same algorithm solves the synchronous case."""

    def test_synchronous_model_flag(self):
        params = SystemParams(
            n=4, ell=2, t=1, synchrony=Synchrony.SYNCHRONOUS,
            numerate=True, restricted=True,
        )
        r = run_fig7(params, {k: k % 2 for k in range(3)}, byz=(3,))
        assert r.verdict.ok


@given(seed=st.integers(0, 20), byz_slot=st.integers(0, 3),
       gst=st.sampled_from([0, 8]))
@settings(max_examples=15, deadline=None)
def test_fig7_fuzz(seed, byz_slot, gst):
    """Property: n=4, ell=2, t=1 (minimal interesting case) survives
    seeded chaos with any Byzantine slot and drop schedule."""
    params = make_params()
    proposals = {k: (k + seed) % 2 for k in range(4) if k != byz_slot}
    r = run_fig7(
        params, proposals, byz=(byz_slot,),
        adversary=RandomByzantineAdversary(seed=seed),
        drop_schedule=RandomDrops(gst=gst, p=0.5, seed=seed) if gst else None,
        gst=gst,
    )
    assert r.verdict.ok
