"""Unit tests for the Figure 5 ablation variants.

The full attack-vs-ablation stories live in the benchmark suite; these
tests pin down the variants' mechanics so refactors of the base class
cannot silently un-ablate them.
"""

import pytest

from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.ablations import (
    LockSplitAdversary,
    NoDecideRelayDLSProcess,
    NoVoteDLSProcess,
    no_decide_relay_factory,
    no_vote_factory,
)
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.runner import run_agreement


def make_params():
    return SystemParams(
        n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )


def run_variant(factory_maker, byz=(6,), adversary=None, extra=0):
    params = make_params()
    return run_agreement(
        params=params,
        assignment=balanced_assignment(7, 6),
        factory=factory_maker(params, BINARY),
        proposals={k: k % 2 for k in range(7) if k not in byz},
        byzantine=byz,
        adversary=adversary,
        max_rounds=dls_horizon(params, 0) + extra,
    )


class TestNoVoteVariant:
    def test_never_broadcasts_votes(self):
        result = run_variant(no_vote_factory)
        for record in result.trace:
            for payload in record.payloads.values():
                inits = payload[1]
                assert not any(
                    isinstance(item, tuple) and len(item) == 3
                    and isinstance(item[1], tuple) and item[1][0] == "vote"
                    for item in inits
                ), "ablated variant broadcast a vote"

    def test_still_decides_without_attack(self):
        # With a silent Byzantine the classic-DLS path is fine.
        result = run_variant(no_vote_factory)
        assert result.verdict.ok

    def test_deadlocks_under_lock_split(self):
        result = run_variant(no_vote_factory, byz=(1,),
                             adversary=LockSplitAdversary())
        assert result.verdict.violated("termination")

    def test_full_algorithm_survives_the_same_attack(self):
        result = run_variant(dls_factory, byz=(1,),
                             adversary=LockSplitAdversary())
        assert result.verdict.ok


class TestNoRelayVariant:
    def test_never_adopts_relayed_decisions(self):
        params = make_params()
        proc = NoDecideRelayDLSProcess(params, BINARY, 1, 0)
        proc._relay_decisions({0: {1, 2, 3, 4}}, round_no=7)
        assert not proc.decided

    def test_staircase_decision_pattern(self):
        full = run_variant(dls_factory)
        ablated = run_variant(no_decide_relay_factory, extra=48)
        assert full.verdict.ok and ablated.verdict.ok
        spread_full = (max(full.verdict.decision_rounds.values())
                       - min(full.verdict.decision_rounds.values()))
        spread_ablated = (max(ablated.verdict.decision_rounds.values())
                          - min(ablated.verdict.decision_rounds.values()))
        assert spread_ablated > spread_full

    def test_safety_is_unaffected(self):
        result = run_variant(no_decide_relay_factory, extra=48)
        assert not result.verdict.violated("agreement")
        assert not result.verdict.violated("validity")


class TestLockSplitAdversary:
    def test_only_emits_when_its_identifier_leads(self):
        from repro.sim.adversary import AdversaryView
        from repro.sim.trace import Trace

        params = make_params()
        assignment = balanced_assignment(7, 6)
        adversary = LockSplitAdversary()
        adversary.setup(params, assignment, (1,), {})

        def view_at(round_no):
            return AdversaryView(
                round_no=round_no, params=params, assignment=assignment,
                byzantine=(1,), correct_payloads={}, processes=[None] * 7,
                trace=Trace(),
            )

        # Slot 1 holds identifier 2 = leader of phase 1.  The lock round
        # of phase 1 is round 2*(4*1 + 1) = 10.
        assert adversary.emissions(view_at(10))
        # Not in phase 0's lock round (identifier 1 leads there) ...
        assert not adversary.emissions(view_at(2))
        # ... and not outside lock rounds at all.
        assert not adversary.emissions(view_at(11))
        assert not adversary.emissions(view_at(0))

    def test_sends_different_values_by_parity(self):
        from repro.sim.adversary import AdversaryView
        from repro.sim.trace import Trace

        params = make_params()
        assignment = balanced_assignment(7, 6)
        adversary = LockSplitAdversary(value_even=0, value_odd=1)
        adversary.setup(params, assignment, (1,), {})
        view = AdversaryView(
            round_no=10, params=params, assignment=assignment,
            byzantine=(1,), correct_payloads={}, processes=[None] * 7,
            trace=Trace(),
        )
        emission = adversary.emissions(view)[1]
        assert emission[0][0][3] == (("lock", 0, 1),)
        assert emission[1][0][3] == (("lock", 1, 1),)
