"""Additional cross-cutting hypothesis properties.

These widen the randomised surface beyond the per-module property
tests: delay-network equivalence over random deltas and seeds, reliable
broadcast totality under random weather, and verdict-checker coherence
on arbitrary decision patterns.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.reliable import ReliableBroadcastProcess
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import check_agreement_properties
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.delay import AlwaysBoundedUnknownDelays, run_delay_execution
from repro.sim.network import RoundEngine
from repro.sim.partial import RandomDrops
from repro.sim.runner import make_processes


@given(delta=st.integers(1, 6), seed=st.integers(0, 30))
@settings(max_examples=12, deadline=None)
def test_punctual_delay_networks_always_match_round_engine(delta, seed):
    """Property: for ANY always-bounded delta and delay pattern, the
    delay simulator's trace equals the round engine's -- delays within a
    round window are unobservable in the basic model."""
    # n=6, ell=5 (n=5, ell=4 is the paper's unsolvable curiosity).
    params = SystemParams(
        n=6, ell=5, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
    )
    assignment = balanced_assignment(6, 5)
    byz = (5,)
    proposals = {k: k % 2 for k in range(5)}
    rounds = dls_horizon(params, 0)

    procs_a = make_processes(dls_factory(params, BINARY), assignment,
                             proposals, byz)
    engine = RoundEngine(params=params, assignment=assignment,
                         processes=procs_a, byzantine=byz)
    engine.run(max_rounds=rounds)

    procs_b = make_processes(dls_factory(params, BINARY), assignment,
                             proposals, byz)
    result = run_delay_execution(
        params, assignment, procs_b,
        AlwaysBoundedUnknownDelays(true_delta=delta, seed=seed),
        byzantine=byz,
        max_rounds=rounds,
    )

    assert [sorted(r.payloads.items(), key=repr) for r in engine.trace] == \
           [sorted(r.payloads.items(), key=repr) for r in result.trace]
    assert [p.decision for p in procs_a if p] == \
           [p.decision for p in procs_b if p]


@given(gst=st.integers(0, 8), seed=st.integers(0, 25))
@settings(max_examples=15, deadline=None)
def test_reliable_broadcast_totality_under_random_weather(gst, seed):
    """Property: a post-stabilisation broadcast delivers at every correct
    process under any pre-GST drop pattern (validity + totality)."""
    n, ell, t = 5, 4, 1
    params = SystemParams(n=n, ell=ell, t=t)
    assignment = balanced_assignment(n, ell)
    start_superround = gst // 2 + 1
    processes = []
    for k in range(n):
        ident = assignment.identifier_of(k)
        processes.append(
            ReliableBroadcastProcess(
                ell, t, ident, sender_ident=2,
                proposal="payload" if ident == 2 else None,
                start_superround=start_superround,
            )
        )
    engine = RoundEngine(
        params=params, assignment=assignment, processes=processes,
        drop_schedule=RandomDrops(gst=gst, p=0.5, seed=seed),
    )
    for _ in range(2 * start_superround + 10):
        engine.step()
        if all(p.decided for p in processes):
            break
    for p in processes:
        assert p.delivered == "payload"


@given(
    n=st.integers(1, 8),
    decided_mask=st.integers(0, 255),
    values_mask=st.integers(0, 255),
    inputs_mask=st.integers(0, 255),
)
@settings(max_examples=120)
def test_verdict_checker_coherence(n, decided_mask, values_mask, inputs_mask):
    """Property: the verdict checker's flags agree with first principles
    for every possible decision pattern of a small system."""
    correct = list(range(n))
    proposals = {k: (inputs_mask >> k) & 1 for k in correct}
    decisions = {
        k: (values_mask >> k) & 1
        for k in correct if (decided_mask >> k) & 1
    }
    verdict = check_agreement_properties(
        proposals=proposals,
        decisions=decisions,
        decision_rounds={k: 1 for k in decisions},
        correct=correct,
        rounds_executed=5,
    )
    everyone_decided = len(decisions) == n
    all_agree = len(set(decisions.values())) <= 1
    unanimous_input = len(set(proposals.values())) == 1
    validity_breach = (
        unanimous_input
        and any(v != next(iter(proposals.values()))
                for v in decisions.values())
    )
    assert verdict.violated("termination") == (not everyone_decided)
    assert verdict.violated("agreement") == (not all_agree)
    assert verdict.violated("validity") == validity_breach
    assert verdict.ok == (
        everyone_decided and all_agree and not validity_breach
    )
