"""The atlas query service: canonical bodies, ETags, error paths.

Runs the real :class:`~repro.atlas.service.AtlasServer` on an
ephemeral port over the committed mini-atlas fixture
(``tests/data/mini-atlas.jsonl`` -- the 24-cell ``n=3`` lattice) and
speaks plain :mod:`urllib` at it.  Pinned here:

* every body is canonical JSON, byte-stable across processes, and a
  repeat request serves the identical cached bytes;
* the ETag is the SHA-256 of the log file -- the dataset version -- so
  it survives server restarts, and a matching ``If-None-Match``
  replays as ``304 Not Modified`` with no body;
* malformed filters are ``400`` and unknown routes/ids/boundaries are
  ``404``, both with JSON error bodies (never a 304).
"""

import hashlib
import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.atlas import AtlasIndex, AtlasLog, serve_atlas
from repro.atlas.service import QueryError, model_slug
from repro.core.canonical import canonical_json
from repro.core.errors import ConfigurationError

FIXTURE = Path(__file__).parent / "data" / "mini-atlas.jsonl"


@pytest.fixture(scope="module")
def server():
    srv = serve_atlas(FIXTURE, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def rows():
    return list(AtlasLog(FIXTURE).rows())


def _get(server, path, headers=None):
    """One GET against the test server: (status, headers, body)."""
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, dict(exc.headers), exc.read()


def _expected_etag() -> str:
    return f'"{hashlib.sha256(FIXTURE.read_bytes()).hexdigest()}"'


class TestBodies:
    def test_health_reports_the_dataset_fingerprint(self, server):
        status, headers, body = _get(server, "/health")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["rows"] == 24
        assert payload["log"] == "mini-atlas.jsonl"
        assert f'"{payload["etag"]}"' == _expected_etag()

    def test_bodies_are_canonical_json(self, server):
        for path in ("/health", "/cells", "/cells?n=3",
                     "/boundary/3/1"):
            _, _, body = _get(server, path)
            assert body == canonical_json(
                json.loads(body)
            ).encode() + b"\n"

    def test_cells_unfiltered_lists_every_row(self, server, rows):
        _, _, body = _get(server, "/cells")
        payload = json.loads(body)
        assert payload["count"] == len(rows) == 24
        assert payload["filters"] == {}
        assert [c["unit_id"] for c in payload["cells"]] == [
            r["unit_id"] for r in rows
        ]

    def test_cell_summaries_drop_evidence_and_add_model(
        self, server, rows
    ):
        _, _, body = _get(server, "/cells?ell=1")
        for summary in json.loads(body)["cells"]:
            assert "evidence" not in summary
            assert summary["model"] == model_slug(summary["cell"])

    def test_cells_filters_compose(self, server, rows):
        _, _, body = _get(
            server, "/cells?n=3&t=1&ell=2&model=psync-num-res"
        )
        payload = json.loads(body)
        assert payload["filters"] == {
            "n": 3, "t": 1, "ell": 2, "model": "psync-num-res",
        }
        (cell,) = payload["cells"]
        assert cell["cell"]["ell"] == 2
        assert cell["cell"]["synchrony"] == "psync"
        assert cell["cell"]["numerate"] is True
        assert cell["cell"]["restricted"] is True

    def test_full_cell_route_round_trips_the_fixture_row(
        self, server, rows
    ):
        row = rows[5]
        _, _, body = _get(server, f"/cell/{row['unit_id']}")
        assert json.loads(body) == row

    def test_boundary_maps_every_model_and_ell(self, server, rows):
        _, _, body = _get(server, "/boundary/3/1")
        payload = json.loads(body)
        assert payload["n"] == 3 and payload["t"] == 1
        assert len(payload["models"]) == 8
        for per_ell in payload["models"].values():
            assert set(per_ell) == {"1", "2", "3"}
            for entry in per_ell.values():
                assert entry["verdict"] in (
                    "consistent", "witnessed-unsolvable"
                )
                assert entry["glyph"]
                assert entry["unit_id"]

    def test_repeat_requests_serve_identical_cached_bytes(self, server):
        first = _get(server, "/cells?n=3")
        second = _get(server, "/cells?n=3")
        assert first == second

    def test_trailing_slash_is_normalized(self, server):
        assert _get(server, "/health/")[0] == 200


class TestConditional:
    def test_etag_is_the_log_content_hash(self, server):
        _, headers, _ = _get(server, "/health")
        assert headers["ETag"] == _expected_etag()

    def test_matching_if_none_match_replays_as_304(self, server):
        status, headers, body = _get(
            server, "/cells", headers={"If-None-Match": _expected_etag()}
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == _expected_etag()

    def test_stale_etag_gets_a_full_response(self, server):
        status, _, body = _get(
            server, "/cells", headers={"If-None-Match": '"stale"'}
        )
        assert status == 200
        assert body

    def test_errors_never_replay_as_304(self, server):
        status, _, body = _get(
            server, "/no-such-route",
            headers={"If-None-Match": _expected_etag()},
        )
        assert status == 404
        assert json.loads(body)["status"] == 404

    def test_etag_survives_a_server_restart(self, server):
        restarted = serve_atlas(FIXTURE, port=0)
        try:
            assert restarted.index.etag == server.index.etag
        finally:
            restarted.server_close()


class TestErrorPaths:
    @pytest.mark.parametrize("path", [
        "/no-such-route",
        "/cell/not-a-unit-id",
        "/boundary/9/9",
        "/cell",
        "/boundary/3",
    ])
    def test_unknown_things_are_404_with_json_bodies(self, server, path):
        status, _, body = _get(server, path)
        assert status == 404
        payload = json.loads(body)
        assert payload["status"] == 404
        assert payload["error"]

    @pytest.mark.parametrize("path", [
        "/cells?bogus=1",
        "/cells?n=three",
        "/cells?n=3&n=4",
        "/boundary/x/y",
    ])
    def test_malformed_requests_are_400_with_json_bodies(
        self, server, path
    ):
        status, _, body = _get(server, path)
        assert status == 400
        payload = json.loads(body)
        assert payload["status"] == 400
        assert payload["error"]


class TestIndex:
    def test_missing_log_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            AtlasIndex.load(tmp_path / "absent.jsonl")

    def test_empty_log_is_a_configuration_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        AtlasLog(path).reset()
        with pytest.raises(ConfigurationError, match="no complete rows"):
            AtlasIndex.load(path)

    def test_query_errors_surface_without_a_server(self):
        index = AtlasIndex.load(FIXTURE)
        with pytest.raises(QueryError):
            index.cells("nope=1")
        with pytest.raises(QueryError):
            index.cells("ell=two")

    def test_model_slug_covers_all_four_axes(self):
        assert model_slug({"synchrony": "psync", "numerate": True,
                           "restricted": True}) == "psync-num-res"
        assert model_slug({"synchrony": "sync", "numerate": False,
                           "restricted": False}) == "sync-innum-unres"
