"""Cross-engine equivalence and "continue running" semantics.

Two engines implement the basic round model: the direct
:class:`~repro.sim.network.RoundEngine` and the delay-based
:class:`~repro.sim.delay.DelayRoundSimulator`.  On a punctual network
they must produce byte-identical traces -- the executable form of the
paper's Section 2 equivalence claim.  And per the paper's algorithms
("decide v, but continue running the algorithm"), decided processes
must keep participating so laggards can still finish.
"""

import pytest

from repro.adversaries.generic import RandomByzantineAdversary
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.delay import AlwaysBoundedUnknownDelays, DelayRoundSimulator
from repro.sim.network import RoundEngine
from repro.sim.runner import make_processes


def build_processes(params, assignment, byz):
    proposals = {k: k % 2 for k in range(params.n) if k not in byz}
    return make_processes(
        dls_factory(params, BINARY), assignment, proposals, byz
    ), proposals


def canonical(trace):
    return [
        (
            r.round_no,
            sorted(r.payloads.items(), key=repr),
            sorted(
                (b, sorted(pr.items(), key=repr))
                for b, pr in r.emissions.items()
            ),
            sorted(r.decisions.items(), key=repr),
        )
        for r in trace
    ]


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_round_engine_equals_punctual_delay_engine(self, seed):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        assignment = balanced_assignment(7, 6)
        byz = (6,)
        rounds = dls_horizon(params, 0)

        procs_a, _ = build_processes(params, assignment, byz)
        engine = RoundEngine(
            params=params, assignment=assignment, processes=procs_a,
            byzantine=byz, adversary=RandomByzantineAdversary(seed=seed),
        )
        engine.run(max_rounds=rounds, stop_when_all_decided=True)

        procs_b, _ = build_processes(params, assignment, byz)
        simulator = DelayRoundSimulator(
            params, assignment, procs_b,
            AlwaysBoundedUnknownDelays(true_delta=3, seed=seed),
            byzantine=byz,
            adversary=RandomByzantineAdversary(seed=seed),
        )
        simulator.run(max_rounds=rounds, stop_when_all_decided=True)

        assert canonical(engine.trace) == canonical(simulator.trace)
        assert [p.decision for p in procs_a if p] == \
               [p.decision for p in procs_b if p]


class TestContinueRunning:
    def test_decided_processes_keep_broadcasting(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        assignment = balanced_assignment(7, 6)
        byz = (6,)
        processes, _ = build_processes(params, assignment, byz)
        engine = RoundEngine(
            params=params, assignment=assignment, processes=processes,
            byzantine=byz,
        )
        horizon = dls_horizon(params, 0)
        engine.run(max_rounds=horizon + 16, stop_when_all_decided=False)

        first_decision = min(engine.trace.decision_rounds().values())
        # Every correct process still broadcast in every round after its
        # decision -- "continue running the algorithm".
        for record in engine.trace:
            if record.round_no > first_decision:
                assert len(record.payloads) == 6

    def test_no_second_decision_value(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        assignment = balanced_assignment(7, 6)
        processes, _ = build_processes(params, assignment, (6,))
        engine = RoundEngine(
            params=params, assignment=assignment, processes=processes,
            byzantine=(6,),
        )
        engine.run(max_rounds=dls_horizon(params, 0) + 24,
                   stop_when_all_decided=False)
        # First decisions are final: the recorded decision never changes.
        decisions = engine.trace.decisions()
        for k, proc in enumerate(processes):
            if proc is not None and proc.decided:
                assert proc.decision == decisions[k]
