"""Cross-engine equivalence and "continue running" semantics.

Every execution loop in the package is (or pins against) the unified
kernel: :class:`~repro.sim.kernel.ExecutionKernel` under a
:class:`~repro.sim.kernel.TimingModel`, its legacy facade
:class:`~repro.sim.network.RoundEngine`, the pre-fabric differential
oracle :class:`~repro.sim.network.ReferenceRoundEngine`, and the two
delay loops (:class:`~repro.sim.delay.ReferenceDelaySimulator`, the
per-message tick loop, vs the kernel's
:class:`~repro.sim.kernel.DelayBased` model).  On a punctual network
they must all produce byte-identical traces -- the executable form of
the paper's Section 2 equivalence claim -- and the kernel must match
the reference receiver by receiver (inboxes, traces, verdicts *and*
the exact delivery counts) under every timing model, topology, drop
schedule and adversary combination.  Per the paper's algorithms
("decide v, but continue running the algorithm"), decided processes
must keep participating so laggards can still finish.
"""

import warnings

import pytest

from repro.adversaries.generic import RandomByzantineAdversary
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.sim.adversary import NullAdversary
from repro.sim.delay import (
    AlwaysBoundedUnknownDelays,
    DelayRoundSimulator,
    ReferenceDelaySimulator,
    run_delay_execution,
)
from repro.sim.kernel import BasicPsync, ExecutionKernel
from repro.sim.metrics import metrics_from_deliveries
from repro.sim.network import ReferenceRoundEngine, RoundEngine
from repro.sim.partial import (
    ExplicitDrops,
    PartitionSchedule,
    RandomDrops,
    SilenceUntil,
)
from repro.sim.process import EchoProcess
from repro.sim.runner import make_processes
from repro.sim.topology import DirectedTopology
from repro.experiments.workloads import delay_policy_battery


def build_processes(params, assignment, byz):
    proposals = {k: k % 2 for k in range(params.n) if k not in byz}
    return make_processes(
        dls_factory(params, BINARY), assignment, proposals, byz
    ), proposals


def canonical(trace):
    return [
        (
            r.round_no,
            sorted(r.payloads.items(), key=repr),
            sorted(
                (b, sorted(pr.items(), key=repr))
                for b, pr in r.emissions.items()
            ),
            sorted(r.decisions.items(), key=repr),
        )
        for r in trace
    ]


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_round_engine_equals_punctual_delay_engine(self, seed):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        assignment = balanced_assignment(7, 6)
        byz = (6,)
        rounds = dls_horizon(params, 0)

        procs_a, _ = build_processes(params, assignment, byz)
        engine = RoundEngine(
            params=params, assignment=assignment, processes=procs_a,
            byzantine=byz, adversary=RandomByzantineAdversary(seed=seed),
        )
        engine.run(max_rounds=rounds, stop_when_all_decided=True)

        procs_b, _ = build_processes(params, assignment, byz)
        result = run_delay_execution(
            params, assignment, procs_b,
            AlwaysBoundedUnknownDelays(true_delta=3, seed=seed),
            byzantine=byz,
            adversary=RandomByzantineAdversary(seed=seed),
            max_rounds=rounds,
        )

        assert canonical(engine.trace) == canonical(result.trace)
        assert [p.decision for p in procs_a if p] == \
               [p.decision for p in procs_b if p]


class TestDelayKernelMatchesTickLoop:
    """Kernel ``DelayBased`` vs the pre-kernel per-message tick loop.

    Across the delay-policy battery and full-algorithm runs, the
    kernel's per-round late-delta stamping must reproduce the tick
    loop's executions exactly: traces, decisions, tick counts, and the
    loss set (restricted to correct recipients -- the tick loop also
    logged late messages addressed to Byzantine slots, which have no
    receiving process and are unobservable).
    """

    @pytest.mark.parametrize(
        "policy_name",
        [name for name, _ in delay_policy_battery()],
    )
    @pytest.mark.parametrize("seed", [0, 5])
    def test_traces_decisions_and_losses(self, policy_name, seed):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        assignment = balanced_assignment(7, 6)
        byz = (6,)
        policy = dict(delay_policy_battery(seed))[policy_name]
        rounds = dls_horizon(params, 16)

        procs_ref, _ = build_processes(params, assignment, byz)
        reference = ReferenceDelaySimulator(
            params, assignment, procs_ref, policy, byzantine=byz,
            adversary=RandomByzantineAdversary(seed=seed),
        )
        ref_result = reference.run(max_rounds=rounds)

        procs_k, _ = build_processes(params, assignment, byz)
        kernel_result = run_delay_execution(
            params, assignment, procs_k, policy, byzantine=byz,
            adversary=RandomByzantineAdversary(seed=seed),
            max_rounds=rounds,
        )

        assert canonical(ref_result.trace) == canonical(kernel_result.trace)
        assert [p.decision for p in procs_ref if p] == \
               [p.decision for p in procs_k if p]
        assert ref_result.ticks_executed == kernel_result.ticks_executed
        assert ref_result.rounds_executed == kernel_result.rounds_executed
        byz_set = set(byz)
        assert sorted(kernel_result.dropped) == sorted(
            drop for drop in ref_result.dropped if drop[2] not in byz_set
        )

    def test_deprecated_shim_equals_kernel_path(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        assignment = balanced_assignment(7, 6)
        byz = (6,)
        policy = dict(delay_policy_battery(3))["eventual-d2-gst24"]
        rounds = dls_horizon(params, 16)

        procs_a, _ = build_processes(params, assignment, byz)
        with pytest.warns(DeprecationWarning):
            shim = DelayRoundSimulator(
                params, assignment, procs_a, policy, byzantine=byz,
            )
        shim_result = shim.run(max_rounds=rounds)

        procs_b, _ = build_processes(params, assignment, byz)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            kernel_result = run_delay_execution(
                params, assignment, procs_b, policy, byzantine=byz,
                max_rounds=rounds,
            )

        assert canonical(shim_result.trace) == canonical(kernel_result.trace)
        assert shim_result.dropped == kernel_result.dropped
        assert shim_result.ticks_executed == kernel_result.ticks_executed


def _fabric_scenarios():
    """(name, topology factory, schedule factory, adversary factory)."""
    return [
        ("clean", lambda: None, lambda: None, NullAdversary),
        ("byz", lambda: None, lambda: None,
         lambda: RandomByzantineAdversary(seed=5)),
        ("directed", lambda: DirectedTopology({0: {1, 2, 3}, 2: {0, 5, 6}}),
         lambda: None, lambda: RandomByzantineAdversary(seed=5)),
        ("silence", lambda: None, lambda: SilenceUntil(4),
         lambda: RandomByzantineAdversary(seed=5)),
        ("partition", lambda: None,
         lambda: PartitionSchedule(5, {0, 1, 2}, {3, 4}),
         lambda: RandomByzantineAdversary(seed=5)),
        ("random-drops", lambda: None,
         lambda: RandomDrops(gst=6, p=0.5, seed=3),
         lambda: RandomByzantineAdversary(seed=5)),
        ("explicit", lambda: None,
         lambda: ExplicitDrops({(0, 1, 2), (1, 0, 3), (2, 4, 0)}),
         lambda: RandomByzantineAdversary(seed=5)),
        ("kitchen-sink", lambda: DirectedTopology({1: {0, 2, 4, 6}}),
         lambda: RandomDrops(gst=5, p=0.4, seed=9),
         lambda: RandomByzantineAdversary(seed=5)),
    ]


class TestFabricMatchesReference:
    """Kernel and legacy facade vs the pre-fabric per-receiver loop.

    Three engines run every scenario of the grid: the kernel built
    directly with a :class:`BasicPsync` timing model, the legacy
    :class:`RoundEngine` constructor (which must build the identical
    kernel), and the pre-refactor :class:`ReferenceRoundEngine` oracle.
    All three must agree byte for byte.
    """

    N, ELL, BYZ = 7, 6, (6,)

    def _engines(self, topo_fn, sched_fn, adv_fn, numerate, procs_fn):
        params = SystemParams(
            n=self.N, ell=self.ELL, t=1, numerate=numerate,
            synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        )
        assignment = balanced_assignment(self.N, self.ELL)

        def kernel_direct(**kwargs):
            return ExecutionKernel(
                params=kwargs["params"],
                assignment=kwargs["assignment"],
                processes=kwargs["processes"],
                byzantine=kwargs["byzantine"],
                adversary=kwargs["adversary"],
                timing=BasicPsync(kwargs["drop_schedule"],
                                  kwargs["topology"]),
            )

        engines = []
        for build in (kernel_direct, RoundEngine, ReferenceRoundEngine):
            procs = procs_fn(params, assignment)
            engines.append((build(
                params=params, assignment=assignment, processes=procs,
                byzantine=self.BYZ, adversary=adv_fn(),
                drop_schedule=sched_fn(), topology=topo_fn(),
            ), procs))
        return engines

    @pytest.mark.parametrize("numerate", [False, True])
    @pytest.mark.parametrize(
        "name,topo_fn,sched_fn,adv_fn", _fabric_scenarios(),
        ids=[s[0] for s in _fabric_scenarios()],
    )
    def test_inboxes_traces_and_deliveries(
        self, name, topo_fn, sched_fn, adv_fn, numerate
    ):
        """Receiver-by-receiver inbox equality on echo processes."""
        def echo_procs(params, assignment):
            return [
                None if k in self.BYZ
                else EchoProcess(assignment.identifier_of(k))
                for k in range(params.n)
            ]

        (kernel, procs_k), (fabric, procs_f), (reference, procs_r) = \
            self._engines(topo_fn, sched_fn, adv_fn, numerate, echo_procs)
        rounds = 8
        kernel.run(max_rounds=rounds, stop_when_all_decided=False)
        fabric.run(max_rounds=rounds, stop_when_all_decided=False)
        reference.run(max_rounds=rounds, stop_when_all_decided=False)

        assert canonical(kernel.trace) == canonical(reference.trace)
        assert canonical(fabric.trace) == canonical(reference.trace)
        assert kernel.deliveries == reference.deliveries
        assert fabric.deliveries == reference.deliveries
        assert metrics_from_deliveries(kernel.deliveries) == \
               metrics_from_deliveries(reference.deliveries)
        for k in fabric.correct:
            for r in range(rounds):
                want = procs_r[k].received[r]
                for procs in (procs_k, procs_f):
                    got = procs[k].received[r]
                    assert got.numerate == want.numerate == numerate
                    assert got.messages() == want.messages(), (
                        f"{name}: inbox of process {k} differs in round {r}"
                    )

    @pytest.mark.parametrize(
        "name,topo_fn,sched_fn,adv_fn", _fabric_scenarios(),
        ids=[s[0] for s in _fabric_scenarios()],
    )
    def test_dls_verdicts_and_decisions(self, name, topo_fn, sched_fn, adv_fn):
        """Full-algorithm runs: byte-identical traces and decisions."""
        def dls_procs(params, assignment):
            procs, _ = build_processes(params, assignment, self.BYZ)
            return procs

        (kernel, procs_k), (fabric, procs_f), (reference, procs_r) = \
            self._engines(topo_fn, sched_fn, adv_fn, False, dls_procs)
        rounds = dls_horizon(fabric.params, 8)
        kernel.run(max_rounds=rounds, stop_when_all_decided=False)
        fabric.run(max_rounds=rounds, stop_when_all_decided=False)
        reference.run(max_rounds=rounds, stop_when_all_decided=False)

        assert canonical(kernel.trace) == canonical(reference.trace)
        assert canonical(fabric.trace) == canonical(reference.trace)
        assert kernel.deliveries == reference.deliveries
        assert fabric.deliveries == reference.deliveries
        decisions_r = [(p.decision, p.decision_round)
                       for p in procs_r if p is not None]
        assert [(p.decision, p.decision_round)
                for p in procs_k if p is not None] == decisions_r
        assert [(p.decision, p.decision_round)
                for p in procs_f if p is not None] == decisions_r

    def test_exact_deliveries_under_directed_topology(self):
        """The fabric counts cut edges out instead of assuming full fanout."""
        params = SystemParams(n=4, ell=4, t=0)
        assignment = balanced_assignment(4, 4)
        # Receiver 0 hears only sender 1; everyone else hears everyone.
        topology = DirectedTopology({0: {1}})
        procs = [EchoProcess(assignment.identifier_of(k)) for k in range(4)]
        engine = RoundEngine(
            params=params, assignment=assignment, processes=procs,
            topology=topology,
        )
        engine.run(max_rounds=3, stop_when_all_decided=False)
        for d in engine.deliveries:
            # Receiver 0: self + sender 1 = 2; receivers 1..3: 4 each.
            assert d.correct_broadcasts == 4
            assert d.correct_deliveries == 2 + 3 * 4
        metrics = metrics_from_deliveries(engine.deliveries)
        assert metrics.correct_messages == 3 * (2 + 12)
        # The old uniform-fanout estimate would have claimed 3 * 16.
        assert metrics.correct_messages < 3 * 16


class TestContinueRunning:
    def test_decided_processes_keep_broadcasting(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        assignment = balanced_assignment(7, 6)
        byz = (6,)
        processes, _ = build_processes(params, assignment, byz)
        engine = RoundEngine(
            params=params, assignment=assignment, processes=processes,
            byzantine=byz,
        )
        horizon = dls_horizon(params, 0)
        engine.run(max_rounds=horizon + 16, stop_when_all_decided=False)

        first_decision = min(engine.trace.decision_rounds().values())
        # Every correct process still broadcast in every round after its
        # decision -- "continue running the algorithm".
        for record in engine.trace:
            if record.round_no > first_decision:
                assert len(record.payloads) == 6

    def test_no_second_decision_value(self):
        params = SystemParams(
            n=7, ell=6, t=1, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS
        )
        assignment = balanced_assignment(7, 6)
        processes, _ = build_processes(params, assignment, (6,))
        engine = RoundEngine(
            params=params, assignment=assignment, processes=processes,
            byzantine=(6,),
        )
        engine.run(max_rounds=dls_horizon(params, 0) + 24,
                   stop_when_all_decided=False)
        # First decisions are final: the recorded decision never changes.
        decisions = engine.trace.decisions()
        for k, proc in enumerate(processes):
            if proc is not None and proc.decided:
                assert proc.decision == decisions[k]
