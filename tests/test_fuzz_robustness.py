"""Adversarial-payload fuzzing: parsers must never crash.

A Byzantine process can put *any* hashable value on the wire.  Every
algorithm's ``deliver`` path therefore has to treat malformed bundles,
half-valid structures and type confusion as noise.  These tests throw
hypothesis-generated garbage (including near-misses that share tags and
shapes with real payloads) at every algorithm family and require (a) no
exceptions and (b) unharmed agreement among the correct processes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classic.eig import EIGSpec
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.experiments.harness import algorithm_for
from repro.homonyms.transform import DECIDE_TAG, RUN_TAG, SELECT_TAG
from repro.sim.adversary import Adversary
from repro.sim.runner import run_agreement

# ----------------------------------------------------------------------
# Payload strategies: pure garbage plus structured near-misses
# ----------------------------------------------------------------------
scalars = st.one_of(
    st.integers(-3, 10),
    st.sampled_from(["fig5", "fig7", "init", "echo", "lock", "ack",
                     "decide", "propose", "vote", SELECT_TAG, DECIDE_TAG,
                     RUN_TAG, "", None, True]),
)

nested = st.recursive(
    scalars, lambda inner: st.tuples(inner, inner) | st.tuples(inner),
    max_leaves=8,
)

near_miss_fig5 = st.tuples(
    st.just("fig5"), nested, nested, nested, nested
)
near_miss_fig7 = st.tuples(st.just("fig7"), nested, nested, nested)
near_miss_items = st.tuples(
    st.sampled_from(["init", "echo", "minit", "mecho"]),
    scalars, scalars, scalars,
)

garbage = st.one_of(nested, near_miss_fig5, near_miss_fig7, near_miss_items)


class GarbageFlood(Adversary):
    """Sends a fixed list of garbage payloads from every slot, every round."""

    def __init__(self, payloads, burst=False):
        self.payloads = tuple(payloads) if payloads else ("x",)
        self.burst = burst

    def emissions(self, view):
        batch = self.payloads if self.burst else self.payloads[:1]
        return {
            b: {q: batch for q in range(view.params.n)}
            for b in view.byzantine
        }


CONFIGS = [
    ("T(EIG)", SystemParams(n=5, ell=4, t=1)),
    ("fig5", SystemParams(n=7, ell=6, t=1,
                          synchrony=Synchrony.PARTIALLY_SYNCHRONOUS)),
    ("fig7", SystemParams(n=4, ell=2, t=1,
                          synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
                          numerate=True, restricted=True)),
]


@pytest.mark.parametrize("name,params", CONFIGS, ids=[c[0] for c in CONFIGS])
@given(payloads=st.lists(garbage, min_size=1, max_size=4))
@settings(max_examples=20, deadline=None)
def test_garbage_never_crashes_or_corrupts(name, params, payloads):
    _name, factory, horizon = algorithm_for(params)
    byz = (params.n - 1,)
    proposals = {k: k % 2 for k in range(params.n - 1)}
    result = run_agreement(
        params=params,
        assignment=balanced_assignment(params.n, params.ell),
        factory=factory,
        proposals=proposals,
        byzantine=byz,
        adversary=GarbageFlood(payloads, burst=not params.restricted),
        max_rounds=horizon,
    )
    assert result.verdict.ok, result.verdict.summary()


@given(payloads=st.lists(garbage, min_size=1, max_size=3))
@settings(max_examples=15, deadline=None)
def test_classic_specs_survive_garbage_directly(payloads):
    """The Figure 2 functional interfaces parse garbage defensively."""
    spec = EIGSpec(4, 1, BINARY)
    state = spec.init(1, 0)
    for round_no in (1, 2):
        received = {j: payloads[(j + round_no) % len(payloads)]
                    for j in range(2, 5)}
        state = spec.transition(state, round_no, received)
    # The tree is still structurally valid and a decision exists.
    assert spec.is_state(state)
    assert spec.decide(state) in BINARY.domain


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_transform_selection_rejects_garbage_states(data):
    """T(A)'s selection round must only ever adopt valid states."""
    from repro.core.messages import Inbox, Message
    from repro.homonyms.transform import HomonymProcess

    spec = EIGSpec(4, 1, BINARY)
    proc = HomonymProcess(spec, 1, 0)
    junk = data.draw(st.lists(garbage, min_size=1, max_size=5))
    messages = [Message(1, (SELECT_TAG, 0, item)) for item in junk]
    messages.append(Message(1, proc.compose(0)))  # own valid broadcast
    proc.deliver(0, Inbox(messages, numerate=False))
    assert spec.is_state(proc.state)
