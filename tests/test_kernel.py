"""The unified execution kernel and its pluggable timing models.

Covers the :class:`~repro.sim.kernel.TimingModel` contracts directly
(activation gating, removal queries, tick accounting), the kernel's
delay bookkeeping (loss log, checkpoint/restore), the runner
integration (``timing=`` parameter, result fields), and the paper's
Section 2 equivalence as an executable property: a kernel
``DelayBased`` execution, with its recorded losses replayed as an
``ExplicitDrops`` schedule, **is** a basic-model execution -- byte
for byte, for every delay policy in the battery and each
:mod:`repro.psync` algorithm.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import stable_seed
from repro.core.errors import ConfigurationError
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.adversaries.generic import RandomByzantineAdversary
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.psync.restricted import restricted_factory, restricted_horizon
from repro.sim.delay import (
    AlwaysBoundedUnknownDelays,
    EventuallyBoundedDelays,
    equivalent_basic_gst,
)
from repro.sim.kernel import (
    BasicPsync,
    DelayBased,
    ExecutionKernel,
    LockStep,
    timing_model_for,
)
from repro.sim.partial import ExplicitDrops, NoDrops, SilenceUntil
from repro.sim.process import EchoProcess
from repro.sim.runner import make_processes, run_execution
from repro.sim.topology import CompleteTopology, DirectedTopology
from repro.experiments.workloads import delay_policy_battery

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS


def canonical(trace):
    return [
        (
            r.round_no,
            sorted(r.payloads.items(), key=repr),
            sorted(
                (b, sorted(pr.items(), key=repr))
                for b, pr in r.emissions.items()
            ),
            sorted(r.decisions.items(), key=repr),
        )
        for r in trace
    ]


# ----------------------------------------------------------------------
# Timing model contracts
# ----------------------------------------------------------------------
class TestTimingModels:
    def test_lockstep_never_active(self):
        timing = LockStep()
        assert not any(timing.active(r) for r in range(50))
        assert timing.removed_senders(0, 1, (0, 1, 2)) == ()
        assert timing.ticks_executed(7) == 7

    def test_basic_psync_defaults_degenerate_to_lockstep(self):
        timing = BasicPsync()
        assert isinstance(timing.drop_schedule, NoDrops)
        assert isinstance(timing.topology, CompleteTopology)
        assert not any(timing.active(r) for r in range(50))

    def test_basic_psync_gates_on_schedule(self):
        timing = BasicPsync(SilenceUntil(4))
        assert [timing.active(r) for r in range(6)] == [True] * 4 + [False] * 2
        # Before GST everything inter-process is removed, self never.
        assert timing.removed_senders(0, 1, (0, 1, 2)) == (0, 2)
        assert timing.removed_senders(5, 1, (0, 1, 2)) == ()

    def test_basic_psync_topology_keeps_every_round_active(self):
        timing = BasicPsync(topology=DirectedTopology({0: {1}}))
        assert all(timing.active(r) for r in range(50))
        assert timing.removed_senders(9, 0, (0, 1, 2, 3)) == (2, 3)

    def test_basic_psync_merges_drops_and_cuts_without_duplicates(self):
        timing = BasicPsync(SilenceUntil(2), DirectedTopology({0: {1}}))
        removed = timing.removed_senders(0, 0, (0, 1, 2, 3))
        assert sorted(removed) == [1, 2, 3]
        assert len(removed) == len(set(removed))

    def test_delay_based_removes_exactly_the_late_edges(self):
        policy = EventuallyBoundedDelays(delta=2, gst_tick=40,
                                         chaos_factor=6, seed=7)
        timing = DelayBased(policy)
        for r in range(10):
            removed = timing.removed_senders(r, 0, (0, 1, 2, 3))
            expected = tuple(
                s for s in (1, 2, 3)
                if policy.delay(r * 2, s, 0) >= 2
            )
            assert removed == expected
            assert 0 not in removed  # self-delivery never late

    def test_delay_based_active_window_is_max_late_tick(self):
        policy = EventuallyBoundedDelays(delta=3, gst_tick=10, seed=1)
        timing = DelayBased(policy)
        # Rounds whose send tick r*3 is < 10 may be late: rounds 0..3.
        assert [timing.active(r) for r in range(6)] == \
               [True, True, True, True, False, False]
        punctual = DelayBased(AlwaysBoundedUnknownDelays(true_delta=3))
        assert not any(punctual.active(r) for r in range(20))

    def test_delay_based_tick_accounting(self):
        timing = DelayBased(AlwaysBoundedUnknownDelays(true_delta=4))
        assert timing.ticks_executed(6) == 24

    def test_delay_based_rejects_non_policies(self):
        with pytest.raises(ConfigurationError):
            DelayBased(object())

    def test_timing_model_for_dispatch(self):
        assert isinstance(timing_model_for(), LockStep)
        with_sched = timing_model_for(SilenceUntil(3))
        assert isinstance(with_sched, BasicPsync)
        assert with_sched.drop_schedule.gst == 3
        with_topo = timing_model_for(topology=DirectedTopology({0: {1}}))
        assert isinstance(with_topo, BasicPsync)


# ----------------------------------------------------------------------
# Kernel bookkeeping
# ----------------------------------------------------------------------
def _echo_kernel(timing, n=4):
    params = SystemParams(n=n, ell=n, t=0, synchrony=PSYNC)
    assignment = balanced_assignment(n, n)
    procs = [EchoProcess(assignment.identifier_of(k)) for k in range(n)]
    return ExecutionKernel(
        params=params, assignment=assignment, processes=procs, timing=timing,
    ), procs


class TestKernelLossLog:
    def test_losses_logged_only_for_loss_logging_models(self):
        basic, _ = _echo_kernel(BasicPsync(SilenceUntil(2)))
        basic.run(max_rounds=4, stop_when_all_decided=False)
        assert basic.losses == []

        policy = EventuallyBoundedDelays(delta=2, gst_tick=20,
                                         chaos_factor=6, seed=11)
        delayed, _ = _echo_kernel(DelayBased(policy))
        delayed.run(max_rounds=12, stop_when_all_decided=False)
        assert delayed.losses  # chaos did lose something
        gst_round = equivalent_basic_gst(policy)
        assert all(r < gst_round for r, _s, _q in delayed.losses)

    def test_checkpoint_restores_losses(self):
        policy = EventuallyBoundedDelays(delta=2, gst_tick=20,
                                         chaos_factor=6, seed=11)
        kernel, _ = _echo_kernel(DelayBased(policy))
        kernel.run(max_rounds=4, stop_when_all_decided=False)
        snapshot = kernel.checkpoint()
        losses_at_snapshot = list(kernel.losses)

        kernel.run(max_rounds=6, stop_when_all_decided=False)
        assert len(kernel.losses) >= len(losses_at_snapshot)
        kernel.restore(snapshot)
        assert kernel.losses == losses_at_snapshot
        assert kernel.round_no == 4

        # The restored kernel replays the same future deterministically.
        kernel.run(max_rounds=6, stop_when_all_decided=False)
        replay = list(kernel.losses)
        kernel.restore(snapshot)
        kernel.run(max_rounds=6, stop_when_all_decided=False)
        assert kernel.losses == replay


class TestRunnerIntegration:
    def _setup(self):
        params = SystemParams(n=7, ell=6, t=1, synchrony=PSYNC)
        assignment = balanced_assignment(7, 6)
        byz = (6,)
        proposals = {k: k % 2 for k in range(6)}
        processes = make_processes(
            dls_factory(params, BINARY), assignment, proposals, byz
        )
        return params, assignment, byz, processes

    def test_timing_and_schedule_are_mutually_exclusive(self):
        params, assignment, byz, processes = self._setup()
        with pytest.raises(ConfigurationError):
            run_execution(
                params=params, assignment=assignment, processes=processes,
                byzantine=byz,
                timing=LockStep(), drop_schedule=SilenceUntil(2),
            )

    def test_delay_timing_populates_losses_and_ticks(self):
        params, assignment, byz, processes = self._setup()
        policy = EventuallyBoundedDelays(delta=2, gst_tick=24,
                                         chaos_factor=4, seed=0)
        result = run_execution(
            params=params, assignment=assignment, processes=processes,
            byzantine=byz, timing=DelayBased(policy),
            max_rounds=dls_horizon(params, 16),
        )
        assert result.ok, result.verdict.summary()
        assert result.ticks == result.metrics.rounds * policy.delta
        gst_round = equivalent_basic_gst(policy)
        assert all(r < gst_round for r, _s, _q in result.losses)

    def test_round_timing_reports_round_ticks_and_no_losses(self):
        params, assignment, byz, processes = self._setup()
        result = run_execution(
            params=params, assignment=assignment, processes=processes,
            byzantine=byz, drop_schedule=SilenceUntil(2),
            max_rounds=dls_horizon(params, 2),
        )
        assert result.losses == ()
        assert result.ticks == result.metrics.rounds


# ----------------------------------------------------------------------
# The delay <-> basic equivalence, executable
# ----------------------------------------------------------------------
def _run_psync_algorithm(params, factory, horizon, timing, seed):
    assignment = balanced_assignment(params.n, params.ell)
    byz = (params.n - 1,)
    proposals = {k: k % 2 for k in range(params.n) if k not in byz}
    processes = make_processes(factory, assignment, proposals, byz)
    result = run_execution(
        params=params, assignment=assignment, processes=processes,
        byzantine=byz, adversary=RandomByzantineAdversary(seed=seed),
        timing=timing, max_rounds=horizon,
    )
    return result


def _psync_algorithms():
    dls_params = SystemParams(n=7, ell=6, t=1, synchrony=PSYNC)
    fig7_params = SystemParams(n=4, ell=2, t=1, synchrony=PSYNC,
                               numerate=True, restricted=True)
    return [
        ("fig5-dls", dls_params, dls_factory(dls_params, BINARY),
         dls_horizon(dls_params, 16)),
        ("fig7-restricted", fig7_params,
         restricted_factory(fig7_params, BINARY),
         restricted_horizon(fig7_params, 16)),
    ]


class TestDelayBasicEquivalence:
    """A DelayBased run *is* a basic-model run: replay the losses."""

    @pytest.mark.parametrize(
        "algo_name,params,factory,horizon",
        _psync_algorithms(), ids=[a[0] for a in _psync_algorithms()],
    )
    @pytest.mark.parametrize(
        "policy_name", [name for name, _ in delay_policy_battery()],
    )
    def test_delay_run_is_a_basic_model_run(
        self, algo_name, params, factory, horizon, policy_name
    ):
        policy = dict(delay_policy_battery(seed=2))[policy_name]
        delay_result = _run_psync_algorithm(
            params, factory, horizon, DelayBased(policy), seed=9
        )
        assert delay_result.ok, delay_result.verdict.summary()

        # Replay: the same execution in the basic model, with the
        # delay run's losses as an explicit finite drop set.
        basic_result = _run_psync_algorithm(
            params, factory, horizon,
            BasicPsync(ExplicitDrops(delay_result.losses)), seed=9,
        )
        assert canonical(delay_result.trace) == canonical(basic_result.trace)
        assert delay_result.verdict.ok == basic_result.verdict.ok
        assert delay_result.metrics == basic_result.metrics

    @pytest.mark.parametrize(
        "policy_name", [name for name, _ in delay_policy_battery()],
    )
    def test_post_gst_rounds_lose_nothing(self, policy_name):
        """Regression: the finiteness half of the equivalence claim."""
        policy = dict(delay_policy_battery(seed=4))[policy_name]
        kernel, _ = _echo_kernel(DelayBased(policy), n=5)
        kernel.run(max_rounds=equivalent_basic_gst(policy) + 10,
                   stop_when_all_decided=False)
        gst_round = equivalent_basic_gst(policy)
        assert all(r < gst_round for r, _s, _q in kernel.losses)
        # And every post-GST inbox is full: n messages per receiver.
        for d in kernel.deliveries[gst_round:]:
            assert d.correct_deliveries == 5 * 5

    @given(
        delta=st.integers(1, 4),
        gst_tick=st.integers(0, 24),
        chaos=st.integers(1, 6),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_eventually_bounded_policy_is_basic_reachable(
        self, delta, gst_tick, chaos, seed
    ):
        """Property: the equivalence holds across the policy space."""
        params = SystemParams(n=6, ell=5, t=1, synchrony=PSYNC)
        factory = dls_factory(params, BINARY)
        policy = EventuallyBoundedDelays(
            delta=delta, gst_tick=gst_tick, chaos_factor=chaos, seed=seed
        )
        horizon = dls_horizon(params, equivalent_basic_gst(policy))
        delay_result = _run_psync_algorithm(
            params, factory, horizon, DelayBased(policy), seed=seed
        )
        basic_result = _run_psync_algorithm(
            params, factory, horizon,
            BasicPsync(ExplicitDrops(delay_result.losses)), seed=seed,
        )
        assert canonical(delay_result.trace) == canonical(basic_result.trace)
        assert delay_result.verdict.ok == basic_result.verdict.ok
        gst_round = equivalent_basic_gst(policy)
        assert all(r < gst_round for r, _s, _q in delay_result.losses)


# ----------------------------------------------------------------------
# Cross-run-stable seeding (the hash() determinism fix)
# ----------------------------------------------------------------------
class TestStableSeeding:
    def test_stable_seed_pinned_vectors(self):
        """CRC-32-over-canonical-key values, pinned across interpreters."""
        assert stable_seed((0, "pre", 0, 0, 1)) == 3249021708
        assert stable_seed((0, 0, 0, 1)) == 901231852
        assert stable_seed((3, 2, 1, 0)) == 3974949250
        # The flat-tuple fast path and the canonical_key fallback are
        # distinct encodings; nested values take the fallback.
        assert stable_seed([0, 0, 0, 1]) != stable_seed((0, 0, 0, 1))

    def test_delay_policy_pinned_vectors(self):
        """The exact delays are part of the repo's determinism contract.

        ``hash()``-seeded policies produced different "deterministic"
        delays under different ``PYTHONHASHSEED`` salts; these literals
        pin the stable_seed-backed behaviour across interpreter runs.
        """
        policy = EventuallyBoundedDelays(delta=3, gst_tick=6,
                                         chaos_factor=2, seed=42)
        assert [policy.delay(t, 0, 1) for t in range(8)] == \
               [1, 1, 3, 3, 1, 0, 2, 0]
        punctual = AlwaysBoundedUnknownDelays(true_delta=4, seed=7)
        assert [punctual.delay(t, 1, 2) for t in range(6)] == \
               [0, 2, 2, 2, 0, 1]

    def test_random_drops_pinned_vectors(self):
        from repro.sim.partial import RandomDrops

        schedule = RandomDrops(gst=6, p=0.5, seed=3)
        assert [schedule.drops(r, 0, 1) for r in range(6)] == \
               [False, True, True, True, False, True]
