"""Regressions for verdict and metrics accounting.

Three bug classes are pinned here:

* :func:`repro.sim.runner.run_execution` must hand *every* correct
  slot's proposal -- including ``None`` -- to the validity check.  The
  old code silently dropped ``None`` proposals, so the check concluded
  unanimity from the remaining processes and issued false validity
  verdicts.
* :meth:`repro.sim.runner.ExecutionResult.brief` must order decisions
  by the shared canonical key (:mod:`repro.core.canonical`), not by
  ``repr``, whose formatting and set-iteration order can drift across
  Python versions and hash seeds -- and with it the campaign cache
  identity.
* :func:`repro.sim.metrics.metrics_from_trace` is a deprecated
  estimate: it must warn on every use and refuse to pretend full
  fanout when the execution ran under a restricting topology.
"""

import hashlib
import json
from dataclasses import asdict
from typing import Hashable

import pytest

import repro
from repro.core.canonical import canonical_json, canonical_key
from repro.core.errors import ConfigurationError
from repro.core.identity import balanced_assignment
from repro.core.params import SystemParams
from repro.experiments.campaign import CACHE_SCHEMA, CampaignUnit
from repro.sim.metrics import Metrics, metrics_from_trace
from repro.sim.process import Process
from repro.sim.runner import ExecutionResult, run_execution
from repro.sim.topology import CompleteTopology, DirectedTopology
from repro.sim.trace import RoundRecord, Trace


class InstantDecider(Process):
    """Broadcasts nothing and decides a fixed value in round 0."""

    def __init__(self, identifier: int, proposal: Hashable,
                 decide: Hashable) -> None:
        super().__init__(identifier, proposal)
        self._decide = decide

    def compose(self, round_no: int) -> Hashable:
        return None

    def deliver(self, round_no: int, inbox) -> None:
        self.record_decision(self._decide, round_no)


def _run(proposals_and_decisions):
    n = len(proposals_and_decisions)
    assignment = balanced_assignment(n, n)
    processes = [
        InstantDecider(assignment.identifier_of(k), proposal, decide)
        for k, (proposal, decide) in enumerate(proposals_and_decisions)
    ]
    return run_execution(
        params=SystemParams(n=n, ell=n, t=0),
        assignment=assignment,
        processes=processes,
        max_rounds=2,
    )


class TestValidityWithNoneProposals:
    def test_none_proposal_breaks_unanimity(self):
        """A non-proposing correct process voids the validity premise.

        Processes 0 and 1 propose 1, process 2 proposes nothing; all
        decide 0.  Not all correct processes proposed the same value,
        so deciding 0 is legal.  The old filtered map saw {1, 1},
        concluded unanimity, and issued a false validity violation.
        """
        result = _run([(1, 0), (1, 0), (None, 0)])
        assert result.verdict.ok
        assert not result.verdict.violated("validity")

    def test_unanimous_proposals_still_enforced(self):
        result = _run([(1, 0), (1, 0), (1, 0)])
        assert result.verdict.violated("validity")

    def test_unanimous_proposals_satisfied(self):
        result = _run([(1, 1), (1, 1), (1, 1)])
        assert result.verdict.ok


class TestCanonicalKeys:
    def test_pinned_primitive_keys(self):
        """The key format is a contract: cache identity depends on it."""
        assert canonical_key(None) == "null"
        assert canonical_key(True) == "bool:True"
        assert canonical_key(1) == "int:1"
        assert canonical_key("1") == 'str:"1"'
        assert canonical_key((0, 1)) == "seq:[int:0,int:1]"
        assert canonical_key([0, 1]) == "seq:[int:0,int:1]"

    def test_type_tags_keep_lookalikes_apart(self):
        assert len({canonical_key(v) for v in (1, True, "1", 1.0)}) == 4

    def test_unordered_containers_sort_by_element_key(self):
        assert canonical_key(frozenset({"b", "a"})) == 'set:{str:"a",str:"b"}'
        assert canonical_key({"b": 2, "a": 1}) == \
               'map:{str:"a"=int:1,str:"b"=int:2}'

    def test_quoting_prevents_separator_forgery(self):
        """Strings carrying structural separators cannot collide."""
        assert canonical_key(("a", "b")) != canonical_key(('a,str:"b"',))
        assert canonical_key({"a": 1}) != canonical_key({'a"=int:1': 1})
        assert canonical_key(("a",)) != canonical_key((("a",),))

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [2, "x"]}) == \
               '{"a":[2,"x"],"b":1}'

    def test_brief_orders_decisions_canonically(self):
        """Mixed-type decisions come out in canonical-key order."""
        n = 4
        assignment = balanced_assignment(n, n)
        values = ["a", (0, 1), frozenset({"b", "a"}), 1]
        processes = []
        for k, value in enumerate(values):
            proc = InstantDecider(assignment.identifier_of(k), 0, value)
            proc.record_decision(value, 0)
            processes.append(proc)
        result = ExecutionResult(
            params=SystemParams(n=n, ell=n, t=0),
            assignment=assignment,
            byzantine=(),
            verdict=_run([(0, 0)]).verdict,
            trace=Trace(),
            metrics=Metrics(),
            processes=processes,
        )
        summary = result.brief()
        assert summary.decisions == (
            1, (0, 1), frozenset({"a", "b"}), "a",
        )
        assert [canonical_key(v) for v in summary.decisions] == sorted(
            canonical_key(v) for v in values
        )

    def test_unit_id_hashes_canonical_json(self):
        """The cache key is sha1 over the shared canonicalisation."""
        unit = CampaignUnit(
            label="x", n=5, ell=4, t=1, synchrony="sync",
            numerate=False, restricted=False, kind="slice",
            assignment_index=0, byzantine_index=1,
        )
        payload = canonical_json(
            [CACHE_SCHEMA, repro.__version__, asdict(unit)]
        )
        assert unit.unit_id == hashlib.sha1(payload.encode()).hexdigest()[:16]
        # Canonical JSON is loadable and key-sorted, so the id cannot
        # depend on dict insertion order or separator whitespace.
        assert json.loads(payload)[0] == CACHE_SCHEMA


class TestMetricsFromTraceShim:
    def _trace(self):
        trace = Trace()
        trace.append(RoundRecord(
            round_no=0, payloads={0: "x", 1: "y"}, emissions={}, decisions={},
        ))
        return trace

    def test_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="metrics_from_deliveries"):
            m = metrics_from_trace(self._trace(), fanout=3)
        assert m.correct_messages == 6

    def test_complete_topology_accepted(self):
        with pytest.warns(DeprecationWarning):
            m = metrics_from_trace(
                self._trace(), fanout=3, topology=CompleteTopology()
            )
        assert m.correct_messages == 6

    def test_restricting_topology_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="full fanout"):
                metrics_from_trace(
                    self._trace(), fanout=3,
                    topology=DirectedTopology({0: {1}}),
                )
