"""Tests for the solvability predicates (the content of Table 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    min_identifiers,
    more_correct_processes_hurt,
    partial_synchrony_gap,
    psync_bound,
    restriction_gain,
    solvable,
    sync_bound,
)
from repro.core.params import SystemParams, Synchrony


def params(n, ell, t, synchrony=Synchrony.SYNCHRONOUS, numerate=False,
           restricted=False):
    return SystemParams(n=n, ell=ell, t=t, synchrony=synchrony,
                        numerate=numerate, restricted=restricted)


class TestSynchronousBound:
    def test_theorem_3_threshold(self):
        assert not solvable(params(10, 3, 1))
        assert solvable(params(10, 4, 1))

    def test_psl_dominates(self):
        # Even with unique identifiers, n <= 3t is hopeless.
        assert not solvable(params(3, 3, 1))

    def test_numeracy_irrelevant_for_unrestricted(self):
        assert solvable(params(10, 4, 1, numerate=True)) == solvable(
            params(10, 4, 1, numerate=False)
        )


class TestPartiallySynchronousBound:
    def test_theorem_13_threshold(self):
        psync = Synchrony.PARTIALLY_SYNCHRONOUS
        assert not solvable(params(9, 6, 1, psync))  # 12 <= 12
        assert solvable(params(8, 6, 1, psync))  # 12 > 11

    def test_paper_example_t1_ell4(self):
        """The paper's flagship curiosity: t=1, ell=4 solvable with 4
        processes, unsolvable with 5."""
        psync = Synchrony.PARTIALLY_SYNCHRONOUS
        assert solvable(params(4, 4, 1, psync))
        assert not solvable(params(5, 4, 1, psync))

    def test_classical_case_collapses_to_psl(self):
        # ell = n: 2n > n + 3t <=> n > 3t, the familiar condition.
        psync = Synchrony.PARTIALLY_SYNCHRONOUS
        assert solvable(params(4, 4, 1, psync))
        assert not solvable(params(3, 3, 1, psync))


class TestRestrictedNumerate:
    def test_theorems_14_15_threshold(self):
        for synchrony in Synchrony:
            assert solvable(
                params(4, 2, 1, synchrony, numerate=True, restricted=True)
            )
            assert not solvable(
                params(4, 1, 1, synchrony, numerate=True, restricted=True)
            )

    def test_restriction_useless_for_innumerate(self):
        """Theorems 19/20: restricted + innumerate keeps the original
        bounds."""
        assert not solvable(params(10, 3, 1, restricted=True))
        psync = Synchrony.PARTIALLY_SYNCHRONOUS
        assert not solvable(params(9, 6, 1, psync, restricted=True))
        assert solvable(params(8, 6, 1, psync, restricted=True))


class TestHelpers:
    def test_min_identifiers_sync(self):
        assert min_identifiers(
            10, 1, Synchrony.SYNCHRONOUS, False, False) == 4
        # n=10, t=3 barely meets PSL: only ell = 10 > 3t = 9 works.
        assert min_identifiers(
            10, 3, Synchrony.SYNCHRONOUS, False, False) == 10
        assert min_identifiers(
            9, 3, Synchrony.SYNCHRONOUS, False, False) is None  # n <= 3t

    def test_min_identifiers_psync_depends_on_n(self):
        psync = Synchrony.PARTIALLY_SYNCHRONOUS
        # 2*ell > n + 3t: ell > (n+3)/2.
        assert min_identifiers(8, 1, psync, False, False) == 6
        assert min_identifiers(10, 1, psync, False, False) == 7

    def test_min_identifiers_restricted(self):
        psync = Synchrony.PARTIALLY_SYNCHRONOUS
        assert min_identifiers(10, 2, psync, True, True) == 3  # t + 1

    def test_gap_examples_are_genuinely_gaps(self):
        for example in partial_synchrony_gap(max_n=12):
            assert sync_bound(example.ell, example.t)
            assert not psync_bound(example.n, example.ell, example.t)

    def test_more_correct_processes_hurt(self):
        example = more_correct_processes_hurt(4, 1)
        assert example is not None
        assert example.n == 5  # 2*4 - 3*1
        psync = Synchrony.PARTIALLY_SYNCHRONOUS
        assert solvable(params(4, 4, 1, psync))
        assert not solvable(params(example.n, 4, 1, psync))

    def test_more_correct_needs_sync_solvable_premise(self):
        assert more_correct_processes_hurt(3, 1) is None

    def test_restriction_gain(self):
        unrestricted, restricted = restriction_gain(10, 2)
        assert restricted == 3  # t + 1
        assert unrestricted == 9  # smallest ell with 2*ell > 16

    def test_t_zero_always_solvable(self):
        assert solvable(params(2, 1, 0))
        assert solvable(params(2, 1, 0, Synchrony.PARTIALLY_SYNCHRONOUS))


@given(
    n=st.integers(2, 30),
    t=st.integers(1, 9),
    ell=st.integers(1, 30),
)
@settings(max_examples=200)
def test_bound_structure_properties(n, t, ell):
    """Structural properties of the characterisation."""
    if ell > n:
        return
    psync = params(n, ell, t, Synchrony.PARTIALLY_SYNCHRONOUS)
    sync = params(n, ell, t, Synchrony.SYNCHRONOUS)
    res_num_sync = params(n, ell, t, Synchrony.SYNCHRONOUS,
                          numerate=True, restricted=True)
    res_num_psync = params(n, ell, t, Synchrony.PARTIALLY_SYNCHRONOUS,
                           numerate=True, restricted=True)

    # 1. Partial synchrony is never easier than synchrony.
    if solvable(psync):
        assert solvable(sync)
    # 2. Restriction + numeracy is never harder than unrestricted.
    if solvable(sync):
        assert solvable(res_num_sync)
    if solvable(psync):
        assert solvable(res_num_psync)
    # 3. Restricted + numerate agrees across synchrony models.
    assert solvable(res_num_sync) == solvable(res_num_psync)
    # 4. More identifiers never hurt (monotone in ell at fixed n).
    if ell < n and solvable(sync):
        assert solvable(params(n, ell + 1, t))
    if ell < n and solvable(psync):
        assert solvable(params(n, ell + 1, t, Synchrony.PARTIALLY_SYNCHRONOUS))
    # 5. Nothing is solvable at or below the PSL bound.
    if n <= 3 * t:
        assert not solvable(sync) and not solvable(psync)
        assert not solvable(res_num_sync)
