"""Authenticated broadcast for homonymous systems (Proposition 6).

The Figure 5 agreement algorithm is built on an authenticated broadcast
primitive generalising Srikanth--Toueg [20] / DLS [9] to homonyms.  It
is implementable in the basic partially synchronous model whenever
``ell > 3t`` and provides, with ``T`` the first superround from which
all messages are delivered:

* **Correctness** -- if a process with identifier ``i`` performs
  ``Broadcast(m)`` in superround ``r >= T``, every correct process
  performs ``Accept(m, i)`` during superround ``r``.
* **Unforgeability** -- if all processes with identifier ``i`` are
  correct and none of them broadcast ``m``, no correct process ever
  performs ``Accept(m, i)``.
* **Relay** -- if some correct process performs ``Accept(m, i)`` during
  superround ``r``, every correct process performs ``Accept(m, i)`` by
  superround ``max(r + 1, T)``.

Mechanism (quoting the paper): the broadcaster sends ``<init m>`` in
the first round of superround ``r``; any process receiving it from
identifier ``i`` sends ``<echo m, r, i>`` in the following round *and in
all subsequent rounds*; any process that has received the echo from
``ell - 2t`` distinct identifiers joins the echoers; receiving the echo
from ``ell - t`` distinct identifiers triggers ``Accept(m, i)``.
Because ``ell - 2t > t``, the first echoer for a never-broadcast message
of a fully correct identifier would have to be correct -- impossible --
which gives unforgeability; because echoes persist, thresholds crossed
anywhere eventually cross everywhere -- relay.

This module is a *layer*, not a process: the host algorithm embeds one
:class:`AuthenticatedBroadcast` per process, folds
:meth:`AuthenticatedBroadcast.outgoing` into its round payloads, feeds
received init/echo items back in, and consumes the resulting
:class:`Accept` events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core.errors import BoundViolation


@dataclass(frozen=True)
class Accept:
    """An ``Accept(m, i)`` event, with the superround it occurred in."""

    message: Hashable
    ident: int
    superround: int


#: Key identifying one logical broadcast instance: (message, superround, id).
BroadcastKey = tuple[Hashable, int, int]


class AuthenticatedBroadcast:
    """Per-process state of the Proposition 6 primitive.

    Engine rounds are 0-indexed; superround ``r`` spans rounds ``2r``
    and ``2r + 1``.  The host must call, each round and in this order:

    1. :meth:`broadcast` (optionally, first round of a superround only),
    2. :meth:`outgoing` when composing its payload,
    3. :meth:`note_init` / :meth:`note_echo` for every received item,
    4. :meth:`drain_accepts` to collect new ``Accept`` events.
    """

    def __init__(self, ell: int, t: int, ident: int, unchecked: bool = False) -> None:
        if ell <= 3 * t and not unchecked:
            raise BoundViolation(
                f"authenticated broadcast requires ell > 3t, got ell={ell}, t={t}"
            )
        self.ell = int(ell)
        self.t = int(t)
        self.ident = int(ident)
        self._pending_inits: list[tuple[Hashable, int]] = []  # (m, superround)
        self._echoing: set[BroadcastKey] = set()
        self._echo_ids: dict[BroadcastKey, set[int]] = {}
        self._accepted: dict[tuple[Hashable, int], int] = {}  # (m, i) -> superround
        self._fresh_accepts: list[Accept] = []

    # ------------------------------------------------------------------
    # Sending side
    # ------------------------------------------------------------------
    def broadcast(self, message: Hashable, superround: int) -> None:
        """Queue ``Broadcast(message)`` for ``superround``.

        Must be called while composing the *first* round of that
        superround; the init item rides on that round's payload.
        """
        self._pending_inits.append((message, int(superround)))

    def outgoing(self, round_no: int) -> tuple[tuple, tuple]:
        """Items to embed in this round's payload: ``(inits, echoes)``.

        Init items are ``("init", m, r)`` and are only produced in the
        first round of their superround; echo items are
        ``("echo", m, r, i)`` and are re-sent every round once active
        (the persistence the relay property needs).
        """
        inits = tuple(
            sorted(
                (
                    ("init", m, r)
                    for m, r in self._pending_inits
                    if 2 * r == round_no
                ),
                key=repr,
            )
        )
        self._pending_inits = [
            (m, r) for m, r in self._pending_inits if 2 * r > round_no
        ]
        echoes = tuple(
            sorted((("echo", m, r, i) for (m, r, i) in self._echoing), key=repr)
        )
        return inits, echoes

    # ------------------------------------------------------------------
    # Receiving side
    # ------------------------------------------------------------------
    def note_init(
        self, sender_id: int, message: Hashable, superround: int, round_no: int
    ) -> None:
        """Record a received ``<init m>`` item.

        Honoured only when it arrives in the first round of its claimed
        superround (a correct broadcaster always satisfies this; a
        Byzantine one gains nothing by lying).
        """
        if round_no != 2 * superround:
            return
        self._echoing.add((message, superround, int(sender_id)))

    def note_echo(
        self,
        sender_id: int,
        message: Hashable,
        superround: int,
        echoed_ident: int,
        round_no: int,
    ) -> None:
        """Record a received ``<echo m, r, i>`` item from ``sender_id``."""
        key: BroadcastKey = (message, int(superround), int(echoed_ident))
        ids = self._echo_ids.setdefault(key, set())
        ids.add(int(sender_id))
        if len(ids) >= self.ell - 2 * self.t:
            self._echoing.add(key)
        if len(ids) >= self.ell - self.t:
            self._accept(key, round_no // 2)

    def _accept(self, key: BroadcastKey, superround: int) -> None:
        message, _r, ident = key
        if (message, ident) in self._accepted:
            return
        self._accepted[(message, ident)] = superround
        self._fresh_accepts.append(Accept(message, ident, superround))

    # ------------------------------------------------------------------
    # Host queries
    # ------------------------------------------------------------------
    def drain_accepts(self) -> list[Accept]:
        """New ``Accept`` events since the last drain (ordered)."""
        fresh = self._fresh_accepts
        self._fresh_accepts = []
        return fresh

    def has_accepted(self, message: Hashable, ident: int) -> bool:
        return (message, ident) in self._accepted

    def accepted_superround(self, message: Hashable, ident: int) -> int | None:
        return self._accepted.get((message, ident))

    def accept_count(self) -> int:
        """Total distinct ``(m, i)`` pairs accepted so far."""
        return len(self._accepted)


def parse_broadcast_items(
    items: Iterable[Hashable],
) -> tuple[list[tuple[Hashable, int]], list[tuple[Hashable, int, int]]]:
    """Split received payload items into init and echo records.

    Returns ``(inits, echoes)`` where inits are ``(m, r)`` and echoes
    are ``(m, r, i)``.  Malformed items are dropped (Byzantine noise).
    """
    inits: list[tuple[Hashable, int]] = []
    echoes: list[tuple[Hashable, int, int]] = []
    for item in items:
        if not isinstance(item, tuple) or not item:
            continue
        if item[0] == "init" and len(item) == 3 and isinstance(item[2], int):
            inits.append((item[1], item[2]))
        elif (
            item[0] == "echo"
            and len(item) == 4
            and isinstance(item[2], int)
            and isinstance(item[3], int)
        ):
            echoes.append((item[1], item[2], item[3]))
    return inits, echoes
