"""First-class host processes for the broadcast protocol layers.

The broadcast modules are deliberately *layers*, not processes: the
algorithms that embed them (Figure 5 agreement, the reliable-broadcast
extension) own the round loop.  For driving a layer directly through
the execution kernel -- the broadcast test-suites and the conformance
grid -- these hosts supply the minimal embedding: broadcast one value
in a chosen superround, fold the layer's outgoing items into the round
payload, feed received items back in, and record every ``Accept``.

Payload shapes (stable, pinned by the conformance suite):

* authenticated: ``(AB_BUNDLE_TAG, inits, echoes)``;
* multiplicity: ``(MB_BUNDLE_TAG, items)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.broadcast.authenticated import (
    Accept,
    AuthenticatedBroadcast,
    parse_broadcast_items,
)
from repro.broadcast.multiplicity import (
    MultiplicityAccept,
    MultiplicityBroadcast,
)
from repro.core.messages import Inbox
from repro.sim.process import Process

AB_BUNDLE_TAG = "ab"
MB_BUNDLE_TAG = "mb"


class AuthenticatedBroadcastHost(Process):
    """Minimal host around :class:`AuthenticatedBroadcast`.

    Broadcasts ``("val", value)`` in the first round of
    ``broadcast_superround`` when ``value`` is not ``None``, and records
    every :class:`~repro.broadcast.authenticated.Accept` it performs
    into :attr:`accepts`.
    """

    def __init__(
        self,
        identifier: int,
        ell: int,
        t: int,
        value: Hashable = None,
        broadcast_superround: int = 0,
        unchecked: bool = False,
    ) -> None:
        super().__init__(identifier, value)
        self.value = value
        self.broadcast_superround = int(broadcast_superround)
        self.ab = AuthenticatedBroadcast(ell, t, identifier, unchecked=unchecked)
        self.accepts: list[Accept] = []

    def compose(self, round_no: int) -> Hashable:
        if (
            self.value is not None
            and round_no == 2 * self.broadcast_superround
        ):
            self.ab.broadcast(("val", self.value), self.broadcast_superround)
        inits, echoes = self.ab.outgoing(round_no)
        return (AB_BUNDLE_TAG, inits, echoes)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for m in inbox:
            payload = m.payload
            if not (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == AB_BUNDLE_TAG
            ):
                continue
            inits, echoes = parse_broadcast_items(payload[1] + payload[2])
            for mm, r in inits:
                self.ab.note_init(m.sender_id, mm, r, round_no)
            for mm, r, i in echoes:
                self.ab.note_echo(m.sender_id, mm, r, i, round_no)
        self.accepts.extend(self.ab.drain_accepts())


class MultiplicityBroadcastHost(Process):
    """Minimal host around :class:`MultiplicityBroadcast`.

    Broadcasts ``value`` in the first round of ``broadcast_superround``
    when ``value`` is not ``None``, and records every
    :class:`~repro.broadcast.multiplicity.MultiplicityAccept` into
    :attr:`accepts`.
    """

    def __init__(
        self,
        identifier: int,
        n: int,
        t: int,
        value: Hashable = None,
        broadcast_superround: int = 0,
        unchecked: bool = False,
    ) -> None:
        super().__init__(identifier, value)
        self.value = value
        self.broadcast_superround = int(broadcast_superround)
        self.mb = MultiplicityBroadcast(n, t, identifier, unchecked=unchecked)
        self.accepts: list[MultiplicityAccept] = []

    def compose(self, round_no: int) -> Hashable:
        if (
            self.value is not None
            and round_no == 2 * self.broadcast_superround
        ):
            self.mb.broadcast(self.value, self.broadcast_superround)
        return (MB_BUNDLE_TAG, self.mb.outgoing(round_no))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for m in inbox:
            payload = m.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == MB_BUNDLE_TAG
            ):
                self.mb.note_message(m.sender_id, payload[1], round_no)
        self.accepts.extend(self.mb.end_round(round_no))
