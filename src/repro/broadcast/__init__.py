"""Authenticated broadcast primitives (Proposition 6, Figure 6), the
reliable-broadcast extension, and their kernel-driven runners."""

from repro.broadcast.authenticated import (
    Accept,
    AuthenticatedBroadcast,
    parse_broadcast_items,
)
from repro.broadcast.hosts import (
    AB_BUNDLE_TAG,
    MB_BUNDLE_TAG,
    AuthenticatedBroadcastHost,
    MultiplicityBroadcastHost,
)
from repro.broadcast.multiplicity import (
    MultiplicityAccept,
    MultiplicityBroadcast,
)
from repro.broadcast.reference import (
    run_authenticated_broadcast_reference,
    run_multiplicity_broadcast_reference,
    run_reliable_broadcast_reference,
)
from repro.broadcast.reliable import (
    ReliableBroadcastProcess,
    reliable_broadcast_factory,
)
from repro.broadcast.runner import (
    BroadcastRun,
    run_authenticated_broadcast,
    run_multiplicity_broadcast,
    run_reliable_broadcast,
)

__all__ = [
    "AB_BUNDLE_TAG",
    "Accept",
    "AuthenticatedBroadcast",
    "AuthenticatedBroadcastHost",
    "BroadcastRun",
    "MB_BUNDLE_TAG",
    "MultiplicityAccept",
    "MultiplicityBroadcast",
    "MultiplicityBroadcastHost",
    "ReliableBroadcastProcess",
    "parse_broadcast_items",
    "reliable_broadcast_factory",
    "run_authenticated_broadcast",
    "run_authenticated_broadcast_reference",
    "run_multiplicity_broadcast",
    "run_multiplicity_broadcast_reference",
    "run_reliable_broadcast",
    "run_reliable_broadcast_reference",
]
