"""Authenticated broadcast primitives (Proposition 6, Figure 6) and the
reliable-broadcast extension."""

from repro.broadcast.authenticated import (
    Accept,
    AuthenticatedBroadcast,
    parse_broadcast_items,
)
from repro.broadcast.multiplicity import (
    MultiplicityAccept,
    MultiplicityBroadcast,
)
from repro.broadcast.reliable import (
    ReliableBroadcastProcess,
    reliable_broadcast_factory,
)

__all__ = [
    "Accept",
    "AuthenticatedBroadcast",
    "MultiplicityAccept",
    "MultiplicityBroadcast",
    "ReliableBroadcastProcess",
    "parse_broadcast_items",
    "reliable_broadcast_factory",
]
