"""Kernel-driven execution of the broadcast protocol layers.

Before the kernel unification each broadcast test-suite hand-rolled its
own engine loop.  These runners put all three primitives -- the
Proposition 6 authenticated broadcast, the reliable-broadcast
extension, and the Figure 6 multiplicity broadcast -- on
:class:`~repro.sim.kernel.ExecutionKernel`: one delivery semantics,
delivery metrics for free, and a pluggable
:class:`~repro.sim.kernel.TimingModel` (pass ``timing=`` for the
delay-based formulations, or a legacy ``drop_schedule``).

The frozen pre-port loops live in :mod:`repro.broadcast.reference`;
``tests/test_kernel_conformance.py`` pins these runners against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.broadcast.hosts import (
    AuthenticatedBroadcastHost,
    MultiplicityBroadcastHost,
)
from repro.broadcast.reliable import ReliableBroadcastProcess
from repro.core.errors import ConfigurationError
from repro.core.identity import (
    IdentityAssignment,
    balanced_assignment,
    stacked_assignment,
)
from repro.core.params import SystemParams
from repro.sim.adversary import Adversary
from repro.sim.kernel import ExecutionKernel, TimingModel, timing_model_for
from repro.sim.metrics import Metrics, RoundDeliveries, metrics_from_deliveries
from repro.sim.network import ReferenceRoundEngine
from repro.sim.partial import DropSchedule
from repro.sim.process import Process
from repro.sim.trace import Trace


@dataclass
class BroadcastRun:
    """Everything produced by one broadcast-layer execution."""

    params: SystemParams
    assignment: IdentityAssignment
    byzantine: tuple[int, ...]
    processes: Sequence[Process | None]
    trace: Trace
    metrics: Metrics
    deliveries: tuple[RoundDeliveries, ...]
    losses: tuple[tuple[int, int, int], ...]
    ticks: int
    rounds_executed: int

    @property
    def correct_processes(self) -> list[Process]:
        """The correct slots' host processes, ascending."""
        return [p for p in self.processes if p is not None]


def _drive(
    params: SystemParams,
    assignment: IdentityAssignment,
    processes: Sequence[Process | None],
    byzantine: Sequence[int],
    adversary: Adversary | None,
    drop_schedule: DropSchedule | None,
    timing: TimingModel | None,
    rounds: int,
    reference: bool,
) -> BroadcastRun:
    """Run one broadcast execution on the kernel (or the oracle)."""
    if reference:
        if timing is not None:
            raise ConfigurationError(
                "the reference broadcast oracle predates timing models; "
                "pass a drop_schedule or nothing"
            )
        engine: ExecutionKernel = ReferenceRoundEngine(
            params=params,
            assignment=assignment,
            processes=processes,
            byzantine=byzantine,
            adversary=adversary,
            drop_schedule=drop_schedule,
        )
    else:
        if timing is None:
            timing = timing_model_for(drop_schedule, None)
        elif drop_schedule is not None:
            raise ConfigurationError(
                "pass either an explicit timing model or the legacy "
                "drop_schedule, not both"
            )
        engine = ExecutionKernel(
            params=params,
            assignment=assignment,
            processes=processes,
            byzantine=byzantine,
            adversary=adversary,
            timing=timing,
        )
    executed = engine.run(max_rounds=rounds, stop_when_all_decided=True)
    return BroadcastRun(
        params=params,
        assignment=assignment,
        byzantine=engine.byzantine,
        processes=list(processes),
        trace=engine.trace,
        metrics=metrics_from_deliveries(engine.deliveries),
        deliveries=tuple(engine.deliveries),
        losses=tuple(engine.losses),
        ticks=engine.timing.ticks_executed(executed),
        rounds_executed=executed,
    )


def run_authenticated_broadcast(
    n: int,
    ell: int,
    t: int,
    byzantine: Sequence[int] = (),
    adversary: Adversary | None = None,
    drop_schedule: DropSchedule | None = None,
    timing: TimingModel | None = None,
    rounds: int = 10,
    broadcast_superround: int = 0,
    values: Mapping[int, Hashable] | None = None,
    assignment: IdentityAssignment | None = None,
    _reference: bool = False,
) -> BroadcastRun:
    """Drive the Proposition 6 primitive through the kernel.

    Every correct slot hosts one
    :class:`~repro.broadcast.hosts.AuthenticatedBroadcastHost`; slots
    with a value in ``values`` broadcast it in ``broadcast_superround``.

    Args:
        n: Process count.
        ell: Identifier count (the primitive needs ``ell > 3t``).
        t: Byzantine bound.
        byzantine: Byzantine slot indices.
        adversary: The Byzantine strategy (defaults to silence).
        drop_schedule: Legacy basic-model drop schedule (exclusive
            with ``timing``).
        timing: Explicit :class:`~repro.sim.kernel.TimingModel`.
        rounds: Round budget.
        broadcast_superround: When the armed hosts broadcast.
        values: ``slot index -> value``; defaults to every slot
            broadcasting its own index.
        assignment: Identifier assignment; defaults to
            :func:`~repro.core.identity.balanced_assignment`.

    Returns:
        The finished :class:`BroadcastRun`.
    """
    params = SystemParams(n=n, ell=ell, t=t)
    if assignment is None:
        assignment = balanced_assignment(n, ell)
    if values is None:
        values = {k: k for k in range(n)}
    byz = set(byzantine)
    processes: list[Process | None] = [
        None
        if k in byz
        else AuthenticatedBroadcastHost(
            assignment.identifier_of(k),
            ell,
            t,
            value=values.get(k),
            broadcast_superround=broadcast_superround,
        )
        for k in range(n)
    ]
    return _drive(
        params, assignment, processes, byzantine, adversary,
        drop_schedule, timing, rounds, _reference,
    )


def run_reliable_broadcast(
    n: int,
    ell: int,
    t: int,
    sender_ident: int,
    values_by_slot: Mapping[int, Hashable],
    byzantine: Sequence[int] = (),
    adversary: Adversary | None = None,
    drop_schedule: DropSchedule | None = None,
    timing: TimingModel | None = None,
    rounds: int = 14,
    assignment: IdentityAssignment | None = None,
    start_superround: int = 0,
    _reference: bool = False,
) -> BroadcastRun:
    """Drive the one-shot reliable broadcast through the kernel.

    Correct holders of ``sender_ident`` with an entry in
    ``values_by_slot`` broadcast it in ``start_superround``; the run
    stops early once every correct process delivered.

    Args:
        n: Process count.
        ell: Identifier count (the primitive needs ``ell > 3t``).
        t: Byzantine bound.
        sender_ident: The broadcasting identifier.
        values_by_slot: ``slot index -> value`` for the armed holders.
        byzantine: Byzantine slot indices.
        adversary: The Byzantine strategy (defaults to silence).
        drop_schedule: Legacy basic-model drop schedule (exclusive
            with ``timing``).
        timing: Explicit :class:`~repro.sim.kernel.TimingModel`.
        rounds: Round budget.
        assignment: Identifier assignment; defaults to
            :func:`~repro.core.identity.balanced_assignment`.
        start_superround: The broadcast superround.

    Returns:
        The finished :class:`BroadcastRun`.
    """
    params = SystemParams(n=n, ell=ell, t=t)
    if assignment is None:
        assignment = balanced_assignment(n, ell)
    byz = set(byzantine)
    processes: list[Process | None] = []
    for k in range(n):
        if k in byz:
            processes.append(None)
            continue
        ident = assignment.identifier_of(k)
        proposal = values_by_slot.get(k) if ident == sender_ident else None
        processes.append(
            ReliableBroadcastProcess(
                ell, t, ident, sender_ident,
                proposal=proposal, start_superround=start_superround,
            )
        )
    return _drive(
        params, assignment, processes, byzantine, adversary,
        drop_schedule, timing, rounds, _reference,
    )


def run_multiplicity_broadcast(
    n: int,
    ell: int,
    t: int,
    broadcaster_ident: int,
    byzantine: Sequence[int] = (),
    adversary: Adversary | None = None,
    drop_schedule: DropSchedule | None = None,
    timing: TimingModel | None = None,
    rounds: int = 8,
    assignment: IdentityAssignment | None = None,
    message: Hashable = "m",
    broadcast_superround: int = 0,
    _reference: bool = False,
) -> BroadcastRun:
    """Drive the Figure 6 multiplicity primitive through the kernel.

    Every correct holder of ``broadcaster_ident`` broadcasts
    ``message`` in ``broadcast_superround``; the system is numerate and
    restricted, as Figure 6 requires.

    Args:
        n: Process count (the primitive needs ``n > 3t``).
        ell: Identifier count.
        t: Byzantine bound.
        broadcaster_ident: The broadcasting identifier.
        byzantine: Byzantine slot indices.
        adversary: The Byzantine strategy (defaults to silence).
        drop_schedule: Legacy basic-model drop schedule (exclusive
            with ``timing``).
        timing: Explicit :class:`~repro.sim.kernel.TimingModel`.
        rounds: Round budget.
        assignment: Identifier assignment; defaults to
            :func:`~repro.core.identity.stacked_assignment`.
        message: The broadcast value.
        broadcast_superround: The broadcast superround.

    Returns:
        The finished :class:`BroadcastRun`.
    """
    params = SystemParams(n=n, ell=ell, t=t, numerate=True, restricted=True)
    if assignment is None:
        assignment = stacked_assignment(n, ell)
    byz = set(byzantine)
    processes: list[Process | None] = [
        None
        if k in byz
        else MultiplicityBroadcastHost(
            assignment.identifier_of(k),
            n,
            t,
            value=(
                message
                if assignment.identifier_of(k) == broadcaster_ident
                else None
            ),
            broadcast_superround=broadcast_superround,
        )
        for k in range(n)
    ]
    return _drive(
        params, assignment, processes, byzantine, adversary,
        drop_schedule, timing, rounds, _reference,
    )
