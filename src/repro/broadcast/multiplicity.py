"""Figure 6: authenticated broadcast *with multiplicity* estimates.

In the restricted Byzantine model (at most one message per recipient
per round) with numerate processes, the paper strengthens
authenticated broadcast so that an ``Accept`` also carries an estimate
``alpha`` of *how many* processes with the identifier performed the
broadcast.  With ``f_i`` the number of Byzantine processes holding
identifier ``i`` and ``T`` the stabilisation superround:

* **Correctness** -- if ``alpha`` correct processes with identifier ``i``
  perform ``Broadcast(i, m, r)`` in superround ``r >= T``, every correct
  process performs ``Accept(i, alpha', m, r)`` with ``alpha' >= alpha``
  during superround ``r``.
* **Relay** -- an ``Accept(i, alpha, m, r)`` by a correct process in
  superround ``r' >= r`` forces ``Accept(i, alpha', m, r)`` with
  ``alpha' >= alpha`` at every correct process by superround
  ``max(r', T) + 1``.
* **Unforgeability** -- any accepted ``alpha'`` satisfies
  ``0 <= alpha' <= alpha + f_i``.
* **Unicity** -- per ``(i, m, r)``, at most one ``Accept`` per superround.

Mechanism: superround ``r`` spans engine rounds ``2r`` and ``2r + 1``.
Broadcasters attach ``(init, m, r)`` to their round-``2r`` message.
Every process maintains counters ``a[h, m, r]`` and re-sends, *every
round*, an item ``(echo, h, a[h, m, r], m, r)`` for each non-zero
counter.  On receipt, a process that got at least ``n - 2t`` *valid
messages* carrying an echo for ``(h, m, r)`` raises its counter to the
largest ``alpha`` supported by ``n - 2t`` of them; in odd rounds a
support of ``n - t`` messages triggers ``Accept`` with the largest
``alpha`` supported by ``n - t``.  Counting *messages* (processes)
instead of identifiers is sound precisely because Byzantine senders are
restricted and receivers are numerate.

A *valid* message contains at most one init per ``m`` (claiming the
current superround) and at most one echo per ``(h, m, r)``; invalid
messages are discarded wholesale (only Byzantine processes produce
them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core.errors import BoundViolation

INIT_TAG = "minit"
ECHO_TAG = "mecho"


@dataclass(frozen=True)
class MultiplicityAccept:
    """An ``Accept(i, alpha, m, r)`` event, stamped with when it happened."""

    ident: int
    multiplicity: int
    message: Hashable
    superround: int  # the broadcast's superround (r)
    accepted_superround: int  # when this Accept was performed (r')


class MultiplicityBroadcast:
    """Per-process state of the Figure 6 primitive.

    Host contract per engine round:

    1. :meth:`broadcast` while composing the first round of the target
       superround;
    2. :meth:`outgoing` to get the items for this round's payload;
    3. :meth:`note_message` once per received physical message;
    4. :meth:`end_round` after the inbox is consumed -- returns the
       ``Accept`` events of this round (only odd rounds produce any).
    """

    def __init__(
        self, n: int, t: int, ident: int, unchecked: bool = False
    ) -> None:
        if n <= 3 * t and not unchecked:
            raise BoundViolation(
                f"multiplicity broadcast requires n > 3t, got n={n}, t={t}"
            )
        self.n = int(n)
        self.t = int(t)
        self.ident = int(ident)
        #: a[h, m, r] counters (only non-zero entries stored).
        self._a: dict[tuple[int, Hashable, int], int] = {}
        self._pending: list[tuple[Hashable, int]] = []
        #: per-round tally: (h, m, r) -> list of alpha' from valid messages.
        self._round_echoes: dict[tuple[int, Hashable, int], list[int]] = {}
        #: per-round init tally: (h, m) -> number of valid messages.
        self._round_inits: dict[tuple[int, Hashable], int] = {}

    # ------------------------------------------------------------------
    # Sending side
    # ------------------------------------------------------------------
    def broadcast(self, message: Hashable, superround: int) -> None:
        """Queue ``Broadcast(ident, message, superround)``."""
        self._pending.append((message, int(superround)))

    def outgoing(self, round_no: int) -> tuple[Hashable, ...]:
        """Items for this round: all live echoes plus due inits."""
        items: list[Hashable] = []
        for (h, m, r), alpha in self._a.items():
            if alpha > 0 and round_no >= 2 * r:
                items.append((ECHO_TAG, h, alpha, m, r))
        for m, r in self._pending:
            if 2 * r == round_no:
                items.append((INIT_TAG, m, r))
        self._pending = [(m, r) for m, r in self._pending if 2 * r > round_no]
        return tuple(sorted(items, key=repr))

    # ------------------------------------------------------------------
    # Receiving side
    # ------------------------------------------------------------------
    def note_message(
        self, sender_id: int, items: Iterable[Hashable], round_no: int
    ) -> None:
        """Tally one received physical message's broadcast items.

        Invalid messages (duplicate init/echo keys, inits claiming the
        wrong round, echoes from the future) are discarded wholesale.
        """
        parsed = self._validate(sender_id, items, round_no)
        if parsed is None:
            return
        inits, echoes = parsed
        for m in inits:
            key = (int(sender_id), m)
            self._round_inits[key] = self._round_inits.get(key, 0) + 1
        for (h, m, r), alpha in echoes.items():
            self._round_echoes.setdefault((h, m, r), []).append(alpha)

    def end_round(self, round_no: int) -> list[MultiplicityAccept]:
        """Apply the thresholds of Figure 6 lines 13-21 for this round."""
        accepts: list[MultiplicityAccept] = []

        # Lines 13-14: first round of a superround seeds a[..] from inits.
        if round_no % 2 == 0:
            r = round_no // 2
            for (h, m), alpha in self._round_inits.items():
                key = (h, m, r)
                if alpha > self._a.get(key, 0):
                    self._a[key] = alpha

        # Lines 15-18: raise counters on n - 2t message support.
        low = self.n - 2 * self.t
        high = self.n - self.t
        for key in sorted(self._round_echoes, key=repr):
            alphas = sorted(self._round_echoes[key], reverse=True)
            if len(alphas) >= low:
                alpha1 = alphas[low - 1]  # largest alpha with n-2t support
                if alpha1 > self._a.get(key, 0):
                    self._a[key] = alpha1
            # Lines 19-21: accept on n - t support, odd rounds only.
            if round_no % 2 == 1 and len(alphas) >= high:
                alpha2 = alphas[high - 1]
                h, m, r = key
                accepts.append(
                    MultiplicityAccept(
                        ident=h,
                        multiplicity=alpha2,
                        message=m,
                        superround=r,
                        accepted_superround=round_no // 2,
                    )
                )

        self._round_echoes = {}
        self._round_inits = {}
        return accepts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate(
        self, sender_id: int, items: Iterable[Hashable], round_no: int
    ):
        """Message-level validity check (the paper's "valid" predicate)."""
        inits: list[Hashable] = []
        echoes: dict[tuple[int, Hashable, int], int] = {}
        seen_init: set[Hashable] = set()
        for item in items:
            if not isinstance(item, tuple) or not item:
                continue  # foreign payload items ride in the same bundle
            if item[0] == INIT_TAG:
                if len(item) != 3 or not isinstance(item[2], int):
                    return None
                _tag, m, r = item
                if 2 * r != round_no or m in seen_init:
                    return None
                seen_init.add(m)
                inits.append(m)
            elif item[0] == ECHO_TAG:
                if len(item) != 5:
                    return None
                _tag, h, alpha, m, r = item
                if not (
                    isinstance(h, int)
                    and isinstance(alpha, int)
                    and isinstance(r, int)
                ):
                    return None
                if alpha < 1 or round_no < 2 * r:
                    return None
                key = (h, m, r)
                if key in echoes:
                    return None
                echoes[key] = alpha
        return inits, echoes

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------
    def counter(self, ident: int, message: Hashable, superround: int) -> int:
        return self._a.get((ident, message, superround), 0)
