"""Reliable broadcast with homonyms: a one-shot primitive (extension).

The paper's concluding remarks note that agreement is only the first
problem worth studying in the homonym model.  Reliable broadcast is the
natural second: a designated *identifier* (not process!) disseminates a
value such that

* **validity** -- if every holder of the sender identifier is correct
  and they all broadcast ``v`` in the starting superround, every correct
  process delivers ``v``;
* **integrity / source authentication** -- a correct process delivers at
  most one value per sender identifier, and only a value some holder of
  that identifier actually sent -- unless the identifier harbours a
  Byzantine process or *several correct homonyms with different values*
  (who are indistinguishable from one Byzantine process: the model's
  fundamental ambiguity, priced in exactly as the paper prices it for
  agreement);
* **totality (relay)** -- if any correct process delivers ``(v, i)``,
  every correct process delivers some value for ``i`` within a
  superround of stabilisation.

The implementation is a thin one-shot protocol over the Proposition 6
echo layer (hence it inherits ``ell > 3t``): holders of the sender
identifier ``Broadcast`` their value; every process delivers the
*smallest* accepted value of that identifier after waiting one full
superround past its first acceptance.

**Scope note (what is deliberately NOT claimed).**  When the sender
identifier harbours a Byzantine process, classic reliable broadcast
additionally promises *consistency*: all correct processes deliver the
same value.  A staggered-acceptance adversary can defeat the simple
min-rule here, and upgrading it Bracha-style (a ready phase with
``ell - t`` identifier quorums) runs into the very homonym ambiguity
the paper studies -- correct homonyms of the sender may legitimately
ready different values, so the quorum-intersection argument (Lemma 7)
no longer closes the case under ``ell > 3t`` alone.  Characterising
reliable-broadcast consistency with homonyms is exactly the kind of
follow-up the paper's concluding remarks invite; this module ships the
properties that do hold and records the gap in its test-suite.
"""

from __future__ import annotations

from typing import Hashable

from repro.broadcast.authenticated import (
    AuthenticatedBroadcast,
    parse_broadcast_items,
)
from repro.core.errors import BoundViolation
from repro.core.messages import Inbox
from repro.sim.process import Process

BUNDLE_TAG = "rbc"


class ReliableBroadcastProcess(Process):
    """One process of the one-shot homonym reliable broadcast.

    ``sender_ident`` names the broadcasting identifier; processes
    holding it with a non-``None`` ``proposal`` broadcast that value in
    superround ``start_superround``.  Delivery is recorded via the
    inherited decision plumbing (``decision`` = delivered value), so all
    the runner/verdict machinery applies.
    """

    def __init__(
        self,
        ell: int,
        t: int,
        identifier: int,
        sender_ident: int,
        proposal: Hashable = None,
        start_superround: int = 0,
        unchecked: bool = False,
    ) -> None:
        super().__init__(identifier, proposal)
        if ell <= 3 * t and not unchecked:
            raise BoundViolation(
                f"reliable broadcast requires ell > 3t, got ell={ell}, t={t}"
            )
        self.ell = int(ell)
        self.t = int(t)
        self.sender_ident = int(sender_ident)
        self.start_superround = int(start_superround)
        self.ab = AuthenticatedBroadcast(ell, t, identifier, unchecked=unchecked)
        #: Values of the sender identifier accepted so far, with the
        #: superround each acceptance happened in.
        self._accepted_values: dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # Round interface
    # ------------------------------------------------------------------
    def compose(self, round_no: int) -> Hashable:
        if (
            self.identifier == self.sender_ident
            and self.proposal is not None
            and round_no == 2 * self.start_superround
        ):
            self.ab.broadcast(("rbc-value", self.proposal),
                              self.start_superround)
        inits, echoes = self.ab.outgoing(round_no)
        return (BUNDLE_TAG, inits, echoes)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for m in inbox:
            payload = m.payload
            if not (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == BUNDLE_TAG
            ):
                continue
            inits, echoes = parse_broadcast_items(payload[1] + payload[2])
            for mm, r in inits:
                self.ab.note_init(m.sender_id, mm, r, round_no)
            for mm, r, i in echoes:
                self.ab.note_echo(m.sender_id, mm, r, i, round_no)

        superround = round_no // 2
        for accept in self.ab.drain_accepts():
            msg = accept.message
            if accept.ident != self.sender_ident:
                continue
            if not (isinstance(msg, tuple) and len(msg) == 2
                    and msg[0] == "rbc-value"):
                continue
            self._accepted_values.setdefault(msg[1], accept.superround)

        # Deliver at the end of a superround, one full superround after
        # the first acceptance: by then, every value accepted "at the
        # same time" elsewhere has relayed here (Relay property), so the
        # deterministic minimum is common.
        if self.decided or not self._accepted_values:
            return
        if round_no % 2 == 1:
            first = min(self._accepted_values.values())
            if superround >= first + 1:
                value = min(self._accepted_values, key=repr)
                self.record_decision(value, round_no)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def delivered(self) -> Hashable:
        """The delivered value (``None`` until delivery)."""
        return self.decision

    def accepted_values(self) -> dict[Hashable, int]:
        return dict(self._accepted_values)


def reliable_broadcast_factory(
    ell: int,
    t: int,
    sender_ident: int,
    start_superround: int = 0,
    unchecked: bool = False,
):
    """Process factory: holders of ``sender_ident`` broadcast their
    proposal, everyone else only participates in the echo fabric."""

    def factory(identifier: int, proposal: Hashable) -> ReliableBroadcastProcess:
        return ReliableBroadcastProcess(
            ell, t, identifier, sender_ident,
            proposal=proposal if identifier == sender_ident else None,
            start_superround=start_superround,
            unchecked=unchecked,
        )

    return factory
