"""Frozen pre-port broadcast execution, kept as differential oracles.

Before the kernel unification the broadcast test-suites drove their
hosts through hand-rolled engine loops over the pre-fabric per-receiver
delivery path.  These wrappers reproduce exactly that execution -- the
:mod:`repro.broadcast.runner` entry points on
:class:`~repro.sim.network.ReferenceRoundEngine` -- so
``tests/test_kernel_conformance.py`` can pin the kernelised runners'
inboxes, traces, deliveries and accepts against the old semantics.
Not for production use; the oracles support the basic model only
(``drop_schedule``), not arbitrary timing models.
"""

from __future__ import annotations

import functools

from repro.broadcast.runner import (
    BroadcastRun,
    run_authenticated_broadcast,
    run_multiplicity_broadcast,
    run_reliable_broadcast,
)

__all__ = [
    "BroadcastRun",
    "run_authenticated_broadcast_reference",
    "run_multiplicity_broadcast_reference",
    "run_reliable_broadcast_reference",
]

run_authenticated_broadcast_reference = functools.partial(
    run_authenticated_broadcast, _reference=True
)
run_authenticated_broadcast_reference.__doc__ = (
    "The pre-port authenticated-broadcast loop (differential oracle)."
)

run_reliable_broadcast_reference = functools.partial(
    run_reliable_broadcast, _reference=True
)
run_reliable_broadcast_reference.__doc__ = (
    "The pre-port reliable-broadcast loop (differential oracle)."
)

run_multiplicity_broadcast_reference = functools.partial(
    run_multiplicity_broadcast, _reference=True
)
run_multiplicity_broadcast_reference.__doc__ = (
    "The pre-port multiplicity-broadcast loop (differential oracle)."
)
