"""Command-line interface: explore the paper from a shell.

Subcommands:

* ``table1`` -- print the symbolic Table 1 and a per-ell boundary map;
* ``check N ELL T`` -- classify one configuration in all four model
  families, with the relevant theorem for each verdict;
* ``run`` -- execute one agreement instance (model, assignment, attack
  and drop schedule selectable) and print the verdict, optionally with
  the ASCII execution timeline;
* ``attack`` -- run a lower-bound construction (``fig1``/``fig4``/
  ``mirror``) and print the machine-checked violation;
* ``explore`` -- bounded adversary-strategy exploration: search *every*
  strategy in a finite emission alphabet instead of running one fixed
  attack, and print either a replayable violating strategy trace or a
  bounded exhaustiveness certificate with pruning counters;
* ``campaign`` -- validate the whole Table 1 battery through the
  parallel campaign engine (worker pool, disk cache, shardable,
  JSON/Markdown reports); ``--explore`` runs the tightness frontier and
  ``--delay`` the delay-model workload family through the same pool
  instead;
* ``atlas`` -- sweep the ``(n, t, ell)`` x model lattice and fuse, per
  cell, the closed-form Table 1 predicate with campaign verdicts and
  explorer certificates into a provenance-annotated verdict, streamed
  to a resumable JSONL log and rendered as the machine-derived Table 1
  plus per-``(n, t)`` boundary maps; ``atlas merge`` fuses per-shard
  logs into the canonical ``atlas.jsonl``, ``atlas render`` re-renders
  incrementally via a persisted cursor, and ``atlas serve`` exposes a
  fused log as a stdlib JSON query API.

``run`` executes on the unified kernel and accepts a timing model:
``--timing rounds`` (lock-step, the default), ``--timing eventual``
(delays bounded by ``--delta`` from ``--gst-tick`` on) or ``--timing
bounded`` (delays always bounded, bound unknown to the algorithm).

Examples::

    python -m repro table1 --n 8 --t 1
    python -m repro check 9 6 1
    python -m repro run --n 7 --ell 6 --t 1 --model psync --gst 16 --timeline
    python -m repro run --n 7 --ell 6 --t 1 --model psync \\
        --timing eventual --delta 3 --gst-tick 24 --chaos 4
    python -m repro attack fig4 --n 9 --ell 6 --t 1
    python -m repro explore --n 3 --ell 3 --t 1 --model sync
    python -m repro explore --n 4 --ell 4 --t 1 --model sync --json cert.json
    python -m repro campaign --workers 4 --report table1.json
    python -m repro campaign --workers 4 --resume --shard 0/2
    python -m repro campaign --explore --workers 4
    python -m repro campaign --delay --workers 4
    python -m repro atlas --quick --workers 4
    python -m repro atlas --max-n 8 --resume --markdown atlas.md
    python -m repro atlas --quick --shard 0/3 --workers 4
    python -m repro atlas merge atlas-0-of-3.jsonl atlas-1-of-3.jsonl \\
        atlas-2-of-3.jsonl --out atlas.jsonl
    python -m repro atlas render --log atlas.jsonl --markdown atlas.md
    python -m repro atlas serve --log atlas.jsonl --port 8008
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.adversaries.generic import (
    EquivocatorAdversary,
    RandomByzantineAdversary,
)
from repro.adversaries.mirror import mirror_chain_scan
from repro.adversaries.partition import run_partition_attack
from repro.adversaries.scenario import run_scenario
from repro.analysis.bounds import solvable
from repro.analysis.tables import boundary_map, table1_text
from repro.classic.eig import EIGSpec
from repro.core.identity import (
    balanced_assignment,
    random_assignment,
    stacked_assignment,
)
from repro.core.canonical import canonical_json
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY
from repro.core.errors import ConfigurationError
from repro.experiments.campaign import (
    CampaignCache,
    parse_shard,
    run_campaign,
)
from repro.experiments.harness import algorithm_for
from repro.experiments.report import cell_grid_report, failures_report
from repro.homonyms.transform import transform_factory, transform_horizon
from repro.psync.dls_homonyms import DLSHomonymProcess, dls_horizon
from repro.psync.restricted import restricted_factory, restricted_horizon
from repro.sim.delay import (
    AlwaysBoundedUnknownDelays,
    EventuallyBoundedDelays,
    equivalent_basic_gst,
)
from repro.sim.kernel import DelayBased
from repro.sim.partial import RandomDrops, SilenceUntil
from repro.sim.render import render_decision_summary, render_timeline
from repro.sim.runner import run_agreement


def _params(args, synchrony=None) -> SystemParams:
    """Build :class:`SystemParams` from parsed CLI arguments.

    Args:
        args: The parsed namespace (``n``/``ell``/``t`` required;
            ``model``/``numerate``/``restricted`` optional).
        synchrony: Override the synchrony instead of deriving it from
            ``args.model``.

    Returns:
        The parameter object for the requested model.
    """
    if synchrony is None:
        synchrony = (
            Synchrony.PARTIALLY_SYNCHRONOUS
            if getattr(args, "model", "psync") == "psync"
            else Synchrony.SYNCHRONOUS
        )
    return SystemParams(
        n=args.n, ell=args.ell, t=args.t,
        synchrony=synchrony,
        numerate=getattr(args, "numerate", False),
        restricted=getattr(args, "restricted", False),
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_table1(args) -> int:
    """``table1``: print the symbolic table (and optional boundary map).

    Args:
        args: Parsed namespace with optional ``n`` and ``t``.

    Returns:
        Process exit code (always 0).
    """
    print(table1_text())
    if args.n is not None:
        print()
        print(boundary_map(args.n, args.t))
    return 0


def cmd_check(args) -> int:
    """``check``: classify one ``(n, ell, t)`` in all four model families.

    Args:
        args: Parsed namespace with ``n``, ``ell``, ``t``.

    Returns:
        Process exit code (always 0).
    """
    n, ell, t = args.n, args.ell, args.t
    rows = [
        ("synchronous, unrestricted", Synchrony.SYNCHRONOUS, False, False,
         "Theorem 3: ell > 3t"),
        ("synchronous, restricted+numerate", Synchrony.SYNCHRONOUS, True,
         True, "Theorem 14: ell > t"),
        ("partially synchronous, unrestricted",
         Synchrony.PARTIALLY_SYNCHRONOUS, False, False,
         "Theorem 13: 2*ell > n + 3t"),
        ("partially synchronous, restricted+numerate",
         Synchrony.PARTIALLY_SYNCHRONOUS, True, True,
         "Theorem 15: ell > t"),
    ]
    print(f"n={n}, ell={ell}, t={t} (PSL bound n > 3t: "
          f"{'met' if n > 3 * t else 'VIOLATED'})")
    for name, synchrony, numerate, restricted, theorem in rows:
        params = SystemParams(n=n, ell=ell, t=t, synchrony=synchrony,
                              numerate=numerate, restricted=restricted)
        verdict = "solvable" if solvable(params) else "unsolvable"
        print(f"  {name:<44} {verdict:<11} ({theorem})")
    return 0


def _delay_timing(args) -> tuple[DelayBased | None, int]:
    """Build the ``run`` subcommand's delay timing model, if requested.

    Args:
        args: Parsed namespace with ``timing``/``delta``/``gst_tick``/
            ``chaos``/``seed``.

    Returns:
        ``(timing, equivalent_gst_round)`` -- ``(None, 0)`` for the
        default round-granular timing.

    Raises:
        ConfigurationError: When delay timing is combined with ``--gst``
            drop schedules (the delay model supplies its own losses).
    """
    def reject_set_flags(pairs, detail):
        set_flags = [flag for flag, value in pairs if value is not None]
        if set_flags:
            raise ConfigurationError(f"{'/'.join(set_flags)} {detail}")

    if args.timing == "rounds":
        reject_set_flags(
            (("--delta", args.delta), ("--gst-tick", args.gst_tick),
             ("--chaos", args.chaos)),
            "only applies with --timing eventual/bounded",
        )
        return None, 0
    if args.gst:
        raise ConfigurationError(
            "--timing eventual/bounded replaces drop schedules with "
            "delay-derived losses; drop --gst"
        )
    delta = 3 if args.delta is None else args.delta
    if args.timing == "eventual":
        policy = EventuallyBoundedDelays(
            delta=delta,
            gst_tick=24 if args.gst_tick is None else args.gst_tick,
            chaos_factor=4 if args.chaos is None else args.chaos,
            seed=args.seed,
        )
    else:  # "bounded": always within delta, bound unknown to the algorithm
        reject_set_flags(
            (("--gst-tick", args.gst_tick), ("--chaos", args.chaos)),
            "only applies with --timing eventual; --timing bounded "
            "delays are always within --delta",
        )
        policy = AlwaysBoundedUnknownDelays(true_delta=delta, seed=args.seed)
    return DelayBased(policy), equivalent_basic_gst(policy)


def cmd_run(args) -> int:
    """``run``: execute one agreement instance and print the verdict.

    Args:
        args: Parsed namespace (model, assignment, attack, drop
            schedule, delay timing, timeline options).

    Returns:
        0 on a clean verdict, 1 on violations, 2 when the
        configuration is unsolvable per the paper.
    """
    params = _params(args)
    problem = BINARY
    if not solvable(params):
        print(f"{params.describe()} is UNSOLVABLE per the paper "
              f"(see `python -m repro check {params.n} {params.ell} "
              f"{params.t}`); try `python -m repro attack` to watch the "
              f"matching lower-bound construction break it.")
        return 2
    timing, delay_gst = _delay_timing(args)
    name, factory, horizon = algorithm_for(params, problem)
    if args.gst:
        horizon = max(horizon, args.gst + horizon)
    if delay_gst:
        horizon += delay_gst

    assignment = (
        random_assignment(params.n, params.ell, args.seed)
        if args.assignment == "random"
        else balanced_assignment(params.n, params.ell)
    )
    byzantine = tuple(range(params.n - params.t, params.n))
    proposals = {
        k: k % 2 for k in range(params.n) if k not in byzantine
    }
    adversary = {
        "silent": None,
        "chaos": RandomByzantineAdversary(seed=args.seed),
        "equivocate": EquivocatorAdversary(factory),
    }[args.attack]
    schedule = None
    if args.gst and args.drops == "silence":
        schedule = SilenceUntil(args.gst)
    elif args.gst:
        schedule = RandomDrops(gst=args.gst, p=0.5, seed=args.seed)

    print(f"algorithm: {name} on {params.describe()}")
    print(f"assignment: {assignment.describe()}  byzantine: {byzantine}")
    if timing is not None:
        print(f"timing: {timing.describe()} "
              f"(equivalent basic-model GST round: {delay_gst})")
    result = run_agreement(
        params=params,
        assignment=assignment,
        factory=factory,
        proposals=proposals,
        byzantine=byzantine,
        adversary=adversary,
        drop_schedule=schedule,
        timing=timing,
        max_rounds=horizon,
    )
    print()
    print(result.verdict.summary())
    print(result.metrics.summary())
    if timing is not None:
        last = max((r for r, _s, _q in result.losses), default=None)
        late = (
            f"{len(result.losses)} late messages became basic-model "
            f"losses (last in round {last})"
            if result.losses else "no message was ever late"
        )
        print(f"{result.ticks} network ticks; {late}")
    if args.timeline:
        print()
        print(render_timeline(result.trace, assignment, byzantine,
                              rounds_per_phase=args.phase_ruler))
        print()
        print(render_decision_summary(result.trace, proposals))
    return 0 if result.verdict.ok else 1


def cmd_attack(args) -> int:
    """``attack``: run one lower-bound construction.

    Args:
        args: Parsed namespace with ``construction`` in
            ``fig1``/``fig4``/``mirror`` plus ``n``, ``ell``, ``t``.

    Returns:
        0 when the construction exhibits the paper's violation,
        1 otherwise.
    """
    n, ell, t = args.n, args.ell, args.t
    if args.construction == "fig1":
        spec = EIGSpec(3 * t, t, BINARY, unchecked=True)
        outcome = run_scenario(
            n, t, transform_factory(spec, unchecked=True),
            max_rounds=transform_horizon(spec),
        )
        print(outcome.summary())
        return 0 if outcome.contradiction_exhibited else 1
    if args.construction == "fig4":
        params = _params(args, Synchrony.PARTIALLY_SYNCHRONOUS)

        def factory(ident, value):
            return DLSHomonymProcess(params, BINARY, ident, value,
                                     unchecked=True)

        outcome = run_partition_attack(
            n, ell, t, factory, reference_rounds=dls_horizon(params, 0)
        )
        print(outcome.summary())
        return 0 if outcome.attack_succeeded else 1
    # mirror
    params = SystemParams(
        n=n, ell=ell, t=t, synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        numerate=True, restricted=True,
    )
    outcome = mirror_chain_scan(
        params,
        restricted_factory(params, BINARY, unchecked=True),
        max_rounds=restricted_horizon(params, 0),
    )
    print(outcome.summary())
    return 0 if outcome.impossibility_evidence else 1


def cmd_explore(args) -> int:
    """``explore``: bounded strategy exploration of one configuration.

    Builds the standard exploration scenario for ``(n, ell, t)`` in the
    selected model, searches every strategy in its bounded family, and
    prints the outcome: a violating strategy trace (re-confirmed by a
    replay through the normal execution pipeline) or a bounded
    exhaustiveness certificate with pruning counters.

    Args:
        args: Parsed namespace (model flags, assignment/byzantine/input
            selectors, depth, mode overrides, ``--json``).

    Returns:
        0 when the outcome is consistent with the paper's Table 1
        prediction for the configuration, 1 otherwise.
    """
    from repro.core.problem import BINARY
    from repro.explore import default_scenario, explore, replay_witness

    params = _params(args)
    assignment = (
        stacked_assignment(params.n, params.ell)
        if args.assignment == "stacked"
        else balanced_assignment(params.n, params.ell)
    )
    byzantine = (
        tuple(sorted(set(args.byz))) if args.byz
        else tuple(range(params.n - params.t, params.n))
    )
    if len(byzantine) > params.t:
        raise ConfigurationError(
            f"--byz names {len(byzantine)} slots but t={params.t}; the "
            f"Table 1 prediction (and the consistency verdict) assume at "
            f"most t Byzantine processes"
        )
    correct = tuple(k for k in range(params.n) if k not in set(byzantine))
    proposals = {
        "mixed": {k: pos % 2 for pos, k in enumerate(correct)},
        "zeros": {k: 0 for k in correct},
        "ones": {k: 1 for k in correct},
    }[args.inputs]
    persistent = None
    if args.per_round:
        persistent = False
    elif args.persistent:
        persistent = True

    scenario = default_scenario(
        params,
        assignment=assignment,
        byzantine=byzantine,
        proposals=proposals,
        depth=args.depth,
        problem=BINARY,
        persistent=persistent,
    )
    print(f"exploring {params.describe()}")
    print(f"  algorithm: {scenario.algorithm}, depth {scenario.depth}, "
          f"{'persistent-face' if scenario.persistent_faces else 'per-round'}"
          f" mode, {len(scenario.ghost_plans)} ghosts, "
          f"{len(scenario.cuts)} cut alternatives")
    certificate = explore(scenario)
    print()
    print(certificate.summary())

    if certificate.found_violation:
        result = replay_witness(scenario, certificate.witness)
        print()
        print("witness replayed through the normal engine:")
        print("  " + result.verdict.summary().replace("\n", "\n  "))

    if args.json:
        with open(args.json, "w") as fh:
            fh.write(certificate.to_json() + "\n")
        print(f"certificate written to {args.json}")

    predicted = solvable(params)
    consistent = certificate.consistent_with(predicted)
    print()
    if consistent:
        verdict = "consistent"
    elif predicted:
        # A violation inside the solvable region falsifies the paper
        # (or, far more likely, the implementation).
        verdict = "INCONSISTENT (violation inside the solvable region)"
    else:
        verdict = (
            "inconclusive (no violation in this bounded family; widen "
            "the scope, e.g. --inputs mixed or a larger --depth)"
        )
    print(f"paper predicts {'solvable' if predicted else 'unsolvable'}: "
          f"{verdict}")
    return 0 if consistent else 1


def cmd_campaign(args) -> int:
    """``campaign``: validate the Table 1 battery via the campaign engine.

    Runs the full cell/workload grid through
    :func:`repro.experiments.campaign.run_campaign` -- parallel across
    ``--workers`` processes, resumable from the on-disk unit cache, and
    shardable across machines -- then prints the empirical Table 1 grid
    and writes the JSON/Markdown reports.

    Args:
        args: Parsed namespace (``workers``, ``seed``, ``full``,
            ``shard``, ``resume``, ``cache_dir``, ``report``,
            ``markdown``, ``verbose``).

    Returns:
        0 when every evaluated cell is consistent with the paper,
        1 otherwise.
    """
    shard = parse_shard(args.shard) if args.shard is not None else None
    cache_dir = args.cache_dir
    if args.resume and cache_dir is None:
        cache_dir = ".campaign-cache"
    cache = CampaignCache(cache_dir) if cache_dir else None
    progress = print if args.verbose else None

    if args.explore:
        unit_kind = "explore"
    elif args.delay:
        unit_kind = "delay"
    else:
        unit_kind = "validate"
    report = run_campaign(
        cells=None,
        seed=args.seed,
        quick=not args.full,
        workers=args.workers,
        cache=cache,
        resume=args.resume,
        shard=shard,
        progress=progress,
        unit_kind=unit_kind,
    )

    cells = report.cell_results()
    print(cell_grid_report(cells))
    if not report.all_consistent:
        print()
        print(failures_report(cells))
    print()
    print(f"{len(report.unit_results)} units "
          f"({report.executed} executed, {report.cached} cached) "
          f"on {report.workers} worker(s) in {report.elapsed_s:.2f}s")

    if args.report:
        with open(args.report, "w") as fh:
            fh.write(report.to_json())
        print(f"JSON report written to {args.report}")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(report.to_markdown() + "\n")
        print(f"Markdown report written to {args.markdown}")
    return 0 if report.all_consistent else 1


def _atlas_lattice(args):
    """Build the sweep lattice from the atlas CLI flags."""
    import dataclasses

    from repro.atlas import default_lattice, quick_lattice

    if args.quick:
        lattice = quick_lattice()
        if args.campaign_max_n is not None:
            lattice = dataclasses.replace(
                lattice, campaign_max_n=args.campaign_max_n
            )
        return lattice
    return default_lattice(
        n_max=args.max_n,
        t_values=tuple(args.t),
        explore_max_n=args.explore_max_n,
        campaign_max_n=args.campaign_max_n,
    )


def _atlas_sweep(args) -> int:
    """The ``atlas sweep`` action (also the default with no action)."""
    from repro.atlas import (
        AtlasLog,
        aggregate,
        known_violation_fixture,
        render_json,
        render_markdown,
        run_atlas,
    )
    from repro.core.errors import AtlasConflict

    lattice = _atlas_lattice(args)
    shard = parse_shard(args.shard) if args.shard is not None else None
    log_path = args.log
    if shard is not None and log_path == "atlas.jsonl":
        # The canonical per-shard log name; merge fuses them back into
        # the unsharded atlas.jsonl.
        log_path = f"atlas-{shard[0]}-of-{shard[1]}.jsonl"
    cache_dir = args.cache_dir
    if args.resume and cache_dir is None:
        cache_dir = ".atlas-cache"
    cache = CampaignCache(cache_dir) if cache_dir else None

    inject = {}
    if args.inject_conflict:
        target = next(
            (cell.label for cell in lattice.cells()
             if solvable(cell.params)),
            None,
        )
        if target is None:
            raise ConfigurationError(
                "--inject-conflict needs a predicted-solvable cell in the "
                "lattice; widen --max-n"
            )
        inject[target] = [known_violation_fixture()]
        print(f"injecting known-violation fixture into solvable cell "
              f"{target!r}")

    stripe = f" (shard {shard[0]}/{shard[1]})" if shard else ""
    print(f"atlas over {lattice.describe()}{stripe}")
    try:
        outcome = run_atlas(
            lattice,
            log_path=log_path,
            seed=args.seed,
            quick=not args.full,
            workers=args.workers,
            cache=cache,
            resume=args.resume,
            inject=inject,
            progress=print if args.verbose else None,
            shard=shard,
        )
    except AtlasConflict as exc:
        print(f"ATLAS CONFLICT (hard error): {exc}", file=sys.stderr)
        print(f"partial rows remain in {log_path}; the conflicting cell "
              f"was not recorded", file=sys.stderr)
        return 1

    agg = aggregate(AtlasLog(log_path).rows())
    print(outcome.summary())
    for (synchrony, numerate), tally in sorted(agg.families.items()):
        name = (f"{synchrony:<5} "
                f"{'numerate' if numerate else 'innumerate'}")
        counts = ", ".join(f"{c} {v}" for v, c in sorted(tally.items()))
        print(f"  {name:<18} {counts}")
    coverage = (
        "every cell carries non-symbolic evidence"
        if not agg.symbolic_only
        else f"{len(agg.symbolic_only)} cells are symbolic-only"
    )
    print(f"{coverage}; {len(agg.conflicts)} CONFLICT cells")
    print(f"per-cell provenance streamed to {log_path}")

    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(render_markdown(agg, lattice.describe(), log_path)
                     + "\n")
        print(f"Markdown atlas written to {args.markdown}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(render_json(agg, lattice.describe(), log_path) + "\n")
        print(f"JSON atlas written to {args.json}")
    return 0 if agg.ok else 1


def _atlas_merge(args) -> int:
    """The ``atlas merge`` action: fuse shard logs canonically."""
    from repro.atlas import merge_shards
    from repro.core.errors import AtlasConflict, AtlasMergeError

    if not args.inputs:
        raise ConfigurationError(
            "atlas merge needs at least one shard log, e.g. "
            "`python -m repro atlas merge atlas-*-of-3.jsonl --out "
            "atlas.jsonl`"
        )
    try:
        outcome = merge_shards(args.inputs, args.out)
    except AtlasConflict as exc:
        print(f"ATLAS CONFLICT at merge time (hard error): {exc}",
              file=sys.stderr)
        for row in exc.rows:
            print(f"  provenance row: {canonical_json(row)}",
                  file=sys.stderr)
        return 1
    except AtlasMergeError as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 1
    print(outcome.summary())
    return 0 if outcome.ok else 1


def _atlas_render(args) -> int:
    """The ``atlas render`` action: cursor-backed incremental re-render."""
    from repro.atlas import (
        aggregate_incremental,
        render_json,
        render_markdown,
    )

    cursor = args.cursor or f"{args.log}.cursor.json"
    agg, new_rows, incremental = aggregate_incremental(args.log, cursor)
    mode = "incremental" if incremental else "full refold"
    print(f"rendered {agg.cells} cells from {args.log} "
          f"({mode}: {new_rows} rows folded this call; cursor {cursor})")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(render_markdown(agg, f"rows of {args.log}", args.log)
                     + "\n")
        print(f"Markdown atlas written to {args.markdown}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(render_json(agg, f"rows of {args.log}", args.log)
                     + "\n")
        print(f"JSON atlas written to {args.json}")
    return 0 if agg.ok else 1


def _atlas_serve(args) -> int:
    """The ``atlas serve`` action: bind the stdlib query service."""
    from repro.atlas import serve_atlas

    server = serve_atlas(
        args.log, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    print(f"serving {args.log} ({len(server.index.rows)} cells, "
          f"etag {server.index.etag[:12]}...) on http://{host}:{port}")
    print("routes: /health /cells /cell/<unit_id> /boundary/<n>/<t>")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def cmd_atlas(args) -> int:
    """``atlas``: the sharded, mergeable, queryable solvability atlas.

    Four actions share the subcommand:

    * ``sweep`` (the default) walks the ``(n, t, ell)`` x model lattice
      through :func:`repro.atlas.driver.run_atlas` -- campaign-pooled,
      unit-cached, resumable, optionally one ``--shard`` stripe --
      streaming one provenance row per cell into the JSONL log and
      rendering the machine-derived Table 1;
    * ``merge`` fuses per-shard logs into the canonical ``atlas.jsonl``
      (byte-identical to an unsharded sweep, conflicts are hard
      errors);
    * ``render`` re-renders a log incrementally via a persisted cursor
      (O(new rows));
    * ``serve`` binds the stdlib JSON query service over a fused log.

    Args:
        args: Parsed namespace (``action`` plus the flags of the
            selected action).

    Returns:
        0 on success, 1 on conflicts/gaps, 2 on configuration errors.
    """
    return {
        "sweep": _atlas_sweep,
        "merge": _atlas_merge,
        "render": _atlas_render,
        "serve": _atlas_serve,
    }[args.action](args)


def cmd_soak(args) -> int:
    """``soak``: sustained adversarial agreement traffic on the kernel.

    Drives the deterministic soak stream of a mixture profile through
    :func:`repro.soak.driver.run_soak` -- batched kernels, the campaign
    pool and unit cache, and a torn-line-safe JSONL metrics log with
    checkpointed cumulative counters.  ``--quick`` selects the quick
    profile with the standard 10k-instance smoke budget; kill the
    process at any point and rerun with ``--resume`` to continue to a
    byte-identical log.

    Args:
        args: Parsed namespace (``profile``, ``instances``,
            ``duration``, ``window``, ``workers``, ``seed``,
            ``resume``, ``cache_dir``, ``log``, ``report``,
            ``verbose``, ``quick``).

    Returns:
        0 when every instance satisfied agreement, 1 on any violation.
    """
    from repro.soak import PROFILES, run_soak

    profile = args.profile
    instances = args.instances
    if args.quick:
        profile = "quick"
        if instances is None and args.duration is None:
            instances = 10_000
    if instances is None and args.duration is None:
        raise ConfigurationError(
            "pass an --instances or --duration budget (or --quick for "
            "the standard 10k-instance smoke run)"
        )
    if profile not in PROFILES:
        known = ", ".join(sorted(PROFILES))
        raise ConfigurationError(
            f"unknown soak profile {profile!r} (profiles: {known})"
        )

    cache_dir = args.cache_dir
    if args.resume and cache_dir is None:
        cache_dir = ".soak-cache"
    cache = CampaignCache(cache_dir) if cache_dir else None

    budget = (
        f"{instances} instances" if instances is not None
        else f"{args.duration:g}s"
    )
    print(f"soak farm: profile={profile} seed={args.seed} budget={budget} "
          f"window={args.window} workers={args.workers}")
    outcome = run_soak(
        profile,
        seed=args.seed,
        instances=instances,
        duration=args.duration,
        window=args.window,
        workers=args.workers,
        cache=cache,
        resume=args.resume,
        log_path=args.log,
        progress=print if args.verbose else None,
    )
    print(outcome.summary())
    print(f"per-instance metrics streamed to {outcome.log_path}")
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(canonical_json(
                {
                    "schema": "soak-report/1",
                    "profile": outcome.profile,
                    "seed": outcome.seed,
                    "window": outcome.window,
                    "budget": outcome.budget,
                    "instances": outcome.instances,
                    "ok": outcome.ok,
                    "violations": outcome.violations,
                    "rounds": outcome.rounds,
                    "messages": outcome.messages,
                    "losses": outcome.losses,
                    "passed": outcome.passed,
                }
            ) + "\n")
        print(f"JSON report written to {args.report}")
    if not outcome.passed:
        print(f"SOAK FAILED: {outcome.violations} agreement violations "
              f"(grep the log for \"ok\": false)", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser with all subcommands.

    Returns:
        The configured :class:`argparse.ArgumentParser`.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Byzantine Agreement with Homonyms (PODC 2011) "
                    "-- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="print Table 1 and a boundary map")
    p.add_argument("--n", type=int, default=None,
                   help="also print the per-ell map for this n")
    p.add_argument("--t", type=int, default=1)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("check", help="classify one (n, ell, t)")
    p.add_argument("n", type=int)
    p.add_argument("ell", type=int)
    p.add_argument("t", type=int)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("run", help="execute one agreement instance")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--ell", type=int, required=True)
    p.add_argument("--t", type=int, required=True)
    p.add_argument("--model", choices=("sync", "psync"), default="psync")
    p.add_argument("--numerate", action="store_true")
    p.add_argument("--restricted", action="store_true")
    p.add_argument("--assignment", choices=("balanced", "random"),
                   default="balanced")
    p.add_argument("--attack", choices=("silent", "chaos", "equivocate"),
                   default="chaos")
    p.add_argument("--gst", type=int, default=0,
                   help="drop messages before this round")
    p.add_argument("--drops", choices=("random", "silence"), default="random")
    p.add_argument("--timing", choices=("rounds", "eventual", "bounded"),
                   default="rounds",
                   help="execution timing model: lock-step rounds "
                        "(default), eventually-bounded delays (known "
                        "delta honoured from --gst-tick on), or "
                        "always-bounded delays of unknown bound -- the "
                        "delay models run on the same kernel with late "
                        "arrivals materialised as basic-model losses")
    p.add_argument("--delta", type=int, default=None,
                   help="delay bound in ticks (delay timing only; "
                        "default 3)")
    p.add_argument("--gst-tick", type=int, default=None,
                   help="global stabilisation tick for --timing eventual "
                        "(default 24)")
    p.add_argument("--chaos", type=int, default=None,
                   help="pre-GST delay stretch factor for --timing "
                        "eventual (default 4)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeline", action="store_true",
                   help="render the ASCII execution timeline")
    p.add_argument("--phase-ruler", type=int, default=8,
                   help="rounds per phase for the timeline ruler")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("attack", help="run a lower-bound construction")
    p.add_argument("construction", choices=("fig1", "fig4", "mirror"))
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--ell", type=int, default=0)
    p.add_argument("--t", type=int, required=True)
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser(
        "explore",
        help="bounded adversary-strategy exploration of one configuration",
    )
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--ell", type=int, required=True)
    p.add_argument("--t", type=int, required=True)
    p.add_argument("--model", choices=("sync", "psync"), default="sync")
    p.add_argument("--numerate", action="store_true")
    p.add_argument("--restricted", action="store_true")
    p.add_argument("--assignment", choices=("balanced", "stacked"),
                   default="balanced")
    p.add_argument("--byz", type=int, nargs="*", default=None,
                   metavar="SLOT", help="Byzantine slot indices "
                   "(default: the last t slots)")
    p.add_argument("--inputs", choices=("mixed", "zeros", "ones"),
                   default="mixed")
    p.add_argument("--depth", type=int, default=None,
                   help="round horizon (default: model-specific)")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--per-round", action="store_true",
                      help="branch every round (synchronous default)")
    mode.add_argument("--persistent", action="store_true",
                      help="commit faces per partition block for the "
                           "whole run (partially synchronous default)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the certificate JSON here")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "campaign",
        help="validate the Table 1 battery via the parallel campaign engine",
    )
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (<=1 runs inline)")
    p.add_argument("--seed", type=int, default=0,
                   help="battery seed shared by every unit")
    p.add_argument("--full", action="store_true",
                   help="run the full battery instead of the quick one")
    p.add_argument("--shard", default=None, metavar="INDEX/COUNT",
                   help="run only this stripe of the unit grid")
    p.add_argument("--resume", action="store_true",
                   help="skip units already present in the cache")
    p.add_argument("--cache-dir", default=None,
                   help="unit cache directory (default .campaign-cache "
                        "when --resume is set)")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write the JSON report here")
    p.add_argument("--markdown", default=None, metavar="PATH",
                   help="write the Markdown report here")
    p.add_argument("--verbose", action="store_true",
                   help="print one line per finished unit")
    family = p.add_mutually_exclusive_group()
    family.add_argument("--explore", action="store_true",
                        help="run the bounded strategy explorer over the "
                             "tightness frontier instead of the validation "
                             "battery")
    family.add_argument("--delay", action="store_true",
                        help="run the delay-model workload family instead: "
                             "every partially synchronous solvable cell "
                             "over the kernel's DelayBased timing models "
                             "(punctual and eventually-bounded delay "
                             "policies), late arrivals materialised as "
                             "basic-model losses")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "atlas",
        help="evidence-fused solvability sweep over the (n, t, ell) "
             "x model lattice -- shardable, mergeable, queryable",
    )
    p.add_argument("action", nargs="?", default="sweep",
                   choices=("sweep", "merge", "render", "serve"),
                   help="sweep the lattice (default), merge shard logs "
                        "into the canonical atlas.jsonl, re-render a "
                        "log incrementally, or serve the fused log as "
                        "a JSON query API")
    p.add_argument("inputs", nargs="*", metavar="SHARD_LOG",
                   help="shard logs to fuse (merge action only)")
    p.add_argument("--quick", action="store_true",
                   help="sweep the small CI lattice (n=3..5, t=1)")
    p.add_argument("--max-n", type=int, default=6,
                   help="largest n of the default lattice (ignored "
                        "with --quick)")
    p.add_argument("--t", type=int, nargs="+", default=[1],
                   help="fault budgets to sweep (ignored with --quick)")
    p.add_argument("--explore-max-n", type=int, default=4,
                   help="largest n getting explorer evidence (ignored "
                        "with --quick; restricted+numerate cells are "
                        "always outside explorer scope)")
    p.add_argument("--campaign-max-n", type=int, default=None,
                   help="campaign cost envelope: cells with larger n "
                        "skip the empirical workloads and carry an "
                        "explicit budget-skipped evidence note instead "
                        "(default: no envelope)")
    p.add_argument("--shard", default=None, metavar="INDEX/COUNT",
                   help="sweep only this stripe of the lattice; the "
                        "default log becomes atlas-INDEX-of-COUNT.jsonl")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (<=1 runs inline)")
    p.add_argument("--seed", type=int, default=0,
                   help="battery seed shared by every cell")
    p.add_argument("--full", action="store_true",
                   help="run the full workload batteries instead of the "
                        "quick ones")
    p.add_argument("--resume", action="store_true",
                   help="keep the valid prefix of the existing log and "
                        "reuse the unit cache")
    p.add_argument("--cache-dir", default=None,
                   help="unit cache directory (default .atlas-cache "
                        "when --resume is set)")
    p.add_argument("--log", default="atlas.jsonl", metavar="PATH",
                   help="streaming JSONL result log (one row per cell)")
    p.add_argument("--out", default="atlas.jsonl", metavar="PATH",
                   help="merge action: destination for the fused "
                        "canonical log")
    p.add_argument("--cursor", default=None, metavar="PATH",
                   help="render action: cursor sidecar (default "
                        "LOG.cursor.json)")
    p.add_argument("--host", default="127.0.0.1",
                   help="serve action: bind address")
    p.add_argument("--port", type=int, default=8008,
                   help="serve action: bind port (0 picks an ephemeral "
                        "one)")
    p.add_argument("--markdown", default=None, metavar="PATH",
                   help="write the Markdown atlas here")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the JSON atlas here")
    p.add_argument("--inject-conflict", action="store_true",
                   help="seed a known-violation witness into a solvable "
                        "cell to demonstrate that conflicts fail the run")
    p.add_argument("--verbose", action="store_true",
                   help="print one line per fused cell (sweep) or per "
                        "request (serve)")
    p.set_defaults(func=cmd_atlas)

    p = sub.add_parser(
        "soak",
        help="sustained adversarial agreement traffic on the execution "
             "kernel (the soak farm)",
    )
    p.add_argument("--quick", action="store_true",
                   help="quick profile with the standard 10k-instance "
                        "smoke budget")
    p.add_argument("--profile", default="standard",
                   help="mixture profile (default: standard; --quick "
                        "overrides to quick)")
    p.add_argument("--instances", type=int, default=None,
                   help="total instance budget")
    p.add_argument("--duration", type=float, default=None,
                   help="wall-clock budget in seconds (checked between "
                        "scheduling waves)")
    p.add_argument("--window", type=int, default=250,
                   help="instances per window (checkpoint cadence and "
                        "pool unit of work)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (<=1 runs inline)")
    p.add_argument("--seed", type=int, default=0,
                   help="farm seed fixing the whole instance stream")
    p.add_argument("--resume", action="store_true",
                   help="keep the valid prefix of the existing log and "
                        "reuse the unit cache")
    p.add_argument("--cache-dir", default=None,
                   help="window unit cache directory (default "
                        ".soak-cache when --resume is set)")
    p.add_argument("--log", default="soak.jsonl", metavar="PATH",
                   help="streaming JSONL metrics log (one row per "
                        "instance plus one checkpoint row per window)")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write a JSON summary report here")
    p.add_argument("--verbose", action="store_true",
                   help="print one line per flushed window")
    p.set_defaults(func=cmd_soak)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Args:
        argv: Argument vector (defaults to ``sys.argv[1:]``).

    Returns:
        The exit code of the selected subcommand (2 on configuration
        errors such as inconsistent parameters or a malformed
        ``--shard``).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `python -m repro ... | head`
        return 0
    except OSError as exc:  # e.g. unwritable --report path
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
