"""Reusable Byzantine strategies.

These are the attack library used for fuzzing the algorithms near their
bounds (Table 1's "solvable" cells must survive every strategy here)
and as building blocks for the paper-specific constructions.

Most interesting strategies run *correct algorithm instances* inside the
adversary -- a Byzantine process pretending to be a correct process with
a different input, crashing mid-run, or showing different faces to
different recipients.  :class:`SimulatedCorrectAdversary` provides the
shared machinery: it replays the engine's delivery rules to feed the
internal instances (a Byzantine process is full-information, so it sees
every message regardless of topology or drop schedules).
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, Mapping, Sequence

from repro.core.identity import IdentityAssignment
from repro.core.messages import Inbox, Message
from repro.core.params import SystemParams
from repro.sim.adversary import Adversary, AdversaryView, Emission
from repro.sim.process import Process

#: Factory building the correct-process object an adversary imitates:
#: ``(identifier, proposal) -> Process``.
ImitationFactory = Callable[[int, Hashable], Process]


class SimulatedCorrectAdversary(Adversary):
    """Base class: each Byzantine slot runs internal correct instances.

    Subclasses configure, per slot, a list of ``(proposal, factory)``
    pairs via :meth:`instance_plan` and turn the instances' current
    payloads into per-recipient emissions via :meth:`route`.

    The internal instances are driven exactly like engine processes:
    ``compose(r)`` happens while the adversary answers round ``r``, and
    the round-``r`` inbox (reconstructed from the trace, ignoring drops
    and topology -- the adversary hears everything) is delivered when
    round ``r + 1`` is being answered.
    """

    def __init__(self, factory: ImitationFactory) -> None:
        self._factory = factory
        self._instances: dict[int, list[Process]] = {}
        self._params: SystemParams | None = None
        self._assignment: IdentityAssignment | None = None
        self._proposals: Mapping[int, Hashable] = {}

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def instance_plan(self, slot: int, ident: int) -> Sequence[Hashable]:
        """Proposals of the internal instances for ``slot`` (default: one,
        proposing the domain-default-like value 0)."""
        return (0,)

    def route(
        self,
        view: AdversaryView,
        slot: int,
        payloads: Sequence[Hashable],
    ) -> Emission:
        """Map the instances' payloads to recipients.  Default: first
        instance's payload to everybody (a perfectly obedient imposter)."""
        if not payloads or payloads[0] is None:
            return {}
        return {q: (payloads[0],) for q in range(view.params.n)}

    # ------------------------------------------------------------------
    # Adversary interface
    # ------------------------------------------------------------------
    def setup(
        self,
        params: SystemParams,
        assignment: IdentityAssignment,
        byzantine: tuple[int, ...],
        proposals: Mapping[int, Hashable],
    ) -> None:
        self._params = params
        self._assignment = assignment
        self._proposals = dict(proposals)
        self._instances = {}
        for slot in byzantine:
            ident = assignment.identifier_of(slot)
            self._instances[slot] = [
                self._factory(ident, proposal)
                for proposal in self.instance_plan(slot, ident)
            ]

    def emissions(self, view: AdversaryView) -> Mapping[int, Emission]:
        if view.round_no > 0:
            self._deliver_previous_round(view)
        result: dict[int, Emission] = {}
        for slot in view.byzantine:
            payloads = [
                inst.compose(view.round_no) for inst in self._instances[slot]
            ]
            emission = self.route(view, slot, payloads)
            if emission:
                result[slot] = emission
        return result

    # ------------------------------------------------------------------
    # Internal delivery replay
    # ------------------------------------------------------------------
    def _deliver_previous_round(self, view: AdversaryView) -> None:
        prev = view.round_no - 1
        record = view.trace.record(prev)
        for slot, instances in self._instances.items():
            inbox = self._rebuild_inbox(view, record, slot)
            for inst in instances:
                inst.deliver(prev, inbox)

    def _rebuild_inbox(self, view: AdversaryView, record, slot: int) -> Inbox:
        assignment = view.assignment
        messages = [
            Message(assignment.identifier_of(k), payload)
            for k, payload in record.payloads.items()
        ]
        for b, per_recipient in record.emissions.items():
            for payload in per_recipient.get(slot, ()):
                messages.append(Message(assignment.identifier_of(b), payload))
        return Inbox(messages, numerate=view.params.numerate)


class CrashAdversary(SimulatedCorrectAdversary):
    """Behaves correctly (with a chosen input) then goes silent forever.

    ``crash_round`` is the first silent round; ``proposal`` is the input
    the impostor pretends to have.
    """

    def __init__(
        self, factory: ImitationFactory, crash_round: int, proposal: Hashable = 0
    ) -> None:
        super().__init__(factory)
        self.crash_round = int(crash_round)
        self.proposal = proposal

    def instance_plan(self, slot: int, ident: int) -> Sequence[Hashable]:
        return (self.proposal,)

    def route(self, view, slot, payloads) -> Emission:
        if view.round_no >= self.crash_round:
            return {}
        return super().route(view, slot, payloads)


class InputFlipAdversary(SimulatedCorrectAdversary):
    """Runs the correct algorithm with an adversarially chosen input.

    The strongest "semantic" attack that is fully protocol-compliant; a
    correct algorithm must absorb it (this is how validity is stressed:
    all correct processes propose ``v`` while impostors propose ``w``).
    """

    def __init__(self, factory: ImitationFactory, proposal: Hashable) -> None:
        super().__init__(factory)
        self.proposal = proposal

    def instance_plan(self, slot: int, ident: int) -> Sequence[Hashable]:
        return (self.proposal,)


class EquivocatorAdversary(SimulatedCorrectAdversary):
    """Two-faced: runs two correct instances with different inputs and
    shows one face to even-indexed recipients, the other to odd.

    Legal even in the restricted model (one message per recipient per
    round); it is the canonical attack that the voting superround of
    Figure 5 and the echo thresholds of the broadcast primitives exist
    to defuse.
    """

    def __init__(
        self,
        factory: ImitationFactory,
        proposal_even: Hashable = 0,
        proposal_odd: Hashable = 1,
    ) -> None:
        super().__init__(factory)
        self.proposal_even = proposal_even
        self.proposal_odd = proposal_odd

    def instance_plan(self, slot: int, ident: int) -> Sequence[Hashable]:
        return (self.proposal_even, self.proposal_odd)

    def route(self, view, slot, payloads) -> Emission:
        emission: dict[int, tuple[Hashable, ...]] = {}
        for q in range(view.params.n):
            payload = payloads[q % 2]
            if payload is not None:
                emission[q] = (payload,)
        return emission


class DuplicatorAdversary(SimulatedCorrectAdversary):
    """Sends *both* faces to *every* recipient, every round.

    Exercises the unrestricted-model power the paper's lower bounds
    exploit (multiple messages to one recipient in one round).  Using it
    under restricted params raises
    :class:`~repro.core.errors.AdversaryViolation` -- by design.
    """

    def __init__(
        self,
        factory: ImitationFactory,
        proposal_a: Hashable = 0,
        proposal_b: Hashable = 1,
    ) -> None:
        super().__init__(factory)
        self.proposal_a = proposal_a
        self.proposal_b = proposal_b

    def instance_plan(self, slot: int, ident: int) -> Sequence[Hashable]:
        return (self.proposal_a, self.proposal_b)

    def route(self, view, slot, payloads) -> Emission:
        batch = tuple(p for p in payloads if p is not None)
        if not batch:
            return {}
        return {q: batch for q in range(view.params.n)}


class RandomByzantineAdversary(Adversary):
    """Seeded chaos: per round and slot, pick a strategy at random.

    Strategies: silence; *mimic* (replay a random correct process's
    current payload under our identifier -- rushing); *stale* (replay a
    random payload from an earlier round); *garbage* (a random small
    tuple).  Under unrestricted parameters each recipient may get up to
    ``burst`` messages; under restricted parameters exactly one.

    Deterministic for a fixed seed, so failures shrink and replay.
    """

    STRATEGIES = ("silent", "mimic", "stale", "garbage")

    def __init__(self, seed: int = 0, burst: int = 2) -> None:
        # reprolint: disable=RL003 -- int-typed seed (salt-free); the
        # stream is pinned by replay/equivalence tests and cached
        # campaign records: reseeding it is a CACHE_SCHEMA bump.
        self._rng = random.Random(seed)
        self.seed = seed
        self.burst = max(1, int(burst))

    def emissions(self, view: AdversaryView) -> Mapping[int, Emission]:
        result: dict[int, Emission] = {}
        for slot in view.byzantine:
            emission: dict[int, tuple[Hashable, ...]] = {}
            for q in range(view.params.n):
                count = 1
                if not view.params.restricted and self._rng.random() < 0.3:
                    count = self._rng.randint(2, self.burst + 1)
                batch = tuple(
                    p
                    for p in (
                        self._one_payload(view) for _ in range(count)
                    )
                    if p is not None
                )
                if batch:
                    emission[q] = batch
            if emission:
                result[slot] = emission
        return result

    def _one_payload(self, view: AdversaryView) -> Hashable:
        strategy = self._rng.choice(self.STRATEGIES)
        if strategy == "silent":
            return None
        if strategy == "mimic":
            payloads = sorted(view.correct_payloads.items())
            if not payloads:
                return None
            return self._rng.choice(payloads)[1]
        if strategy == "stale":
            if len(view.trace) == 0:
                return None
            record = view.trace.record(self._rng.randrange(len(view.trace)))
            payloads = sorted(record.payloads.items())
            if not payloads:
                return None
            return self._rng.choice(payloads)[1]
        # garbage
        depth = self._rng.randint(0, 2)
        return self._garbage(depth)

    def _garbage(self, depth: int) -> Hashable:
        if depth <= 0:
            return self._rng.choice(
                (0, 1, -1, "x", "lock", "ack", ("decide", 0), 42)
            )
        return tuple(self._garbage(depth - 1) for _ in range(self._rng.randint(1, 3)))


def standard_attack_suite(
    factory: ImitationFactory, restricted: bool, seeds: Sequence[int] = (1, 2, 3)
) -> list[tuple[str, Adversary]]:
    """The named attacks every "solvable" configuration must survive."""
    attacks: list[tuple[str, Adversary]] = [
        ("silent", _silent()),
        ("crash@3", CrashAdversary(factory, crash_round=3, proposal=1)),
        ("flip0", InputFlipAdversary(factory, proposal=0)),
        ("flip1", InputFlipAdversary(factory, proposal=1)),
        ("equivocator", EquivocatorAdversary(factory)),
    ]
    if not restricted:
        attacks.append(("duplicator", DuplicatorAdversary(factory)))
    attacks.extend(
        (f"random-{seed}", RandomByzantineAdversary(seed=seed)) for seed in seeds
    )
    return attacks


def _silent() -> Adversary:
    from repro.sim.adversary import NullAdversary

    return NullAdversary()
