"""Lemma 17 / Proposition 16: the mirror adversary (``ell <= t``).

Against *restricted* Byzantine processes with *numerate* receivers the
paper shows ``ell > t`` is necessary by a valency argument whose engine
is Lemma 17: fix one Byzantine process per identifier (possible when
``ell <= t``).  If two configurations ``C`` and ``C'`` differ in the
state of a single correct process ``p`` (identifier ``i``), then the
Byzantine process ``b`` holding identifier ``i`` can *mirror* ``p``:

* from ``C``, ``b`` runs ``p``'s algorithm starting from ``p``'s state
  in ``C'`` (all other Byzantine processes silent);
* from ``C'``, ``b`` runs it from ``p``'s state in ``C``.

Every correct process other than ``p`` then receives identical message
*multisets* in both executions -- ``p`` and ``b`` have the same
identifier and simply swap roles -- so it must decide the same value.
Chaining configurations that flip one input at a time from all-0 to
all-1 yields a multivalent configuration, and iterating the argument
an execution that never decides: agreement with ``ell <= t`` is
impossible.

This module makes the lemma executable:

* :class:`MirrorAdversary` -- one Byzantine slot runs the correct
  algorithm with a *mirror input*, the rest stay silent;
* :func:`run_mirror_pair` -- runs the two adjacent executions and
  reports whether non-``p`` correct processes were indeed unable to
  distinguish them (their decisions match);
* :func:`mirror_chain_scan` -- walks the whole input chain for an
  algorithm under test and returns the violation that the theorem
  guarantees must exist somewhere along it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.adversaries.generic import SimulatedCorrectAdversary
from repro.core.errors import ConfigurationError
from repro.core.identity import IdentityAssignment
from repro.core.params import SystemParams
from repro.sim.adversary import Emission
from repro.sim.process import Process
from repro.sim.runner import ExecutionResult, run_execution

AlgorithmFactory = Callable[[int, Hashable], Process]


class MirrorAdversary(SimulatedCorrectAdversary):
    """One Byzantine slot faithfully runs the algorithm with another input.

    ``mirror_slot`` is the Byzantine slot that mirrors; ``mirror_input``
    is the input it pretends to have.  All other Byzantine slots stay
    silent.  The mirror is protocol-compliant, hence legal even in the
    restricted model.
    """

    def __init__(
        self,
        factory: AlgorithmFactory,
        mirror_slot: int,
        mirror_input: Hashable,
    ) -> None:
        super().__init__(factory)
        self.mirror_slot = int(mirror_slot)
        self.mirror_input = mirror_input

    def instance_plan(self, slot: int, ident: int) -> Sequence[Hashable]:
        if slot == self.mirror_slot:
            return (self.mirror_input,)
        return ()

    def route(self, view, slot, payloads) -> Emission:
        if slot != self.mirror_slot or not payloads or payloads[0] is None:
            return {}
        return {q: (payloads[0],) for q in range(view.params.n)}


@dataclass(frozen=True)
class MirrorPairReport:
    """Result of running two Lemma 17-adjacent executions."""

    flipped_slot: int  # the correct process whose input differs
    mirror_slot: int  # the Byzantine homonym that mirrors it
    run_low: ExecutionResult  # flipped slot has input 0, mirror input 1
    run_high: ExecutionResult  # flipped slot has input 1, mirror input 0
    indistinguishable: bool  # non-flipped correct processes agree across runs

    def summary(self) -> str:
        status = "indistinguishable" if self.indistinguishable else "DIVERGED"
        return (
            f"mirror pair (flip p{self.flipped_slot} / mirror b{self.mirror_slot}): "
            f"{status}; low={self.run_low.verdict.decisions} "
            f"high={self.run_high.verdict.decisions}"
        )


def _chain_setup(n: int, ell: int, t: int) -> tuple[IdentityAssignment, list[int], list[int]]:
    """Fixed Byzantine set: one process per identifier; correct rest.

    Returns ``(assignment, byzantine slots, correct slots)``; the
    Byzantine slot with identifier ``i`` is slot ``i - 1``; correct
    slots follow in identifier round-robin so every identifier also has
    at least one correct holder.
    """
    if ell > t:
        raise ConfigurationError(
            f"the mirror construction needs ell <= t, got ell={ell}, t={t}"
        )
    if n <= ell:
        raise ConfigurationError("need at least one correct process (n > ell)")
    ids = list(range(1, ell + 1))  # Byzantine slots, one per identifier
    correct_count = n - ell
    ids.extend((j % ell) + 1 for j in range(correct_count))
    assignment = IdentityAssignment(ell, tuple(ids))
    byzantine = list(range(ell))
    correct = list(range(ell, n))
    return assignment, byzantine, correct


def run_mirror_pair(
    params: SystemParams,
    factory: AlgorithmFactory,
    flip_position: int,
    max_rounds: int,
) -> MirrorPairReport:
    """Run the two executions of Lemma 17 around one input flip.

    Configuration ``j`` gives input 1 to the first ``j`` correct slots
    and 0 to the rest; this runs configurations ``flip_position`` and
    ``flip_position + 1``, with the mirror Byzantine process running the
    flipped process's algorithm from the *other* configuration's input.
    """
    assignment, byzantine, correct = _chain_setup(params.n, params.ell, params.t)
    flipped_slot = correct[flip_position]
    flipped_ident = assignment.identifier_of(flipped_slot)
    mirror_slot = flipped_ident - 1  # the Byzantine holder of that identifier

    def run_one(flip_value: Hashable) -> ExecutionResult:
        processes: list[Process | None] = [None] * params.n
        for pos, slot in enumerate(correct):
            value = 1 if pos < flip_position else 0
            if slot == flipped_slot:
                value = flip_value
            processes[slot] = factory(assignment.identifier_of(slot), value)
        adversary = MirrorAdversary(
            factory, mirror_slot, mirror_input=1 if flip_value == 0 else 0
        )
        return run_execution(
            params=params,
            assignment=assignment,
            processes=processes,
            byzantine=byzantine,
            adversary=adversary,
            max_rounds=max_rounds,
            stop_when_all_decided=True,
            require_termination=True,
        )

    run_low = run_one(0)
    run_high = run_one(1)

    others = [slot for slot in correct if slot != flipped_slot]
    indistinguishable = all(
        run_low.processes[slot].decision == run_high.processes[slot].decision
        for slot in others
    )
    return MirrorPairReport(
        flipped_slot=flipped_slot,
        mirror_slot=mirror_slot,
        run_low=run_low,
        run_high=run_high,
        indistinguishable=indistinguishable,
    )


@dataclass(frozen=True)
class ChainScanOutcome:
    """Aggregate of a full Lemma 21-style configuration-chain scan.

    Two kinds of evidence can surface, matching the two stages of the
    Proposition 16 proof:

    * ``violation_found`` -- a single execution broke validity,
      agreement or termination outright;
    * ``multivalence_witnessed`` -- some *initial configuration* was
      driven to different decision values by the two mirror variants,
      which is exactly how Lemma 21 establishes the existence of a
      multivalent initial configuration (the adversary invisibly
      controls the outcome).  The remainder of the paper's argument --
      extending multivalence forever to kill termination -- is
      non-constructive and not exhibited by finite runs.
    """

    reports: tuple[MirrorPairReport, ...]
    violation_found: bool
    multivalence_witnessed: bool
    detail: str

    @property
    def impossibility_evidence(self) -> bool:
        """True when the scan produced either kind of evidence."""
        return self.violation_found or self.multivalence_witnessed

    def summary(self) -> str:
        lines = [
            "mirror chain scan: "
            f"violation={self.violation_found} "
            f"multivalence={self.multivalence_witnessed} ({self.detail})"
        ]
        lines.extend("  " + r.summary() for r in self.reports)
        return "\n".join(lines)


def mirror_chain_scan(
    params: SystemParams, factory: AlgorithmFactory, max_rounds: int
) -> ChainScanOutcome:
    """Walk the all-0 -> all-1 input chain and surface the contradiction.

    Configuration ``j`` gives input 1 to the first ``j`` correct slots.
    Each adjacent pair ``(C_j, C_{j+1})`` is run with the Lemma 17
    mirror adversaries.  Configuration ``C_j`` (for ``0 < j < last``)
    therefore executes twice -- once with the mirror pretending input 1
    (as the *low* run of pair ``j``) and once pretending input 0 (as the
    *high* run of pair ``j - 1``).  If those two executions decide
    different values, ``C_j`` is multivalent: Lemma 21 exhibited.
    Outright property violations in any run are reported too.
    """
    _assignment, _byz, correct = _chain_setup(params.n, params.ell, params.t)
    reports: list[MirrorPairReport] = []
    violation = False
    detail_parts: list[str] = []
    #: config index -> set of unanimous decision values observed.
    outcomes: dict[int, set] = {}

    def note_outcome(config_index: int, run: ExecutionResult) -> None:
        values = {repr(v) for v in run.verdict.decisions.values()}
        if len(values) == 1:
            outcomes.setdefault(config_index, set()).update(values)

    for position in range(len(correct)):
        report = run_mirror_pair(params, factory, position, max_rounds)
        reports.append(report)
        # Pair `position` runs configuration `position` (low, flip=0)
        # and configuration `position + 1` (high, flip=1).
        note_outcome(position, report.run_low)
        note_outcome(position + 1, report.run_high)
        for name, run in (("low", report.run_low), ("high", report.run_high)):
            if not run.verdict.ok:
                violation = True
                detail_parts.append(
                    f"pair {position} ({name}): "
                    + "; ".join(str(v) for v in run.verdict.violations)
                )

    multivalent = {j for j, values in outcomes.items() if len(values) > 1}
    if multivalent:
        detail_parts.append(
            "multivalent initial configurations (adversary steers the "
            f"decision): {sorted(multivalent)}"
        )
    detail = "; ".join(detail_parts) if detail_parts else (
        "no evidence found (unexpected for ell <= t)"
    )
    return ChainScanOutcome(
        reports=tuple(reports),
        violation_found=violation,
        multivalence_witnessed=bool(multivalent),
        detail=detail,
    )
