"""Byzantine strategies: fuzzing library + the paper's lower-bound constructions."""

from repro.adversaries.clones import (
    CloneFairAdversary,
    CloneReport,
    run_clone_experiment,
)
from repro.adversaries.generic import (
    CrashAdversary,
    DuplicatorAdversary,
    EquivocatorAdversary,
    InputFlipAdversary,
    RandomByzantineAdversary,
    SimulatedCorrectAdversary,
    standard_attack_suite,
)
from repro.adversaries.ghosts import GhostFaceAdversary
from repro.adversaries.mirror import (
    ChainScanOutcome,
    MirrorAdversary,
    MirrorPairReport,
    mirror_chain_scan,
    run_mirror_pair,
)
from repro.adversaries.partition import (
    PartitionLayout,
    PartitionOutcome,
    ReplayAdversary,
    partition_attack_feasible,
    run_partition_attack,
)
from repro.adversaries.scenario import (
    ReferenceScenarioSystem,
    ScenarioOutcome,
    ScenarioSystem,
    ViewReport,
    run_scenario,
)

__all__ = [
    "ChainScanOutcome",
    "CloneFairAdversary",
    "CloneReport",
    "CrashAdversary",
    "DuplicatorAdversary",
    "EquivocatorAdversary",
    "GhostFaceAdversary",
    "InputFlipAdversary",
    "MirrorAdversary",
    "MirrorPairReport",
    "PartitionLayout",
    "PartitionOutcome",
    "RandomByzantineAdversary",
    "ReferenceScenarioSystem",
    "ReplayAdversary",
    "ScenarioOutcome",
    "ScenarioSystem",
    "SimulatedCorrectAdversary",
    "ViewReport",
    "mirror_chain_scan",
    "partition_attack_feasible",
    "run_clone_experiment",
    "run_mirror_pair",
    "run_partition_attack",
    "run_scenario",
    "standard_attack_suite",
]
