"""Theorem 19: clone arguments for innumerate + restricted systems.

If Byzantine senders are restricted *and* receivers are innumerate,
homonym stacks collapse: ``n - ell + 1`` correct processes that share an
identifier, share an input, and receive the same Byzantine messages
behave as indistinguishable *clones* -- they broadcast identical
payloads every round, which innumerate receivers cannot even count.
The whole system is therefore equivalent to an ``ell``-process system
with unique identifiers, so ``ell <= 3t`` remains impossible
(synchronously) and ``2*ell <= n + 3t`` remains the partially
synchronous bound -- restriction buys nothing without numeracy.

This module provides:

* :class:`CloneFairAdversary` -- wraps any adversary so that every
  member of each homonym group receives identical Byzantine messages
  (the premise of the clone argument, and exactly what a restricted
  Byzantine process "playing fair across clones" looks like);
* :func:`run_clone_experiment` -- runs an algorithm on a stacked
  assignment under a clone-fair adversary and verifies the clone
  property: all members of each fully correct group emit identical
  payload streams, round for round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.core.identity import IdentityAssignment, stacked_assignment
from repro.core.params import SystemParams
from repro.sim.adversary import Adversary, AdversaryView, Emission
from repro.sim.partial import DropSchedule
from repro.sim.process import Process
from repro.sim.runner import ExecutionResult, run_execution

AlgorithmFactory = Callable[[int, Hashable], Process]


class CloneFairAdversary(Adversary):
    """Adapter: force an adversary to treat homonym clones identically.

    The wrapped adversary's per-recipient messages are re-routed so all
    members of a homonym group receive what the wrapped adversary
    addressed to the group's *first* member.  Drop schedules must be
    clone-fair too for the clone property to hold; pair this with
    group-symmetric schedules (``NoDrops``, ``SilenceUntil``) in
    experiments.
    """

    def __init__(self, inner: Adversary) -> None:
        self.inner = inner

    def setup(self, params, assignment, byzantine, proposals) -> None:
        self._assignment = assignment
        self.inner.setup(params, assignment, byzantine, proposals)

    def emissions(self, view: AdversaryView) -> Mapping[int, Emission]:
        raw = self.inner.emissions(view)
        groups = view.assignment.groups()
        result: dict[int, Emission] = {}
        for slot, emission in raw.items():
            fair: dict[int, tuple[Hashable, ...]] = {}
            for ident, members in groups.items():
                leader = members[0]
                batch = tuple(emission.get(leader, ()))
                if batch:
                    for q in members:
                        fair[q] = batch
            if fair:
                result[slot] = fair
        return result


@dataclass(frozen=True)
class CloneReport:
    """Outcome of one clone experiment."""

    result: ExecutionResult
    clone_groups: tuple[tuple[int, ...], ...]  # fully correct homonym groups
    clones_identical: bool
    first_divergence: str | None

    def summary(self) -> str:
        status = "identical" if self.clones_identical else "DIVERGED"
        return (
            f"clone experiment: groups={self.clone_groups} -> {status}"
            + (f" ({self.first_divergence})" if self.first_divergence else "")
        )


def run_clone_experiment(
    params: SystemParams,
    factory: AlgorithmFactory,
    adversary: Adversary,
    proposals_by_ident: Mapping[int, Hashable],
    byzantine: tuple[int, ...] = (),
    drop_schedule: DropSchedule | None = None,
    max_rounds: int = 100,
    stacked_id: int = 1,
) -> CloneReport:
    """Run on a maximally stacked assignment and check the clone property.

    Every process proposes the value of its identifier's entry in
    ``proposals_by_ident``, so members of a group share an input by
    construction.  The adversary is wrapped clone-fair.  The clone
    property is checked over the *trace*: in every round, all members of
    each fully correct group must have broadcast the same payload.
    """
    assignment = stacked_assignment(params.n, params.ell, stacked_id=stacked_id)
    byz_set = set(byzantine)
    processes: list[Process | None] = []
    for k in range(params.n):
        if k in byz_set:
            processes.append(None)
            continue
        ident = assignment.identifier_of(k)
        processes.append(factory(ident, proposals_by_ident[ident]))

    result = run_execution(
        params=params,
        assignment=assignment,
        processes=processes,
        byzantine=tuple(sorted(byz_set)),
        adversary=CloneFairAdversary(adversary),
        drop_schedule=drop_schedule,
        max_rounds=max_rounds,
        stop_when_all_decided=True,
        require_termination=True,
    )

    clone_groups = tuple(
        members
        for ident, members in sorted(assignment.groups().items())
        if len(members) > 1 and not byz_set.intersection(members)
    )
    identical = True
    divergence: str | None = None
    for record in result.trace:
        for members in clone_groups:
            payloads = {repr(record.payloads.get(k)) for k in members}
            if len(payloads) > 1:
                identical = False
                divergence = (
                    f"round {record.round_no}, group {members}: {sorted(payloads)}"
                )
                break
        if not identical:
            break

    return CloneReport(
        result=result,
        clone_groups=clone_groups,
        clones_identical=identical,
        first_divergence=divergence,
    )
