"""Ghost faces as standalone adversaries: restricted-visibility imposters.

The bounded strategy explorer's most productive face is the *ghost*
(:mod:`repro.explore.alphabet`): a Byzantine slot runs a private
**correct** instance of the algorithm under test with an adversarially
chosen input and an adversarially restricted view of the network, and
broadcasts whatever that instance would.  A ghost with full visibility
is the classic obedient imposter; a ghost that only hears one side of a
partition is the live core of the Figure 4 construction.

Inside the explorer, ghosts live in a :class:`~repro.explore.alphabet.
GhostBank` driven by the search loop.  The soak farm wants the same
faces as ordinary :class:`~repro.sim.adversary.Adversary` objects it
can mix into sustained traffic, so this module packages one
:class:`~repro.explore.alphabet.GhostPlan` as a
:class:`GhostFaceAdversary` -- the generic simulated-correct machinery
with the delivery replay narrowed to the plan's visibility.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Sequence

from repro.core.messages import Inbox, Message
from repro.adversaries.generic import ImitationFactory, SimulatedCorrectAdversary

if TYPE_CHECKING:  # avoid adversaries <- explore <- harness import cycle
    from repro.explore.alphabet import GhostPlan


class GhostFaceAdversary(SimulatedCorrectAdversary):
    """One ghost plan per Byzantine slot, played as a full adversary.

    Every Byzantine slot runs a private correct instance proposing
    ``plan.proposal``; its inbox replay is restricted to the correct
    slots ``plan.sees`` (plus its own previous broadcast -- the model's
    unconditional self-delivery), exactly the view a
    :class:`~repro.explore.alphabet.GhostBank` ghost gets.  The
    instance's current payload is broadcast to everybody, so emissions
    are restricted-model legal by construction.

    Args:
        factory: ``(identifier, proposal) -> Process`` builder for the
            imitated algorithm.
        plan: The ghost's input and visibility.  ``visible=None`` is
            the obedient imposter; a proper subset of the correct slots
            is a live partition face.
    """

    def __init__(self, factory: ImitationFactory, plan: "GhostPlan") -> None:
        super().__init__(factory)
        self.plan = plan

    def instance_plan(self, slot: int, ident: int) -> Sequence[Hashable]:
        return (self.plan.proposal,)

    def _rebuild_inbox(self, view, record, slot: int) -> Inbox:
        assignment = view.assignment
        messages = [
            Message(assignment.identifier_of(k), payload)
            for k, payload in record.payloads.items()
            if self.plan.sees(k)
        ]
        # Unconditional self-delivery: the ghost hears what it itself
        # broadcast last round (its emission routed to its own slot),
        # regardless of the plan's visibility -- mirroring GhostBank's
        # ``_last`` replay.  Other Byzantine slots stay invisible, as
        # they are to a bank ghost.
        for payload in record.emissions.get(slot, {}).get(slot, ()):
            messages.append(Message(assignment.identifier_of(slot), payload))
        return Inbox(messages, numerate=view.params.numerate)

    def describe(self) -> str:
        return self.plan.describe()
