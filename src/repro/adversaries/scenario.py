"""Figure 1: the scenario argument for Proposition 1 (``ell <= 3t``).

The paper proves synchronous agreement impossible with ``ell = 3t``
identifiers by wiring up a **2n-process reference system** in which
every process runs the algorithm *correctly*, yet three overlapping
"views" each look exactly like a legitimate n-process execution -- and
the three legitimacy requirements contradict each other.

Layout (0-indexed *columns* ``0 .. 6t-1``; column ``c`` holds identifier
``(c mod 3t) + 1`` and copy ``c // 3t``):

* copy 0 columns (``0..3t-1``) run with input **0**, copy 1 columns
  (``3t..6t-1``) with input **1**;
* two columns are *stacks* of ``n - 3t + 1`` homonym processes:
  column 0 (identifier 1, input 0) and column ``4t`` (identifier
  ``t + 1``, input 1); all other columns are singletons -- totalling
  ``2n`` processes;
* column ``c``'s in-neighbourhood (who it hears) is chosen so that each
  of the three views below receives every view identifier exactly from
  its view column, and the ``t`` "Byzantine" identifiers from real
  columns outside the view.

The three views and why they contradict:

* **V1** = columns ``0..2t-1`` (ids ``1..2t``, all inputs 0): cannot
  distinguish the run from an n-process execution in which ids
  ``2t+1..3t`` are Byzantine, so *validity* forces them to decide 0.
* **V2** = columns ``4t..6t-1`` (ids ``t+1..3t``, all inputs 1):
  symmetric -- must decide 1.  Members of V2 hear the column-0 *stack*
  as Byzantine identifier 1, i.e. ``n - 3t + 1`` distinct streams from
  one Byzantine process: this is exactly where the unrestricted power
  (multiple messages per recipient per round) is consumed.
* **V3** = columns ``5t..6t-1`` and ``0..t-1`` (ids ``2t+1..3t`` with
  input 1, ids ``1..t`` with input 0): a legitimate execution whose
  *agreement* property forces all members to decide equal -- but its
  members already decided 0 (as V1 members) and 1 (as V2 members).

Running any claimed ``ell = 3t`` algorithm inside this system therefore
*must* exhibit a concrete violation in at least one view;
:func:`run_scenario` builds the system, runs it, checks all three views
and reports which requirement broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.core.errors import ConfigurationError
from repro.core.identity import IdentityAssignment
from repro.core.params import SystemParams
from repro.sim.kernel import (
    BasicPsync,
    ComposedTiming,
    EngineCheckpoint,
    ExecutionKernel,
    TimingModel,
)
from repro.sim.metrics import Metrics, RoundDeliveries, metrics_from_deliveries
from repro.sim.network import ReferenceRoundEngine
from repro.sim.partial import DropSchedule
from repro.sim.process import Process
from repro.sim.topology import DirectedTopology
from repro.sim.trace import Trace

#: Factory for the algorithm under test: ``(identifier, input) -> Process``.
AlgorithmFactory = Callable[[int, Hashable], Process]


@dataclass(frozen=True)
class ViewReport:
    """Outcome of checking one view of the scenario system."""

    name: str
    members: tuple[int, ...]  # process indices in the big system
    requirement: str  # human-readable description
    decisions: dict
    satisfied: bool
    detail: str


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of the full Figure 1 run.

    Since the kernel port the outcome also carries the execution's
    observability products: the exact per-round delivery log (and the
    :class:`~repro.sim.metrics.Metrics` derived from it), the full
    trace, and any mid-run checkpoints requested via
    ``checkpoint_every`` -- all for free from
    :class:`~repro.sim.kernel.ExecutionKernel`.
    """

    views: tuple[ViewReport, ...]
    rounds_executed: int
    metrics: Metrics | None = None
    trace: Trace | None = None
    deliveries: tuple[RoundDeliveries, ...] = ()
    losses: tuple[tuple[int, int, int], ...] = ()
    checkpoints: tuple[EngineCheckpoint, ...] = field(
        default=(), repr=False, compare=False
    )

    @property
    def contradiction_exhibited(self) -> bool:
        """True when at least one view's requirement failed -- which the
        theorem guarantees for every deterministic algorithm."""
        return any(not v.satisfied for v in self.views)

    def summary(self) -> str:
        lines = [f"Figure 1 scenario ({self.rounds_executed} rounds):"]
        for v in self.views:
            status = "ok" if v.satisfied else "VIOLATED"
            lines.append(f"  {v.name}: {v.requirement} -> {status} ({v.detail})")
        return "\n".join(lines)


class ScenarioSystem:
    """The 2n-process reference system of Figure 1 for ``ell = 3t``."""

    def __init__(self, n: int, t: int) -> None:
        if t < 1:
            raise ConfigurationError("the scenario needs t >= 1")
        if n < 3 * t:
            raise ConfigurationError(
                f"need n >= 3t so every identifier is coverable, got n={n}, t={t}"
            )
        self.n = int(n)
        self.t = int(t)
        self.ell = 3 * self.t
        self._build_columns()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_columns(self) -> None:
        t, n = self.t, self.n
        stack_size = n - 3 * t + 1
        #: column -> process indices (built in column order).
        self.column_members: list[tuple[int, ...]] = []
        ids: list[int] = []
        inputs: list[Hashable] = []
        index = 0
        for c in range(6 * t):
            size = stack_size if c in (0, 4 * t) else 1
            members = tuple(range(index, index + size))
            index += size
            self.column_members.append(members)
            ident = (c % (3 * t)) + 1
            value = 0 if c < 3 * t else 1
            ids.extend([ident] * size)
            inputs.extend([value] * size)
        self.total = index  # == 2n
        self.ids = tuple(ids)
        self.inputs = tuple(inputs)
        self.in_columns = {
            c: self._in_columns_of(c) for c in range(6 * t)
        }

    def _in_columns_of(self, c: int) -> frozenset[int]:
        """In-neighbourhoods satisfying all three views simultaneously."""
        t = self.t

        def cols(*ranges: tuple[int, int]) -> frozenset[int]:
            out: set[int] = set()
            for lo, hi in ranges:
                out.update(range(lo, hi))
            return frozenset(out)

        if c < 2 * t:  # V1 members (first t of them also in V3)
            return cols((0, 2 * t), (5 * t, 6 * t))
        if c < 3 * t:  # copy-0 spares: unconstrained, mirror V1's shape
            return cols((0, 3 * t), (5 * t, 6 * t))
        if c < 4 * t:  # copy-1 spares: unconstrained, mirror V2's shape
            return cols((3 * t, 6 * t), (0, t))
        # V2 members (last t of them also in V3)
        return cols((4 * t, 6 * t), (0, t))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view_columns(self) -> dict[str, tuple[int, ...]]:
        t = self.t
        return {
            "V1": tuple(range(0, 2 * t)),
            "V2": tuple(range(4 * t, 6 * t)),
            "V3": tuple(range(5 * t, 6 * t)) + tuple(range(0, t)),
        }

    def view_members(self, columns: Sequence[int]) -> tuple[int, ...]:
        members: list[int] = []
        for c in columns:
            members.extend(self.column_members[c])
        return tuple(members)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def topology(self) -> DirectedTopology:
        """The directed view wiring as a topology object."""
        in_neighbors = {}
        for c, members in enumerate(self.column_members):
            allowed: set[int] = set()
            for c_in in self.in_columns[c]:
                allowed.update(self.column_members[c_in])
            for k in members:
                in_neighbors[k] = frozenset(allowed)
        return DirectedTopology(in_neighbors)

    def _timing_model(
        self,
        drop_schedule: DropSchedule | None,
        timing: TimingModel | None,
    ) -> TimingModel:
        """Stack the structural view wiring under the caller's timing.

        The Figure 1 wiring is not optional -- it *is* the scenario --
        so a caller-supplied timing model composes with it via
        :class:`~repro.sim.kernel.ComposedTiming` rather than replacing
        it.
        """
        if timing is not None and drop_schedule is not None:
            raise ConfigurationError(
                "pass either an explicit timing model or a drop "
                "schedule, not both"
            )
        structural = BasicPsync(drop_schedule, self.topology())
        if timing is None:
            return structural
        return ComposedTiming(structural, timing)

    def _build(self, factory: AlgorithmFactory):
        params = SystemParams(n=self.total, ell=self.ell, t=0)
        assignment = IdentityAssignment(self.ell, self.ids)
        processes: list[Process] = [
            factory(self.ids[k], self.inputs[k]) for k in range(self.total)
        ]
        return params, assignment, processes

    def run(
        self,
        factory: AlgorithmFactory,
        max_rounds: int,
        drop_schedule: DropSchedule | None = None,
        timing: TimingModel | None = None,
        checkpoint_every: int | None = None,
    ) -> ScenarioOutcome:
        """Build the big system, run it, and check the three views.

        The orchestration drives :class:`~repro.sim.kernel.ExecutionKernel`
        through its ``compose_round``/``finish_round`` split, so the
        scenario gets delivery metrics, checkpointing and pluggable
        timing models for free.

        Args:
            factory: The algorithm under test.
            max_rounds: Round budget (the run stops early once every
                process decided).
            drop_schedule: Optional basic-model losses stacked on top
                of the view wiring (exclusive with ``timing``).
            timing: Optional extra :class:`~repro.sim.kernel.TimingModel`
                composed with the structural wiring (exclusive with
                ``drop_schedule``).
            checkpoint_every: When set, snapshot the kernel every that
                many rounds; the snapshots ride on the outcome.

        Returns:
            The :class:`ScenarioOutcome` with the three view reports
            and the execution's metrics, trace and delivery log.
        """
        params, assignment, processes = self._build(factory)
        engine = ExecutionKernel(
            params=params,
            assignment=assignment,
            processes=processes,
            timing=self._timing_model(drop_schedule, timing),
        )
        checkpoints: list[EngineCheckpoint] = []
        for _ in range(max_rounds):
            payloads = engine.compose_round()
            engine.finish_round(payloads)
            if checkpoint_every and engine.round_no % checkpoint_every == 0:
                checkpoints.append(engine.checkpoint())
            if engine.all_correct_decided():
                break
        # Read process state back off the engine: with copy-on-write
        # checkpoints the kernel may rebind its process list after a
        # snapshot, leaving the locally built list stale.
        return self._outcome(engine, engine.processes, checkpoints)

    def _outcome(
        self,
        engine: ExecutionKernel,
        processes: Sequence[Process],
        checkpoints: Sequence[EngineCheckpoint] = (),
    ) -> ScenarioOutcome:
        views = self.view_columns()
        reports = [
            self._check_unanimity("V1", views["V1"], processes, expected=0),
            self._check_unanimity("V2", views["V2"], processes, expected=1),
            self._check_agreement("V3", views["V3"], processes),
        ]
        return ScenarioOutcome(
            views=tuple(reports),
            rounds_executed=len(engine.trace),
            metrics=metrics_from_deliveries(engine.deliveries),
            trace=engine.trace,
            deliveries=tuple(engine.deliveries),
            losses=tuple(engine.losses),
            checkpoints=tuple(checkpoints),
        )

    def _check_unanimity(
        self, name: str, columns: Sequence[int], processes, expected: Hashable
    ) -> ViewReport:
        members = self.view_members(columns)
        decisions = {k: processes[k].decision for k in members}
        ok = all(
            processes[k].decided and processes[k].decision == expected
            for k in members
        )
        detail = f"decisions={self._digest(decisions)}"
        return ViewReport(
            name=name,
            members=members,
            requirement=f"validity forces every member to decide {expected}",
            decisions=decisions,
            satisfied=ok,
            detail=detail,
        )

    def _check_agreement(
        self, name: str, columns: Sequence[int], processes
    ) -> ViewReport:
        members = self.view_members(columns)
        decisions = {k: processes[k].decision for k in members}
        decided_values = {
            repr(processes[k].decision) for k in members if processes[k].decided
        }
        all_decided = all(processes[k].decided for k in members)
        ok = all_decided and len(decided_values) <= 1
        return ViewReport(
            name=name,
            members=members,
            requirement="agreement + termination force one common decision",
            decisions=decisions,
            satisfied=ok,
            detail=f"decisions={self._digest(decisions)}",
        )

    @staticmethod
    def _digest(decisions: dict) -> str:
        buckets: dict[str, int] = {}
        for value in decisions.values():
            key = "undecided" if value is None else repr(value)
            buckets[key] = buckets.get(key, 0) + 1
        return ", ".join(f"{k}x{v}" for k, v in sorted(buckets.items()))


class ReferenceScenarioSystem(ScenarioSystem):
    """The pre-port scenario execution, kept as a differential oracle.

    Drives the Figure 1 system exactly as it ran before the kernel
    port: an engine built on the pre-fabric per-receiver delivery loop
    (:class:`~repro.sim.network.ReferenceRoundEngine`) stepped through
    its monolithic ``run`` entry point.  The conformance suite pins the
    kernelised :meth:`ScenarioSystem.run` against this class -- traces,
    view reports, delivery counts.  Not for production use; supports the
    basic model only (``drop_schedule``), not arbitrary timing models.
    """

    def run(
        self,
        factory: AlgorithmFactory,
        max_rounds: int,
        drop_schedule: DropSchedule | None = None,
        timing: TimingModel | None = None,
        checkpoint_every: int | None = None,
    ) -> ScenarioOutcome:
        if timing is not None:
            raise ConfigurationError(
                "the reference scenario oracle predates timing models; "
                "pass a drop_schedule or nothing"
            )
        if checkpoint_every is not None:
            raise ConfigurationError(
                "the reference scenario oracle predates checkpointing"
            )
        params, assignment, processes = self._build(factory)
        engine = ReferenceRoundEngine(
            params=params,
            assignment=assignment,
            processes=processes,
            drop_schedule=drop_schedule,
            topology=self.topology(),
        )
        engine.run(max_rounds=max_rounds, stop_when_all_decided=True)
        return self._outcome(engine, processes)


def run_scenario(
    n: int, t: int, factory: AlgorithmFactory, max_rounds: int
) -> ScenarioOutcome:
    """Convenience wrapper: build and run the Figure 1 system."""
    return ScenarioSystem(n, t).run(factory, max_rounds)
