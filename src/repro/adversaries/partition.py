"""Figure 4: the partition argument for Proposition 4 (``2*ell <= n + 3t``).

The partially synchronous lower bound is realised constructively:

* **Execution alpha** -- synchronous run, all correct inputs 0, the ``t``
  Byzantine processes (identifiers ``t+1..2t``) silent.  Correct set:
  a *core* ``M0`` covering identifiers ``1..t`` (identifier 1 carries a
  stack) and a *wing* ``W0`` covering identifiers ``2t+1..ell``
  (identifier ``2t+1`` carries the excess ``n - 2*ell + 3t`` processes).
  Validity forces a unanimous 0 by some round ``r_alpha``.
* **Execution beta** -- symmetric, inputs 1, Byzantine identifiers
  ``2t+1..3t``, core ``M1`` over ids ``1..t`` (id 1 stacked with
  ``n - ell + 1`` processes -- the stack drawn in the paper's figure),
  wing ``W1`` over ids ``t+1..2t`` and ``3t+1..ell``.  Forces 1 by
  ``r_beta``.
* **Execution gamma** -- the wings coexist: ``W0`` (inputs 0) and ``W1``
  (inputs 1) plus ``t`` Byzantine processes holding identifiers
  ``1..t``.  Until round ``max(r_alpha, r_beta)`` every message between
  the wings is dropped (legal in the DLS basic model), while Byzantine
  identifier ``i`` *replays* to ``W0`` the recorded alpha-messages of all
  ``M0`` processes with identifier ``i`` and to ``W1`` the recorded
  beta-messages of ``M1``'s identifier-``i`` processes.  Replaying a
  stacked identifier means sending several messages to one recipient in
  one round -- the unrestricted Byzantine power (for *innumerate*
  victims a single copy suffices, which is Theorem 20's remark; the
  replayer exposes both modes).

``W0`` members cannot distinguish gamma from alpha (they hear exactly
``W0 + M0``-replay and, as in alpha, nothing from identifiers
``t+1..2t``), so they decide 0; symmetrically ``W1`` decides 1 --
agreement is violated in a single legitimate execution.

The construction exists **iff** ``n >= 2*ell - 3t``, i.e. exactly when
``2*ell <= n + 3t``: sizes go negative otherwise
(:func:`partition_attack_feasible`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.core.errors import ConfigurationError
from repro.core.identity import IdentityAssignment, assignment_from_sizes
from repro.core.params import SystemParams, Synchrony
from repro.sim.adversary import Adversary, AdversaryView, Emission
from repro.sim.partial import PartitionSchedule
from repro.sim.process import Process
from repro.sim.runner import ExecutionResult, run_execution
from repro.sim.trace import Trace

#: Factory for the algorithm under test: ``(identifier, input) -> Process``.
AlgorithmFactory = Callable[[int, Hashable], Process]


def partition_attack_feasible(n: int, ell: int, t: int) -> bool:
    """The Figure 4 construction exists iff ``ell > 3t`` fails to hold
    with room: formally it needs ``t >= 1``, ``ell > 3t`` (otherwise the
    synchronous argument already applies) and ``2*ell <= n + 3t``."""
    return t >= 1 and ell > 3 * t and 2 * ell <= n + 3 * t


@dataclass(frozen=True)
class PartitionLayout:
    """Process-index layout shared by the three executions."""

    n: int
    ell: int
    t: int

    def __post_init__(self) -> None:
        if not partition_attack_feasible(self.n, self.ell, self.t):
            raise ConfigurationError(
                f"partition construction needs t>=1, ell>3t and 2*ell<=n+3t; "
                f"got n={self.n}, ell={self.ell}, t={self.t}"
            )

    # -- alpha ----------------------------------------------------------
    def alpha_sizes(self) -> dict[int, int]:
        """Group sizes of execution alpha (core M0 + byz t+1..2t + wing W0)."""
        n, ell, t = self.n, self.ell, self.t
        sizes = {ident: 1 for ident in range(1, ell + 1)}
        sizes[1] = ell - 3 * t + 1  # M0 stack
        sizes[2 * t + 1] = n - 2 * ell + 3 * t + 1  # W0 excess
        return sizes

    def alpha_byzantine_ids(self) -> tuple[int, ...]:
        return tuple(range(self.t + 1, 2 * self.t + 1))

    # -- beta -----------------------------------------------------------
    def beta_sizes(self) -> dict[int, int]:
        """Group sizes of execution beta (core M1 stacked at id 1)."""
        n, ell, t = self.n, self.ell, self.t
        sizes = {ident: 1 for ident in range(1, ell + 1)}
        sizes[1] = n - ell + 1  # M1 stack (the figure's n-ell+1 stack)
        return sizes

    def beta_byzantine_ids(self) -> tuple[int, ...]:
        return tuple(range(2 * self.t + 1, 3 * self.t + 1))

    # -- core / wing identifier sets -------------------------------------
    def core_ids(self) -> tuple[int, ...]:
        return tuple(range(1, self.t + 1))

    def w0_ids(self) -> tuple[int, ...]:
        return tuple(range(2 * self.t + 1, self.ell + 1))

    def w1_ids(self) -> tuple[int, ...]:
        return tuple(range(self.t + 1, 2 * self.t + 1)) + tuple(
            range(3 * self.t + 1, self.ell + 1)
        )


def _indices_with_ids(
    assignment: IdentityAssignment, idents: tuple[int, ...]
) -> tuple[int, ...]:
    wanted = set(idents)
    return tuple(
        k for k in range(assignment.n) if assignment.identifier_of(k) in wanted
    )


class ReplayAdversary(Adversary):
    """Byzantine identifiers ``1..t`` replaying recorded core messages.

    ``per_wing`` maps each gamma wing (by recipient index) to a list of
    recorded payload streams: each stream is the round-indexed payload
    sequence of one core process from the reference execution, together
    with the identifier it was sent under.  In round ``r`` the slot
    holding identifier ``i`` sends, to every recipient of a wing, one
    message per stream of identifier ``i`` recorded for that wing.
    """

    def __init__(
        self,
        streams_w0: Mapping[int, tuple[Trace, tuple[int, ...]]],
        streams_w1: Mapping[int, tuple[Trace, tuple[int, ...]]],
        w0: tuple[int, ...],
        w1: tuple[int, ...],
        innumerate_single_copy: bool = False,
    ) -> None:
        # streams_w*: ident -> (reference trace, core process indices in it)
        self._streams = {0: dict(streams_w0), 1: dict(streams_w1)}
        self._wings = {0: tuple(w0), 1: tuple(w1)}
        self.innumerate_single_copy = bool(innumerate_single_copy)

    def emissions(self, view: AdversaryView) -> Mapping[int, Emission]:
        r = view.round_no
        result: dict[int, Emission] = {}
        for slot in view.byzantine:
            ident = view.identifier_of(slot)
            emission: dict[int, list[Hashable]] = {}
            for wing_key in (0, 1):
                entry = self._streams[wing_key].get(ident)
                if entry is None:
                    continue
                trace, core_indices = entry
                if r >= len(trace):
                    continue  # reference exhausted: fall silent
                record = trace.record(r)
                payloads = [
                    record.payloads[k]
                    for k in core_indices
                    if k in record.payloads
                ]
                if self.innumerate_single_copy and payloads:
                    # Theorem 20: against innumerate victims one copy of
                    # each *distinct* payload suffices.
                    seen: list[Hashable] = []
                    for p in payloads:
                        if p not in seen:
                            seen.append(p)
                    payloads = seen
                if not payloads:
                    continue
                for q in self._wings[wing_key]:
                    emission.setdefault(q, []).extend(payloads)
            if emission:
                result[slot] = {q: tuple(ps) for q, ps in emission.items()}
        return result


@dataclass
class PartitionOutcome:
    """Everything the Figure 4 harness produced."""

    layout: PartitionLayout
    alpha: ExecutionResult
    beta: ExecutionResult
    gamma: ExecutionResult
    w0: tuple[int, ...]
    w1: tuple[int, ...]

    @property
    def attack_succeeded(self) -> bool:
        """True when gamma exhibits a Byzantine-agreement violation.

        Either disagreement between the wings (the paper's outcome) or,
        for algorithms that stall instead, a termination failure in one
        of the three legitimate executions.
        """
        return (
            not self.alpha.verdict.ok
            or not self.beta.verdict.ok
            or not self.gamma.verdict.ok
        )

    def summary(self) -> str:
        return (
            f"Figure 4 partition attack on n={self.layout.n} "
            f"ell={self.layout.ell} t={self.layout.t}\n"
            f"  alpha: {self.alpha.verdict.summary()}\n"
            f"  beta:  {self.beta.verdict.summary()}\n"
            f"  gamma: {self.gamma.verdict.summary()}"
        )


def run_partition_attack(
    n: int,
    ell: int,
    t: int,
    factory: AlgorithmFactory,
    reference_rounds: int,
    numerate: bool = False,
    slack_rounds: int = 24,
) -> PartitionOutcome:
    """Execute the full three-execution construction of Proposition 4.

    ``factory`` builds the algorithm under test (typically the Figure 5
    protocol constructed with ``unchecked=True`` since the whole point
    is to run it below its bound).  ``reference_rounds`` bounds the
    alpha/beta reference runs; they normally decide much earlier.
    """
    layout = PartitionLayout(n, ell, t)
    base = SystemParams(
        n=n, ell=ell, t=t,
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        numerate=numerate, restricted=False,
    )

    # ---- alpha: all correct input 0, byz ids t+1..2t silent -----------
    alpha_assignment = assignment_from_sizes(layout.alpha_sizes())
    alpha_byz = _indices_with_ids(alpha_assignment, layout.alpha_byzantine_ids())
    alpha_procs: list[Process | None] = [
        None if k in alpha_byz else factory(alpha_assignment.identifier_of(k), 0)
        for k in range(n)
    ]
    alpha = run_execution(
        params=base,
        assignment=alpha_assignment,
        processes=alpha_procs,
        byzantine=alpha_byz,
        max_rounds=reference_rounds,
        stop_when_all_decided=False,  # record full trace for replay
        require_termination=True,
    )

    # ---- beta: all correct input 1, byz ids 2t+1..3t silent ------------
    beta_assignment = assignment_from_sizes(layout.beta_sizes())
    beta_byz = _indices_with_ids(beta_assignment, layout.beta_byzantine_ids())
    beta_procs: list[Process | None] = [
        None if k in beta_byz else factory(beta_assignment.identifier_of(k), 1)
        for k in range(n)
    ]
    beta = run_execution(
        params=base,
        assignment=beta_assignment,
        processes=beta_procs,
        byzantine=beta_byz,
        max_rounds=reference_rounds,
        stop_when_all_decided=False,
        require_termination=True,
    )

    # ---- gamma: wings + replaying byzantine core -----------------------
    # Identifiers 3t+1..ell are *cross-partition homonyms*: one holder
    # sits in each wing, so wing membership is tracked by index.
    gamma_ids: list[int] = []
    gamma_byz: list[int] = []
    w0_list: list[int] = []
    w1_list: list[int] = []

    def _add(ident: int, wing: list[int] | None) -> None:
        index = len(gamma_ids)
        gamma_ids.append(ident)
        if wing is None:
            gamma_byz.append(index)
        else:
            wing.append(index)

    for ident in range(1, t + 1):  # Byzantine core identifiers
        _add(ident, None)
    for ident in range(t + 1, 2 * t + 1):  # W1 singletons
        _add(ident, w1_list)
    for _ in range(n - 2 * ell + 3 * t + 1):  # W0 stack on id 2t+1
        _add(2 * t + 1, w0_list)
    for ident in range(2 * t + 2, 3 * t + 1):  # W0 singletons
        _add(ident, w0_list)
    for ident in range(3 * t + 1, ell + 1):  # cross-partition homonyms
        _add(ident, w0_list)
        _add(ident, w1_list)

    gamma_assignment = IdentityAssignment(ell, tuple(gamma_ids))
    w0 = tuple(w0_list)
    w1 = tuple(w1_list)

    gamma_procs: list[Process | None] = [None] * n
    for k in w0:
        gamma_procs[k] = factory(gamma_assignment.identifier_of(k), 0)
    for k in w1:
        gamma_procs[k] = factory(gamma_assignment.identifier_of(k), 1)

    # Identifier -> (reference trace, core indices) replay streams.
    streams_w0 = {
        ident: (
            alpha.trace,
            _indices_with_ids(alpha_assignment, (ident,)),
        )
        for ident in layout.core_ids()
    }
    streams_w1 = {
        ident: (
            beta.trace,
            _indices_with_ids(beta_assignment, (ident,)),
        )
        for ident in layout.core_ids()
    }

    r_alpha = alpha.verdict.last_decision_round
    r_beta = beta.verdict.last_decision_round
    if r_alpha is None or r_beta is None:
        # An algorithm that never decides in a synchronous, nearly
        # failure-free execution has already violated termination; the
        # gamma stage is moot but we still return the outcome.
        gst = reference_rounds
    else:
        gst = max(r_alpha, r_beta) + 1

    gamma = run_execution(
        params=base,
        assignment=gamma_assignment,
        processes=gamma_procs,
        byzantine=gamma_byz,
        adversary=ReplayAdversary(
            streams_w0, streams_w1, w0, w1,
            innumerate_single_copy=False,
        ),
        drop_schedule=PartitionSchedule(gst, w0, w1),
        max_rounds=gst + slack_rounds,
        stop_when_all_decided=False,
        require_termination=True,
    )

    return PartitionOutcome(
        layout=layout, alpha=alpha, beta=beta, gamma=gamma, w0=w0, w1=w1
    )
