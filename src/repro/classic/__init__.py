"""Classic unique-identifier synchronous BA baselines (Figure 2 form)."""

from repro.classic.eig import EIGSpec, EIGState
from repro.classic.phase_king import PhaseKingSpec, PhaseKingState
from repro.classic.runner import (
    ClassicProcess,
    classic_factory,
    run_classic,
    run_classic_reference,
)
from repro.classic.spec import ClassicSpec, filter_equivocators, majority_value

__all__ = [
    "ClassicProcess",
    "ClassicSpec",
    "EIGSpec",
    "EIGState",
    "PhaseKingSpec",
    "PhaseKingState",
    "classic_factory",
    "filter_equivocators",
    "majority_value",
    "run_classic",
    "run_classic_reference",
]
