"""Exponential Information Gathering (EIG) Byzantine agreement.

The classic unique-identifier synchronous algorithm of Pease, Shostak
and Lamport [17] / Lamport, Shostak and Pease [13], in the tree-based
"exponential information gathering" formulation: tolerates ``t``
Byzantine faults among ``ell`` processes whenever ``ell > 3t``, deciding
after exactly ``t + 1`` rounds.  This is the reproduction's stand-in for
the paper's "any synchronous Byzantine agreement algorithm ... such
algorithms exist when ell = n > 3t, e.g. [13]".

Each process maintains a tree of values indexed by *paths* -- sequences
of distinct identifiers.  ``tree[(j1, ..., jk)] = v`` means "``jk`` told
me that ``jk-1`` told it that ... ``j1``'s input is ``v``".  In round
``r`` every process relays all level ``r-1`` nodes whose path does not
contain its own identifier; after round ``t+1`` the tree is resolved
bottom-up by majority, and the root's resolved value is the decision.

The state is a frozen dataclass whose tree is a *sorted tuple* of
``(path, value)`` pairs, giving the canonical ``repr`` that the
Figure 3 transformation requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.classic.spec import ClassicSpec, majority_value
from repro.core.problem import AgreementProblem


Path = tuple[int, ...]


@dataclass(frozen=True)
class EIGState:
    """EIG process state: identity, progress and the information tree."""

    ident: int
    rounds_done: int
    tree: tuple[tuple[Path, Hashable], ...]  # sorted by (len(path), path)

    def __deepcopy__(self, memo) -> "EIGState":
        # Frozen tuple-of-tuples content: transitions build new states
        # instead of mutating, so sharing across deep copies is safe
        # (and the tree is the bulk of a checkpointed process).
        return self

    def tree_dict(self) -> dict[Path, Hashable]:
        return dict(self.tree)


def _canonical_tree(entries: Mapping[Path, Hashable]) -> tuple[tuple[Path, Hashable], ...]:
    return tuple(sorted(entries.items(), key=lambda kv: (len(kv[0]), kv[0])))


class EIGSpec(ClassicSpec):
    """EIG agreement for ``ell`` processes, ``ell > 3t``, ``t + 1`` rounds."""

    def __init__(
        self, ell: int, t: int, problem: AgreementProblem, unchecked: bool = False
    ) -> None:
        super().__init__(ell, t, problem, unchecked=unchecked)
        self.require_bound(3)

    # ------------------------------------------------------------------
    # Figure 2 interface
    # ------------------------------------------------------------------
    def init(self, ident: int, value: Hashable) -> EIGState:
        value = self.problem.validate_value(value)
        return EIGState(
            ident=int(ident),
            rounds_done=0,
            tree=_canonical_tree({(): value}),
        )

    def message(self, state: EIGState, round_no: int) -> Hashable:
        """Relay all level ``round_no - 1`` nodes not involving ``ident``."""
        if round_no > self.t + 1:
            return None  # algorithm is finished; stay silent
        level = round_no - 1
        entries = tuple(
            (path, value)
            for path, value in state.tree
            if len(path) == level and state.ident not in path
        )
        return ("eig", round_no, entries)

    def transition(
        self, state: EIGState, round_no: int, received: Mapping[int, Hashable]
    ) -> EIGState:
        if round_no > self.t + 1:
            return state
        tree = state.tree_dict()
        level = round_no - 1
        for sender in sorted(received):
            payload = received[sender]
            for path, value in self._payload_entries(payload, round_no):
                if len(path) != level or sender in path:
                    continue  # malformed or misattributed relay: ignore
                extended = path + (sender,)
                # First write wins; a correct sender never sends a path twice
                # in a round (payloads are de-duplicated tuples).
                tree.setdefault(extended, value)
        return EIGState(
            ident=state.ident,
            rounds_done=round_no,
            tree=_canonical_tree(tree),
        )

    def decide(self, state: EIGState) -> Hashable:
        if state.rounds_done < self.t + 1:
            return None
        return self._resolve(state.tree_dict(), ())

    # ------------------------------------------------------------------
    # Robustness / metadata
    # ------------------------------------------------------------------
    def is_state(self, obj: Hashable) -> bool:
        if not isinstance(obj, EIGState):
            return False
        if not 1 <= obj.ident <= self.ell:
            return False
        if not 0 <= obj.rounds_done <= self.t + 1:
            return False
        if not isinstance(obj.tree, tuple):
            return False
        for entry in obj.tree:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                return False
            path, _value = entry
            if not isinstance(path, tuple) or len(path) > self.t + 1:
                return False
            if not all(isinstance(j, int) and 1 <= j <= self.ell for j in path):
                return False
            if len(set(path)) != len(path):
                return False
        return True

    @property
    def max_rounds(self) -> int:
        return self.t + 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _payload_entries(
        self, payload: Hashable, round_no: int
    ) -> Iterable[tuple[Path, Hashable]]:
        """Parse a round payload defensively; malformed parts are skipped."""
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        tag, r, entries = payload
        if tag != "eig" or r != round_no or not isinstance(entries, tuple):
            return
        seen: set[Path] = set()
        for entry in entries:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                continue
            path, value = entry
            if not isinstance(path, tuple):
                continue
            if not all(isinstance(j, int) and 1 <= j <= self.ell for j in path):
                continue
            if len(set(path)) != len(path) or path in seen:
                continue
            seen.add(path)
            yield path, value

    def _resolve(self, tree: Mapping[Path, Hashable], path: Path) -> Hashable:
        """Bottom-up majority resolution; missing values fall to the default."""
        default = self.problem.default
        if len(path) == self.t + 1:
            value = tree.get(path, default)
            return value if value in self.problem.domain else default
        counts: dict[Hashable, int] = {}
        for j in range(1, self.ell + 1):
            if j in path:
                continue
            child = self._resolve(tree, path + (j,))
            counts[child] = counts.get(child, 0) + 1
        total = sum(counts.values())
        value, count = majority_value(counts, default)
        # Strict majority; ties and fragmentation resolve to the default.
        if 2 * count > total:
            return value
        return default
