"""Phase-King Byzantine agreement (Berman--Garay--Perry).

A polynomial-message classic baseline: ``ell`` uniquely-identified
processes tolerate ``t`` Byzantine faults whenever ``ell > 4t``, using
``t + 1`` phases of two rounds each.  Messages are constant-size, which
makes Phase-King the cheap baseline next to EIG's exponential trees in
the Figure 2 benchmark.

Phase ``k`` (``k = 1..t+1``):

* round ``2k - 1``: every process broadcasts its current preference;
  each receiver computes the plurality value ``maj`` and its count
  ``mult`` over the ``ell`` received preferences;
* round ``2k``: the *king* of the phase -- the process whose identifier
  is ``k`` -- broadcasts its own ``maj`` as a tie-break; every process
  keeps ``maj`` if ``mult > ell/2 + t`` (a count no Byzantine coalition
  can fake) and otherwise adopts the king's value.

After phase ``t + 1`` at least one phase had a correct king, which
forces all correct preferences equal; ``ell > 4t`` makes the threshold
sticky, so the common preference survives to the end and is decided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.classic.spec import ClassicSpec, majority_value
from repro.core.problem import AgreementProblem


@dataclass(frozen=True)
class PhaseKingState:
    """Phase-King process state."""

    ident: int
    rounds_done: int
    pref: Hashable
    maj: Hashable  # plurality value from the last round-1 tally
    mult: int      # its count

    def __deepcopy__(self, memo) -> "PhaseKingState":
        # Frozen scalar content; transitions build new states, so deep
        # copies (engine checkpoints) can share one instance.
        return self


class PhaseKingSpec(ClassicSpec):
    """Phase-King agreement for ``ell`` processes, ``ell > 4t``."""

    def __init__(
        self, ell: int, t: int, problem: AgreementProblem, unchecked: bool = False
    ) -> None:
        super().__init__(ell, t, problem, unchecked=unchecked)
        self.require_bound(4)

    # ------------------------------------------------------------------
    # Figure 2 interface
    # ------------------------------------------------------------------
    def init(self, ident: int, value: Hashable) -> PhaseKingState:
        value = self.problem.validate_value(value)
        return PhaseKingState(
            ident=int(ident), rounds_done=0, pref=value,
            maj=value, mult=0,
        )

    def message(self, state: PhaseKingState, round_no: int) -> Hashable:
        if round_no > self.max_rounds:
            return None
        if round_no % 2 == 1:  # preference round
            return ("pk-pref", round_no, state.pref)
        king = round_no // 2
        if state.ident == king:  # king round: only the king speaks
            return ("pk-king", round_no, state.maj)
        return None

    def transition(
        self, state: PhaseKingState, round_no: int, received: Mapping[int, Hashable]
    ) -> PhaseKingState:
        if round_no > self.max_rounds:
            return state
        if round_no % 2 == 1:
            return self._tally_preferences(state, round_no, received)
        return self._apply_king(state, round_no, received)

    def decide(self, state: PhaseKingState) -> Hashable:
        if state.rounds_done < self.max_rounds:
            return None
        return state.pref

    # ------------------------------------------------------------------
    # Robustness / metadata
    # ------------------------------------------------------------------
    def is_state(self, obj: Hashable) -> bool:
        return (
            isinstance(obj, PhaseKingState)
            and isinstance(obj.ident, int)
            and 1 <= obj.ident <= self.ell
            and isinstance(obj.rounds_done, int)
            and 0 <= obj.rounds_done <= self.max_rounds
            and obj.pref in self.problem.domain
            and obj.maj in self.problem.domain
            and isinstance(obj.mult, int)
            and 0 <= obj.mult <= self.ell
        )

    @property
    def max_rounds(self) -> int:
        return 2 * (self.t + 1)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tally_preferences(
        self, state: PhaseKingState, round_no: int, received: Mapping[int, Hashable]
    ) -> PhaseKingState:
        counts: dict[Hashable, int] = {}
        for sender in received:
            value = self._extract(received[sender], "pk-pref", round_no)
            if value is not None:
                counts[value] = counts.get(value, 0) + 1
        maj, mult = majority_value(counts, self.problem.default)
        return PhaseKingState(
            ident=state.ident, rounds_done=round_no,
            pref=state.pref, maj=maj, mult=mult,
        )

    def _apply_king(
        self, state: PhaseKingState, round_no: int, received: Mapping[int, Hashable]
    ) -> PhaseKingState:
        king = round_no // 2
        king_value = self._extract(received.get(king), "pk-king", round_no)
        if king_value is None:
            king_value = self.problem.default
        if state.mult > self.ell / 2 + self.t:
            pref = state.maj
        else:
            pref = king_value
        return PhaseKingState(
            ident=state.ident, rounds_done=round_no,
            pref=pref, maj=state.maj, mult=state.mult,
        )

    def _extract(self, payload: Hashable, tag: str, round_no: int) -> Hashable:
        """Pull a domain value out of a tagged payload; ``None`` if malformed."""
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return None
        got_tag, r, value = payload
        if got_tag != tag or r != round_no or value not in self.problem.domain:
            return None
        return value
