"""Run a Figure 2 spec directly as simulator processes.

In the classical setting (``ell = n``, unique identifiers) a
:class:`~repro.classic.spec.ClassicSpec` *is* an algorithm for the
simulator; :class:`ClassicProcess` adapts the functional form to the
engine's ``compose``/``deliver`` interface.  This is how the Figure 2
baselines are benchmarked, and it doubles as the reference behaviour
that the Figure 3 transformation must reproduce (the simulation proof
of Proposition 2 equates ``T(A)`` executions with executions of these
processes).
"""

from __future__ import annotations

from typing import Hashable

from repro.classic.spec import ClassicSpec, filter_equivocators
from repro.core.messages import Inbox
from repro.sim.process import Process


class ClassicProcess(Process):
    """One uniquely-identified process executing a Figure 2 spec.

    Engine rounds are 0-indexed; the paper's Figure 2 rounds are
    1-indexed.  Round ``R`` of the engine executes round ``R + 1`` of
    the spec.
    """

    def __init__(self, spec: ClassicSpec, identifier: int, proposal: Hashable) -> None:
        super().__init__(identifier, proposal)
        self.spec = spec
        self.state = spec.init(identifier, proposal)

    def compose(self, round_no: int) -> Hashable:
        return self.spec.message(self.state, round_no + 1)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        received = filter_equivocators(inbox)
        self.state = self.spec.transition(self.state, round_no + 1, received)
        decision = self.spec.decide(self.state)
        if decision is not None:
            self.record_decision(decision, round_no)


def classic_factory(spec: ClassicSpec):
    """Process factory for :func:`repro.sim.runner.run_agreement`."""

    def factory(identifier: int, proposal: Hashable) -> ClassicProcess:
        return ClassicProcess(spec, identifier, proposal)

    return factory
