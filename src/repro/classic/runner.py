"""Run a Figure 2 spec directly as simulator processes.

In the classical setting (``ell = n``, unique identifiers) a
:class:`~repro.classic.spec.ClassicSpec` *is* an algorithm for the
simulator; :class:`ClassicProcess` adapts the functional form to the
engine's ``compose``/``deliver`` interface.  This is how the Figure 2
baselines are benchmarked, and it doubles as the reference behaviour
that the Figure 3 transformation must reproduce (the simulation proof
of Proposition 2 equates ``T(A)`` executions with executions of these
processes).

:func:`run_classic` is the surface's kernel facade: it builds the
unique-identifier system around a spec and drives it through
:class:`~repro.sim.kernel.ExecutionKernel` (via
:func:`~repro.sim.runner.run_agreement`), so EIG and phase-king
executions get delivery metrics, checkpointing and pluggable timing
models exactly like every other surface.  :func:`run_classic_reference`
is its frozen differential oracle on the pre-fabric per-receiver loop.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.classic.spec import ClassicSpec, filter_equivocators
from repro.core.identity import balanced_assignment
from repro.core.messages import Inbox
from repro.core.params import SystemParams
from repro.core.problem import check_agreement_properties
from repro.sim.adversary import Adversary
from repro.sim.kernel import TimingModel
from repro.sim.metrics import metrics_from_deliveries
from repro.sim.network import ReferenceRoundEngine
from repro.sim.partial import DropSchedule
from repro.sim.process import Process
from repro.sim.runner import ExecutionResult, make_processes, run_agreement


class ClassicProcess(Process):
    """One uniquely-identified process executing a Figure 2 spec.

    Engine rounds are 0-indexed; the paper's Figure 2 rounds are
    1-indexed.  Round ``R`` of the engine executes round ``R + 1`` of
    the spec.
    """

    def __init__(self, spec: ClassicSpec, identifier: int, proposal: Hashable) -> None:
        super().__init__(identifier, proposal)
        self.spec = spec
        self.state = spec.init(identifier, proposal)

    def compose(self, round_no: int) -> Hashable:
        return self.spec.message(self.state, round_no + 1)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        received = filter_equivocators(inbox)
        self.state = self.spec.transition(self.state, round_no + 1, received)
        decision = self.spec.decide(self.state)
        if decision is not None:
            self.record_decision(decision, round_no)


def classic_factory(spec: ClassicSpec):
    """Process factory for :func:`repro.sim.runner.run_agreement`."""

    def factory(identifier: int, proposal: Hashable) -> ClassicProcess:
        return ClassicProcess(spec, identifier, proposal)

    return factory


def _classic_system(spec: ClassicSpec, max_rounds: int | None):
    """The unique-identifier system a Figure 2 spec runs in."""
    params = SystemParams(n=spec.ell, ell=spec.ell, t=spec.t)
    assignment = balanced_assignment(spec.ell, spec.ell)
    if max_rounds is None:
        # The +2 slack lets post-horizon silence show up in the trace
        # (the paper's "continue running the algorithm" behaviour).
        max_rounds = spec.max_rounds + 2
    return params, assignment, max_rounds


def run_classic(
    spec: ClassicSpec,
    proposals: Mapping[int, Hashable],
    byzantine: Sequence[int] = (),
    adversary: Adversary | None = None,
    drop_schedule: DropSchedule | None = None,
    timing: TimingModel | None = None,
    max_rounds: int | None = None,
    require_termination: bool = True,
) -> ExecutionResult:
    """Run a Figure 2 spec as one kernel-driven execution.

    The thin facade over :func:`~repro.sim.runner.run_agreement` for
    the classical setting: ``n = ell = spec.ell`` uniquely-identified
    processes, identifiers assigned in slot order.

    Args:
        spec: The algorithm in Figure 2 functional form.
        proposals: ``correct slot index -> input value``.
        byzantine: Byzantine slot indices.
        adversary: The Byzantine strategy (defaults to silence).
        drop_schedule: Legacy basic-model drop schedule (exclusive
            with ``timing``).
        timing: Explicit :class:`~repro.sim.kernel.TimingModel`.
        max_rounds: Round budget; defaults to ``spec.max_rounds + 2``.
        require_termination: Count non-termination within the budget
            as a violation.

    Returns:
        The finished :class:`~repro.sim.runner.ExecutionResult`.
    """
    params, assignment, max_rounds = _classic_system(spec, max_rounds)
    return run_agreement(
        params=params,
        assignment=assignment,
        factory=classic_factory(spec),
        proposals=proposals,
        byzantine=byzantine,
        adversary=adversary,
        drop_schedule=drop_schedule,
        timing=timing,
        max_rounds=max_rounds,
        require_termination=require_termination,
    )


def run_classic_reference(
    spec: ClassicSpec,
    proposals: Mapping[int, Hashable],
    byzantine: Sequence[int] = (),
    adversary: Adversary | None = None,
    drop_schedule: DropSchedule | None = None,
    max_rounds: int | None = None,
    require_termination: bool = True,
) -> ExecutionResult:
    """The pre-port classic execution, kept as a differential oracle.

    Mirrors :func:`run_classic` on the pre-fabric per-receiver delivery
    loop (:class:`~repro.sim.network.ReferenceRoundEngine`); the
    conformance suite pins traces, inboxes, deliveries and verdicts of
    the kernel facade against it.  Not for production use.
    """
    params, assignment, max_rounds = _classic_system(spec, max_rounds)
    processes = make_processes(
        classic_factory(spec), assignment, proposals, byzantine
    )
    engine = ReferenceRoundEngine(
        params=params,
        assignment=assignment,
        processes=processes,
        byzantine=byzantine,
        adversary=adversary,
        drop_schedule=drop_schedule,
    )
    executed = engine.run(max_rounds=max_rounds, stop_when_all_decided=True)
    verdict = check_agreement_properties(
        proposals={k: processes[k].proposal for k in engine.correct},
        decisions={
            k: processes[k].decision
            for k in engine.correct
            if processes[k].decided
        },
        decision_rounds={
            k: processes[k].decision_round
            for k in engine.correct
            if processes[k].decided
        },
        correct=engine.correct,
        rounds_executed=len(engine.trace),
        require_termination=require_termination,
    )
    return ExecutionResult(
        params=params,
        assignment=assignment,
        byzantine=engine.byzantine,
        verdict=verdict,
        trace=engine.trace,
        metrics=metrics_from_deliveries(engine.deliveries),
        processes=list(processes),
        losses=tuple(engine.losses),
        ticks=engine.timing.ticks_executed(executed),
    )
