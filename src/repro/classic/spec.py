"""The Figure 2 interface: classic synchronous BA as pure functions.

The paper's Figure 3 transformation ``T(A)`` consumes *any* synchronous
Byzantine agreement algorithm ``A`` for ``ell`` processes with unique
identifiers, provided ``A`` is expressed in the functional form of
Figure 2:

1. a set of local process states,
2. ``init(i, v)`` -- the initial state of process ``i`` with input ``v``,
3. ``message(s, r)`` -- the broadcast payload in state ``s``, round ``r``,
4. ``transition(s, r, R)`` -- the next state after receiving the round-``r``
   messages ``R``,
5. ``decide(s)`` -- the decision in state ``s`` (or ``None`` for "not yet");
   once non-``None`` it must stay constant along every reachable path.

States must be **hashable and canonically ordered by ``repr``**: the
transformation broadcasts states in its selection rounds and picks the
deterministic minimum, so two equal states must have equal reprs (use
sorted tuples, never raw frozensets, inside states).

``R`` is a mapping ``identifier -> payload`` containing at most one
payload per identifier: the engine-facing adapters collapse each
identifier's messages and *discard* identifiers that equivocated
(distinct payloads from one identifier in one round), which is exactly
the filtering of lines 12-14 of Figure 3 and is harmless in the unique-
identifier setting the specs are designed for.

Because ``T(A)`` runs these functions on states and payloads that may
have been *invented by Byzantine processes*, every implementation in
this package is defensive: malformed states are detectable via
:meth:`ClassicSpec.is_state` and malformed payload fragments are
silently ignored by transitions (equivalent to the sender being silent,
which Byzantine processes may be anyway).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Mapping

from repro.core.errors import BoundViolation
from repro.core.messages import Inbox
from repro.core.problem import AgreementProblem


class ClassicSpec(ABC):
    """A synchronous BA algorithm for ``ell`` uniquely-identified processes."""

    def __init__(
        self, ell: int, t: int, problem: AgreementProblem, unchecked: bool = False
    ) -> None:
        self.ell = int(ell)
        self.t = int(t)
        self.problem = problem
        #: When set, :meth:`require_bound` is a no-op.  Only the
        #: lower-bound demonstrations use this: they deliberately run
        #: algorithms outside their solvability region.
        self.unchecked = bool(unchecked)

    def __deepcopy__(self, memo) -> "ClassicSpec":
        # Specs are pure Figure 2 function tables: configuration set in
        # ``__init__`` and never mutated.  Every process of an execution
        # (and every deep copy the strategy explorer's checkpointing
        # takes) can share one instance.
        return self

    # ------------------------------------------------------------------
    # Figure 2 functions
    # ------------------------------------------------------------------
    @abstractmethod
    def init(self, ident: int, value: Hashable) -> Hashable:
        """Initial state of process ``ident`` (1-indexed) with input ``value``."""

    @abstractmethod
    def message(self, state: Hashable, round_no: int) -> Hashable:
        """Broadcast payload for 1-indexed round ``round_no`` (``None`` = silent)."""

    @abstractmethod
    def transition(
        self, state: Hashable, round_no: int, received: Mapping[int, Hashable]
    ) -> Hashable:
        """Next state after the round-``round_no`` messages ``received``."""

    @abstractmethod
    def decide(self, state: Hashable) -> Hashable:
        """Decision in ``state`` or ``None``; stable once non-``None``."""

    # ------------------------------------------------------------------
    # Robustness hooks used by T(A)
    # ------------------------------------------------------------------
    @abstractmethod
    def is_state(self, obj: Hashable) -> bool:
        """Structural check: could ``obj`` be a state of this algorithm?

        ``T(A)``'s selection rounds only adopt candidate states passing
        this check, so Byzantine garbage cannot crash the transition
        functions of correct processes.
        """

    @property
    @abstractmethod
    def max_rounds(self) -> int:
        """Number of rounds after which every correct process has decided."""

    # ------------------------------------------------------------------
    # Shared validation
    # ------------------------------------------------------------------
    def require_bound(self, minimum_ratio: int) -> None:
        """Raise :class:`BoundViolation` unless ``ell > minimum_ratio * t``."""
        if self.unchecked:
            return
        if self.ell <= minimum_ratio * self.t:
            raise BoundViolation(
                f"{type(self).__name__} requires ell > {minimum_ratio}t, "
                f"got ell={self.ell}, t={self.t}"
            )


def filter_equivocators(
    inbox: Inbox, select: Hashable = None
) -> dict[int, Hashable]:
    """Collapse an inbox to at most one payload per identifier.

    Identifiers that sent two or more *distinct* payloads this round are
    dropped entirely -- the receiver knows such an identifier harbours a
    Byzantine process (or quarrelling homonyms, indistinguishable from
    one) and ignores it, per Figure 3 lines 12-14.

    ``select`` optionally restricts attention to payloads for which
    ``select(payload)`` is true before collapsing (used when several
    logical channels share one physical round).
    """
    by_id: dict[int, set[Hashable]] = {}
    for m in inbox:
        if select is not None and not select(m.payload):
            continue
        by_id.setdefault(m.sender_id, set()).add(m.payload)
    return {
        ident: next(iter(payloads))
        for ident, payloads in by_id.items()
        if len(payloads) == 1
    }


def majority_value(
    counts: Mapping[Hashable, int], default: Hashable
) -> tuple[Hashable, int]:
    """Deterministic plurality: highest count, ties broken by repr order.

    Returns ``(value, count)``; on an empty mapping returns
    ``(default, 0)``.
    """
    if not counts:
        return default, 0
    best = max(counts.items(), key=lambda kv: (kv[1], ), default=None)
    top_count = best[1]
    tied = sorted(
        (value for value, c in counts.items() if c == top_count), key=repr
    )
    return tied[0], top_count
