"""Byzantine Agreement with Homonyms -- a full reproduction.

Reproduces Delporte-Gallet, Fauconnier, Guerraoui, Kermarrec, Ruppert,
Tran-The: *Byzantine Agreement with Homonyms*, PODC 2011: a round-based
simulator for homonymous message-passing systems, all four algorithm
families of the paper, executable versions of every lower-bound
construction, and the analysis/benchmark layer regenerating Table 1 and
Figures 1-7.

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro.core import BINARY, SystemParams, Synchrony, balanced_assignment
    from repro.psync import dls_factory, dls_horizon
    from repro.sim import SilenceUntil, run_agreement

    params = SystemParams(n=7, ell=6, t=1,
                          synchrony=Synchrony.PARTIALLY_SYNCHRONOUS)
    result = run_agreement(
        params=params,
        assignment=balanced_assignment(7, 6),
        factory=dls_factory(params, BINARY),
        proposals={k: k % 2 for k in range(6)},
        byzantine=(6,),
        drop_schedule=SilenceUntil(16),
        max_rounds=dls_horizon(params, 16),
    )
    assert result.verdict.ok

Package layout:

* :mod:`repro.core` -- parameters, identities, messages, problem spec;
* :mod:`repro.sim` -- the round engine, synchrony models, adversary API;
* :mod:`repro.classic` -- unique-identifier baselines (EIG, Phase-King)
  in the Figure 2 functional form;
* :mod:`repro.homonyms` -- the Figure 3 transformation ``T(A)``;
* :mod:`repro.broadcast` -- authenticated broadcast (Proposition 6) and
  its multiplicity variant (Figure 6);
* :mod:`repro.psync` -- the partially synchronous protocols (Figures 5
  and 7) and proper-set maintenance;
* :mod:`repro.adversaries` -- generic attacks plus the Figure 1 / Figure
  4 / Lemma 17 lower-bound constructions;
* :mod:`repro.analysis` -- solvability predicates, quorum lemmas, Table 1;
* :mod:`repro.experiments` -- the cell-validation harness, the parallel
  campaign engine (:mod:`repro.experiments.campaign`: worker-pool
  fan-out, on-disk unit cache, sharding, JSON/Markdown reports), and
  text reports;
* :mod:`repro.explore` -- the bounded adversary-strategy explorer:
  systematic small-scope search over every strategy in a finite
  emission alphabet, producing replayable violation witnesses at the
  unsolvable edge of Table 1 and bounded exhaustiveness certificates
  just inside it;
* :mod:`repro.atlas` -- the solvability atlas: the ``(n, t, ell)`` x
  model lattice swept with closed-form, campaign, and explorer
  evidence fused per cell into provenance-annotated verdicts,
  streamed through a resumable JSONL log and rendered as the
  machine-derived Table 1 plus boundary maps;
* :mod:`repro.cli` -- the ``python -m repro`` command line
  (``table1`` / ``check`` / ``run`` / ``attack`` / ``explore`` /
  ``campaign`` / ``atlas``).

Start with the top-level ``README.md`` for a worked CLI session and
``docs/ARCHITECTURE.md`` for the package <-> paper map and the module
dependency diagram.
"""

__version__ = "1.0.0"

__all__ = [
    "adversaries",
    "analysis",
    "atlas",
    "broadcast",
    "classic",
    "core",
    "experiments",
    "explore",
    "homonyms",
    "psync",
    "sim",
]
