"""Explorer results: violation witnesses and exhaustiveness certificates.

A bounded exploration ends in exactly one of two ways, and both are
first-class artifacts:

* a :class:`Certificate` with ``outcome == "violation"`` carries a
  concrete, replayable :class:`~repro.explore.strategy.StrategyScript`
  plus the property it violated -- the machine-checked analogue of the
  paper's lower-bound constructions;
* a :class:`Certificate` with ``outcome == "exhausted"`` states that
  *no* strategy within the explored family (alphabet, cut set, depth --
  all recorded in the certificate) produces a safety violation, with
  the search counters that make the claim auditable.

The counters include the **exact** size the strategy tree would have
had without transposition/symmetry sharing (``raw_tree_size``, computed
bottom-up by crediting every table hit with the full subtree it
avoided), so the pruning factor reported by benchmarks and the CLI is a
measurement, not an estimate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.explore.strategy import StrategyScript


@dataclass
class SearchStats:
    """Counters accumulated by one exploration."""

    #: Nodes whose children were actually expanded (engine rounds run
    #: from them).
    nodes_expanded: int = 0
    #: Children generated across all expanded nodes, after per-node
    #: payload deduplication.
    children_generated: int = 0
    #: Per-slot face options discarded because another source produced
    #: a byte-identical payload (alphabet collisions, counted before
    #: the per-receiver product -- each one removes a whole slice of
    #: would-be duplicate children).
    children_deduped: int = 0
    #: Children answered from the transposition table instead of being
    #: explored.
    transposition_hits: int = 0
    #: Exact node count of the unshared strategy tree (what a naive
    #: enumeration would have visited).
    raw_tree_size: int = 0
    #: Deepest round reached.
    max_depth: int = 0
    #: Wall-clock seconds.
    elapsed_s: float = 0.0

    @property
    def pruning_factor(self) -> float:
        """How many raw-tree nodes each explored node stood in for."""
        return self.raw_tree_size / max(1, self.nodes_expanded)

    def deterministic_summary(self) -> str:
        """The search counters without wall-clock time.

        Everything here is a pure function of the scenario (the search
        is deterministic), so consumers that need byte-stable text --
        the atlas's streamed evidence rows -- use this instead of
        :meth:`summary`.

        Returns:
            The counter summary, ``elapsed_s`` excluded.
        """
        # raw_tree_size is only complete for exhausted searches; a
        # violation aborts mid-count, so the comparison is omitted.
        raw = (
            f"raw tree {self.raw_tree_size} nodes "
            f"-> {self.pruning_factor:.1f}x reduction; "
            if self.raw_tree_size else ""
        )
        return (
            f"{self.nodes_expanded} nodes expanded "
            f"({self.children_generated} children, "
            f"{self.children_deduped} duplicate faces, "
            f"{self.transposition_hits} transposition hits); "
            + raw
            + f"depth {self.max_depth}"
        )

    def summary(self) -> str:
        return f"{self.deterministic_summary()}, {self.elapsed_s:.2f}s"


@dataclass
class Certificate:
    """Outcome of one bounded exploration.

    ``outcome`` is ``"violation"`` (a witness strategy was found) or
    ``"exhausted"`` (the whole bounded family was searched clean).
    """

    outcome: str
    scenario: dict
    stats: SearchStats
    witness: StrategyScript | None = None
    violation: str = ""
    violation_round: int | None = None
    decisions: dict = field(default_factory=dict)

    @property
    def found_violation(self) -> bool:
        return self.outcome == "violation"

    def consistent_with(self, predicted_solvable: bool) -> bool:
        """Does this outcome agree with the Table 1 prediction?

        A solvable configuration must certify clean; an unsolvable one
        is confirmed by a violation (an exhausted search below the
        bound is *not* a contradiction -- the bounded family simply
        missed the attack -- but it is reported as inconsistent so the
        caller widens the scope).
        """
        return self.found_violation is (not predicted_solvable)

    def summary(self) -> str:
        lines = [f"explore: {self.outcome.upper()}"]
        for key in ("params", "assignment", "byzantine", "proposals",
                    "depth", "mode", "ghosts", "cuts"):
            if key in self.scenario:
                lines.append(f"  {key}: {self.scenario[key]}")
        if self.found_violation:
            lines.append(f"  violated: {self.violation} "
                         f"(round {self.violation_round})")
            if self.decisions:
                lines.append(f"  decisions: {self.decisions}")
            if self.witness is not None:
                lines.append("  witness " + self.witness.describe())
        else:
            lines.append("  no safety violation within the explored family")
        lines.append(f"  search: {self.stats.summary()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "scenario": self.scenario,
            "violation": self.violation,
            "violation_round": self.violation_round,
            "decisions": {str(k): repr(v) for k, v in self.decisions.items()},
            "witness": None if self.witness is None else self.witness.to_dict(),
            "stats": {
                "nodes_expanded": self.stats.nodes_expanded,
                "children_generated": self.stats.children_generated,
                "children_deduped": self.stats.children_deduped,
                "transposition_hits": self.stats.transposition_hits,
                "raw_tree_size": self.stats.raw_tree_size,
                "pruning_factor": self.stats.pruning_factor,
                "max_depth": self.stats.max_depth,
                "elapsed_s": self.stats.elapsed_s,
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
