"""Exploration as campaign work: shard the frontier across the pool.

One exploration is CPU-bound and independent of every other, which is
exactly the shape :mod:`repro.experiments.campaign` parallelises.  This
module provides the slice layer: :func:`explore_slice_keys` enumerates
the (assignment, Byzantine placement) frontier of one configuration and
:func:`run_explore_unit` executes one slice -- the worker entry the
campaign engine's ``"explore"`` unit kind calls.  Results reuse the
:class:`~repro.experiments.harness.RunRecord` shape so reports, caching
and the consistency fold need no new machinery: for predicted-solvable
configurations every slice must certify clean (``ok``), for
predicted-unsolvable ones a found violation becomes the cell's
impossibility ``demonstration``.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.analysis.bounds import solvable
from repro.core.identity import (
    IdentityAssignment,
    balanced_assignment,
    stacked_assignment,
)
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY, AgreementProblem
from repro.experiments.harness import RunRecord
from repro.explore.search import default_scenario, explore

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS


def explore_battery(t: int = 1) -> list[tuple[str, SystemParams]]:
    """The tightness frontier worth exploring, as campaign cells.

    For each synchrony model: the configuration *just past* the bound
    (where the explorer must find a violation) and the minimal one
    *just inside* it (where it must certify exhaustively clean).

    Args:
        t: The fault budget (scope grows quickly; ``t = 1`` is the
            intended small scope).

    Returns:
        ``(label, params)`` pairs in frontier order.
    """
    n_sync = 3 * t
    return [
        ("explore sync violation", SystemParams(n=n_sync, ell=n_sync, t=t)),
        ("explore sync certificate",
         SystemParams(n=n_sync + 1, ell=n_sync + 1, t=t)),
        ("explore psync violation",
         SystemParams(n=n_sync, ell=n_sync, t=t, synchrony=PSYNC)),
        ("explore psync certificate",
         SystemParams(n=n_sync + 1, ell=n_sync + 1, t=t, synchrony=PSYNC)),
    ]


def _assignment_battery(params: SystemParams) -> list[IdentityAssignment]:
    """Assignments explored per configuration (deduplicated)."""
    candidates = [
        balanced_assignment(params.n, params.ell),
        stacked_assignment(params.n, params.ell),
    ]
    seen: set[tuple[int, ...]] = set()
    result = []
    for assignment in candidates:
        if assignment.ids not in seen:
            seen.add(assignment.ids)
            result.append(assignment)
    return result


def _placement_battery(
    params: SystemParams, quick: bool
) -> list[tuple[int, ...]]:
    """Byzantine placements explored: every window of ``t`` slots."""
    n, t = params.n, params.t
    windows = []
    seen: set[tuple[int, ...]] = set()
    for start in range(n):
        placement = tuple(sorted((start + j) % n for j in range(t)))
        if placement not in seen:
            seen.add(placement)
            windows.append(placement)
    if quick:
        windows = windows[:2]
    return windows


def explore_slice_keys(
    params: SystemParams, seed: int = 0, quick: bool = True
) -> list[tuple[int, int]]:
    """The (assignment index, placement index) frontier of one config.

    Mirrors :func:`repro.experiments.harness.solvable_slice_keys`: each
    key is one independently executable unit of exploration work, so the
    campaign engine can shard the frontier across processes or machines.

    Args:
        params: The configuration.
        seed: Accepted for interface symmetry (exploration is
            deterministic; the seed does not enter).
        quick: Trim the placement battery.

    Returns:
        The ordered key list.
    """
    del seed  # deterministic search: kept for slice-interface symmetry
    return [
        (a_idx, b_idx)
        for a_idx in range(len(_assignment_battery(params)))
        for b_idx in range(len(_placement_battery(params, quick)))
    ]


def _input_patterns(
    params: SystemParams,
    problem: AgreementProblem,
    correct: tuple[int, ...],
    quick: bool,
) -> list[tuple[str, dict]]:
    """Input patterns explored per slice.

    Mixed inputs are where the frontier violations live (unanimity pins
    the decision through validity); unanimous patterns additionally
    exercise validity on the certificate side.
    """
    domain = problem.domain
    mixed = {
        k: domain[pos % len(domain)] for pos, k in enumerate(correct)
    }
    patterns = [("mixed", mixed)]
    if solvable(params):
        values = domain if not quick else domain[:1]
        patterns.extend(
            (f"unanimous-{value!r}", {k: value for k in correct})
            for value in values
        )
    return patterns


def run_explore_unit(
    params: SystemParams,
    assignment_index: int,
    byzantine_index: int,
    seed: int = 0,
    quick: bool = True,
    problem: AgreementProblem = BINARY,
) -> dict:
    """Execute one exploration slice; the campaign worker entry point.

    Args:
        params: The configuration to explore.
        assignment_index: Index into the assignment battery.
        byzantine_index: Index into the placement battery.
        seed: Interface symmetry only (see :func:`explore_slice_keys`).
        quick: Trim input patterns and placements.
        problem: The agreement problem.

    Returns:
        ``{"algorithm", "records", "demonstration",
        "demonstration_kind"}`` where records are
        :class:`~repro.experiments.harness.RunRecord` dicts -- ``rounds``
        carries the nodes expanded and ``messages`` the children
        generated, so campaign totals reflect search effort.
    """
    del seed
    assignment = _assignment_battery(params)[assignment_index]
    byzantine = _placement_battery(params, quick)[byzantine_index]
    predicted = solvable(params)
    byz_set = set(byzantine)
    correct = tuple(k for k in range(params.n) if k not in byz_set)

    algorithm = ""
    records: list[RunRecord] = []
    demonstration = ""
    for pattern_name, proposals in _input_patterns(
        params, problem, correct, quick
    ):
        scenario = default_scenario(
            params,
            assignment=assignment,
            byzantine=byzantine,
            proposals=proposals,
            problem=problem,
        )
        algorithm = scenario.algorithm
        certificate = explore(scenario)
        label = (
            f"explore a{assignment_index}b{byzantine_index} {pattern_name}"
        )
        if predicted:
            ok = not certificate.found_violation
            detail = (
                "certified clean: " + certificate.stats.summary()
                if ok else
                f"UNEXPECTED {certificate.violation} "
                f"(round {certificate.violation_round})"
            )
        else:
            # A violation below the bound is the *expected* outcome and
            # becomes the cell's impossibility demonstration; a clean
            # bounded sweep is simply inconclusive for this pattern.
            ok = True
            if certificate.found_violation and not demonstration:
                demonstration = (
                    f"explorer witness [{pattern_name}]: "
                    f"{certificate.violation} "
                    f"(round {certificate.violation_round}, "
                    f"{certificate.stats.nodes_expanded} nodes searched)"
                )
            detail = (
                f"violation found: {certificate.violation}"
                if certificate.found_violation
                else "bounded sweep found no violation (inconclusive)"
            )
        records.append(RunRecord(
            label=label,
            ok=ok,
            detail=detail,
            rounds=certificate.stats.nodes_expanded,
            messages=certificate.stats.children_generated,
        ))
    return {
        "algorithm": algorithm or "explore",
        "records": [asdict(r) for r in records],
        "demonstration": demonstration,
        "demonstration_kind": "explorer" if demonstration else "",
    }
