"""Bounded adversary-strategy exploration (small-scope model checking).

The paper's theorems quantify over every Byzantine strategy; the rest
of this package tests against *chosen* strategies.  :mod:`repro.explore`
closes the gap at small scope: it systematically enumerates adversary
strategies round by round over a finite emission alphabet
(:mod:`~repro.explore.alphabet`), drives the ordinary
:class:`~repro.sim.network.RoundEngine` through the resulting strategy
tree with checkpoint/restore (:mod:`~repro.explore.search`), and
returns either a concrete replayable violation
(:mod:`~repro.explore.strategy`) or an explicit bounded-exhaustiveness
certificate (:mod:`~repro.explore.certificate`).

On the tightness frontier of Table 1 this *re-discovers* the paper's
lower bounds instead of replaying them: at ``n = 3t`` (synchronous) and
``2*ell = n + 3t`` (partially synchronous) the explorer finds agreement
violations no handcrafted adversary in :mod:`repro.adversaries`
triggers, while just inside the bounds it certifies their absence.

Entry points: :func:`~repro.explore.search.default_scenario` +
:func:`~repro.explore.search.explore`, the ``python -m repro explore``
subcommand, and the ``explore`` campaign-unit kind
(:mod:`~repro.explore.units`) that shards frontier sweeps across the
campaign worker pool.
"""

from repro.explore.alphabet import GhostBank, GhostPlan
from repro.explore.certificate import Certificate, SearchStats
from repro.explore.search import (
    ExploreScenario,
    default_scenario,
    explore,
    replay_witness,
)
from repro.explore.strategy import StrategyScript, StrategyTreeAdversary
from repro.explore.units import (
    explore_battery,
    explore_slice_keys,
    run_explore_unit,
)

__all__ = [
    "Certificate",
    "ExploreScenario",
    "GhostBank",
    "GhostPlan",
    "SearchStats",
    "StrategyScript",
    "StrategyTreeAdversary",
    "default_scenario",
    "explore",
    "explore_battery",
    "explore_slice_keys",
    "replay_witness",
    "run_explore_unit",
]
