"""Strategy scripts: one branch of the strategy tree, made replayable.

The explorer's depth-first search works directly on the engine's
split-phase API, but everything it finds is exported as a
:class:`StrategyScript` -- a plain round-indexed table of emissions plus
an optional network cut.  A script replays through the *normal*
execution pipeline (:func:`repro.sim.runner.run_agreement` with a
:class:`StrategyTreeAdversary` and an
:class:`~repro.sim.partial.ExplicitDrops` schedule), which is what turns
an explorer-found violation into an ordinary regression test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.sim.adversary import Adversary, AdversaryView, Emission
from repro.sim.partial import DropSchedule, ExplicitDrops, NoDrops

#: One round of scripted emissions: ``byz slot -> recipient -> payloads``.
RoundEmissions = Mapping[int, Mapping[int, tuple[Hashable, ...]]]


@dataclass(frozen=True)
class StrategyScript:
    """A concrete adversary strategy, round by round.

    Attributes
    ----------
    emissions:
        ``round -> byz slot -> recipient -> payloads``.  Rounds absent
        from the mapping are silent.
    cut:
        Optional partition ``(block_a, block_b)`` of correct process
        indices whose crossing messages are dropped while the cut is
        active (the explorer's network-adversary dimension; only
        meaningful under partial synchrony).
    cut_until:
        First round from which the cut no longer drops (the drop set is
        finite, as the DLS basic model requires).
    """

    emissions: Mapping[int, RoundEmissions] = field(default_factory=dict)
    cut: tuple[tuple[int, ...], tuple[int, ...]] | None = None
    cut_until: int = 0

    def drop_schedule(self) -> DropSchedule:
        """The script's network behaviour as an engine drop schedule."""
        if self.cut is None or self.cut_until <= 0:
            return NoDrops()
        block_a, block_b = self.cut
        drops = [
            (r, s, q)
            for r in range(self.cut_until)
            for s in block_a for q in block_b
        ]
        drops += [(r, q, s) for r, s, q in drops]
        return ExplicitDrops(drops)

    def rounds(self) -> int:
        """Rounds the script says anything about (emissions or cut)."""
        last_emission = max(self.emissions, default=-1) + 1
        return max(last_emission, self.cut_until)

    def describe(self) -> str:
        lines = [f"strategy over {self.rounds()} rounds"]
        if self.cut is not None:
            lines.append(
                f"  cut {list(self.cut[0])} | {list(self.cut[1])} "
                f"until round {self.cut_until}"
            )
        for r in sorted(self.emissions):
            per_slot = self.emissions[r]
            parts = []
            for slot in sorted(per_slot):
                for q in sorted(per_slot[slot]):
                    for payload in per_slot[slot][q]:
                        parts.append(f"{slot}->{q}: {payload!r}")
            if parts:
                lines.append(f"  r{r}: " + "; ".join(parts))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible form (payloads degrade to their ``repr``)."""
        return {
            "cut": None if self.cut is None else [
                list(self.cut[0]), list(self.cut[1])
            ],
            "cut_until": self.cut_until,
            "emissions": {
                str(r): {
                    str(slot): {
                        str(q): [repr(p) for p in payloads]
                        for q, payloads in per_recipient.items()
                    }
                    for slot, per_recipient in per_slot.items()
                }
                for r, per_slot in self.emissions.items()
            },
        }


class StrategyTreeAdversary(Adversary):
    """An adversary that plays one branch of the strategy tree.

    During search the explorer *writes* the branch round by round (via
    :meth:`play`); during replay the finished script is passed in whole.
    Either way the engine sees an ordinary :class:`Adversary` whose
    answers go through the same ``normalize_emissions`` enforcement as
    every handcrafted attack in :mod:`repro.adversaries`.
    """

    def __init__(self, script: StrategyScript | None = None) -> None:
        self._rounds: dict[int, RoundEmissions] = (
            dict(script.emissions) if script is not None else {}
        )

    def play(self, round_no: int, emissions: RoundEmissions) -> None:
        """Script the emissions for ``round_no`` (search-time use)."""
        self._rounds[round_no] = emissions

    def emissions(self, view: AdversaryView) -> Mapping[int, Emission]:
        return self._rounds.get(view.round_no, {})
