"""The per-round emission alphabet of the bounded strategy explorer.

The paper's theorems quantify over *every* Byzantine strategy.  A
machine cannot branch over "every hashable payload", but it does not
need to: the adversary behaviours that realise the paper's lower bounds
are built from three kinds of *faces*,

* **silence** -- the slot sends nothing (subsumes crashes and drops);
* **mimicry** -- the slot re-sends, under its own authenticated
  identifier, the payload some correct process broadcast this round
  (rushing replay, legal because the adversary sees current payloads);
* **ghosts** -- the slot runs a private *correct* instance of the
  algorithm under test with an adversarially chosen input and an
  adversarially restricted view of the network, and sends whatever that
  instance would broadcast.  A ghost with full visibility is the
  classic obedient imposter; a ghost that only hears one side of a
  partition is exactly the replayed "core" of the Figure 4
  construction, re-derived live instead of from a recorded trace.

Every face is a :func:`~repro.sim.adversary.normalize_emissions`-legal
payload by construction (one message per recipient, hashable content),
so the branching the explorer does -- assigning one face per Byzantine
slot per receiver (or per partition block) per round -- stays inside
the model rules the engine enforces.

:class:`GhostBank` owns the ghost instances for one branch of the
search tree.  Ghosts are deterministic functions of the correct
payload history they were shown, which is what lets the explorer's
transposition table treat "same process states + same ghost states" as
"same future".
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Mapping

from repro.core.canonical import canonical_state_key
from repro.core.messages import Inbox, Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.explore.search import ExploreScenario

#: Face sources, as small tagged tuples so they serialise trivially.
SILENT = ("silent",)


def ghost_source(plan_index: int) -> tuple:
    """The face source replaying ghost ``plan_index``'s current payload."""
    return ("ghost", plan_index)


def mimic_source(slot: int) -> tuple:
    """The face source re-sending correct slot ``slot``'s current payload."""
    return ("mimic", slot)


@dataclass(frozen=True)
class GhostPlan:
    """One ghost: a correct instance with chosen input and visibility.

    Attributes
    ----------
    proposal:
        The input the ghost pretends to have proposed.
    visible:
        Correct slot indices whose broadcasts the ghost hears, or
        ``None`` for full visibility.  A ghost always hears itself
        (self-delivery is unconditional in the model).
    """

    proposal: Hashable
    visible: tuple[int, ...] | None = None

    def sees(self, slot: int) -> bool:
        return self.visible is None or slot in self.visible

    def describe(self) -> str:
        view = "all" if self.visible is None else str(list(self.visible))
        return f"ghost(input={self.proposal!r}, sees={view})"


class GhostBank:
    """The ghost instances of one search-tree branch.

    One ghost process exists per ``(Byzantine slot, plan)`` pair -- the
    same plan yields different ghosts for different slots because each
    slot authenticates under its own identifier.  The bank is advanced
    exactly once per explored node via :meth:`step` and duplicated for
    divergent branches via :meth:`fork`.
    """

    def __init__(
        self,
        scenario: "ExploreScenario",
        plan_indices: tuple[int, ...] | None = None,
    ) -> None:
        self._scenario = scenario
        indices = (
            tuple(range(len(scenario.ghost_plans)))
            if plan_indices is None else tuple(plan_indices)
        )
        self._ghosts: dict[tuple[int, int], object] = {}
        for slot in scenario.byzantine:
            ident = scenario.assignment.identifier_of(slot)
            for i in indices:
                plan = scenario.ghost_plans[i]
                self._ghosts[(slot, i)] = scenario.factory(ident, plan.proposal)
        #: Last composed payload per ghost (for self-delivery next round).
        self._last: dict[tuple[int, int], Hashable] = {}

    def fork(self) -> "GhostBank":
        """An independent deep copy for one divergent branch."""
        twin = object.__new__(GhostBank)
        twin._scenario = self._scenario
        twin._ghosts = copy.deepcopy(self._ghosts)
        twin._last = dict(self._last)
        return twin

    def step(
        self, round_no: int, prev_payloads: Mapping[int, Hashable] | None
    ) -> dict[tuple[int, int], Hashable]:
        """Advance every ghost into ``round_no`` and return its faces.

        For ``round_no > 0`` each ghost is first delivered the previous
        round's inbox as its restricted view saw it: the payloads of the
        visible correct slots plus its own previous broadcast.  Then
        every ghost composes its ``round_no`` payload.

        Args:
            round_no: The engine round about to be answered.
            prev_payloads: The correct payloads of ``round_no - 1``
                (``None`` exactly when ``round_no == 0``).

        Returns:
            ``(byzantine slot, plan index) -> payload`` faces for this
            round (``None`` entries mean the ghost is silent).
        """
        scenario = self._scenario
        numerate = scenario.params.numerate
        ident_of = scenario.assignment.identifier_of
        if round_no > 0 and prev_payloads is not None:
            for (slot, i), ghost in self._ghosts.items():
                plan = scenario.ghost_plans[i]
                messages = [
                    Message(ident_of(k), payload)
                    for k, payload in prev_payloads.items()
                    if plan.sees(k)
                ]
                own = self._last.get((slot, i))
                if own is not None:
                    messages.append(Message(ident_of(slot), own))
                ghost.deliver(round_no - 1, Inbox(messages, numerate=numerate))
        faces: dict[tuple[int, int], Hashable] = {}
        for key, ghost in self._ghosts.items():
            payload = ghost.compose(round_no)
            faces[key] = payload
            self._last[key] = payload
        return faces

    def digest(self) -> str:
        """Canonical digest of every ghost's state (transposition input)."""
        return canonical_state_key(
            sorted(
                (slot, i, canonical_state_key(ghost))
                for (slot, i), ghost in self._ghosts.items()
            )
        )
