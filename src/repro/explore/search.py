"""Bounded adversary-strategy exploration: the search itself.

Instead of running one fixed :class:`~repro.sim.adversary.Adversary`,
the explorer drives the unified execution kernel
(:class:`~repro.sim.kernel.ExecutionKernel`) through a depth-first
search over *every* strategy expressible in a finite per-round emission
alphabet (see :mod:`repro.explore.alphabet`), using the kernel's
split-phase API (``compose_round`` / ``finish_round``) and
checkpoint/restore to branch executions without re-running prefixes.

Two search modes cover the two shapes of the paper's lower bounds:

* **per-round mode** (synchronous scopes): at every round, every
  Byzantine slot independently picks one face per correct receiver.
  The state space is tamed by a transposition table keyed on
  :func:`~repro.core.canonical.canonical_state_key` digests of the
  post-round process states (plus ghost states): branches that lead to
  the same states have the same future and are explored once.  When
  the scenario is receiver-symmetric (no cuts, full-visibility ghosts)
  the key sorts the per-receiver digests, additionally collapsing
  strategies that differ only by a permutation of interchangeable
  receivers.  Naive branching is infeasible even at ``n = 4``; the
  table is what makes the sweep run in seconds (the certificate's
  ``raw_tree_size`` counter records the exact unshared tree size for
  comparison).
* **persistent-face mode** (partially synchronous scopes): the
  adversary commits, per partition block, to one face source for the
  whole execution -- the shape of the Figure 4 construction, where the
  Byzantine core replays one coherent simulated execution per wing.
  Branching collapses to the choice of cut and face assignment, which
  keeps the much deeper partially-synchronous horizons (phases of
  eight rounds) tractable.

Either way, a found violation is returned as a replayable
:class:`~repro.explore.strategy.StrategyScript` and an exhausted
search as an explicit bounded-exhaustiveness certificate.
"""

from __future__ import annotations

import copy
import itertools
import time
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.analysis.bounds import solvable
from repro.core.canonical import canonical_state_key
from repro.core.errors import ConfigurationError
from repro.core.identity import IdentityAssignment, balanced_assignment
from repro.core.messages import Inbox, Message
from repro.core.params import SystemParams, Synchrony
from repro.core.problem import BINARY, AgreementProblem
from repro.explore.alphabet import (
    SILENT,
    GhostBank,
    GhostPlan,
    ghost_source,
    mimic_source,
)
from repro.explore.certificate import Certificate, SearchStats
from repro.explore.strategy import StrategyScript, StrategyTreeAdversary
from repro.sim.kernel import BasicPsync, ExecutionKernel, LockStep
from repro.sim.runner import ExecutionResult, make_processes, run_execution

#: A network cut: two blocks of correct indices that cannot hear each
#: other while the cut is active.  ``None`` means no cut.
Cut = tuple[tuple[int, ...], tuple[int, ...]]


@dataclass
class ExploreScenario:
    """One bounded exploration problem, fully specified.

    The scenario pins everything the paper's quantifier ranges over
    except the adversary strategy: parameters, identifier assignment,
    Byzantine placement and inputs.  The strategy family searched is
    described by the ghost plans, mimic flag, cut alternatives and
    depth -- all of which end up verbatim in the resulting certificate,
    because a bounded certificate is only as good as its stated bounds.
    """

    params: SystemParams
    assignment: IdentityAssignment
    byzantine: tuple[int, ...]
    factory: Callable[[int, Hashable], object]
    proposals: dict[int, Hashable]
    depth: int
    problem: AgreementProblem = BINARY
    ghost_plans: tuple[GhostPlan, ...] = ()
    cuts: tuple[Cut | None, ...] = (None,)
    include_mimics: bool = True
    persistent_faces: bool = False
    require_termination: bool = False
    max_children: int = 4096
    algorithm: str = ""

    @property
    def correct(self) -> tuple[int, ...]:
        """Indices of correct processes, ascending."""
        byz = set(self.byzantine)
        return tuple(k for k in range(self.params.n) if k not in byz)

    def describe_dict(self) -> dict:
        """The certificate's scenario section.

        Returns:
            A JSON-compatible dict recording everything the bounded
            family is quantified over -- parameters, assignment,
            Byzantine placement, inputs, depth, mode, ghost plans,
            mimic flag and cut alternatives -- so a certificate's
            claim is auditable against its stated bounds.
        """
        return {
            "params": self.params.describe(),
            "algorithm": self.algorithm,
            "assignment": self.assignment.describe(),
            "byzantine": list(self.byzantine),
            "proposals": {k: repr(v) for k, v in sorted(self.proposals.items())},
            "depth": self.depth,
            "mode": (
                "persistent-faces" if self.persistent_faces else "per-round"
            ),
            "ghosts": [p.describe() for p in self.ghost_plans],
            "mimics": self.include_mimics,
            "cuts": [
                "none" if c is None else f"{list(c[0])}|{list(c[1])}"
                for c in self.cuts
            ],
        }


class _ViolationFound(Exception):
    """Internal unwind carrying a freshly found witness."""

    def __init__(
        self,
        script: StrategyScript,
        detail: str,
        round_no: int,
        decisions: dict[int, Hashable],
    ) -> None:
        super().__init__(detail)
        self.script = script
        self.detail = detail
        self.round_no = round_no
        self.decisions = decisions


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------
def _bipartitions(correct: tuple[int, ...]) -> list[Cut]:
    """All two-block partitions of the correct set, canonically ordered.

    The first block always contains the smallest index, so each
    partition appears once.  Exponential in the correct count; guarded
    by the small-scope check in :func:`default_scenario`.
    """
    rest = correct[1:]
    cuts: list[Cut] = []
    for size in range(len(rest) + 1):
        for extra in itertools.combinations(rest, size):
            block_a = (correct[0],) + extra
            block_b = tuple(k for k in correct if k not in block_a)
            if block_b:
                cuts.append((block_a, block_b))
    return cuts


def _default_depth(params: SystemParams, problem: AgreementProblem) -> int:
    """A horizon by which the relevant decisions (and attacks) land.

    Synchronous: one phase of the Figure 3 transformation per simulated
    EIG round plus a slack phase.  Partially synchronous: one Figure 5
    phase per identifier plus one -- every identifier leads once, which
    is when both the algorithm's decisions and the partition-style
    attacks on it resolve.
    """
    from repro.classic.eig import EIGSpec
    from repro.homonyms.transform import transform_horizon
    from repro.psync.dls_homonyms import ROUNDS_PER_PHASE
    from repro.psync.restricted import restricted_horizon

    if params.restricted and params.numerate:
        return restricted_horizon(params, 0)
    if params.synchrony is Synchrony.SYNCHRONOUS:
        spec = EIGSpec(params.ell, params.t, problem, unchecked=True)
        return transform_horizon(spec, slack_phases=1)
    return ROUNDS_PER_PHASE * (params.ell + 1)


def default_scenario(
    params: SystemParams,
    assignment: IdentityAssignment | None = None,
    byzantine: tuple[int, ...] | None = None,
    proposals: Mapping[int, Hashable] | None = None,
    depth: int | None = None,
    problem: AgreementProblem = BINARY,
    persistent: bool | None = None,
    include_mimics: bool = True,
) -> ExploreScenario:
    """Build the standard exploration scenario for one configuration.

    The algorithm under test is the paper's algorithm for the model
    family (built ``unchecked`` when the configuration is predicted
    unsolvable -- running below the bound is the whole point there).
    Ghost plans cover every input value with full visibility plus, under
    partial synchrony, every value restricted to each side of each
    candidate cut -- the family containing the Figure 4-style partition
    strategies.

    Args:
        params: The configuration to explore.
        assignment: Identifier assignment (default: balanced).
        byzantine: Byzantine slots (default: the last ``t`` slots).
        proposals: Correct inputs (default: alternating domain values).
        depth: Round horizon (default: :func:`_default_depth`).
        problem: The agreement problem.
        persistent: Force persistent-face mode (default: on exactly for
            partially synchronous scopes, whose horizons are too deep
            for per-round branching).
        include_mimics: Offer mimic faces in the alphabet.

    Returns:
        The ready-to-run scenario.

    Raises:
        ConfigurationError: When the scope is too large to explore
            (more than 6 correct processes would need cut enumeration).
    """
    from repro.experiments.harness import algorithm_for

    assignment = (
        balanced_assignment(params.n, params.ell)
        if assignment is None else assignment
    )
    byzantine = (
        tuple(range(params.n - params.t, params.n))
        if byzantine is None else tuple(sorted(byzantine))
    )
    byz_set = set(byzantine)
    correct = tuple(k for k in range(params.n) if k not in byz_set)
    if proposals is None:
        domain = problem.domain
        proposals = {
            k: domain[pos % len(domain)] for pos, k in enumerate(correct)
        }
    else:
        proposals = dict(proposals)

    unchecked = not solvable(params)
    algorithm, factory, _ = algorithm_for(params, problem, unchecked=unchecked)
    if depth is None:
        depth = _default_depth(params, problem)

    psync = params.synchrony is Synchrony.PARTIALLY_SYNCHRONOUS
    if persistent is None:
        persistent = psync

    cuts: tuple[Cut | None, ...] = (None,)
    plans: list[GhostPlan] = [GhostPlan(v, None) for v in problem.domain]
    if psync:
        if len(correct) > 6:
            raise ConfigurationError(
                f"explore scope too large: {len(correct)} correct processes "
                f"need {2 ** (len(correct) - 1) - 1} cut candidates; "
                f"the explorer is a small-scope checker (<= 6 correct)"
            )
        parts = _bipartitions(correct)
        cuts = tuple(parts) + (None,)
        for block in sorted({b for cut in parts for b in cut}):
            for v in problem.domain:
                plans.append(GhostPlan(v, block))

    # Termination only counts as a violation when the horizon actually
    # covers the algorithm's decision bound; under the synchronous
    # transformation every correct process decides by the end of phase
    # ``t + 1``, i.e. within 3 * (t + 2) rounds.
    check_termination = (
        params.synchrony is Synchrony.SYNCHRONOUS
        and depth >= 3 * (params.t + 2)
    )
    return ExploreScenario(
        params=params,
        assignment=assignment,
        byzantine=byzantine,
        factory=factory,
        proposals=proposals,
        depth=depth,
        problem=problem,
        ghost_plans=tuple(plans),
        cuts=cuts,
        include_mimics=include_mimics,
        persistent_faces=persistent,
        require_termination=check_termination,
        algorithm=algorithm,
    )


# ----------------------------------------------------------------------
# Shared search plumbing
# ----------------------------------------------------------------------
def _build_engine(scenario: ExploreScenario, cut: Cut | None) -> ExecutionKernel:
    processes = make_processes(
        scenario.factory, scenario.assignment, scenario.proposals,
        scenario.byzantine,
    )
    timing = LockStep()
    if cut is not None:
        timing = BasicPsync(
            StrategyScript(
                emissions={}, cut=cut, cut_until=scenario.depth
            ).drop_schedule()
        )
    return ExecutionKernel(
        params=scenario.params,
        assignment=scenario.assignment,
        processes=processes,
        byzantine=scenario.byzantine,
        timing=timing,
    )


def _decision_violation(
    decided: Mapping[int, Hashable],
    scenario: ExploreScenario,
    correct: tuple[int, ...],
) -> str | None:
    """Agreement/validity check over a decided-so-far mapping.

    Safety is monotone in the decided set (decisions are final), so
    checking after every round catches a violation at the first round
    it becomes observable.
    """
    if not decided:
        return None
    values = sorted({repr(v) for v in decided.values()})
    if len(values) > 1:
        by_value: dict[str, list[int]] = {}
        for k, v in sorted(decided.items()):
            by_value.setdefault(repr(v), []).append(k)
        return "agreement: " + "; ".join(
            f"{procs} decided {value}"
            for value, procs in sorted(by_value.items())
        )
    proposed = {repr(scenario.proposals[k]) for k in correct}
    if len(proposed) == 1:
        (only,) = proposed
        bad = {k: v for k, v in decided.items() if repr(v) != only}
        if bad:
            return (
                f"validity: all correct proposed {only} but "
                + "; ".join(
                    f"process {k} decided {v!r}" for k, v in sorted(bad.items())
                )
            )
    return None


def _safety_violation(
    engine: ExecutionKernel, scenario: ExploreScenario
) -> tuple[str, dict[int, Hashable]] | None:
    """Engine-level wrapper of :func:`_decision_violation`."""
    decided = {
        k: engine.processes[k].decision
        for k in engine.correct
        if engine.processes[k].decided
    }
    detail = _decision_violation(decided, scenario, engine.correct)
    if detail is None:
        return None
    return detail, decided


def _script_from_path(
    scenario: ExploreScenario,
    path: Mapping[int, Mapping],
    cut: Cut | None,
    rounds: int,
) -> StrategyScript:
    emissions = {
        r: {slot: dict(per_q) for slot, per_q in em.items()}
        for r, em in path.items() if em
    }
    return StrategyScript(
        emissions=emissions,
        cut=cut,
        cut_until=rounds if cut is not None else 0,
    )


def _face_payload(
    source: tuple,
    slot: int,
    payloads: Mapping[int, Hashable],
    faces: Mapping[tuple[int, int], Hashable],
) -> Hashable:
    if source == SILENT:
        return None
    kind, arg = source
    if kind == "ghost":
        return faces.get((slot, arg))
    return payloads.get(arg)  # mimic


def _raw_emissions(
    scenario: ExploreScenario,
    blocks: tuple[tuple[int, ...], ...],
    per_slot_payloads: Mapping[int, tuple],
) -> dict[int, dict[int, tuple[Hashable, ...]]]:
    """Assemble one child's emissions from per-block payload picks."""
    raw: dict[int, dict[int, tuple[Hashable, ...]]] = {}
    for slot, picks in per_slot_payloads.items():
        per_recipient: dict[int, tuple[Hashable, ...]] = {}
        for block, payload in zip(blocks, picks):
            if payload is None:
                continue
            for q in block:
                per_recipient[q] = (payload,)
        if per_recipient:
            raw[slot] = per_recipient
    return raw


# ----------------------------------------------------------------------
# Per-round tree search
# ----------------------------------------------------------------------
def _tree_sources(scenario: ExploreScenario) -> list[tuple]:
    """Face sources offered per receiver in per-round mode.

    Ghost faces first (the attack-shaped choices), then mimics, then
    silence -- the order depth-first search tries them, which biases
    violation hunts toward equivocation without affecting exhaustive
    sweeps.
    """
    sources: list[tuple] = [
        ghost_source(i) for i in range(len(scenario.ghost_plans))
    ]
    if scenario.include_mimics:
        sources.extend(mimic_source(k) for k in scenario.correct)
    sources.append(SILENT)
    return sources


#: One per-receiver Byzantine delta: ``(slot, payload)`` pairs delivered
#: to a single receiver in one round.
Delta = tuple[tuple[int, Hashable], ...]


def _delta_options(
    scenario: ExploreScenario,
    payloads: Mapping[int, Hashable],
    faces: Mapping[tuple[int, int], Hashable],
    stats: SearchStats,
) -> list[Delta]:
    """The distinct Byzantine deltas one receiver can see this round.

    Because every Byzantine slot chooses per receiver independently,
    the children of a node factor into a product of *per-receiver*
    choices, each drawn from this list: one payload (or silence) per
    slot, deduplicated by delivered content.  Order is the search
    order: ghost faces first, silence last.
    """
    per_slot: list[list[Hashable]] = []
    sources = _tree_sources(scenario)
    for slot in scenario.byzantine:
        options: list[Hashable] = []
        seen: set[str] = set()
        for source in sources:
            payload = _face_payload(source, slot, payloads, faces)
            key = repr(payload)
            if key in seen:
                stats.children_deduped += 1
                continue
            seen.add(key)
            options.append(payload)
        per_slot.append(options)
    deltas: list[Delta] = []
    for picks in itertools.product(*per_slot):
        deltas.append(tuple(
            (slot, p)
            for slot, p in zip(scenario.byzantine, picks)
            if p is not None
        ))
    return deltas


def _is_symmetric(scenario: ExploreScenario, cut: Cut | None) -> bool:
    """Receivers are interchangeable: no cut, only full-visibility ghosts."""
    return cut is None and all(
        p.visible is None for p in scenario.ghost_plans
    )


def _post_states(
    scenario: ExploreScenario,
    engine: ExecutionKernel,
    mid,
    payloads: Mapping[int, Hashable],
    deltas: list[Delta],
    intern: dict[str, int],
) -> dict[int, list[tuple[int, bool, Hashable]]]:
    """Per-receiver post-round outcomes for every delta option.

    The key observation behind the explorer's throughput: a child's
    future is fully determined by each receiver's post-round state, and
    that state depends only on the Byzantine delta *that receiver* saw
    -- not on what other receivers got.  With ``k`` deltas and ``c``
    receivers there are ``k * c`` distinct per-receiver outcomes but
    ``k^c`` children, so each ``(receiver, delta)`` pair is delivered
    once to a scratch copy of the receiver and digested with
    :func:`~repro.core.canonical.canonical_state_key`; children then
    assemble their transposition keys from the precomputed (interned)
    digests without touching the engine.

    Args:
        scenario: The exploration scenario.
        engine: The engine, composed for this round.
        mid: The engine checkpoint taken after composing.
        payloads: This round's correct payloads.
        deltas: The per-receiver delta alphabet.
        intern: Global digest-string -> small-int table (shared with
            the transposition table so keys are tuples of ints).

    Returns:
        ``receiver -> [ (digest id, decided, decision) per delta ]``.
    """
    numerate = scenario.params.numerate
    ident_of = scenario.assignment.identifier_of
    r = engine.round_no
    senders = tuple(payloads)
    removable = engine.timing.active(r)
    result: dict[int, list[tuple[int, bool, Hashable]]] = {}
    for q in engine.correct:
        # Base (correct-sender) inbox, after the timing model's
        # removals -- mirrors ExecutionKernel._deliver_round.
        removed = (
            set(engine.timing.removed_senders(r, q, senders))
            if removable else set()
        )
        base = [
            Message(ident_of(s), payloads[s])
            for s in senders if s not in removed
        ]
        outcomes: list[tuple[int, bool, Hashable]] = []
        for delta in deltas:
            proc = copy.deepcopy(mid.processes[q])
            messages = base + [
                Message(ident_of(slot), p) for slot, p in delta
            ]
            proc.deliver(r, Inbox(messages, numerate=numerate))
            digest = canonical_state_key(proc)
            digest_id = intern.setdefault(digest, len(intern))
            outcomes.append((digest_id, proc.decided, proc.decision))
        result[q] = outcomes
    return result


def _emissions_from_combo(
    correct: tuple[int, ...],
    deltas: list[Delta],
    combo: tuple[int, ...],
) -> dict[int, dict[int, tuple[Hashable, ...]]]:
    """Reassemble one child's emission mapping from its delta picks."""
    raw: dict[int, dict[int, tuple[Hashable, ...]]] = {}
    for q, index in zip(correct, combo):
        for slot, payload in deltas[index]:
            raw.setdefault(slot, {})[q] = (payload,)
    return raw


def _dfs(
    scenario: ExploreScenario,
    engine: ExecutionKernel,
    bank: GhostBank,
    prev_payloads: Mapping[int, Hashable] | None,
    path: dict[int, dict],
    cut: Cut | None,
    cut_index: int,
    stats: SearchStats,
    table: dict,
    intern: dict[str, int],
) -> int:
    """Explore the subtree under the engine's current state.

    Every child's transposition key -- per-receiver post-round state
    digests (sorted when the scenario is receiver-symmetric), the ghost
    bank digest and the cut -- is assembled from :func:`_post_states`'s
    precomputed fragments *before* the child touches the engine, so an
    equivalent emission choice costs one dictionary probe.  Only
    children with a new key are materialised and recursed into.

    Returns the *raw* (unshared) size of the subtree, so transposition
    hits credit the full subtree they skipped -- the exact
    without-pruning comparison the certificate reports.

    Raises:
        _ViolationFound: As soon as any branch violates safety (or,
            where enabled, termination).
    """
    r = engine.round_no
    stats.nodes_expanded += 1
    stats.max_depth = max(stats.max_depth, r + 1)

    payloads = engine.compose_round()
    faces = bank.step(r, prev_payloads)
    deltas = _delta_options(scenario, payloads, faces, stats)
    correct = engine.correct
    total_children = len(deltas) ** len(correct)
    if total_children > scenario.max_children:
        raise ConfigurationError(
            f"round branching factor {total_children} exceeds the "
            f"max_children cap {scenario.max_children}; shrink the "
            f"alphabet or the scope"
        )
    stats.children_generated += total_children

    mid = engine.checkpoint()
    post = _post_states(scenario, engine, mid, payloads, deltas, intern)
    bank_id = intern.setdefault(bank.digest(), len(intern))
    symmetric = _is_symmetric(scenario, cut)
    last_round = r + 1 >= scenario.depth
    # Per-receiver key fragments: (own-payload id, post-state digest id)
    # per delta choice.  The own payload enters the key because ghosts
    # consume it next round, so it is part of the child's future.
    payload_ids = {
        q: intern.setdefault(repr(payloads.get(q)), len(intern))
        for q in correct
    }
    fragments = {
        q: [
            (payload_ids[q], outcome[0])
            for outcome in post[q]
        ]
        for q in correct
    }

    raw_size = 1
    for combo in itertools.product(range(len(deltas)), repeat=len(correct)):
        # Assemble the child's key without touching the engine.
        items = tuple(
            fragments[q][index] for q, index in zip(correct, combo)
        )
        if symmetric:
            items = tuple(sorted(items))
        key = (r + 1, cut_index, bank_id, items)
        cached = table.get(key)
        if cached is not None:
            stats.transposition_hits += 1
            raw_size += cached
            continue

        # Safety is decidable from the precomputed post-states alone.
        decided = {
            q: post[q][index][2]
            for q, index in zip(correct, combo)
            if post[q][index][1]
        }
        raw_emissions = _emissions_from_combo(correct, deltas, combo)
        path[r] = raw_emissions
        violation = _decision_violation(decided, scenario, correct)
        if violation is not None:
            engine.restore(mid)
            engine.finish_round(payloads, raw_emissions=raw_emissions)
            raise _ViolationFound(
                _script_from_path(scenario, path, cut, r + 1),
                violation, r, decided,
            )
        if len(decided) == len(correct):
            table[key] = 1
            raw_size += 1
            continue
        if last_round:
            if scenario.require_termination and cut is None:
                undecided = [q for q in correct if q not in decided]
                engine.restore(mid)
                engine.finish_round(payloads, raw_emissions=raw_emissions)
                raise _ViolationFound(
                    _script_from_path(scenario, path, cut, r + 1),
                    f"termination: correct processes {undecided} "
                    f"undecided after {r + 1} rounds",
                    r, {},
                )
            table[key] = 1
            raw_size += 1
            continue

        # New interior state: materialise and recurse.
        engine.restore(mid)
        engine.finish_round(payloads, raw_emissions=raw_emissions)
        subtree = _dfs(
            scenario, engine, bank.fork(), payloads, path, cut, cut_index,
            stats, table, intern,
        )
        table[key] = subtree
        raw_size += subtree
    path.pop(r, None)
    return raw_size


def _explore_tree(scenario: ExploreScenario, stats: SearchStats) -> int:
    table: dict = {}
    intern: dict[str, int] = {}
    total_raw = 0
    for cut_index, cut in enumerate(scenario.cuts):
        engine = _build_engine(scenario, cut)
        bank = GhostBank(scenario)
        total_raw += _dfs(
            scenario, engine, bank, None, {}, cut, cut_index, stats, table,
            intern,
        )
        stats.raw_tree_size = total_raw
    return total_raw


# ----------------------------------------------------------------------
# Persistent-face search
# ----------------------------------------------------------------------
def _persistent_sources(
    scenario: ExploreScenario,
    block: tuple[int, ...],
) -> list[tuple]:
    """Face sources offered to one block in persistent mode.

    Only ghosts whose visibility is this block or full are coherent
    faces for it (a ghost living on the other side of the cut is not a
    behaviour any one-sided adversary projection exhibits).  Matched
    ghosts come first, preferring the one whose input matches the
    block's own unanimous proposal -- the mirror-world face the
    partition constructions lead with.
    """
    matched: list[tuple[int, tuple]] = []
    full: list[tuple] = []
    for i, plan in enumerate(scenario.ghost_plans):
        if plan.visible == block:
            block_values = {
                repr(scenario.proposals[q]) for q in block
            }
            rank = 0 if {repr(plan.proposal)} == block_values else 1
            matched.append((rank, ghost_source(i)))
        elif plan.visible is None:
            full.append(ghost_source(i))
    sources = [s for _, s in sorted(matched, key=lambda e: e[0])] + full
    if scenario.include_mimics:
        sources.extend(mimic_source(k) for k in block)
    sources.append(SILENT)
    return sources


def _explore_persistent(scenario: ExploreScenario, stats: SearchStats) -> int:
    total = 0
    for cut in scenario.cuts:
        blocks: tuple[tuple[int, ...], ...] = (
            cut if cut is not None else (scenario.correct,)
        )
        block_sources = [_persistent_sources(scenario, b) for b in blocks]
        per_slot = [
            list(itertools.product(*block_sources))
            for _ in scenario.byzantine
        ]
        strategies = list(itertools.product(*per_slot))
        stats.children_generated += len(strategies)
        for assignment in strategies:
            committed = dict(zip(scenario.byzantine, assignment))
            used_plans = tuple(sorted({
                src[1]
                for picks in committed.values()
                for src in picks if src[0] == "ghost"
            }))
            engine = _build_engine(scenario, cut)
            bank = GhostBank(scenario, plan_indices=used_plans)
            prev: Mapping[int, Hashable] | None = None
            path: dict[int, dict] = {}
            for r in range(scenario.depth):
                payloads = engine.compose_round()
                faces = bank.step(r, prev)
                raw = _raw_emissions(
                    scenario, blocks,
                    {
                        slot: tuple(
                            _face_payload(src, slot, payloads, faces)
                            for src in picks
                        )
                        for slot, picks in committed.items()
                    },
                )
                engine.finish_round(payloads, raw_emissions=raw)
                path[r] = raw
                stats.nodes_expanded += 1
                stats.max_depth = max(stats.max_depth, r + 1)
                total += 1
                violation = _safety_violation(engine, scenario)
                if violation is not None:
                    detail, decisions = violation
                    raise _ViolationFound(
                        _script_from_path(scenario, path, cut, r + 1),
                        detail, r, decisions,
                    )
                if engine.all_correct_decided():
                    break
                prev = payloads
        stats.raw_tree_size = total
    return total


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def explore(scenario: ExploreScenario) -> Certificate:
    """Run one bounded exploration to a certificate.

    Args:
        scenario: The exploration problem (see :func:`default_scenario`
            for the standard construction).

    Returns:
        A violation certificate with a replayable witness, or a bounded
        exhaustiveness certificate with the search counters.
    """
    stats = SearchStats()
    start = time.perf_counter()  # reprolint: disable=RL002 -- diagnostic timing only
    try:
        if scenario.persistent_faces:
            raw = _explore_persistent(scenario, stats)
        else:
            raw = _explore_tree(scenario, stats)
    except _ViolationFound as found:
        stats.elapsed_s = time.perf_counter() - start  # reprolint: disable=RL002 -- diagnostic timing only
        # The raw-tree counter is only meaningful for completed sweeps;
        # a violation aborts mid-count (possibly with totals from
        # earlier, clean cut alternatives), so report none at all.
        stats.raw_tree_size = 0
        return Certificate(
            outcome="violation",
            scenario=scenario.describe_dict(),
            stats=stats,
            witness=found.script,
            violation=found.detail,
            violation_round=found.round_no,
            decisions=found.decisions,
        )
    stats.raw_tree_size = raw
    stats.elapsed_s = time.perf_counter() - start  # reprolint: disable=RL002 -- diagnostic timing only
    return Certificate(
        outcome="exhausted",
        scenario=scenario.describe_dict(),
        stats=stats,
    )


def replay_witness(
    scenario: ExploreScenario,
    script: StrategyScript,
    max_rounds: int | None = None,
) -> ExecutionResult:
    """Replay a witness through the normal execution pipeline.

    The script runs as an ordinary scripted adversary with an explicit
    finite drop set -- no explorer machinery involved -- so a witness
    that reproduces its violation here is a regression test against the
    plain engine.

    Args:
        scenario: The scenario the witness was found in.
        script: The witness strategy.
        max_rounds: Round budget (default: the scenario depth).

    Returns:
        The finished :class:`~repro.sim.runner.ExecutionResult`.
    """
    processes = make_processes(
        scenario.factory, scenario.assignment, scenario.proposals,
        scenario.byzantine,
    )
    return run_execution(
        params=scenario.params,
        assignment=scenario.assignment,
        processes=processes,
        byzantine=scenario.byzantine,
        adversary=StrategyTreeAdversary(script),
        drop_schedule=script.drop_schedule(),
        max_rounds=scenario.depth if max_rounds is None else max_rounds,
        require_termination=False,
    )
