"""The atlas sweep driver: fan out cells, fuse evidence, stream rows.

One :func:`run_atlas` call walks a :class:`~repro.atlas.lattice.
LatticeSpec` end to end:

1. every cell becomes one ``kind="atlas"`` campaign unit
   (:func:`repro.experiments.campaign.enumerate_atlas_units`), sharing
   the campaign engine's content-hash disk cache, so an already
   computed cell is replayed instead of re-executed;
2. pending units fan out over a ``ProcessPoolExecutor`` exactly like a
   campaign (heaviest first, ``workers <= 1`` runs inline);
3. as results arrive, the driver fuses each cell's evidence with the
   closed-form claim (:func:`repro.atlas.evidence.fuse_evidence`) and
   appends one row to the streaming JSONL log **in lattice order** --
   units are only submitted while their index is within a fixed window
   of the write frontier, so out-of-order completions wait in a
   reorder buffer hard-bounded by that window (a small multiple of the
   pool width), never the whole lattice;
4. a fused ``CONFLICT`` aborts the sweep -- queued units are cancelled
   -- with :class:`~repro.core.errors.AtlasConflict` unless
   ``strict=False``.

Resume: ``resume=True`` keeps the valid prefix of an existing log
(:meth:`~repro.atlas.stream.AtlasLog.resume_prefix`) *and* consults the
unit cache for the rest, so a killed sweep continues where it stopped
and -- every row being deterministic -- finishes byte-for-byte
identical to an uninterrupted run.
"""

from __future__ import annotations

import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.atlas.evidence import (
    CONFLICT,
    closed_form_evidence,
    fuse_evidence,
)
from repro.atlas.lattice import AtlasCell, LatticeSpec
from repro.atlas.stream import AtlasLog
from repro.core.errors import ConfigurationError
from repro.experiments.campaign import (
    CampaignCache,
    CampaignUnit,
    enumerate_atlas_units,
    execute_unit,
)


@dataclass
class AtlasOutcome:
    """Aggregate outcome of one atlas sweep.

    The per-cell rows live in the JSONL log, not here -- this object
    stays O(1) in the lattice size (plus the conflict list, which a
    strict run caps at zero).
    """

    lattice: LatticeSpec
    log_path: Path
    cells_total: int
    resumed: int = 0
    written: int = 0
    executed: int = 0
    cached: int = 0
    verdicts: Counter = field(default_factory=Counter)
    conflicts: list[dict] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every cell fused without conflict."""
        return not self.conflicts and self.verdicts.get(CONFLICT, 0) == 0

    def summary(self) -> str:
        """One-paragraph human-readable tally."""
        tally = ", ".join(
            f"{self.verdicts[v]} {v}" for v in sorted(self.verdicts)
        )
        return (
            f"{self.cells_total} cells ({self.resumed} resumed from log, "
            f"{self.cached} from unit cache, {self.executed} executed) "
            f"in {self.elapsed_s:.2f}s: {tally or 'nothing evaluated'}"
        )


def _fuse_row(
    index: int,
    cell: AtlasCell,
    unit: CampaignUnit,
    result: Mapping,
    injected: Sequence[Mapping],
    strict: bool,
) -> dict:
    """Build one log row from a completed unit result.

    Args:
        index: The cell's position in lattice enumeration order.
        cell: The lattice cell.
        unit: Its campaign unit (supplies the content-hash id).
        result: The unit's result dict (``evidence`` key required).
        injected: Extra evidence items to fold in (fixtures).
        strict: Propagate conflicts as :class:`AtlasConflict`.

    Returns:
        The JSON-compatible row (deterministic: no timings).
    """
    evidence = [closed_form_evidence(cell.params)]
    evidence.extend(result.get("evidence", ()))
    evidence.extend(injected)
    verdict = fuse_evidence(cell.params, evidence, strict=strict)
    records = result.get("records", ())
    return {
        "index": index,
        "unit_id": unit.unit_id,
        "label": cell.label,
        "cell": {
            "n": cell.params.n,
            "ell": cell.params.ell,
            "t": cell.params.t,
            "synchrony": cell.params.synchrony.short,
            "numerate": cell.params.numerate,
            "restricted": cell.params.restricted,
        },
        "predicted": evidence[0]["claim"],
        "verdict": verdict,
        "algorithm": result.get("algorithm", ""),
        "demonstration_kind": result.get("demonstration_kind", ""),
        "runs": len(records),
        "failures": sum(1 for r in records if not r.get("ok", True)),
        "evidence": evidence,
    }


def run_atlas(
    lattice: LatticeSpec,
    log_path: str,
    seed: int = 0,
    quick: bool = True,
    workers: int = 1,
    cache: CampaignCache | None = None,
    resume: bool = False,
    inject: Mapping[str, Sequence[Mapping]] | None = None,
    strict: bool = True,
    progress: Callable[[str], None] | None = None,
    shard: tuple[int, int] | None = None,
) -> AtlasOutcome:
    """Sweep a lattice, fuse every cell's evidence, stream the rows.

    Args:
        lattice: The sweep specification.
        log_path: The streaming JSONL result log (truncated unless
            ``resume``).
        seed: Battery seed shared by every unit.
        quick: Use the trimmed quick batteries.
        workers: Pool size; ``<= 1`` runs inline in this process.
        cache: Optional campaign unit cache; completed units are always
            stored when given.
        resume: Keep the valid prefix of an existing log and read the
            unit cache, so only missing work executes.
        inject: Extra evidence items per cell label -- the seeded
            known-violation hook (see :func:`repro.atlas.evidence.
            known_violation_fixture`).  Incompatible with ``resume``
            (resumed rows would bypass the injection).
        strict: Raise :class:`~repro.core.errors.AtlasConflict` on the
            first conflicting cell (the default); ``False`` records
            ``CONFLICT`` rows and keeps sweeping (render/debug path).
        progress: Optional callback receiving one line per cell.
        shard: Optional ``(index, count)`` stripe: sweep only the cells
            whose lattice position is congruent to ``index`` mod
            ``count`` (the same position-striping as
            :func:`repro.experiments.campaign.shard_units`).  Rows keep
            their **global** lattice index, which is what lets
            :func:`repro.atlas.merge.merge_shards` reassemble shard
            logs byte-identically to an unsharded sweep.

    Returns:
        The :class:`AtlasOutcome` (per-cell rows are in the log).

    Raises:
        AtlasConflict: A cell's machine-checked evidence contradicts
            the closed form (strict mode).
        ProvenanceError: A cell fused without any non-symbolic
            evidence (indicates a broken evidence plan).
        ConfigurationError: ``inject`` combined with ``resume``, or an
            out-of-range shard selector.
    """
    start = time.perf_counter()  # reprolint: disable=RL002 -- diagnostic timing only
    cells = lattice.cells()
    units = enumerate_atlas_units(
        [(c.label, c.params, c.variant) for c in cells],
        seed=seed, quick=quick,
    )
    if shard is None:
        selected = list(range(len(units)))
    else:
        shard_index, shard_count = shard
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ConfigurationError(
                f"bad shard {shard_index}/{shard_count}: "
                f"need 0 <= index < count"
            )
        selected = [
            pos for pos in range(len(units))
            if pos % shard_count == shard_index
        ]
    inject = dict(inject or {})
    if inject and resume:
        # Resumed rows (and cached unit results) were fused without the
        # injected items; honouring --resume would silently skip the
        # injection for any cell inside the kept prefix -- the exact
        # opposite of what the conflict fixture exists to demonstrate.
        raise ConfigurationError(
            "evidence injection cannot be combined with resume: resumed "
            "rows would bypass the injected items; run without --resume"
        )

    log = AtlasLog(log_path)
    outcome = AtlasOutcome(
        lattice=lattice, log_path=log.path, cells_total=len(selected)
    )
    if resume:
        outcome.resumed = log.resume_prefix(
            [units[pos].unit_id for pos in selected]
        )
        for row in log.rows(limit=outcome.resumed):
            outcome.verdicts[row["verdict"]] += 1
            if row["verdict"] == CONFLICT:
                outcome.conflicts.append(row)
            if progress:
                progress(f"resumed  {row['label']} [{row['verdict']}]")
    else:
        log.reset()

    # ``slot`` is a position within ``selected`` (the shard's own row
    # order); the row itself carries the *global* lattice index.
    next_slot = outcome.resumed
    reorder: dict[int, dict] = {}

    def flush(buffered: dict[int, dict]) -> None:
        """Write every row whose predecessors are all written."""
        nonlocal next_slot
        while next_slot in buffered:
            index = selected[next_slot]
            cell, unit = cells[index], units[index]
            row = _fuse_row(
                index, cell, unit, buffered.pop(next_slot),
                inject.get(cell.label, ()), strict,
            )
            log.append(row)
            next_slot += 1
            outcome.written += 1
            outcome.verdicts[row["verdict"]] += 1
            if row["verdict"] == CONFLICT:
                outcome.conflicts.append(row)
            if progress:
                progress(f"fused    {row['label']} [{row['verdict']}]")

    pending: list[tuple[int, CampaignUnit]] = []
    for slot in range(outcome.resumed, len(selected)):
        unit = units[selected[slot]]
        hit = cache.load(unit) if (cache is not None and resume) else None
        if hit is not None:
            outcome.cached += 1
            reorder[slot] = hit
        else:
            pending.append((slot, unit))
    flush(reorder)

    def finish(slot: int, unit: CampaignUnit, result: dict) -> None:
        if cache is not None:
            cache.store(unit, result)
        outcome.executed += 1
        reorder[slot] = result

    try:
        if workers <= 1:
            for slot, unit in pending:
                finish(slot, unit, execute_unit(unit))
                flush(reorder)
        elif pending:
            # Bounded-window fan-out in LATTICE order (not the campaign
            # engine's heaviest-first): a unit is only submitted while
            # its slot is within ``window`` of the write frontier, so
            # in-flight futures plus reorder-buffered results never
            # exceed the window -- even when the frontier cell is the
            # slowest of the batch, workers go idle instead of buffering
            # the rest of the lattice in memory.
            window = max(4 * workers, 16)
            pos = 0
            futures: dict = {}
            with ProcessPoolExecutor(max_workers=workers) as pool:
                try:
                    while pos < len(pending) or futures:
                        while (
                            pos < len(pending)
                            and len(futures) < window
                            and pending[pos][0] < next_slot + window
                        ):
                            slot, unit = pending[pos]
                            futures[pool.submit(
                                execute_unit, unit.to_dict()
                            )] = (slot, unit)
                            pos += 1
                        done, _ = wait(
                            set(futures), return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            slot, unit = futures.pop(future)
                            finish(slot, unit, future.result())
                        flush(reorder)
                except BaseException:
                    # Abort means abort: a conflict (or any failure)
                    # must not let thousands of queued cells run to
                    # completion before the error surfaces.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
    finally:
        outcome.elapsed_s = time.perf_counter() - start  # reprolint: disable=RL002 -- diagnostic timing only
    return outcome
