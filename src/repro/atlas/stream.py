"""Streaming atlas result log: append-only JSONL, resumable, bounded.

The atlas is built to sweep lattices of thousands of cells, so results
never accumulate in memory: every fused cell becomes one line of
canonical JSON (:func:`repro.core.canonical.canonical_json`, so the
bytes are independent of dict insertion order and hash seeds) appended
to the log and immediately forgotten.  Reading is a generator; the
renderer folds the stream into fixed-size aggregates.

Resume contract: rows are written in lattice enumeration order and
each row carries its cell's campaign ``unit_id`` (a content hash of the
full cell spec).  :meth:`AtlasLog.resume_prefix` walks the existing
file against the expected id sequence and truncates it to the longest
valid prefix -- a torn final line (a previous run died mid-append), a
corrupt row, or an id mismatch (the lattice or schema changed) all cut
the prefix there.  Because every row is deterministic, a resumed run's
final log is byte-for-byte identical to a fresh one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.canonical import canonical_json
from repro.core.errors import AtlasLogCorrupt


class AtlasLog:
    """One append-only JSONL result log on disk."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def reset(self) -> None:
        """Start a fresh log (truncate or create the file)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")

    def append(self, row: dict) -> None:
        """Append one row as a line of canonical JSON and flush it.

        Args:
            row: The JSON-compatible row (must contain ``unit_id``).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(canonical_json(row) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append_many(self, rows: Sequence[dict]) -> None:
        """Append a batch of rows with a single flush+fsync.

        The soak farm appends thousands of rows per window; one fsync
        per row (:meth:`append`) would dominate its wall clock.  A crash
        mid-batch can still only tear the *final* line -- the writes go
        through one buffered handle in order -- which is exactly the
        wear :meth:`resume_prefix` repairs.

        Args:
            rows: JSON-compatible rows (each must contain ``unit_id``).
        """
        if not rows:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            for row in rows:
                fh.write(canonical_json(row) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def rows(self, limit: int | None = None) -> Iterator[dict]:
        """Stream the log's rows without holding them in memory.

        A torn or corrupt *final* line (a previous writer died
        mid-append) ends iteration silently -- that is normal wear,
        repaired by :meth:`resume_prefix`.  A bad line *followed by*
        well-formed rows cannot come from a torn append and raises
        :class:`~repro.core.errors.AtlasLogCorrupt` instead of silently
        dropping the valid tail.

        Args:
            limit: Stop after this many rows (``None`` streams all).

        Yields:
            One parsed row dict per complete, well-formed line.

        Raises:
            AtlasLogCorrupt: A corrupt line has well-formed rows after
                it (mid-file corruption, not a torn append).
        """
        if not self.path.exists():
            return
        count = 0
        with self.path.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                if limit is not None and count >= limit:
                    return
                row = self._parse(line)
                if row is None:
                    self._require_torn_tail(fh, lineno)
                    return
                yield row
                count += 1

    @staticmethod
    def _parse(line: str) -> dict | None:
        """Parse one line; ``None`` for torn/corrupt/non-dict lines."""
        if not line.endswith("\n"):
            return None  # torn final line from an interrupted append
        try:
            row = json.loads(line)
        except ValueError:
            return None
        return row if isinstance(row, dict) else None

    def _require_torn_tail(self, fh, bad_lineno: int) -> None:
        """Verify nothing well-formed follows a bad line.

        ``fh`` is positioned just past the bad line.  Any complete,
        well-formed row after it proves mid-file corruption rather than
        a torn final append, which must surface loudly.
        """
        for offset, line in enumerate(fh, start=1):
            if self._parse(line) is not None:
                raise AtlasLogCorrupt(
                    f"{self.path}: corrupt line {bad_lineno} is followed "
                    f"by a well-formed row at line {bad_lineno + offset}; "
                    "a torn append can only damage the final line, so "
                    "this file was corrupted mid-stream"
                )

    def resume_prefix(self, expected_unit_ids: Sequence[str]) -> int:
        """Validate and keep the longest usable prefix of the log.

        Walks existing rows against the expected per-cell unit-id
        sequence; the first torn line, parse failure, or id mismatch
        ends the prefix.  The file is physically truncated to the
        surviving rows, so subsequent :meth:`append` calls continue the
        stream seamlessly.

        Args:
            expected_unit_ids: Cell unit ids in lattice enumeration
                order (the id hashes the full cell spec, so a changed
                lattice, seed, or schema invalidates the tail).

        Returns:
            The number of rows kept; the next cell to execute is
            ``expected_unit_ids[kept]``.
        """
        if not self.path.exists():
            self.reset()
            return 0
        kept = 0
        keep_bytes = 0
        with self.path.open("rb") as fh:
            for raw in fh:
                if kept >= len(expected_unit_ids):
                    break
                if not raw.endswith(b"\n"):
                    break
                try:
                    row = json.loads(raw)
                except ValueError:
                    break
                if (
                    not isinstance(row, dict)
                    or row.get("unit_id") != expected_unit_ids[kept]
                ):
                    break
                kept += 1
                keep_bytes += len(raw)
        if keep_bytes < self.path.stat().st_size:
            with self.path.open("rb+") as fh:
                fh.truncate(keep_bytes)
        return kept
