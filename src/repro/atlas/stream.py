"""Streaming atlas result log: append-only JSONL, resumable, bounded.

The atlas is built to sweep lattices of thousands of cells, so results
never accumulate in memory: every fused cell becomes one line of
canonical JSON (:func:`repro.core.canonical.canonical_json`, so the
bytes are independent of dict insertion order and hash seeds) appended
to the log and immediately forgotten.  Reading is a generator; the
renderer folds the stream into fixed-size aggregates.

Resume contract: rows are written in lattice enumeration order and
each row carries its cell's campaign ``unit_id`` (a content hash of the
full cell spec).  :meth:`AtlasLog.resume_prefix` walks the existing
file against the expected id sequence and truncates it to the longest
valid prefix -- a torn final line (a previous run died mid-append), a
corrupt row, or an id mismatch (the lattice or schema changed) all cut
the prefix there.  Because every row is deterministic, a resumed run's
final log is byte-for-byte identical to a fresh one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.canonical import canonical_json


class AtlasLog:
    """One append-only JSONL result log on disk."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def reset(self) -> None:
        """Start a fresh log (truncate or create the file)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")

    def append(self, row: dict) -> None:
        """Append one row as a line of canonical JSON and flush it.

        Args:
            row: The JSON-compatible row (must contain ``unit_id``).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(canonical_json(row) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def rows(self, limit: int | None = None) -> Iterator[dict]:
        """Stream the log's rows without holding them in memory.

        Args:
            limit: Stop after this many rows (``None`` streams all).

        Yields:
            One parsed row dict per complete, well-formed line;
            iteration stops silently at the first torn or corrupt line
            (everything after it is unreachable by the resume contract).
        """
        if not self.path.exists():
            return
        count = 0
        with self.path.open() as fh:
            for line in fh:
                if limit is not None and count >= limit:
                    return
                if not line.endswith("\n"):
                    return  # torn final line from an interrupted append
                try:
                    row = json.loads(line)
                except ValueError:
                    return
                if not isinstance(row, dict):
                    return
                yield row
                count += 1

    def resume_prefix(self, expected_unit_ids: Sequence[str]) -> int:
        """Validate and keep the longest usable prefix of the log.

        Walks existing rows against the expected per-cell unit-id
        sequence; the first torn line, parse failure, or id mismatch
        ends the prefix.  The file is physically truncated to the
        surviving rows, so subsequent :meth:`append` calls continue the
        stream seamlessly.

        Args:
            expected_unit_ids: Cell unit ids in lattice enumeration
                order (the id hashes the full cell spec, so a changed
                lattice, seed, or schema invalidates the tail).

        Returns:
            The number of rows kept; the next cell to execute is
            ``expected_unit_ids[kept]``.
        """
        if not self.path.exists():
            self.reset()
            return 0
        kept = 0
        keep_bytes = 0
        with self.path.open("rb") as fh:
            for raw in fh:
                if kept >= len(expected_unit_ids):
                    break
                if not raw.endswith(b"\n"):
                    break
                try:
                    row = json.loads(raw)
                except ValueError:
                    break
                if (
                    not isinstance(row, dict)
                    or row.get("unit_id") != expected_unit_ids[kept]
                ):
                    break
                kept += 1
                keep_bytes += len(raw)
        if keep_bytes < self.path.stat().st_size:
            with self.path.open("rb+") as fh:
                fh.truncate(keep_bytes)
        return kept
