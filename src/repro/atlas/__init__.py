"""The solvability atlas: Table 1 as a fused, provenance-carrying sweep.

The repo holds three independent kinds of evidence about every point of
the paper's parameter space: the closed-form predicates of
:mod:`repro.analysis.bounds`, empirical campaign verdicts
(:mod:`repro.experiments`), and the bounded strategy explorer's
witnesses and certificates (:mod:`repro.explore`).  The atlas sweeps
the ``(n, t, ell)`` x model lattice and, for every cell, *fuses* all
three into one provenance-annotated verdict:

* ``proved-solvable`` -- Table 1 says solvable and the cell's workload
  battery (basic and, for partially synchronous cells, delay-based
  timing) ran clean;
* ``witnessed-unsolvable`` -- Table 1 says unsolvable and a concrete
  machine-checked violation exists (an impossibility demonstration or
  a replayed explorer witness);
* ``consistent`` -- evidence is present and nothing contradicts the
  closed form, but nothing decisive either (e.g. only a bounded
  certificate);
* ``CONFLICT`` -- decisive evidence contradicts the closed form; a
  hard error (:class:`~repro.core.errors.AtlasConflict`) by default.

Results stream through an append-only, resumable JSONL log
(:mod:`repro.atlas.stream`) so lattices of thousands of cells run
memory-bounded, and render as the paper's Table 1 plus per-``(n, t)``
boundary maps (:mod:`repro.atlas.render`).  Entry points: the
``python -m repro atlas`` subcommand and :func:`~repro.atlas.driver.
run_atlas`; cells execute as ``kind="atlas"`` campaign units sharing
the campaign engine's worker pool and content-hash cache.

At lattice scale the atlas distributes: ``run_atlas(...,
shard=(index, count))`` stripes cells across machines into per-shard
logs, :func:`~repro.atlas.merge.merge_shards` fuses them back into the
canonical ``atlas.jsonl`` byte-identically, renders re-fold only
appended rows via a persisted cursor
(:func:`~repro.atlas.render.aggregate_incremental`), and
:mod:`repro.atlas.service` serves the fused dataset as a stdlib-only
JSON query API (``python -m repro atlas serve``).
"""

from repro.atlas.driver import AtlasOutcome, run_atlas
from repro.atlas.evidence import (
    CONFLICT,
    CONSISTENT,
    PROVED_SOLVABLE,
    WITNESSED_UNSOLVABLE,
    budget_skipped_evidence,
    closed_form_evidence,
    fuse_evidence,
    known_violation_fixture,
    run_atlas_unit,
)
from repro.atlas.lattice import (
    AtlasCell,
    LatticeSpec,
    default_lattice,
    quick_lattice,
)
from repro.atlas.merge import MergeOutcome, merge_shards
from repro.atlas.render import (
    AtlasAggregates,
    aggregate,
    aggregate_incremental,
    render_json,
    render_markdown,
)
from repro.atlas.service import AtlasIndex, AtlasServer, serve_atlas
from repro.atlas.stream import AtlasLog

__all__ = [
    "AtlasAggregates",
    "AtlasCell",
    "AtlasIndex",
    "AtlasLog",
    "AtlasOutcome",
    "AtlasServer",
    "CONFLICT",
    "CONSISTENT",
    "LatticeSpec",
    "MergeOutcome",
    "PROVED_SOLVABLE",
    "WITNESSED_UNSOLVABLE",
    "aggregate",
    "aggregate_incremental",
    "budget_skipped_evidence",
    "closed_form_evidence",
    "default_lattice",
    "fuse_evidence",
    "known_violation_fixture",
    "merge_shards",
    "quick_lattice",
    "render_json",
    "render_markdown",
    "run_atlas",
    "run_atlas_unit",
    "serve_atlas",
]
