"""Evidence collection and provenance fusion for one atlas cell.

Every cell of the atlas carries a list of *evidence items* -- plain
JSON-compatible dicts -- from up to three independent machinery stacks:

* **closed-form** (:func:`closed_form_evidence`): the Table 1 predicate
  of :mod:`repro.analysis.bounds`, with the theorem condition it
  encodes.  Always present; grade ``"theorem"``.
* **campaign** (:func:`run_atlas_unit`): the empirical stack.  Solvable
  cells run one workload slice of the validation battery (and, for
  partially synchronous cells, one delay-model slice -- the
  timing-model axis of the lattice); unsolvable cells run the paper's
  constructive impossibility demonstration.  Grades ``"verdict"``
  (battery outcome) and ``"witness"`` (a demonstration that exhibited
  the violation).
* **explorer** (:func:`run_atlas_unit` with ``with_explorer=True``):
  bounded strategy exploration.  A violation is replayed through the
  plain execution pipeline before it may carry grade ``"witness"``; a
  witness whose replay does not reproduce the violation degrades to
  ``"unconfirmed"`` and can neither prove nor conflict.  An exhausted
  sweep is grade ``"certificate"`` inside the solvable region and
  ``"inconclusive"`` outside it (a bounded family that found no attack
  below the bound proves nothing).

:func:`fuse_evidence` folds the items into one of the four cell
verdicts -- ``proved-solvable``, ``witnessed-unsolvable``,
``consistent``, ``CONFLICT`` -- with the conflict policy the atlas is
built around: *any* decisive evidence (grade ``"verdict"`` or
``"witness"``) contradicting the closed form is a hard error
(:class:`~repro.core.errors.AtlasConflict`).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Mapping, Sequence

from repro.analysis.bounds import (
    governing_condition,
    psl_bound,
    psync_bound,
    restricted_numerate_bound,
    solvable,
    sync_bound,
)
from repro.core.errors import AtlasConflict, ProvenanceError
from repro.core.params import Synchrony, SystemParams
from repro.core.problem import BINARY, AgreementProblem

#: The four fused cell verdicts.
PROVED_SOLVABLE = "proved-solvable"
WITNESSED_UNSOLVABLE = "witnessed-unsolvable"
CONSISTENT = "consistent"
CONFLICT = "CONFLICT"

#: Evidence kinds.
CLOSED_FORM = "closed-form"
CAMPAIGN = "campaign"
EXPLORER = "explorer"

#: Evidence grades, strongest first.  ``theorem`` is the symbolic
#: claim; ``witness`` and ``verdict`` are decisive (they can prove and
#: they can conflict); ``certificate`` and ``derived`` support without
#: proving (a bounded sweep, or a sound reduction to another cell's
#: result that was not machine-checked *here*); ``unconfirmed`` and
#: ``inconclusive`` merely attest that the machinery ran.
GRADES = ("theorem", "witness", "verdict", "certificate", "derived",
          "unconfirmed", "inconclusive")

#: Grades that may establish -- or contradict -- a solvability claim.
DECISIVE_GRADES = ("witness", "verdict")

SOLVABLE = "solvable"
UNSOLVABLE = "unsolvable"


def _item(kind: str, source: str, claim: str | None, grade: str,
          detail: str, **extra) -> dict:
    """Assemble one evidence item (fixed key order for canonical rows)."""
    item = {
        "kind": kind,
        "source": source,
        "claim": claim,
        "grade": grade,
        "detail": detail,
    }
    item.update(extra)
    return item


def closed_form_evidence(params: SystemParams) -> dict:
    """The symbolic evidence item for a cell.

    Args:
        params: The cell's parameters.

    Returns:
        A grade-``theorem`` item claiming the cell's Table 1 side, with
        the instantiated condition in the detail.
    """
    n, ell, t = params.n, params.ell, params.t
    predicted = solvable(params)
    if t == 0:
        reason = "t=0: no faults, trivially solvable"
    elif not psl_bound(n, t):
        reason = f"n={n} <= 3t={3 * t}"
    elif params.restricted and params.numerate:
        reason = (
            f"ell={ell} {'>' if restricted_numerate_bound(ell, t) else '<='} "
            f"t={t}"
        )
    elif params.synchrony is Synchrony.SYNCHRONOUS:
        reason = f"ell={ell} {'>' if sync_bound(ell, t) else '<='} 3t={3 * t}"
    else:
        reason = (
            f"2*ell={2 * ell} "
            f"{'>' if psync_bound(n, ell, t) else '<='} n+3t={n + 3 * t}"
        )
    return _item(
        CLOSED_FORM,
        "repro.analysis.bounds.solvable",
        SOLVABLE if predicted else UNSOLVABLE,
        "theorem",
        f"{governing_condition(params)}: {reason}",
    )


# ----------------------------------------------------------------------
# Unit execution (the campaign worker body for kind="atlas")
# ----------------------------------------------------------------------
def _campaign_evidence(
    params: SystemParams,
    problem: AgreementProblem,
    seed: int,
    quick: bool,
) -> tuple[str, list, str, str, list[dict]]:
    """Empirical evidence: one validation (and delay) slice or the demo.

    Returns:
        ``(algorithm, records, demonstration, demonstration_kind,
        evidence_items)``.
    """
    from repro.experiments.harness import (
        algorithm_for,
        delay_slice_keys,
        evaluate_unsolvable_cell,
        run_delay_slice,
        run_solvable_slice,
        solvable_slice_keys,
    )

    evidence: list[dict] = []
    if not solvable(params):
        cell = evaluate_unsolvable_cell(params, problem, seed)
        if cell.demonstration:
            # Constructive demonstrations (a scenario/partition/mirror
            # run that exhibited the violation) are witness-grade;
            # reductions to another cell's result (the assumed PSL
            # citation, ell < 3t dominance) are sound but were not
            # machine-checked here, so they only *support* the claim.
            # The distinction rides the structured demonstration kind,
            # never the message text.
            grade = "witness" if cell.demonstration_checked else "derived"
            evidence.append(_item(
                CAMPAIGN, "impossibility demonstration", UNSOLVABLE,
                grade, cell.demonstration,
            ))
        else:
            evidence.append(_item(
                CAMPAIGN, "impossibility demonstration", None,
                "inconclusive",
                "no constructive demonstration covers this cell",
            ))
        return (
            cell.algorithm, cell.runs, cell.demonstration,
            cell.demonstration_kind, evidence,
        )

    algorithm, _, _ = algorithm_for(params, problem)
    key = solvable_slice_keys(params, seed, quick)[0]
    records = run_solvable_slice(params, key, problem, seed, quick)
    failures = [r for r in records if not r.ok]
    source = f"validation slice a{key[0]}b{key[1]}"
    if failures:
        evidence.append(_item(
            CAMPAIGN, source, UNSOLVABLE, "verdict",
            f"{len(failures)}/{len(records)} runs violated: "
            + "; ".join(f"{r.label}: {r.detail}" for r in failures[:3]),
        ))
    else:
        evidence.append(_item(
            CAMPAIGN, source, SOLVABLE, "verdict",
            f"all {len(records)} runs of {algorithm} satisfied "
            f"agreement/validity/termination",
        ))

    if params.synchrony is Synchrony.PARTIALLY_SYNCHRONOUS:
        # The timing-model axis: the same slice under DelayBased timing.
        dkey = delay_slice_keys(params, seed, quick)[0]
        drecords = run_delay_slice(params, dkey, problem, seed, quick)
        records = records + drecords
        dfailures = [r for r in drecords if not r.ok]
        dsource = f"delay-model slice a{dkey[0]}b{dkey[1]}"
        if dfailures:
            evidence.append(_item(
                CAMPAIGN, dsource, UNSOLVABLE, "verdict",
                f"{len(dfailures)}/{len(drecords)} delay-model runs "
                f"violated: "
                + "; ".join(f"{r.label}: {r.detail}" for r in dfailures[:3]),
            ))
        else:
            evidence.append(_item(
                CAMPAIGN, dsource, SOLVABLE, "verdict",
                f"all {len(drecords)} runs under delay-based timing "
                f"satisfied agreement/validity/termination",
            ))
    return algorithm, records, "", "", evidence


def _explorer_evidence(
    params: SystemParams, problem: AgreementProblem
) -> list[dict]:
    """Explorer evidence: certificate or replay-checked witness."""
    from repro.explore import default_scenario, explore, replay_witness

    scenario = default_scenario(params, problem=problem)
    certificate = explore(scenario)
    predicted = solvable(params)
    # Evidence details must be deterministic so resumed logs match
    # fresh ones byte for byte -- hence no elapsed_s anywhere.
    search = (
        certificate.stats.deterministic_summary()
        + (", persistent-face mode" if scenario.persistent_faces
           else ", per-round mode")
    )
    source = f"bounded exploration (depth {scenario.depth})"
    if not certificate.found_violation:
        if predicted:
            return [_item(
                EXPLORER, source, SOLVABLE, "certificate",
                f"exhausted clean: no violating strategy in the bounded "
                f"family ({search})",
            )]
        return [_item(
            EXPLORER, source, None, "inconclusive",
            f"bounded family found no violation below the bound "
            f"({search})",
        )]
    replay = replay_witness(scenario, certificate.witness)
    confirmed = not replay.verdict.ok
    detail = (
        f"{certificate.violation} (round {certificate.violation_round}, "
        f"{search})"
    )
    if confirmed:
        return [_item(
            EXPLORER, source, UNSOLVABLE, "witness",
            detail + "; replay through the plain engine reproduces it",
            witness=certificate.witness.to_dict(),
        )]
    return [_item(
        EXPLORER, source, UNSOLVABLE, "unconfirmed",
        detail + "; replay did NOT reproduce the violation "
        "(horizon-dependent, e.g. non-termination)",
        witness=certificate.witness.to_dict(),
    )]


def budget_skipped_evidence(params: SystemParams) -> dict:
    """The explicit placeholder item for cells outside the cost envelope.

    Cells beyond a lattice's ``campaign_max_n`` never run workloads, but
    they must not vanish from the provenance either: this grade-
    ``inconclusive`` item records that the empirical stack was skipped
    by budget policy, which satisfies :func:`fuse_evidence`'s
    non-symbolic-presence requirement and grades the cell
    ``consistent``.

    Args:
        params: The cell's parameters.

    Returns:
        The grade-``inconclusive`` budget-skipped evidence item.
    """
    return _item(
        CAMPAIGN,
        "campaign budget envelope",
        None,
        "inconclusive",
        f"budget-skipped: n={params.n} exceeds the campaign cost "
        f"envelope; closed form only, no empirical workloads ran",
    )


def run_atlas_unit(
    params: SystemParams,
    seed: int = 0,
    quick: bool = True,
    problem: AgreementProblem = BINARY,
    with_explorer: bool = False,
    budget_skipped: bool = False,
) -> dict:
    """Collect all of one cell's non-symbolic evidence; worker entry point.

    This is the body of the ``kind="atlas"`` campaign unit: everything
    is rebuilt deterministically from the arguments, so results are
    identical in-process, in a pool worker, or replayed from the
    content-hash cache.

    Args:
        params: The cell's parameters.
        seed: The battery seed.
        quick: Use the trimmed quick batteries.
        problem: The agreement problem.
        with_explorer: Also run bounded strategy exploration (small
            scopes only -- the caller gates this via
            :meth:`repro.atlas.lattice.LatticeSpec.in_explorer_scope`).
        budget_skipped: The cell is outside the lattice's campaign cost
            envelope: skip all workloads and emit the explicit
            :func:`budget_skipped_evidence` note instead (``with_explorer``
            is ignored -- the envelope gates the whole empirical stack).

    Returns:
        ``{"algorithm", "records", "demonstration",
        "demonstration_kind", "evidence"}`` where ``records`` are
        :class:`~repro.experiments.harness.RunRecord` dicts and
        ``evidence`` is the list of evidence items (campaign first,
        then explorer; the closed-form item is added at fusion time by
        the driver).
    """
    if budget_skipped:
        algorithm, records, demonstration, kind = "", [], "", ""
        evidence = [budget_skipped_evidence(params)]
    else:
        algorithm, records, demonstration, kind, evidence = (
            _campaign_evidence(params, problem, seed, quick)
        )
        if with_explorer:
            evidence.extend(_explorer_evidence(params, problem))
    return {
        "algorithm": algorithm,
        "records": [asdict(r) for r in records],
        "demonstration": demonstration,
        "demonstration_kind": kind,
        "evidence": evidence,
    }


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------
def fuse_evidence(
    params: SystemParams,
    evidence: Sequence[Mapping],
    strict: bool = True,
) -> str:
    """Fold a cell's evidence items into its provenance verdict.

    The policy:

    * the evidence must contain the closed-form item **and** at least
      one non-symbolic item -- a verdict fused from the predicate alone
      would merely restate Table 1 (:class:`ProvenanceError`);
    * any decisive item (grade ``"witness"`` or ``"verdict"``) whose
      claim contradicts the closed form makes the cell ``CONFLICT`` --
      raised as :class:`~repro.core.errors.AtlasConflict` unless
      ``strict=False`` (the render-only path);
    * a predicted-solvable cell with a clean campaign verdict is
      ``proved-solvable``; a predicted-unsolvable cell with a violation
      witness is ``witnessed-unsolvable``;
    * otherwise the cell is ``consistent``: corroborating or
      non-decisive evidence is present and nothing contradicts the
      closed form.

    Args:
        params: The cell's parameters (fixes the closed-form side).
        evidence: The cell's evidence items.
        strict: Raise on conflict instead of returning ``CONFLICT``.

    Returns:
        One of :data:`PROVED_SOLVABLE`, :data:`WITNESSED_UNSOLVABLE`,
        :data:`CONSISTENT`, :data:`CONFLICT`.

    Raises:
        ProvenanceError: Missing closed-form item or no non-symbolic
            evidence at all.
        AtlasConflict: A decisive contradiction, when ``strict``.
    """
    closed = [e for e in evidence if e.get("kind") == CLOSED_FORM]
    others = [e for e in evidence if e.get("kind") != CLOSED_FORM]
    if not closed:
        raise ProvenanceError(
            f"{params.describe()}: evidence carries no closed-form claim"
        )
    if not others:
        raise ProvenanceError(
            f"{params.describe()}: symbolic evidence only -- a cell needs "
            f"at least one campaign verdict or explorer certificate before "
            f"it can be called consistent"
        )
    predicted_claim = closed[0]["claim"]

    conflicts = [
        e for e in others
        if e.get("grade") in DECISIVE_GRADES
        and e.get("claim") not in (None, predicted_claim)
    ]
    if conflicts:
        if strict:
            first = conflicts[0]
            raise AtlasConflict(
                f"{params.describe()}: closed form says {predicted_claim} "
                f"but {first['kind']} evidence ({first['source']}, grade "
                f"{first['grade']}) says {first['claim']}: {first['detail']}"
            )
        return CONFLICT

    decisive_support = [
        e for e in others
        if e.get("grade") in DECISIVE_GRADES and e.get("claim") == predicted_claim
    ]
    if decisive_support:
        return (
            PROVED_SOLVABLE if predicted_claim == SOLVABLE
            else WITNESSED_UNSOLVABLE
        )
    return CONSISTENT


def known_violation_fixture() -> dict:
    """A seeded witness that contradicts the closed form wherever placed.

    The fixture is a real explorer-style evidence item -- a replayed
    agreement-violation claim -- whose *claim* (``unsolvable``) turns
    into a hard :class:`~repro.core.errors.AtlasConflict` the moment it
    is attached to any predicted-solvable cell.  The driver's
    ``inject`` hook and the ``--inject-conflict`` CLI flag use it to
    demonstrate (and the tests to pin) that the atlas fails loudly when
    machine-checked evidence disagrees with Table 1.

    Returns:
        The forged grade-``witness`` evidence item.
    """
    return _item(
        EXPLORER,
        "seeded known-violation fixture",
        UNSOLVABLE,
        "witness",
        "agreement: [0] decided 0; [1] decided 1 (seeded fixture: a "
        "replay-confirmed witness claim planted inside the predicted-"
        "solvable region to prove conflicts fail the run)",
        witness={"cut": None, "cut_until": 0, "emissions": {}},
    )
