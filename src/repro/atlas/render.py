"""Render the atlas: machine-derived Table 1 and boundary maps.

The renderer is a stream fold: it consumes the JSONL row stream once
(:meth:`~repro.atlas.stream.AtlasLog.rows`), accumulating only
fixed-size aggregates -- per-family tallies for the Table 1 view,
per-``(n, t)`` glyph maps for the boundary view, and evidence-source
counters for the provenance summary -- so rendering scales to lattices
far larger than memory would allow if rows were retained.

Outputs:

* :func:`render_markdown` -- the paper's Table 1 with each condition
  cell annotated by the atlas verdict tally behind it, followed by
  per-``(n, t)`` boundary maps and a provenance summary;
* :func:`render_json` -- the same aggregates as a JSON document (the
  full per-cell provenance stays in the JSONL log, which the document
  references).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.tables import condition_strings
from repro.atlas.evidence import (
    CONFLICT,
    CONSISTENT,
    PROVED_SOLVABLE,
    WITNESSED_UNSOLVABLE,
)
from repro.core.errors import AtlasLogCorrupt

#: One glyph per verdict, used by the boundary maps.
GLYPHS = {
    PROVED_SOLVABLE: "S",
    CONSISTENT: "c",
    WITNESSED_UNSOLVABLE: "u",
    CONFLICT: "!",
}

#: Table 1's four condition cells as (synchrony, numeracy) pairs.
_FAMILIES = [
    ("sync", False), ("sync", True), ("psync", False), ("psync", True),
]


def _family_key(cell: Mapping) -> tuple[str, bool]:
    return (cell["synchrony"], bool(cell["numerate"]))


def _model_label(cell: Mapping) -> str:
    num = "num" if cell["numerate"] else "innum"
    res = "res" if cell["restricted"] else "unres"
    return f"{cell['synchrony']:<5} {num:<5} {res}"


class AtlasAggregates:
    """The fixed-size fold state accumulated over one row stream."""

    def __init__(self) -> None:
        self.cells = 0
        self.verdicts: Counter = Counter()
        #: (synchrony, numerate) -> verdict tally.
        self.families: dict[tuple[str, bool], Counter] = {}
        #: (n, t) -> model label -> ell -> glyph.
        self.maps: dict[tuple[int, int], dict[str, dict[int, str]]] = {}
        #: evidence kind -> item count.
        self.evidence_kinds: Counter = Counter()
        self.symbolic_only: list[str] = []
        self.conflicts: list[dict] = []

    def fold(self, row: Mapping) -> None:
        """Accumulate one row."""
        cell = row["cell"]
        verdict = row["verdict"]
        self.cells += 1
        self.verdicts[verdict] += 1
        family = self.families.setdefault(_family_key(cell), Counter())
        family[verdict] += 1
        nt_map = self.maps.setdefault((cell["n"], cell["t"]), {})
        nt_map.setdefault(_model_label(cell), {})[cell["ell"]] = (
            GLYPHS.get(verdict, "?")
        )
        non_symbolic = 0
        for item in row.get("evidence", ()):
            self.evidence_kinds[item.get("kind", "?")] += 1
            if item.get("kind") != "closed-form":
                non_symbolic += 1
        if not non_symbolic:
            self.symbolic_only.append(row["label"])
        if verdict == CONFLICT:
            self.conflicts.append({
                "label": row["label"],
                "evidence": row.get("evidence", ()),
            })

    @property
    def ok(self) -> bool:
        """No conflicts and every cell carries non-symbolic evidence."""
        return not self.conflicts and not self.symbolic_only

    def to_dict(self) -> dict:
        """Serialise the fold state (the render cursor's payload).

        Returns:
            A JSON-compatible dict :meth:`from_dict` round-trips
            exactly, so an incremental re-render resumes the fold from
            persisted state instead of re-reading old rows.
        """
        return {
            "cells": self.cells,
            "verdicts": dict(self.verdicts),
            "families": [
                [synchrony, numerate, dict(tally)]
                for (synchrony, numerate), tally in sorted(
                    self.families.items()
                )
            ],
            "maps": [
                [n, t, {
                    label: {str(ell): glyph
                            for ell, glyph in sorted(per_ell.items())}
                    for label, per_ell in sorted(per_model.items())
                }]
                for (n, t), per_model in sorted(self.maps.items())
            ],
            "evidence_kinds": dict(self.evidence_kinds),
            "symbolic_only": list(self.symbolic_only),
            "conflicts": list(self.conflicts),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AtlasAggregates":
        """Rebuild fold state from :meth:`to_dict` output.

        Args:
            data: The serialised fold state.

        Returns:
            The reconstructed aggregates, ready for further
            :meth:`fold` calls.
        """
        state = cls()
        state.cells = data["cells"]
        state.verdicts = Counter(data["verdicts"])
        state.families = {
            (synchrony, bool(numerate)): Counter(tally)
            for synchrony, numerate, tally in data["families"]
        }
        state.maps = {
            (n, t): {
                label: {int(ell): glyph for ell, glyph in per_ell.items()}
                for label, per_ell in per_model.items()
            }
            for n, t, per_model in data["maps"]
        }
        state.evidence_kinds = Counter(data["evidence_kinds"])
        state.symbolic_only = list(data["symbolic_only"])
        state.conflicts = list(data["conflicts"])
        return state


def aggregate(rows: Iterable[Mapping]) -> AtlasAggregates:
    """Fold a row stream into the render aggregates.

    Args:
        rows: Atlas rows, e.g. ``AtlasLog(path).rows()``.

    Returns:
        The populated fold state.
    """
    state = AtlasAggregates()
    for row in rows:
        state.fold(row)
    return state


#: Render-cursor sidecar schema tag; bump when the cursor shape (or the
#: aggregate payload it embeds) changes so stale cursors refold.
CURSOR_SCHEMA = "atlas-render-cursor/1"


def _parse_line(raw: bytes) -> dict | None:
    """Parse one raw log line; ``None`` for torn/corrupt lines."""
    if not raw.endswith(b"\n"):
        return None
    try:
        row = json.loads(raw)
    except ValueError:
        return None
    return row if isinstance(row, dict) else None


def _fold_from(path: Path, agg: AtlasAggregates,
               start_bytes: int) -> tuple[int, int]:
    """Fold complete rows from a byte offset onward.

    Args:
        path: The JSONL log.
        agg: Fold state to accumulate into.
        start_bytes: Offset of the first unfolded row.

    Returns:
        ``(rows_folded, end_bytes)`` where ``end_bytes`` is the offset
        just past the last complete row (the next cursor position).

    Raises:
        AtlasLogCorrupt: A bad line with well-formed rows after it
            (same contract as :meth:`AtlasLog.rows
            <repro.atlas.stream.AtlasLog.rows>`).
    """
    folded = 0
    offset = start_bytes
    torn_at = None
    with path.open("rb") as fh:
        fh.seek(start_bytes)
        for raw in fh:
            row = _parse_line(raw)
            if torn_at is not None:
                if row is not None:
                    raise AtlasLogCorrupt(
                        f"{path}: corrupt line at byte {torn_at} is "
                        f"followed by a well-formed row; a torn append "
                        f"can only damage the final line, so this file "
                        f"was corrupted mid-stream"
                    )
                continue
            if row is None:
                torn_at = offset
                continue
            agg.fold(row)
            folded += 1
            offset += len(raw)
    return folded, offset


def _prefix_sha256(path: Path, length: int) -> str:
    """Content hash of the log's first ``length`` bytes."""
    digest = hashlib.sha256()
    remaining = length
    with path.open("rb") as fh:
        while remaining > 0:
            chunk = fh.read(min(1 << 20, remaining))
            if not chunk:
                break
            digest.update(chunk)
            remaining -= len(chunk)
    return digest.hexdigest()


def aggregate_incremental(
    log_path: str | os.PathLike,
    cursor_path: str | os.PathLike,
) -> tuple[AtlasAggregates, int, bool]:
    """Fold a log into aggregates, reusing a persisted render cursor.

    The cursor sidecar records how many bytes and rows a previous
    render folded, the SHA-256 of that byte prefix, and the serialised
    :class:`AtlasAggregates`.  When the log still starts with the same
    bytes, only rows appended since are folded -- O(new rows) -- and
    the cursor is advanced; any mismatch (rewritten log, truncated
    resume, schema bump) falls back to a full refold.  The cursor is
    rewritten after every call, so renders chain.

    Args:
        log_path: The JSONL atlas log.
        cursor_path: The cursor sidecar (created if missing).

    Returns:
        ``(aggregates, new_rows, incremental)`` -- the full fold state,
        how many rows this call folded, and whether the cursor was
        reused (``False`` means full refold).

    Raises:
        AtlasLogCorrupt: Mid-file corruption in the log.
    """
    log = Path(log_path)
    cursor_file = Path(cursor_path)
    cursor = None
    try:
        data = json.loads(cursor_file.read_text())
        if (
            isinstance(data, dict)
            and data.get("schema") == CURSOR_SCHEMA
            and isinstance(data.get("bytes"), int)
            and data["bytes"] >= 0
        ):
            cursor = data
    except (OSError, ValueError):
        cursor = None

    incremental = False
    agg = AtlasAggregates()
    start_bytes = 0
    size = log.stat().st_size if log.exists() else 0
    if (
        cursor is not None
        and cursor["bytes"] <= size
        and _prefix_sha256(log, cursor["bytes"]) == cursor["prefix_sha256"]
    ):
        try:
            agg = AtlasAggregates.from_dict(cursor["aggregates"])
            start_bytes = cursor["bytes"]
            incremental = True
        except (KeyError, TypeError, ValueError):
            agg = AtlasAggregates()
            start_bytes = 0
            incremental = False

    if log.exists():
        folded, end_bytes = _fold_from(log, agg, start_bytes)
    else:
        folded, end_bytes = 0, 0
    cursor_file.parent.mkdir(parents=True, exist_ok=True)
    cursor_file.write_text(json.dumps({
        "schema": CURSOR_SCHEMA,
        "bytes": end_bytes,
        "rows": agg.cells,
        "prefix_sha256": _prefix_sha256(log, end_bytes) if log.exists()
        else hashlib.sha256().hexdigest(),
        "aggregates": agg.to_dict(),
    }, sort_keys=True))
    return agg, folded, incremental


def _family_cell(agg: AtlasAggregates, synchrony: str, numerate: bool) -> str:
    tally = agg.families.get((synchrony, numerate), Counter())
    if not tally:
        return "no cells"
    parts = [
        f"{tally[v]} {v}"
        for v in (PROVED_SOLVABLE, WITNESSED_UNSOLVABLE, CONSISTENT, CONFLICT)
        if tally[v]
    ]
    return ", ".join(parts)


def render_markdown(agg: AtlasAggregates, lattice_desc: str,
                    log_name: str) -> str:
    """Render the atlas aggregates as a Markdown document.

    Args:
        agg: The fold state from :func:`aggregate`.
        lattice_desc: The lattice description line.
        log_name: Name of the JSONL log holding per-cell provenance.

    Returns:
        The Markdown text.
    """
    conditions = condition_strings()
    lines = [
        "# Solvability atlas",
        "",
        f"- lattice: {lattice_desc}",
        f"- cells: {agg.cells}",
        "- verdicts: " + (", ".join(
            f"{agg.verdicts[v]} {v}" for v in sorted(agg.verdicts)
        ) or "none"),
        f"- per-cell provenance: `{log_name}` (one JSON row per cell)",
        "",
        "## Table 1, machine-derived",
        "",
        "Each condition is the paper's; the tally under it counts the "
        "atlas cells of that model family and how their fused evidence "
        "came out.",
        "",
        "| | Synchronous | Partially synchronous |",
        "|---|---|---|",
    ]
    for numerate, row_name in ((False, "Innumerate"), (True, "Numerate")):
        cells = []
        for synchrony in ("sync", "psync"):
            key = (
                "synchronous" if synchrony == "sync"
                else "partially_synchronous"
            )
            condition = conditions[(key, "numerate" if numerate else
                                    "innumerate")]
            cells.append(
                f"`{condition}`<br>{_family_cell(agg, synchrony, numerate)}"
            )
        lines.append(f"| {row_name} processes | {cells[0]} | {cells[1]} |")
    lines += [
        "",
        "In all cases, n must be greater than 3t.",
        "",
        "## Boundary maps",
        "",
        "`S` proved-solvable, `u` witnessed-unsolvable, `c` consistent, "
        "`!` CONFLICT; columns are `ell = 1..n`.",
        "",
    ]
    for (n, t) in sorted(agg.maps):
        lines.append(f"### n={n}, t={t}")
        lines.append("")
        lines.append("```")
        lines.append("ell:              "
                     + " ".join(f"{ell:2d}" for ell in range(1, n + 1)))
        per_model = agg.maps[(n, t)]
        for label in sorted(per_model):
            # Same geometry as the header: 2-char cells, 1-space joins,
            # so each glyph sits under its ell column.
            marks = " ".join(
                f"{per_model[label].get(ell, '?'):>2}"
                for ell in range(1, n + 1)
            )
            lines.append(f"{label:<18}{marks}")
        lines.append("```")
        lines.append("")
    lines += [
        "## Provenance",
        "",
        "- evidence items: " + (", ".join(
            f"{agg.evidence_kinds[k]} {k}"
            for k in sorted(agg.evidence_kinds)
        ) or "none"),
    ]
    if agg.symbolic_only:
        lines.append(
            f"- **{len(agg.symbolic_only)} cells carry symbolic evidence "
            f"only**: " + ", ".join(agg.symbolic_only)
        )
    else:
        lines.append(
            "- every cell carries at least one non-symbolic evidence "
            "source (campaign verdict or explorer certificate)"
        )
    if agg.conflicts:
        lines += ["", "## CONFLICTS", ""]
        for conflict in agg.conflicts:
            lines.append(f"- **{conflict['label']}**")
    else:
        lines.append("- zero CONFLICT cells")
    return "\n".join(lines)


def render_json(agg: AtlasAggregates, lattice_desc: str,
                log_name: str, indent: int = 2) -> str:
    """Render the atlas aggregates as a JSON document.

    Args:
        agg: The fold state from :func:`aggregate`.
        lattice_desc: The lattice description line.
        log_name: Name of the JSONL log holding per-cell provenance.
        indent: JSON indentation.

    Returns:
        The JSON text.
    """
    conditions = condition_strings()
    data = {
        "lattice": lattice_desc,
        "cells": agg.cells,
        "provenance_log": log_name,
        "verdicts": dict(sorted(agg.verdicts.items())),
        "table1": [
            {
                "synchrony": synchrony,
                "numerate": numerate,
                "condition": conditions[(
                    "synchronous" if synchrony == "sync"
                    else "partially_synchronous",
                    "numerate" if numerate else "innumerate",
                )],
                "tally": dict(sorted(
                    agg.families.get((synchrony, numerate), Counter()).items()
                )),
            }
            for synchrony, numerate in _FAMILIES
        ],
        "boundary_maps": [
            {
                "n": n,
                "t": t,
                "models": {
                    label: {
                        str(ell): glyph
                        for ell, glyph in sorted(per_ell.items())
                    }
                    for label, per_ell in sorted(agg.maps[(n, t)].items())
                },
            }
            for (n, t) in sorted(agg.maps)
        ],
        "evidence_items": dict(sorted(agg.evidence_kinds.items())),
        "symbolic_only_cells": list(agg.symbolic_only),
        "conflicts": agg.conflicts,
        "ok": agg.ok,
    }
    return json.dumps(data, indent=indent, sort_keys=True)
