"""Render the atlas: machine-derived Table 1 and boundary maps.

The renderer is a stream fold: it consumes the JSONL row stream once
(:meth:`~repro.atlas.stream.AtlasLog.rows`), accumulating only
fixed-size aggregates -- per-family tallies for the Table 1 view,
per-``(n, t)`` glyph maps for the boundary view, and evidence-source
counters for the provenance summary -- so rendering scales to lattices
far larger than memory would allow if rows were retained.

Outputs:

* :func:`render_markdown` -- the paper's Table 1 with each condition
  cell annotated by the atlas verdict tally behind it, followed by
  per-``(n, t)`` boundary maps and a provenance summary;
* :func:`render_json` -- the same aggregates as a JSON document (the
  full per-cell provenance stays in the JSONL log, which the document
  references).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Mapping

from repro.analysis.tables import condition_strings
from repro.atlas.evidence import (
    CONFLICT,
    CONSISTENT,
    PROVED_SOLVABLE,
    WITNESSED_UNSOLVABLE,
)

#: One glyph per verdict, used by the boundary maps.
GLYPHS = {
    PROVED_SOLVABLE: "S",
    CONSISTENT: "c",
    WITNESSED_UNSOLVABLE: "u",
    CONFLICT: "!",
}

#: Table 1's four condition cells as (synchrony, numeracy) pairs.
_FAMILIES = [
    ("sync", False), ("sync", True), ("psync", False), ("psync", True),
]


def _family_key(cell: Mapping) -> tuple[str, bool]:
    return (cell["synchrony"], bool(cell["numerate"]))


def _model_label(cell: Mapping) -> str:
    num = "num" if cell["numerate"] else "innum"
    res = "res" if cell["restricted"] else "unres"
    return f"{cell['synchrony']:<5} {num:<5} {res}"


class AtlasAggregates:
    """The fixed-size fold state accumulated over one row stream."""

    def __init__(self) -> None:
        self.cells = 0
        self.verdicts: Counter = Counter()
        #: (synchrony, numerate) -> verdict tally.
        self.families: dict[tuple[str, bool], Counter] = {}
        #: (n, t) -> model label -> ell -> glyph.
        self.maps: dict[tuple[int, int], dict[str, dict[int, str]]] = {}
        #: evidence kind -> item count.
        self.evidence_kinds: Counter = Counter()
        self.symbolic_only: list[str] = []
        self.conflicts: list[dict] = []

    def fold(self, row: Mapping) -> None:
        """Accumulate one row."""
        cell = row["cell"]
        verdict = row["verdict"]
        self.cells += 1
        self.verdicts[verdict] += 1
        family = self.families.setdefault(_family_key(cell), Counter())
        family[verdict] += 1
        nt_map = self.maps.setdefault((cell["n"], cell["t"]), {})
        nt_map.setdefault(_model_label(cell), {})[cell["ell"]] = (
            GLYPHS.get(verdict, "?")
        )
        non_symbolic = 0
        for item in row.get("evidence", ()):
            self.evidence_kinds[item.get("kind", "?")] += 1
            if item.get("kind") != "closed-form":
                non_symbolic += 1
        if not non_symbolic:
            self.symbolic_only.append(row["label"])
        if verdict == CONFLICT:
            self.conflicts.append({
                "label": row["label"],
                "evidence": row.get("evidence", ()),
            })

    @property
    def ok(self) -> bool:
        """No conflicts and every cell carries non-symbolic evidence."""
        return not self.conflicts and not self.symbolic_only


def aggregate(rows: Iterable[Mapping]) -> AtlasAggregates:
    """Fold a row stream into the render aggregates.

    Args:
        rows: Atlas rows, e.g. ``AtlasLog(path).rows()``.

    Returns:
        The populated fold state.
    """
    state = AtlasAggregates()
    for row in rows:
        state.fold(row)
    return state


def _family_cell(agg: AtlasAggregates, synchrony: str, numerate: bool) -> str:
    tally = agg.families.get((synchrony, numerate), Counter())
    if not tally:
        return "no cells"
    parts = [
        f"{tally[v]} {v}"
        for v in (PROVED_SOLVABLE, WITNESSED_UNSOLVABLE, CONSISTENT, CONFLICT)
        if tally[v]
    ]
    return ", ".join(parts)


def render_markdown(agg: AtlasAggregates, lattice_desc: str,
                    log_name: str) -> str:
    """Render the atlas aggregates as a Markdown document.

    Args:
        agg: The fold state from :func:`aggregate`.
        lattice_desc: The lattice description line.
        log_name: Name of the JSONL log holding per-cell provenance.

    Returns:
        The Markdown text.
    """
    conditions = condition_strings()
    lines = [
        "# Solvability atlas",
        "",
        f"- lattice: {lattice_desc}",
        f"- cells: {agg.cells}",
        "- verdicts: " + (", ".join(
            f"{agg.verdicts[v]} {v}" for v in sorted(agg.verdicts)
        ) or "none"),
        f"- per-cell provenance: `{log_name}` (one JSON row per cell)",
        "",
        "## Table 1, machine-derived",
        "",
        "Each condition is the paper's; the tally under it counts the "
        "atlas cells of that model family and how their fused evidence "
        "came out.",
        "",
        "| | Synchronous | Partially synchronous |",
        "|---|---|---|",
    ]
    for numerate, row_name in ((False, "Innumerate"), (True, "Numerate")):
        cells = []
        for synchrony in ("sync", "psync"):
            key = (
                "synchronous" if synchrony == "sync"
                else "partially_synchronous"
            )
            condition = conditions[(key, "numerate" if numerate else
                                    "innumerate")]
            cells.append(
                f"`{condition}`<br>{_family_cell(agg, synchrony, numerate)}"
            )
        lines.append(f"| {row_name} processes | {cells[0]} | {cells[1]} |")
    lines += [
        "",
        "In all cases, n must be greater than 3t.",
        "",
        "## Boundary maps",
        "",
        "`S` proved-solvable, `u` witnessed-unsolvable, `c` consistent, "
        "`!` CONFLICT; columns are `ell = 1..n`.",
        "",
    ]
    for (n, t) in sorted(agg.maps):
        lines.append(f"### n={n}, t={t}")
        lines.append("")
        lines.append("```")
        lines.append("ell:              "
                     + " ".join(f"{ell:2d}" for ell in range(1, n + 1)))
        per_model = agg.maps[(n, t)]
        for label in sorted(per_model):
            # Same geometry as the header: 2-char cells, 1-space joins,
            # so each glyph sits under its ell column.
            marks = " ".join(
                f"{per_model[label].get(ell, '?'):>2}"
                for ell in range(1, n + 1)
            )
            lines.append(f"{label:<18}{marks}")
        lines.append("```")
        lines.append("")
    lines += [
        "## Provenance",
        "",
        "- evidence items: " + (", ".join(
            f"{agg.evidence_kinds[k]} {k}"
            for k in sorted(agg.evidence_kinds)
        ) or "none"),
    ]
    if agg.symbolic_only:
        lines.append(
            f"- **{len(agg.symbolic_only)} cells carry symbolic evidence "
            f"only**: " + ", ".join(agg.symbolic_only)
        )
    else:
        lines.append(
            "- every cell carries at least one non-symbolic evidence "
            "source (campaign verdict or explorer certificate)"
        )
    if agg.conflicts:
        lines += ["", "## CONFLICTS", ""]
        for conflict in agg.conflicts:
            lines.append(f"- **{conflict['label']}**")
    else:
        lines.append("- zero CONFLICT cells")
    return "\n".join(lines)


def render_json(agg: AtlasAggregates, lattice_desc: str,
                log_name: str, indent: int = 2) -> str:
    """Render the atlas aggregates as a JSON document.

    Args:
        agg: The fold state from :func:`aggregate`.
        lattice_desc: The lattice description line.
        log_name: Name of the JSONL log holding per-cell provenance.
        indent: JSON indentation.

    Returns:
        The JSON text.
    """
    conditions = condition_strings()
    data = {
        "lattice": lattice_desc,
        "cells": agg.cells,
        "provenance_log": log_name,
        "verdicts": dict(sorted(agg.verdicts.items())),
        "table1": [
            {
                "synchrony": synchrony,
                "numerate": numerate,
                "condition": conditions[(
                    "synchronous" if synchrony == "sync"
                    else "partially_synchronous",
                    "numerate" if numerate else "innumerate",
                )],
                "tally": dict(sorted(
                    agg.families.get((synchrony, numerate), Counter()).items()
                )),
            }
            for synchrony, numerate in _FAMILIES
        ],
        "boundary_maps": [
            {
                "n": n,
                "t": t,
                "models": {
                    label: {
                        str(ell): glyph
                        for ell, glyph in sorted(per_ell.items())
                    }
                    for label, per_ell in sorted(agg.maps[(n, t)].items())
                },
            }
            for (n, t) in sorted(agg.maps)
        ],
        "evidence_items": dict(sorted(agg.evidence_kinds.items())),
        "symbolic_only_cells": list(agg.symbolic_only),
        "conflicts": agg.conflicts,
        "ok": agg.ok,
    }
    return json.dumps(data, indent=indent, sort_keys=True)
