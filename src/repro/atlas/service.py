"""Stdlib-only query service over a fused atlas log.

``python -m repro atlas serve`` loads the canonical ``atlas.jsonl``
once into an in-memory :class:`AtlasIndex` and serves precomputed
per-cell verdicts the way an open-data snapshot API would: every
response body is canonical JSON (:func:`repro.core.canonical.
canonical_json`, so bytes are stable across processes and hash seeds),
cached after first render, and stamped with an ETag derived from the
log's SHA-256 content hash -- the dataset version.  A client replaying
``If-None-Match`` gets ``304 Not Modified`` without a body.

Routes:

* ``/health`` -- liveness plus the dataset fingerprint;
* ``/cells?n=&t=&ell=&model=`` -- row summaries (no evidence payload),
  optionally filtered; ``model`` takes a ``synchrony-numeracy-
  restriction`` slug such as ``sync-innum-unres``;
* ``/cell/<unit_id>`` -- one full row: verdict, complete evidence
  provenance, demonstration kind;
* ``/boundary/<n>/<t>`` -- the boundary map at one lattice point:
  per-model ``ell -> verdict`` (plus the render glyph).

Unknown routes and unit ids are ``404``; malformed filters are
``400``.  Everything is the Python standard library --
:mod:`http.server` with the threading mixin -- so the service runs
anywhere the repo does.
"""

from __future__ import annotations

import hashlib
import os
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Mapping
from urllib.parse import parse_qsl, urlsplit

from repro.atlas.render import GLYPHS
from repro.atlas.stream import AtlasLog
from repro.core.canonical import canonical_json
from repro.core.errors import ConfigurationError

#: Query parameters ``/cells`` accepts.
CELL_FILTERS = ("n", "t", "ell", "model")


class QueryError(ValueError):
    """A malformed request (HTTP 400): bad filter value or name."""


def model_slug(cell: Mapping) -> str:
    """The compact model identifier used by ``/cells?model=``.

    Args:
        cell: A row's ``cell`` block.

    Returns:
        ``"<synchrony>-<num|innum>-<res|unres>"``, e.g.
        ``"psync-num-res"``.
    """
    num = "num" if cell["numerate"] else "innum"
    res = "res" if cell["restricted"] else "unres"
    return f"{cell['synchrony']}-{num}-{res}"


def _summary(row: Mapping) -> dict:
    """A row without its evidence payload (the ``/cells`` shape)."""
    summary = {k: v for k, v in row.items() if k != "evidence"}
    summary["model"] = model_slug(row["cell"])
    return summary


class AtlasIndex:
    """In-memory index over one fused atlas log.

    Attributes
    ----------
    log_path:
        The log the index was loaded from.
    etag:
        The dataset version: SHA-256 of the log file's bytes, used as
        the HTTP ETag for every response.
    rows:
        The parsed rows in global lattice order.
    """

    def __init__(self, log_path: Path, etag: str, rows: list[dict]):
        self.log_path = log_path
        self.etag = etag
        self.rows = rows
        self._by_unit = {row["unit_id"]: row for row in rows}
        self._by_nt: dict[tuple[int, int], list[dict]] = {}
        for row in rows:
            cell = row["cell"]
            self._by_nt.setdefault((cell["n"], cell["t"]), []).append(row)

    @classmethod
    def load(cls, log_path: str | os.PathLike) -> "AtlasIndex":
        """Load a fused log into an index.

        Args:
            log_path: The canonical ``atlas.jsonl``.

        Returns:
            The populated index.

        Raises:
            ConfigurationError: Missing or empty log.
            AtlasLogCorrupt: Mid-file corruption.
        """
        path = Path(log_path)
        if not path.exists():
            raise ConfigurationError(f"atlas log {path} does not exist")
        etag = hashlib.sha256(path.read_bytes()).hexdigest()
        rows = list(AtlasLog(path).rows())
        if not rows:
            raise ConfigurationError(
                f"atlas log {path} holds no complete rows; nothing to serve"
            )
        return cls(path, etag, rows)

    # -- query bodies --------------------------------------------------
    def health(self) -> dict:
        """The ``/health`` payload."""
        return {
            "status": "ok",
            "rows": len(self.rows),
            "log": self.log_path.name,
            "etag": self.etag,
        }

    def cells(self, query: str) -> dict:
        """The ``/cells`` payload for a raw query string.

        Args:
            query: The request's query string.

        Returns:
            ``{"count", "filters", "cells"}`` with row summaries.

        Raises:
            QueryError: Unknown filter name, repeated filter, or a
                non-integer ``n``/``t``/``ell``.
        """
        filters: dict[str, object] = {}
        for name, value in parse_qsl(query, keep_blank_values=True):
            if name not in CELL_FILTERS:
                raise QueryError(
                    f"unknown filter {name!r}; expected one of "
                    f"{', '.join(CELL_FILTERS)}"
                )
            if name in filters:
                raise QueryError(f"filter {name!r} given more than once")
            if name == "model":
                filters[name] = value
            else:
                try:
                    filters[name] = int(value)
                except ValueError:
                    raise QueryError(
                        f"filter {name!r} must be an integer, "
                        f"got {value!r}"
                    ) from None
        selected = []
        for row in self.rows:
            cell = row["cell"]
            if any(
                cell[key] != filters[key]
                for key in ("n", "t", "ell") if key in filters
            ):
                continue
            if "model" in filters and model_slug(cell) != filters["model"]:
                continue
            selected.append(_summary(row))
        return {
            "count": len(selected),
            "filters": filters,
            "cells": selected,
        }

    def cell(self, unit_id: str) -> dict | None:
        """The full row for one unit id, or ``None`` when unknown."""
        row = self._by_unit.get(unit_id)
        return dict(row) if row is not None else None

    def boundary(self, n: int, t: int) -> dict | None:
        """The ``/boundary/<n>/<t>`` payload, or ``None`` when empty."""
        rows = self._by_nt.get((n, t))
        if not rows:
            return None
        models: dict[str, dict[str, dict]] = {}
        for row in rows:
            cell = row["cell"]
            models.setdefault(model_slug(cell), {})[str(cell["ell"])] = {
                "verdict": row["verdict"],
                "glyph": GLYPHS.get(row["verdict"], "?"),
                "unit_id": row["unit_id"],
            }
        return {"n": n, "t": t, "models": models}


class AtlasRequestHandler(BaseHTTPRequestHandler):
    """Routes GET requests over the server's :class:`AtlasIndex`."""

    server_version = "repro-atlas"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------
    def _send(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("ETag", f'"{self.server.index.etag}"')
        self.send_header("Cache-Control", "max-age=0, must-revalidate")
        self.end_headers()
        self.wfile.write(body)

    def _send_not_modified(self) -> None:
        self.send_response(304)
        self.send_header("ETag", f'"{self.server.index.etag}"')
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _error(self, status: int, message: str) -> None:
        self._send(status, canonical_json(
            {"error": message, "status": status}
        ).encode() + b"\n")

    # -- routing -------------------------------------------------------
    def _resolve(self, path: str, query: str) -> dict:
        """Build the payload for one route.

        Raises:
            QueryError: 400-class problems.
            LookupError: 404-class problems.
        """
        index = self.server.index
        parts = [p for p in path.split("/") if p]
        if path == "/health":
            return index.health()
        if path == "/cells":
            return index.cells(query)
        if len(parts) == 2 and parts[0] == "cell":
            row = index.cell(parts[1])
            if row is None:
                raise LookupError(f"no cell with unit id {parts[1]!r}")
            return row
        if len(parts) == 3 and parts[0] == "boundary":
            try:
                n, t = int(parts[1]), int(parts[2])
            except ValueError:
                raise QueryError(
                    f"boundary coordinates must be integers, got "
                    f"/{parts[1]}/{parts[2]}"
                ) from None
            payload = index.boundary(n, t)
            if payload is None:
                raise LookupError(f"no atlas cells at n={n}, t={t}")
            return payload
        raise LookupError(f"unknown route {path!r}")

    def do_GET(self) -> None:  # noqa: N802
        split = urlsplit(self.path)
        path, query = split.path.rstrip("/") or "/", split.query
        cache_key = f"{path}?{query}"
        body = self.server.response_cache.get(cache_key)
        if body is None:
            try:
                payload = self._resolve(path, query)
            except QueryError as exc:
                self._error(400, str(exc))
                return
            except LookupError as exc:
                self._error(404, str(exc))
                return
            body = canonical_json(payload).encode() + b"\n"
            self.server.response_cache[cache_key] = body
        # Conditional requests only short-circuit successful routes --
        # errors above always carry their JSON body.
        if f'"{self.server.index.etag}"' in self.client_etags():
            self._send_not_modified()
            return
        self._send(200, body)

    def client_etags(self) -> list[str]:
        """The request's ``If-None-Match`` values (quoted, stripped)."""
        raw = self.headers.get("If-None-Match", "")
        return [tag.strip() for tag in raw.split(",") if tag.strip()]


class AtlasServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AtlasIndex`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], index: AtlasIndex,
                 verbose: bool = False):
        super().__init__(address, AtlasRequestHandler)
        self.index = index
        self.verbose = verbose
        #: path?query -> rendered canonical-JSON body.
        self.response_cache: dict[str, bytes] = {}


def serve_atlas(
    log_path: str | os.PathLike,
    host: str = "127.0.0.1",
    port: int = 8008,
    verbose: bool = False,
) -> AtlasServer:
    """Load a fused log and bind the query service.

    The server is returned unstarted so callers (and tests, which bind
    ``port=0`` for an ephemeral port) control its lifetime; call
    ``serve_forever()`` to run it.

    Args:
        log_path: The canonical ``atlas.jsonl``.
        host: Bind address.
        port: Bind port (``0`` picks an ephemeral one).
        verbose: Log one line per request to stderr.

    Returns:
        The bound, unstarted server; ``server_address`` carries the
        resolved port.

    Raises:
        ConfigurationError: Missing or empty log.
        AtlasLogCorrupt: Mid-file corruption.
        OSError: The address cannot be bound.
    """
    index = AtlasIndex.load(log_path)
    return AtlasServer((host, port), index, verbose=verbose)
