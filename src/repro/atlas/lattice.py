"""The atlas lattice: which cells the evidence sweep covers.

A *cell* is one point of the paper's parameter space -- a numeric
triple ``(n, ell, t)`` crossed with one of the eight model combinations
(synchrony x numeracy x Byzantine restriction).  A *lattice* is the
rectangular sweep the atlas walks: every ``ell`` of every ``n`` in a
range, for each fault budget and each model, in one fixed enumeration
order that the streaming result log and the resume logic both key on.

The explorer dimension is part of the cell spec: bounded strategy
exploration is a small-scope instrument, so :class:`LatticeSpec` marks
exactly which cells are inside its scope (``n <= explore_max_n`` and
not the restricted+numerate family, whose deep per-round horizons make
exhaustive sweeps intractable even at ``n = 3``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.core.params import Synchrony, SystemParams, model_space

#: Unit variant markers carried by ``kind="atlas"`` campaign units.
WITH_EXPLORER = "campaign+explorer"
CAMPAIGN_ONLY = "campaign"
BUDGET_SKIPPED = "budget-skipped"


@dataclass(frozen=True)
class AtlasCell:
    """One lattice cell: a labelled parameter point plus its evidence plan.

    Attributes
    ----------
    label:
        Unique display label (doubles as the campaign aggregation key).
    params:
        The cell's system parameters.
    with_explorer:
        Whether bounded strategy exploration contributes evidence for
        this cell (small-scope cells only).
    with_campaign:
        Whether the cell is inside the campaign cost envelope.  Cells
        outside it never run workloads: their unit emits an explicit
        ``budget-skipped`` evidence note instead, so the exclusion is
        visible in the provenance rather than silent.
    """

    label: str
    params: SystemParams
    with_explorer: bool = False
    with_campaign: bool = True

    @property
    def variant(self) -> str:
        """The campaign-unit variant string for this cell."""
        if not self.with_campaign:
            return BUDGET_SKIPPED
        return WITH_EXPLORER if self.with_explorer else CAMPAIGN_ONLY


def _cell_label(params: SystemParams) -> str:
    """The canonical cell label: compact and unique per lattice point."""
    num = "num" if params.numerate else "innum"
    res = "res" if params.restricted else "unres"
    return (
        f"n{params.n} ell{params.ell} t{params.t} "
        f"{params.synchrony.short} {num} {res}"
    )


@dataclass(frozen=True)
class LatticeSpec:
    """A rectangular ``(n, t, ell)`` x model sweep specification.

    Attributes
    ----------
    n_min, n_max:
        Inclusive process-count range; every ``ell`` in ``1..n`` is
        swept for each ``n``.
    t_values:
        Fault budgets to sweep.
    models:
        The model combinations as ``(synchrony, numerate, restricted)``
        triples; defaults to the paper's full 2x2x2 space in
        :func:`repro.core.params.model_space` order.
    explore_max_n:
        Largest ``n`` for which cells get explorer evidence (``0``
        disables exploration entirely).  Restricted+numerate cells are
        always outside explorer scope regardless of size.
    campaign_max_n:
        The campaign cost envelope: largest ``n`` for which cells run
        empirical workload batteries.  ``None`` (the default) places no
        envelope.  Cells beyond it still appear in the atlas -- closed
        form everywhere -- but carry an explicit ``budget-skipped``
        evidence note and fuse to ``consistent`` instead of silently
        vanishing, which is what lets lattices reach ``n`` in the tens
        without the sweep cost exploding.
    """

    n_min: int = 3
    n_max: int = 6
    t_values: tuple[int, ...] = (1,)
    models: tuple[tuple[Synchrony, bool, bool], ...] = field(
        default_factory=lambda: tuple(model_space())
    )
    explore_max_n: int = 3
    campaign_max_n: int | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.n_min <= self.n_max:
            raise ConfigurationError(
                f"need 1 <= n_min <= n_max, got {self.n_min}..{self.n_max}"
            )
        if not self.t_values or any(t < 0 for t in self.t_values):
            raise ConfigurationError(
                f"t_values must be non-empty and non-negative, "
                f"got {self.t_values}"
            )
        if not self.models:
            raise ConfigurationError("lattice needs at least one model")
        if self.campaign_max_n is not None and self.campaign_max_n < 1:
            raise ConfigurationError(
                f"campaign_max_n must be >= 1 (or None for no envelope), "
                f"got {self.campaign_max_n}"
            )

    def in_explorer_scope(self, params: SystemParams) -> bool:
        """Whether a cell's evidence plan includes the explorer.

        Args:
            params: The cell's parameters.

        Returns:
            True for small-scope cells outside the restricted+numerate
            family (whose deep horizons defeat exhaustive search).
        """
        if params.restricted and params.numerate:
            return False
        return params.n <= self.explore_max_n

    def in_campaign_budget(self, params: SystemParams) -> bool:
        """Whether a cell's evidence plan includes empirical workloads.

        Args:
            params: The cell's parameters.

        Returns:
            True when no campaign cost envelope is set or the cell is
            inside it.  Cells outside the envelope are never silently
            skipped -- they carry an explicit ``budget-skipped``
            evidence note instead (see
            :func:`repro.atlas.evidence.budget_skipped_evidence`).
        """
        return self.campaign_max_n is None or params.n <= self.campaign_max_n

    def cells(self) -> list[AtlasCell]:
        """Enumerate the lattice in its canonical, resume-stable order.

        The order is ``t``, then ``n``, then ``ell``, then the model in
        :func:`~repro.core.params.model_space` order -- the order the
        streaming log's rows appear in and the resume check validates
        against.

        Returns:
            The ordered cell list.
        """
        out: list[AtlasCell] = []
        for t in self.t_values:
            for n in range(self.n_min, self.n_max + 1):
                for ell in range(1, n + 1):
                    for synchrony, numerate, restricted in self.models:
                        params = SystemParams(
                            n=n, ell=ell, t=t, synchrony=synchrony,
                            numerate=numerate, restricted=restricted,
                        )
                        with_campaign = self.in_campaign_budget(params)
                        out.append(AtlasCell(
                            label=_cell_label(params),
                            params=params,
                            with_explorer=(
                                with_campaign
                                and self.in_explorer_scope(params)
                            ),
                            with_campaign=with_campaign,
                        ))
        return out

    def describe(self) -> str:
        """One-line human-readable description of the sweep."""
        t_part = ",".join(str(t) for t in self.t_values)
        budget = (
            "" if self.campaign_max_n is None
            else f", campaign budget n<={self.campaign_max_n}"
        )
        return (
            f"n={self.n_min}..{self.n_max}, t={{{t_part}}}, ell=1..n, "
            f"{len(self.models)} models, explorer scope n<={self.explore_max_n}"
            f"{budget}"
        )


def quick_lattice() -> LatticeSpec:
    """The ``--quick`` lattice: small enough for CI, wide enough for
    every Table 1 condition to appear on both sides of its boundary."""
    return LatticeSpec(n_min=3, n_max=5, t_values=(1,), explore_max_n=3)


def default_lattice(n_max: int = 6, t_values: tuple[int, ...] = (1,),
                    explore_max_n: int = 4,
                    campaign_max_n: int | None = None) -> LatticeSpec:
    """The default CLI lattice (override the bounds via CLI flags).

    Args:
        n_max: Largest process count swept.
        t_values: Fault budgets swept.
        explore_max_n: Explorer scope bound.
        campaign_max_n: Campaign cost envelope (None for no envelope).

    Returns:
        The lattice specification.
    """
    return LatticeSpec(
        n_min=3, n_max=n_max, t_values=t_values, explore_max_n=explore_max_n,
        campaign_max_n=campaign_max_n,
    )
