"""Deterministic fusion of per-shard atlas logs into one canonical log.

A sharded sweep (``run_atlas(..., shard=(index, count))``) leaves one
JSONL log per shard, each carrying the **global** lattice index on
every row.  :func:`merge_shards` reassembles them into the single
canonical ``atlas.jsonl`` an unsharded sweep would have written --
byte-for-byte identical, because rows are canonical JSON on both paths
and merging is a pure sort-by-index.

The merge is also a trust boundary, so it re-checks instead of
concatenating blindly:

* every row's recorded verdict is re-derived from the row's own
  evidence with :func:`repro.atlas.evidence.fuse_evidence`; a mismatch
  means a tampered or schema-skewed log
  (:class:`~repro.core.errors.AtlasMergeError`);
* overlapping rows (the same global index in two shards -- overlapping
  stripes, or one shard re-run into a second log) must be
  byte-identical; divergent duplicates raise
  :class:`~repro.core.errors.AtlasConflict` with *both* provenance
  rows attached;
* the merged index set must be exactly ``0..N-1``: a gap means an
  incomplete shard (kill it mid-sweep and it resumes; merge it
  unfinished and it fails loudly rather than silently shipping a
  partial atlas).

``strict=False`` relaxes only the conflict policy (recorded
``CONFLICT`` rows pass through for rendering); structural failures are
always hard errors.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.atlas.evidence import CONFLICT, fuse_evidence
from repro.atlas.stream import AtlasLog
from repro.core.canonical import canonical_json
from repro.core.errors import AtlasConflict, AtlasMergeError
from repro.core.params import Synchrony, SystemParams

_SYNCHRONY = {s.short: s for s in Synchrony}


@dataclass
class MergeOutcome:
    """Aggregate outcome of one shard merge.

    Attributes
    ----------
    out_path:
        The fused canonical log.
    shards:
        Number of shard logs read.
    rows:
        Rows in the fused log (the lattice size).
    overlaps:
        Duplicate rows that were cross-checked and deduplicated.
    verdicts:
        Fused-verdict tally of the merged rows.
    """

    out_path: Path
    shards: int = 0
    rows: int = 0
    overlaps: int = 0
    verdicts: Counter = field(default_factory=Counter)

    @property
    def ok(self) -> bool:
        """True when no merged row carries a ``CONFLICT`` verdict."""
        return self.verdicts.get(CONFLICT, 0) == 0

    def summary(self) -> str:
        """One-line human-readable tally."""
        tally = ", ".join(
            f"{self.verdicts[v]} {v}" for v in sorted(self.verdicts)
        )
        return (
            f"merged {self.rows} rows from {self.shards} shard log(s) "
            f"({self.overlaps} overlapping) into {self.out_path}: "
            f"{tally or 'no rows'}"
        )


def _row_params(row: Mapping) -> SystemParams:
    """Rebuild a row's :class:`SystemParams` from its ``cell`` block."""
    cell = row["cell"]
    return SystemParams(
        n=cell["n"], ell=cell["ell"], t=cell["t"],
        synchrony=_SYNCHRONY[cell["synchrony"]],
        numerate=cell["numerate"], restricted=cell["restricted"],
    )


def _cross_check(row: Mapping, source: str, strict: bool) -> None:
    """Re-derive a row's verdict from its own evidence.

    Args:
        row: The parsed log row.
        source: The shard log the row came from (for error messages).
        strict: Conflicts raise instead of passing through.

    Raises:
        AtlasMergeError: The row is structurally unusable or its
            recorded verdict is not what its evidence fuses to.
        AtlasConflict: The evidence fuses to a conflict (strict mode);
            the row is attached via ``rows``.
    """
    try:
        params = _row_params(row)
        evidence = row["evidence"]
        recorded = row["verdict"]
    except (KeyError, TypeError) as exc:
        raise AtlasMergeError(
            f"{source}: row {row.get('index')!r} is missing required "
            f"fields ({exc}); not a fused atlas row"
        ) from None
    try:
        rederived = fuse_evidence(params, evidence, strict=strict)
    except AtlasConflict as exc:
        raise AtlasConflict(
            f"{source}: row {row['index']} ({row.get('label', '?')}) "
            f"conflicts at merge time: {exc}",
            rows=(dict(row),),
        ) from None
    if rederived != recorded:
        raise AtlasMergeError(
            f"{source}: row {row['index']} ({row.get('label', '?')}) "
            f"records verdict {recorded!r} but its evidence fuses to "
            f"{rederived!r}; the log was tampered with or written by an "
            f"incompatible schema"
        )


def merge_shards(
    shard_paths: Sequence[str | os.PathLike],
    out_path: str | os.PathLike,
    strict: bool = True,
) -> MergeOutcome:
    """Fuse per-shard atlas logs into the canonical unsharded log.

    Args:
        shard_paths: The shard JSONL logs, in any order.
        out_path: Destination for the fused canonical log
            (overwritten).  Must not be one of the inputs.
        strict: Raise :class:`~repro.core.errors.AtlasConflict` on any
            conflicting row (recorded or re-fused); ``False`` lets
            recorded ``CONFLICT`` rows pass through for rendering.

    Returns:
        The :class:`MergeOutcome`; the fused rows are in ``out_path``,
        byte-identical to what an unsharded sweep writes.

    Raises:
        AtlasMergeError: No input rows, a gap in the global index
            sequence (an incomplete shard), a structurally unusable
            row, a verdict its evidence does not reproduce, or
            ``out_path`` colliding with an input.
        AtlasConflict: Divergent duplicate rows for one global index
            (both rows attached via ``rows``), or a conflicting cell
            in strict mode.
        AtlasLogCorrupt: A shard log is corrupt mid-file (a torn
            *final* line is tolerated wear; the row it would have held
            then surfaces as a gap).
    """
    out = Path(out_path)
    resolved_out = out.resolve()
    merged: dict[int, dict] = {}
    origin: dict[int, str] = {}
    outcome = MergeOutcome(out_path=out, shards=len(shard_paths))
    for path in shard_paths:
        source = str(path)
        if Path(path).resolve() == resolved_out:
            raise AtlasMergeError(
                f"merge output {out} collides with input {source}"
            )
        for row in AtlasLog(path).rows():
            index = row.get("index")
            if not isinstance(index, int) or index < 0:
                raise AtlasMergeError(
                    f"{source}: row with unusable global index "
                    f"{index!r}; shard logs must come from "
                    f"run_atlas(..., shard=...)"
                )
            if index in merged:
                outcome.overlaps += 1
                kept = merged[index]
                if canonical_json(kept) != canonical_json(row):
                    raise AtlasConflict(
                        f"divergent duplicate rows for global index "
                        f"{index} ({row.get('label', '?')}): "
                        f"{origin[index]} and {source} disagree; the "
                        f"shards were swept from different lattices, "
                        f"seeds, or code",
                        rows=(dict(kept), dict(row)),
                    )
                # Identical bytes: re-run the cell-level fusion anyway
                # -- overlap is the one place two machines vouch for
                # the same cell, so it gets the full cross-check.
                _cross_check(row, source, strict)
            else:
                _cross_check(row, source, strict)
                merged[index] = row
                origin[index] = source
    if not merged:
        raise AtlasMergeError(
            f"nothing to merge: no complete rows in {len(shard_paths)} "
            f"shard log(s)"
        )
    missing = [i for i in range(len(merged)) if i not in merged]
    if missing or max(merged) != len(merged) - 1:
        gaps = missing or sorted(set(range(max(merged) + 1)) - set(merged))
        preview = ", ".join(str(i) for i in gaps[:8])
        raise AtlasMergeError(
            f"shard logs do not cover the lattice: missing global "
            f"indices [{preview}{', ...' if len(gaps) > 8 else ''}] "
            f"({len(gaps)} gap(s) over 0..{max(merged)}); resume the "
            f"incomplete shard(s) to completion before merging"
        )
    fused = AtlasLog(out)
    fused.reset()
    fused.append_many([merged[i] for i in range(len(merged))])
    outcome.rows = len(merged)
    for row in merged.values():
        outcome.verdicts[row["verdict"]] += 1
    return outcome
