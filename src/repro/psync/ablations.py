"""Ablation variants of the Figure 5 algorithm.

The paper calls out two mechanisms it *added* to DLS to survive
homonyms (Section 4.2): the voting superround (several processes can
share the leader identifier, so a phase can have several leaders asking
for different locks -- impossible in classic DLS) and the decide relay
(a correct process sharing its identifier with a Byzantine process
needs a second path to termination).  These subclasses surgically
remove each mechanism so the ablation benchmarks can show what breaks:

* :class:`NoVoteDLSProcess` -- locks and acks are driven directly by the
  received leader lock messages, as in classic DLS.  A Byzantine leader
  that shows different lock values to different processes splits the
  correct processes' lock sets; with the (vote-based) release rule dead,
  the split is permanent, no propose-quorum ever forms again, and the
  run deadlocks: **termination violated**.
* :class:`NoDecideRelayDLSProcess` -- processes decide only on the
  leader/ack path (line 22).  Safety is unharmed, but a process now
  only decides in a phase its *own identifier* leads, so the
  last-decider latency stretches from O(1) good phases to up to
  ``ell`` phases: the relay is a liveness/latency mechanism.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.params import SystemParams
from repro.core.problem import AgreementProblem
from repro.psync.dls_homonyms import DLSHomonymProcess


class NoVoteDLSProcess(DLSHomonymProcess):
    """Figure 5 *without* the voting superround (ablation A1).

    The vote broadcast is skipped; the lock/ack step accepts any
    leader-locked value with a propose quorum, exactly as the classic
    DLS algorithm would.  Unsafe with homonym or equivocating leaders.
    """

    def _start_vote(self, phase: int, superround: int) -> None:
        return  # ablated: no voting superround

    def _lock_and_ack(self, phase: int) -> Hashable:
        support = self._prop_support.get(phase, {})
        eligible = sorted(
            (
                v
                for v in self._leader_locks.get(phase, ())
                if len(support.get(v, ())) >= self.quorum
            ),
            key=repr,
        )
        if not eligible:
            return None
        value = eligible[0]
        self.locks[value] = phase
        return value


class NoDecideRelayDLSProcess(DLSHomonymProcess):
    """Figure 5 *without* the decide relay (ablation A2).

    Processes never adopt decisions seen from ``t + 1`` identifiers;
    they decide only on their own leader/ack path.
    """

    def _relay_decisions(self, decides_this_round, round_no) -> None:
        return  # ablated: no relay


class LockSplitAdversary:
    """A Byzantine leader showing different lock values to each half.

    Speaks the Figure 5 wire format directly: in the first round of
    superround 2 of every phase its identifier leads, it sends
    ``<lock v0>`` to even recipients and ``<lock v1>`` to odd ones
    (one message per recipient -- legal even restricted).  Classic DLS
    has no defence; the voting superround of Figure 5 neutralises it
    (Lemma 8).
    """

    def __init__(self, value_even: Hashable = 0, value_odd: Hashable = 1) -> None:
        self.value_even = value_even
        self.value_odd = value_odd

    def setup(self, params, assignment, byzantine, proposals) -> None:
        self._assignment = assignment

    def emissions(self, view):
        from repro.psync.dls_homonyms import (
            ROUNDS_PER_SUPERROUND,
            SUPERROUNDS_PER_PHASE,
            leader_of_phase,
        )

        r = view.round_no
        superround, in_sr = divmod(r, ROUNDS_PER_SUPERROUND)
        phase, pos = divmod(superround, SUPERROUNDS_PER_PHASE)
        if pos != 1 or in_sr != 0:
            return {}
        result = {}
        for slot in view.byzantine:
            ident = view.identifier_of(slot)
            if ident != leader_of_phase(phase, view.params.ell):
                continue
            emission = {}
            for q in range(view.params.n):
                value = self.value_even if q % 2 == 0 else self.value_odd
                bundle = ("fig5", (), (), (("lock", value, phase),), ())
                emission[q] = (bundle,)
            result[slot] = emission
        return result


def no_vote_factory(
    params: SystemParams, problem: AgreementProblem, unchecked: bool = False
):
    """Factory for the vote-ablated variant."""

    def factory(identifier: int, proposal: Hashable) -> NoVoteDLSProcess:
        return NoVoteDLSProcess(
            params, problem, identifier, proposal, unchecked=unchecked
        )

    return factory


def no_decide_relay_factory(
    params: SystemParams, problem: AgreementProblem, unchecked: bool = False
):
    """Factory for the relay-ablated variant."""

    def factory(identifier: int, proposal: Hashable) -> NoDecideRelayDLSProcess:
        return NoDecideRelayDLSProcess(
            params, problem, identifier, proposal, unchecked=unchecked
        )

    return factory
