"""Partially synchronous agreement protocols (Figures 5 and 7)."""

from repro.psync.dls_homonyms import (
    DLSHomonymProcess,
    check_dls_bound,
    dls_factory,
    dls_horizon,
    leader_of_phase,
)
from repro.psync.restricted import (
    RestrictedNumerateProcess,
    check_restricted_bound,
    restricted_factory,
    restricted_horizon,
)
from repro.psync.proper import (
    IdentifierProperTracker,
    MessageProperTracker,
    decode_proper,
    encode_proper,
)

__all__ = [
    "DLSHomonymProcess",
    "IdentifierProperTracker",
    "MessageProperTracker",
    "RestrictedNumerateProcess",
    "check_dls_bound",
    "check_restricted_bound",
    "restricted_factory",
    "restricted_horizon",
    "decode_proper",
    "dls_factory",
    "dls_horizon",
    "encode_proper",
    "leader_of_phase",
]
