"""Figure 5: partially synchronous Byzantine agreement with homonyms.

Solves Byzantine agreement for ``n`` processes sharing ``ell``
identifiers against up to ``t`` unrestricted Byzantine processes in the
DLS basic partially synchronous model, **iff** ``2*ell > n + 3t``
(Theorem 13).  Works for innumerate processes.

The protocol generalises Dwork--Lynch--Stockmeyer and runs in *phases*
of four superrounds (eight engine rounds).  Phase ``ph`` has leaders:
all processes with identifier ``(ph mod ell) + 1``.  Quorums are sets of
``ell - t`` distinct *identifiers*; by Lemma 7, when ``2*ell > n + 3t``
any two such quorums share an identifier held by exactly one process,
which is correct -- the linchpin of every safety argument here.

Phase structure (superrounds within the phase):

1. every process ``Broadcast``s ``<propose V, ph>`` where ``V`` is its
   proper values not conflicting with a held lock;
2. (first round) each *leader* that accepted proposes containing some
   ``v`` from ``ell - t`` identifiers sends ``<lock v, ph>`` to all;
3. every process that received a leader lock for an acceptable ``v``
   ``Broadcast``s ``<vote v, ph>`` -- the voting superround is new
   relative to DLS and defuses multiple homonym leaders proposing
   different values (Lemma 8);
4. (first round) a process that accepted votes for ``v`` from
   ``ell - t`` identifiers locks ``(v, ph)`` and sends ``<ack v, ph>``;
   a leader collecting ``ell - t`` acks for its lock value decides.
   (second round) decided processes send ``<decide v>``; receiving it
   from ``t + 1`` identifiers decides -- this relay lets a correct
   process sharing its identifier with a Byzantine process terminate.
   Finally, locks conflicting with an ``ell - t``-supported later vote
   are released.

Termination: after stabilisation every sole-owner correct process
decides in a phase it leads, and there are at least ``2t + 1`` of those
(``n <= 2*ell - 3t - 1``), so the decide relay reaches everybody.
"""

from __future__ import annotations

from typing import Hashable

from repro.broadcast.authenticated import (
    AuthenticatedBroadcast,
    parse_broadcast_items,
)
from repro.core.errors import BoundViolation
from repro.core.messages import Inbox
from repro.core.params import SystemParams
from repro.core.problem import AgreementProblem
from repro.psync.proper import IdentifierProperTracker, decode_proper
from repro.sim.process import Process

#: Payload tag for all Figure 5 bundles.
BUNDLE_TAG = "fig5"

ROUNDS_PER_SUPERROUND = 2
SUPERROUNDS_PER_PHASE = 4
ROUNDS_PER_PHASE = ROUNDS_PER_SUPERROUND * SUPERROUNDS_PER_PHASE


def leader_of_phase(phase: int, ell: int) -> int:
    """Identifier of the phase's leaders: ``(ph mod ell) + 1``."""
    return (phase % ell) + 1


def check_dls_bound(n: int, ell: int, t: int) -> None:
    """Raise unless ``2*ell > n + 3t`` (and hence ``ell > 3t`` since n >= ell).

    ``t = 0`` is exempt: with no faults the problem is trivially
    solvable for any ``ell`` (the deterministic-minimum choices keep
    even anonymous homonyms aligned), matching
    :func:`repro.analysis.bounds.solvable`.
    """
    if t == 0:
        return
    if 2 * ell <= n + 3 * t:
        raise BoundViolation(
            f"Figure 5 requires 2*ell > n + 3t, got n={n}, ell={ell}, t={t}"
        )


class DLSHomonymProcess(Process):
    """One process of the Figure 5 protocol."""

    def __init__(
        self,
        params: SystemParams,
        problem: AgreementProblem,
        identifier: int,
        proposal: Hashable,
        unchecked: bool = False,
    ) -> None:
        super().__init__(identifier, proposal)
        if not unchecked:
            check_dls_bound(params.n, params.ell, params.t)
        self.params = params
        self.problem = problem
        self.ell = params.ell
        self.t = params.t
        self.quorum = params.ell - params.t  # identifier quorum (Lemma 7)

        self.ab = AuthenticatedBroadcast(
            params.ell, params.t, identifier, unchecked=unchecked
        )
        self.proper = IdentifierProperTracker(problem, proposal, params.t)

        #: value -> phase of the lock (paper: set of (v, ph) pairs with
        #: at most one phase per value).
        self.locks: dict[Hashable, int] = {}
        #: phase -> value -> identifiers whose accepted propose carried it.
        self._prop_support: dict[int, dict[Hashable, set[int]]] = {}
        #: (phase, value) -> identifiers whose vote was accepted.
        self._vote_support: dict[tuple[int, Hashable], set[int]] = {}
        #: phase -> lock values received from that phase's leader identifier.
        self._leader_locks: dict[int, set[Hashable]] = {}
        #: phase -> the value this process (as leader) asked to lock.
        self._own_lock: dict[int, Hashable] = {}

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    @staticmethod
    def position(round_no: int) -> tuple[int, int, bool]:
        """Map an engine round to ``(phase, superround-in-phase, is-first-round)``."""
        superround, round_in_sr = divmod(round_no, ROUNDS_PER_SUPERROUND)
        phase, pos = divmod(superround, SUPERROUNDS_PER_PHASE)
        return phase, pos, round_in_sr == 0

    def _is_leader(self, phase: int) -> bool:
        return self.identifier == leader_of_phase(phase, self.ell)

    # ------------------------------------------------------------------
    # Compose
    # ------------------------------------------------------------------
    def compose(self, round_no: int) -> Hashable:
        phase, pos, first = self.position(round_no)
        superround = round_no // ROUNDS_PER_SUPERROUND
        directs: list[Hashable] = []

        if first and pos == 0:
            self._start_propose(phase, superround)
        elif first and pos == 1:
            lock = self._leader_lock_choice(phase)
            if lock is not None:
                directs.append(("lock", lock, phase))
        elif first and pos == 2:
            self._start_vote(phase, superround)
        elif first and pos == 3:
            ack = self._lock_and_ack(phase)
            if ack is not None:
                directs.append(("ack", ack, phase))
        elif not first and pos == 3 and self.decided:
            directs.append(("decide", self.decision))

        inits, echoes = self.ab.outgoing(round_no)
        return (BUNDLE_TAG, inits, echoes, tuple(directs), self.proper.encoded())

    def _start_propose(self, phase: int, superround: int) -> None:
        """Line 7-8: propose the proper values not conflicting with locks."""
        candidates = sorted(
            (
                v
                for v in self.proper.proper
                if not any(w != v for w in self.locks)
            ),
            key=repr,
        )
        self.ab.broadcast(("propose", tuple(candidates), phase), superround)

    def _leader_lock_choice(self, phase: int) -> Hashable:
        """Line 10-12: as a leader, pick a value with a propose quorum."""
        if not self._is_leader(phase):
            return None
        support = self._prop_support.get(phase, {})
        eligible = sorted(
            (v for v, ids in support.items() if len(ids) >= self.quorum), key=repr
        )
        if not eligible:
            return None
        choice = eligible[0]
        self._own_lock[phase] = choice
        return choice

    def _start_vote(self, phase: int, superround: int) -> None:
        """Line 14-16: vote for a leader-locked value with a propose quorum."""
        support = self._prop_support.get(phase, {})
        eligible = sorted(
            (
                v
                for v in self._leader_locks.get(phase, ())
                if len(support.get(v, ())) >= self.quorum
            ),
            key=repr,
        )
        if eligible:
            self.ab.broadcast(("vote", eligible[0], phase), superround)

    def _lock_and_ack(self, phase: int) -> Hashable:
        """Line 18-20: lock a vote-quorum value and acknowledge it."""
        eligible = sorted(
            (
                v
                for (ph, v), ids in self._vote_support.items()
                if ph == phase and len(ids) >= self.quorum
            ),
            key=repr,
        )
        if not eligible:
            return None
        value = eligible[0]
        self.locks[value] = phase  # replaces any earlier (value, *) pair
        return value

    # ------------------------------------------------------------------
    # Deliver
    # ------------------------------------------------------------------
    def deliver(self, round_no: int, inbox: Inbox) -> None:
        phase, pos, first = self.position(round_no)
        acks_this_round: dict[Hashable, set[int]] = {}
        decides_this_round: dict[Hashable, set[int]] = {}

        for m in inbox:
            bundle = self._parse_bundle(m.payload)
            if bundle is None:
                continue
            inits_echoes, directs, proper_values = bundle
            inits, echoes = inits_echoes
            for mm, r in inits:
                self.ab.note_init(m.sender_id, mm, r, round_no)
            for mm, r, i in echoes:
                self.ab.note_echo(m.sender_id, mm, r, i, round_no)
            if proper_values is not None:
                self.proper.note(m.sender_id, proper_values)
            for item in directs:
                self._route_direct(m.sender_id, item, phase, acks_this_round,
                                   decides_this_round)

        self._absorb_accepts()

        # Line 21-22: a leader that asked for a lock decides on an
        # identifier quorum of same-round acks.
        if first and pos == 3 and self._is_leader(phase):
            wanted = self._own_lock.get(phase)
            if wanted is not None and len(
                acks_this_round.get(wanted, ())
            ) >= self.quorum:
                self.record_decision(wanted, round_no)

        # Line 25-26: the decide relay.
        if not first and pos == 3:
            self._relay_decisions(decides_this_round, round_no)
            self._release_stale_locks()

    def _relay_decisions(
        self, decides_this_round: dict[Hashable, set[int]], round_no: int
    ) -> None:
        """Adopt a decision echoed by ``t + 1`` distinct identifiers."""
        for value in sorted(decides_this_round, key=repr):
            if len(decides_this_round[value]) >= self.t + 1:
                self.record_decision(value, round_no)
                break

    def _parse_bundle(self, payload: Hashable):
        if not (
            isinstance(payload, tuple)
            and len(payload) == 5
            and payload[0] == BUNDLE_TAG
            and isinstance(payload[1], tuple)
            and isinstance(payload[2], tuple)
            and isinstance(payload[3], tuple)
        ):
            return None
        inits_echoes = parse_broadcast_items(payload[1] + payload[2])
        proper_values = decode_proper(payload[4], self.problem)
        return inits_echoes, payload[3], proper_values

    def _route_direct(
        self,
        sender_id: int,
        item: Hashable,
        current_phase: int,
        acks_this_round: dict[Hashable, set[int]],
        decides_this_round: dict[Hashable, set[int]],
    ) -> None:
        if not (isinstance(item, tuple) and len(item) >= 2):
            return
        tag = item[0]
        if tag == "lock" and len(item) == 3:
            _tag, value, ph = item
            if (
                isinstance(ph, int)
                and value in self.problem.domain
                and sender_id == leader_of_phase(ph, self.ell)
            ):
                self._leader_locks.setdefault(ph, set()).add(value)
        elif tag == "ack" and len(item) == 3:
            _tag, value, ph = item
            # Only same-phase acks count toward the leader's decision
            # quorum (line 21 reads "in this round").
            if value in self.problem.domain and ph == current_phase:
                acks_this_round.setdefault(value, set()).add(sender_id)
        elif tag == "decide" and len(item) == 2:
            _tag, value = item
            if value in self.problem.domain:
                decides_this_round.setdefault(value, set()).add(sender_id)

    def _absorb_accepts(self) -> None:
        """Fold fresh ``Accept`` events into the support tables."""
        for accept in self.ab.drain_accepts():
            msg = accept.message
            if not (isinstance(msg, tuple) and len(msg) == 3):
                continue
            tag, body, ph = msg
            if not isinstance(ph, int) or ph < 0:
                continue
            if tag == "propose" and isinstance(body, tuple):
                support = self._prop_support.setdefault(ph, {})
                for v in body:
                    if v in self.problem.domain:
                        support.setdefault(v, set()).add(accept.ident)
            elif tag == "vote" and body in self.problem.domain:
                self._vote_support.setdefault((ph, body), set()).add(accept.ident)

    def _release_stale_locks(self) -> None:
        """Line 27-30: drop locks superseded by a later vote quorum."""
        for v1, ph1 in list(self.locks.items()):
            superseded = any(
                ph2 > ph1 and v2 != v1 and len(ids) >= self.quorum
                for (ph2, v2), ids in self._vote_support.items()
            )
            if superseded:
                del self.locks[v1]


def dls_factory(
    params: SystemParams, problem: AgreementProblem, unchecked: bool = False
):
    """Process factory for :func:`repro.sim.runner.run_agreement`."""

    def factory(identifier: int, proposal: Hashable) -> DLSHomonymProcess:
        return DLSHomonymProcess(
            params, problem, identifier, proposal, unchecked=unchecked
        )

    return factory


def dls_horizon(params: SystemParams, gst_round: int, slack_phases: int = 3) -> int:
    """A round budget by which every correct process must have decided.

    After the first full phase past ``gst_round``, every identifier
    leads once within ``ell`` phases; each sole-owner correct leader
    decides in its own phase and the decide relay finishes the rest,
    so ``ell + slack`` phases past stabilisation suffice.
    """
    first_stable_phase = (gst_round + ROUNDS_PER_PHASE - 1) // ROUNDS_PER_PHASE + 1
    phases = first_stable_phase + params.ell + slack_phases
    return phases * ROUNDS_PER_PHASE
