"""Proper-set maintenance for the partially synchronous algorithms.

Both partially synchronous protocols track a set of *proper* values --
values a process may output without endangering validity.  A process
starts with only its own input; every message it sends carries its
current proper set, and receipt rules grow it:

* a value ``v`` carried in proper sets from **t + 1 different sources**
  must come from at least one correct process, so ``v`` was some correct
  process's input (directly or transitively): add it;
* proper sets from **2t + 1 different sources** among which *no* value
  reaches ``t + 1`` support imply at least ``t + 1`` correct sources
  without a common value, hence at least two distinct correct inputs --
  in binary (or known-domain) agreement every potential input is then
  safe: add the whole domain.

"Sources" differ per model and this module provides both trackers:

* :class:`IdentifierProperTracker` (Figure 5, innumerate-safe) counts
  *distinct identifiers*, accumulated across rounds;
* :class:`MessageProperTracker` (Figure 7, numerate + restricted
  Byzantine) counts *physical messages within one round* -- sound there
  because a restricted Byzantine process contributes at most one
  message per round, so ``t + 1`` same-round messages include a correct
  one.

Proper sets only ever grow, so both trackers are monotone.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.problem import AgreementProblem


def encode_proper(values: Iterable[Hashable]) -> tuple[Hashable, ...]:
    """Canonical wire form of a proper set (sorted tuple)."""
    return tuple(sorted(set(values), key=repr))


def decode_proper(
    payload: Hashable, problem: AgreementProblem
) -> tuple[Hashable, ...] | None:
    """Parse a received proper set; ``None`` when malformed.

    Values outside the domain are discarded rather than failing the
    whole set: a Byzantine sender must not be able to suppress the
    legitimate values riding in the same tuple.
    """
    if not isinstance(payload, tuple):
        return None
    return tuple(v for v in payload if v in problem.domain)


class IdentifierProperTracker:
    """Identifier-counting tracker used by the Figure 5 algorithm."""

    def __init__(self, problem: AgreementProblem, own_value: Hashable, t: int) -> None:
        self.problem = problem
        self.t = int(t)
        self.proper: set[Hashable] = {problem.validate_value(own_value)}
        self._ids_for_value: dict[Hashable, set[int]] = {}
        self._ids_any: set[int] = set()

    def note(self, sender_id: int, values: Iterable[Hashable]) -> None:
        """Record one received proper set from identifier ``sender_id``."""
        self._ids_any.add(int(sender_id))
        for v in values:
            if v in self.problem.domain:
                self._ids_for_value.setdefault(v, set()).add(int(sender_id))
        self._apply_rules()

    def _apply_rules(self) -> None:
        for v, ids in self._ids_for_value.items():
            if len(ids) >= self.t + 1:
                self.proper.add(v)
        if len(self._ids_any) >= 2 * self.t + 1 and not any(
            len(ids) >= self.t + 1 for ids in self._ids_for_value.values()
        ):
            self.proper.update(self.problem.domain)

    def encoded(self) -> tuple[Hashable, ...]:
        return encode_proper(self.proper)

    def __contains__(self, value: Hashable) -> bool:
        return value in self.proper


class MessageProperTracker:
    """Message-counting tracker used by the Figure 7 algorithm.

    Counts are per round: call :meth:`note` for every received message,
    then :meth:`end_round` once the round's inbox is fully processed.
    """

    def __init__(self, problem: AgreementProblem, own_value: Hashable, t: int) -> None:
        self.problem = problem
        self.t = int(t)
        self.proper: set[Hashable] = {problem.validate_value(own_value)}
        self._round_counts: dict[Hashable, int] = {}
        self._round_total: int = 0

    def note(self, values: Iterable[Hashable]) -> None:
        """Record one received message's proper set (this round)."""
        self._round_total += 1
        for v in values:
            if v in self.problem.domain:
                self._round_counts[v] = self._round_counts.get(v, 0) + 1

    def end_round(self) -> None:
        """Apply the t+1 / 2t+1 rules to this round's counts, then reset."""
        for v, count in self._round_counts.items():
            if count >= self.t + 1:
                self.proper.add(v)
        if self._round_total >= 2 * self.t + 1 and not any(
            count >= self.t + 1 for count in self._round_counts.values()
        ):
            self.proper.update(self.problem.domain)
        self._round_counts = {}
        self._round_total = 0

    def encoded(self) -> tuple[Hashable, ...]:
        return encode_proper(self.proper)

    def __contains__(self, value: Hashable) -> bool:
        return value in self.proper
