"""Figure 7: agreement against *restricted* Byzantine processes, ``ell > t``.

When Byzantine processes can send at most one message per recipient per
round and correct processes are numerate (can count message copies),
``t + 1`` identifiers suffice for partially synchronous Byzantine
agreement -- a dramatic drop from the ``2*ell > n + 3t`` of the
unrestricted model (Theorems 14/15).  Safety rests on ``n > 3t``;
liveness rests on ``ell > t`` (some identifier is held only by correct
processes, and the phase that identifier leads decides).

The protocol mirrors Figure 5's phase structure -- propose / lock /
vote / ack, four superrounds per phase -- but all thresholds count
*processes* (``n - t``, ``n - 2t``) rather than identifiers, via the
*witness* mechanism on top of the Figure 6 multiplicity broadcast:
the number of witnesses a process has for ``(m, r)`` is the sum over
identifiers ``i`` of the multiplicities ``alpha_i`` in the
``Accept(i, alpha_i, m, r)`` events it performed.  Unforgeability
bounds each ``alpha_i`` by (correct broadcasters) + ``f_i``, so ``n - t``
witnesses imply at least ``n - t - f`` correct broadcasters (Lemma 30),
and any two ``n - t``-witnessed broadcasts share a correct broadcaster
(Lemma 31) -- the process-counting analogue of the Lemma 7 quorum
intersection.

Differences from Figure 5 worth noting: there is no decide relay (all
correct processes decide directly in the good phase -- the decision rule
at lines 20-23 has no leader restriction), and the proper set counts
same-round *messages* instead of identifiers (sound because restricted
Byzantine processes contribute at most one message per round).
"""

from __future__ import annotations

from typing import Hashable

from repro.broadcast.multiplicity import MultiplicityBroadcast
from repro.core.errors import BoundViolation
from repro.core.messages import Inbox
from repro.core.params import SystemParams
from repro.core.problem import AgreementProblem
from repro.psync.proper import MessageProperTracker, decode_proper
from repro.sim.process import Process

BUNDLE_TAG = "fig7"

ROUNDS_PER_SUPERROUND = 2
SUPERROUNDS_PER_PHASE = 4
ROUNDS_PER_PHASE = ROUNDS_PER_SUPERROUND * SUPERROUNDS_PER_PHASE


def leader_of_phase(phase: int, ell: int) -> int:
    """Identifier of the phase's leaders: ``(ph mod ell) + 1``."""
    return (phase % ell) + 1


def check_restricted_bound(n: int, ell: int, t: int) -> None:
    """Raise unless ``n > 3t`` (safety) and ``ell > t`` (liveness)."""
    if n <= 3 * t:
        raise BoundViolation(
            f"Figure 7 requires n > 3t, got n={n}, t={t}"
        )
    if ell <= t:
        raise BoundViolation(
            f"Figure 7 requires ell > t, got ell={ell}, t={t}"
        )


class RestrictedNumerateProcess(Process):
    """One process of the Figure 7 protocol."""

    def __init__(
        self,
        params: SystemParams,
        problem: AgreementProblem,
        identifier: int,
        proposal: Hashable,
        unchecked: bool = False,
    ) -> None:
        super().__init__(identifier, proposal)
        if not unchecked:
            check_restricted_bound(params.n, params.ell, params.t)
            if not params.numerate:
                raise BoundViolation(
                    "Figure 7 needs numerate processes (Theorem 19: innumerate "
                    "processes need ell > 3t even against restricted Byzantine)"
                )
            if not params.restricted:
                raise BoundViolation(
                    "Figure 7 is only correct against restricted Byzantine "
                    "processes (Theorem 13: unrestricted needs 2*ell > n + 3t)"
                )
        self.params = params
        self.problem = problem
        self.ell = params.ell
        self.t = params.t
        self.n = params.n
        self.quorum = params.n - params.t  # process-count quorum

        self.mb = MultiplicityBroadcast(
            params.n, params.t, identifier, unchecked=unchecked
        )
        self.proper = MessageProperTracker(problem, proposal, params.t)

        #: value -> phase (the paper's locks set, one phase per value).
        self.locks: dict[Hashable, int] = {}
        #: (m, r) -> historical maximum witness total.
        self._witness_max: dict[tuple[Hashable, int], int] = {}
        #: phase -> lock values received from that phase's leader identifier.
        self._leader_locks: dict[int, set[Hashable]] = {}

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    @staticmethod
    def position(round_no: int) -> tuple[int, int, bool]:
        """Map an engine round to ``(phase, superround-in-phase, is-first)``."""
        superround, round_in_sr = divmod(round_no, ROUNDS_PER_SUPERROUND)
        phase, pos = divmod(superround, SUPERROUNDS_PER_PHASE)
        return phase, pos, round_in_sr == 0

    def _is_leader(self, phase: int) -> bool:
        return self.identifier == leader_of_phase(phase, self.ell)

    def witnesses(self, message: Hashable, superround: int) -> int:
        """Best witness total observed so far for ``(message, superround)``."""
        return self._witness_max.get((message, superround), 0)

    # ------------------------------------------------------------------
    # Compose
    # ------------------------------------------------------------------
    def compose(self, round_no: int) -> Hashable:
        phase, pos, first = self.position(round_no)
        superround = round_no // ROUNDS_PER_SUPERROUND
        directs: list[Hashable] = []

        if first and pos == 0:
            # Line 6-7: broadcast a propose per unconflicted proper value.
            for v in sorted(self._propose_values(), key=repr):
                self.mb.broadcast(("propose", v), superround)
        elif first and pos == 1 and self._is_leader(phase):
            # Lines 9-10: leader requests a lock on a witnessed value.
            eligible = sorted(
                (
                    v
                    for v in self.problem.domain
                    if self.witnesses(("propose", v), 4 * phase) >= self.quorum
                ),
                key=repr,
            )
            if eligible:
                directs.append(("lock", eligible[0], phase))
        elif first and pos == 2:
            # Lines 12-14: vote for a leader-locked, witnessed value.
            eligible = sorted(
                (
                    v
                    for v in self._leader_locks.get(phase, ())
                    if self.witnesses(("propose", v), 4 * phase) >= self.quorum
                ),
                key=repr,
            )
            if eligible:
                self.mb.broadcast(("vote", eligible[0]), superround)
        elif first and pos == 3:
            # Lines 16-19: lock and acknowledge a vote-witnessed value.
            eligible = sorted(
                (
                    v
                    for v in self.problem.domain
                    if self.witnesses(("vote", v), 4 * phase + 2) >= self.quorum
                ),
                key=repr,
            )
            if eligible:
                value = eligible[0]
                self.locks[value] = phase
                directs.append(("ack", value, phase))

        items = self.mb.outgoing(round_no)
        return (BUNDLE_TAG, items, tuple(directs), self.proper.encoded())

    def _propose_values(self) -> list[Hashable]:
        return [
            v
            for v in self.proper.proper
            if not any(w != v for w in self.locks)
        ]

    # ------------------------------------------------------------------
    # Deliver
    # ------------------------------------------------------------------
    def deliver(self, round_no: int, inbox: Inbox) -> None:
        phase, pos, first = self.position(round_no)
        ack_counts: dict[Hashable, int] = {}

        for m in inbox:
            bundle = self._parse_bundle(m.payload)
            if bundle is None:
                continue
            items, directs, proper_values = bundle
            self.mb.note_message(m.sender_id, items, round_no)
            if proper_values is not None:
                self.proper.note(proper_values)
            self._route_directs(
                m.sender_id, directs, phase, first, pos, ack_counts
            )

        for accept in self.mb.end_round(round_no):
            key = (accept.message, accept.superround)
            # Witness totals sum multiplicities across identifiers; a
            # superround's Accepts arrive together (odd round), so the
            # per-superround sum is the sum over fresh accepts by ident.
            self._fold_witnesses(round_no, accept)
        self._flush_witness_round(round_no)

        self.proper.end_round()

        # Lines 20-23: decide on n - t same-round acks for a witnessed value.
        if first and pos == 3:
            for value in sorted(ack_counts, key=repr):
                if (
                    ack_counts[value] >= self.quorum
                    and self.witnesses(("propose", value), 4 * phase) >= self.quorum
                ):
                    self.record_decision(value, round_no)
                    break

        # Lines 24-26: release locks superseded by later vote witnesses.
        if not first and pos == 3:
            self._release_stale_locks()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _parse_bundle(self, payload: Hashable):
        if not (
            isinstance(payload, tuple)
            and len(payload) == 4
            and payload[0] == BUNDLE_TAG
            and isinstance(payload[1], tuple)
            and isinstance(payload[2], tuple)
        ):
            return None
        proper_values = decode_proper(payload[3], self.problem)
        return payload[1], payload[2], proper_values

    def _route_directs(
        self,
        sender_id: int,
        directs: tuple,
        phase: int,
        first: bool,
        pos: int,
        ack_counts: dict[Hashable, int],
    ) -> None:
        seen_ack = False
        for item in directs:
            if not (isinstance(item, tuple) and len(item) == 3):
                continue
            tag, value, ph = item
            if value not in self.problem.domain or not isinstance(ph, int):
                continue
            if tag == "lock" and sender_id == leader_of_phase(ph, self.ell):
                self._leader_locks.setdefault(ph, set()).add(value)
            elif tag == "ack" and first and pos == 3 and ph == phase:
                # Count *messages* containing an ack (numerate); a
                # message with duplicate ack items still counts once.
                if not seen_ack:
                    ack_counts[value] = ack_counts.get(value, 0) + 1
                    seen_ack = True

    # Witness bookkeeping: accepts for one (m, r) from different idents in
    # the same round are summed; the historical maximum is retained.
    def _fold_witnesses(self, round_no: int, accept) -> None:
        pending = self.__dict__.setdefault("_pending_witnesses", {})
        key = (accept.message, accept.superround)
        per_ident = pending.setdefault(key, {})
        per_ident[accept.ident] = max(
            per_ident.get(accept.ident, 0), accept.multiplicity
        )

    def _flush_witness_round(self, round_no: int) -> None:
        pending = self.__dict__.pop("_pending_witnesses", None)
        if not pending:
            return
        for key, per_ident in pending.items():
            total = sum(per_ident.values())
            if total > self._witness_max.get(key, 0):
                self._witness_max[key] = total

    def _release_stale_locks(self) -> None:
        for v1, ph1 in list(self.locks.items()):
            superseded = any(
                ph2 > ph1
                and v2 != v1
                and self.witnesses(("vote", v2), 4 * ph2 + 2) >= self.quorum
                for v2 in self.problem.domain
                for ph2 in range(ph1 + 1, self._max_known_phase() + 1)
            )
            if superseded:
                del self.locks[v1]

    def _max_known_phase(self) -> int:
        phases = [0]
        for (message, superround) in self._witness_max:
            phases.append(superround // 4)
        return max(phases)


def restricted_factory(
    params: SystemParams, problem: AgreementProblem, unchecked: bool = False
):
    """Process factory for :func:`repro.sim.runner.run_agreement`."""

    def factory(identifier: int, proposal: Hashable) -> RestrictedNumerateProcess:
        return RestrictedNumerateProcess(
            params, problem, identifier, proposal, unchecked=unchecked
        )

    return factory


def restricted_horizon(
    params: SystemParams, gst_round: int, slack_phases: int = 3
) -> int:
    """Round budget: a fully correct identifier leads within ``ell`` phases
    of stabilisation and its phase decides for everybody."""
    first_stable_phase = (gst_round + ROUNDS_PER_PHASE - 1) // ROUNDS_PER_PHASE + 1
    phases = first_stable_phase + params.ell + slack_phases
    return phases * ROUNDS_PER_PHASE
