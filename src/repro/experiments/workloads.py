"""Workload generators: inputs, assignments, placements, delay policies.

The experiment harness sweeps configurations; this module supplies the
deterministic, seeded building blocks: input vectors (unanimous, split,
adversarial), identity assignments (balanced / stacked / random),
Byzantine placements (random, homonym-targeting, sole-owner-targeting)
and the delay-policy battery the kernel's delay workload family runs
over.  Everything is a pure function of its arguments so sweeps
reproduce.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from repro.core.identity import (
    IdentityAssignment,
    balanced_assignment,
    random_assignment,
    stacked_assignment,
)
from repro.core.problem import AgreementProblem
from repro.sim.delay import (
    AlwaysBoundedUnknownDelays,
    DelayPolicy,
    EventuallyBoundedDelays,
)


# ----------------------------------------------------------------------
# Input vectors
# ----------------------------------------------------------------------
def unanimous_inputs(
    indices: Sequence[int], value: Hashable
) -> dict[int, Hashable]:
    """Every process proposes ``value`` (the validity stress case)."""
    return {k: value for k in indices}

def alternating_inputs(
    indices: Sequence[int], problem: AgreementProblem
) -> dict[int, Hashable]:
    """Proposals cycle through the domain (maximal disagreement)."""
    domain = problem.domain
    return {k: domain[pos % len(domain)] for pos, k in enumerate(sorted(indices))}

def random_inputs(
    indices: Sequence[int], problem: AgreementProblem, seed: int
) -> dict[int, Hashable]:
    """Seeded uniform proposals."""
    # reprolint: disable=RL003 -- int battery seed (salt-free); the
    # stream is pinned by cached campaign records.
    rng = random.Random(seed)
    return {k: rng.choice(problem.domain) for k in sorted(indices)}

def input_patterns(
    indices: Sequence[int], problem: AgreementProblem, seed: int = 0
) -> list[tuple[str, dict[int, Hashable]]]:
    """The standard battery: both unanimities, the split, one random."""
    patterns: list[tuple[str, dict[int, Hashable]]] = [
        (f"all-{problem.domain[0]!r}", unanimous_inputs(indices, problem.domain[0])),
        (f"all-{problem.domain[1]!r}", unanimous_inputs(indices, problem.domain[1])),
        ("alternating", alternating_inputs(indices, problem)),
        (f"random-{seed}", random_inputs(indices, problem, seed)),
    ]
    return patterns


# ----------------------------------------------------------------------
# Assignments
# ----------------------------------------------------------------------
def assignment_battery(
    n: int, ell: int, seed: int = 0
) -> list[tuple[str, IdentityAssignment]]:
    """Balanced, maximally stacked, and one seeded random assignment."""
    battery = [
        ("balanced", balanced_assignment(n, ell)),
        ("stacked", stacked_assignment(n, ell)),
    ]
    if n > ell:
        battery.append((f"random-{seed}", random_assignment(n, ell, seed)))
    return battery


# ----------------------------------------------------------------------
# Delay policies
# ----------------------------------------------------------------------
def delay_policy_battery(seed: int = 0) -> list[tuple[str, DelayPolicy]]:
    """The delay-model battery: the policies every delay unit runs over.

    One always-punctual unknown-bound network (the delay run must equal
    the synchronous one) and two eventually-bounded networks with
    pre-GST chaos at different deltas.  Every policy's
    :func:`~repro.sim.delay.equivalent_basic_gst` round is at most 12,
    within the harness's ``_max_gst`` horizon allowance of 16, so the
    algorithms' horizons cover the loss-free tail the paper's
    termination arguments need.

    Args:
        seed: The battery seed (policies are deterministic given it).

    Returns:
        ``(name, DelayPolicy)`` pairs.
    """
    return [
        ("punctual-d3", AlwaysBoundedUnknownDelays(true_delta=3, seed=seed)),
        ("eventual-d2-gst24",
         EventuallyBoundedDelays(delta=2, gst_tick=24, chaos_factor=4,
                                 seed=seed)),
        ("eventual-d3-gst30",
         EventuallyBoundedDelays(delta=3, gst_tick=30, chaos_factor=6,
                                 seed=seed + 1)),
    ]


# ----------------------------------------------------------------------
# Byzantine placements
# ----------------------------------------------------------------------
def byzantine_on_homonyms(
    assignment: IdentityAssignment, t: int
) -> tuple[int, ...]:
    """Prefer corrupting members of shared identifiers (poisons groups)."""
    chosen: list[int] = []
    for ident in assignment.homonym_ids():
        if len(chosen) >= t:
            break
        chosen.append(assignment.group(ident)[0])
    for ident in assignment.sole_owner_ids():
        if len(chosen) >= t:
            break
        chosen.append(assignment.group(ident)[0])
    return tuple(sorted(chosen[:t]))

def byzantine_on_sole_owners(
    assignment: IdentityAssignment, t: int
) -> tuple[int, ...]:
    """Prefer corrupting sole-owner identifiers (attacks the quorum math)."""
    chosen: list[int] = []
    for ident in assignment.sole_owner_ids():
        if len(chosen) >= t:
            break
        chosen.append(assignment.group(ident)[0])
    for ident in assignment.homonym_ids():
        if len(chosen) >= t:
            break
        chosen.append(assignment.group(ident)[0])
    return tuple(sorted(chosen[:t]))

def random_byzantine(
    assignment: IdentityAssignment, t: int, seed: int
) -> tuple[int, ...]:
    """Seeded uniform Byzantine placement."""
    # reprolint: disable=RL003 -- int battery seed (salt-free); the
    # stream is pinned by cached campaign records.
    rng = random.Random(seed)
    return tuple(sorted(rng.sample(range(assignment.n), min(t, assignment.n))))

def byzantine_batteries(
    assignment: IdentityAssignment, t: int, seed: int = 0
) -> list[tuple[str, tuple[int, ...]]]:
    """The placements every solvable configuration is tested against."""
    if t == 0:
        return [("none", ())]
    batteries = [
        ("homonym-targeted", byzantine_on_homonyms(assignment, t)),
        ("sole-owner-targeted", byzantine_on_sole_owners(assignment, t)),
        (f"random-{seed}", random_byzantine(assignment, t, seed)),
    ]
    # De-duplicate identical placements while keeping the first label.
    seen: set[tuple[int, ...]] = set()
    unique = []
    for name, placement in batteries:
        if placement not in seen:
            seen.add(placement)
            unique.append((name, placement))
    return unique
