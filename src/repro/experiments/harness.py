"""Experiment harness: validate every Table 1 cell empirically.

For one cell ``(n, ell, t, synchrony, numeracy, restriction)``:

* the predicate of :mod:`repro.analysis.bounds` supplies the
  *prediction* (solvable / unsolvable);
* **solvable** cells run the matching algorithm (Figure 3
  transformation of EIG for synchronous, Figure 5 for partially
  synchronous, Figure 7 for restricted+numerate) across the workload
  battery -- assignments x inputs x Byzantine placements x attacks x
  drop schedules -- and must produce a clean verdict every time;
* **unsolvable** cells run the paper's constructive demonstration
  (Figure 1 scenario, Figure 4 partition, or the Lemma 17 mirror scan)
  against the same algorithm built ``unchecked`` and must exhibit a
  violation (or a Lemma 21 multivalence witness for the
  non-constructive valency bound).

The Table 1 benchmark and several integration tests drive this module;
``quick=True`` trims the battery to keep the wall-clock sane.

The workload of a solvable cell is enumerated as *slices* -- one per
(assignment, Byzantine placement) pair -- via :func:`solvable_slice_keys`
and executed via :func:`run_solvable_slice`.  The sequential path
(:func:`evaluate_solvable_cell`) iterates the slices in order; the
parallel campaign engine (:mod:`repro.experiments.campaign`) ships each
slice key to a worker process and merges the records back.  Both paths
therefore produce byte-identical run records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator

from repro.core.errors import ConfigurationError

from repro.adversaries.generic import standard_attack_suite
from repro.adversaries.mirror import mirror_chain_scan
from repro.adversaries.partition import (
    partition_attack_feasible,
    run_partition_attack,
)
from repro.adversaries.scenario import run_scenario
from repro.analysis.bounds import solvable
from repro.classic.eig import EIGSpec
from repro.core.params import Synchrony, SystemParams
from repro.core.problem import BINARY, AgreementProblem
from repro.homonyms.transform import transform_factory, transform_horizon
from repro.psync.dls_homonyms import dls_factory, dls_horizon
from repro.psync.restricted import restricted_factory, restricted_horizon
from repro.sim.kernel import DelayBased
from repro.sim.partial import RandomDrops, SilenceUntil
from repro.sim.process import Process
from repro.sim.runner import run_agreement
from repro.experiments.workloads import (
    assignment_battery,
    byzantine_batteries,
    delay_policy_battery,
    input_patterns,
)

AlgorithmFactory = Callable[[int, Hashable], Process]


# ----------------------------------------------------------------------
# Algorithm selection per model
# ----------------------------------------------------------------------
def algorithm_for(
    params: SystemParams,
    problem: AgreementProblem = BINARY,
    unchecked: bool = False,
) -> tuple[str, AlgorithmFactory, int]:
    """Pick the paper's algorithm for a model.

    The horizon assumes the worst drop schedule used by the harness
    (``SilenceUntil`` with the harness's largest GST).

    Args:
        params: The system parameters selecting the model family.
        problem: The agreement problem instance (defaults to binary).
        unchecked: Build the algorithm without its safety guards
            (used by the impossibility demonstrations).

    Returns:
        A ``(name, factory, horizon)`` triple: a human-readable
        algorithm name, a ``(identifier, proposal) -> Process`` factory,
        and the round horizon to run it for.
    """
    if params.restricted and params.numerate:
        factory = restricted_factory(params, problem, unchecked=unchecked)
        horizon = restricted_horizon(params, gst_round=_max_gst(params))
        return "fig7-restricted", factory, horizon
    if params.synchrony is Synchrony.SYNCHRONOUS:
        spec = EIGSpec(params.ell, params.t, problem, unchecked=unchecked)
        return (
            "T(EIG)",
            transform_factory(spec, unchecked=unchecked),
            transform_horizon(spec),
        )
    factory = dls_factory(params, problem, unchecked=unchecked)
    return "fig5-dls", factory, dls_horizon(params, gst_round=_max_gst(params))


def _max_gst(params: SystemParams) -> int:
    """Largest stabilisation round the harness's schedules use."""
    if params.synchrony is Synchrony.SYNCHRONOUS:
        return 0
    return 16


def drop_schedules(params: SystemParams, seed: int = 0):
    """Schedules exercised per cell (synchronous cells get none).

    Args:
        params: The cell's system parameters.
        seed: Seed for the randomised drop schedule.

    Returns:
        A list of ``(name, DropSchedule | None)`` pairs.
    """
    if params.synchrony is Synchrony.SYNCHRONOUS:
        return [("none", None)]
    return [
        ("none", None),
        ("silence<16", SilenceUntil(16)),
        (f"random-drops-{seed}", RandomDrops(gst=12, p=0.4, seed=seed)),
    ]


# ----------------------------------------------------------------------
# Cell evaluation
# ----------------------------------------------------------------------
@dataclass
class RunRecord:
    """One execution inside a cell evaluation.

    ``rounds`` and ``messages`` carry the execution cost so that
    aggregated reports (notably :class:`repro.experiments.campaign.
    CampaignReport`) can total the battery's work without retaining
    traces.  ``messages`` is the message fabric's *exact* delivered-edge
    count (:func:`repro.sim.metrics.metrics_from_deliveries`): edges a
    drop schedule lost are not in it, unlike the pre-fabric full-fanout
    estimate.
    """

    label: str
    ok: bool
    detail: str
    rounds: int = 0
    messages: int = 0
    #: Basic-model loss edges a loss-logging timing model (the delay
    #: models) materialised during the run; 0 under round-granular
    #: timing.  Gives delay slices and the soak farm exact loss
    #: accounting without retaining the per-edge loss log.
    losses: int = 0


#: Demonstration kinds that mark a *machine-checked* construction
#: (a scenario/partition/mirror/explorer run that exhibited its
#: violation here), as opposed to a sound reduction to another cell's
#: result (:data:`DERIVED_DEMONSTRATION_KINDS`).  The atlas grades
#: impossibility evidence by this distinction
#: (:mod:`repro.atlas.evidence`).
CHECKED_DEMONSTRATION_KINDS = frozenset(
    {"scenario", "partition", "mirror", "explorer"}
)

#: Demonstration kinds that are sound reductions -- the assumed PSL
#: citation and the ``ell < 3t`` dominance argument -- rather than
#: violations exhibited in this cell's own runs.
DERIVED_DEMONSTRATION_KINDS = frozenset({"psl-citation", "dominance"})


@dataclass
class CellResult:
    """Outcome of validating one Table 1 cell.

    ``demonstration`` is the human-readable detail; its provenance is
    carried separately in ``demonstration_kind`` (one of
    :data:`CHECKED_DEMONSTRATION_KINDS` or
    :data:`DERIVED_DEMONSTRATION_KINDS`, or ``""`` when there is no
    demonstration), so grading never parses message text.
    """

    params: SystemParams
    predicted_solvable: bool
    algorithm: str
    runs: list[RunRecord] = field(default_factory=list)
    demonstration: str = ""
    demonstration_kind: str = ""

    @property
    def demonstration_checked(self) -> bool:
        """True when the demonstration was machine-checked here.

        Reductions (the assumed PSL citation, dominance arguments) are
        sound but exhibit nothing in *this* cell's runs; see
        :data:`CHECKED_DEMONSTRATION_KINDS`.
        """
        return self.demonstration_kind in CHECKED_DEMONSTRATION_KINDS

    @property
    def empirically_consistent(self) -> bool:
        """Prediction and observation agree.

        Solvable cells need every run clean; unsolvable cells need the
        demonstration to have produced impossibility evidence.
        """
        if self.predicted_solvable:
            return all(r.ok for r in self.runs)
        return any(not r.ok for r in self.runs) or bool(self.demonstration)

    def failures(self) -> list[RunRecord]:
        return [r for r in self.runs if not r.ok]

    def summary(self) -> str:
        mark = "consistent" if self.empirically_consistent else "MISMATCH"
        kind = "solvable" if self.predicted_solvable else "unsolvable"
        return (
            f"{self.params.describe()} predicted {kind} [{self.algorithm}] "
            f"-> {mark} ({len(self.runs)} runs"
            + (f"; demo: {self.demonstration}" if self.demonstration else "")
            + ")"
        )


# ----------------------------------------------------------------------
# Workload slices (shared by the sequential path and the campaign engine)
# ----------------------------------------------------------------------
def _solvable_slices(
    params: SystemParams, seed: int, quick: bool
) -> Iterator[tuple[int, int, str, object, str, tuple[int, ...]]]:
    """Yield ``(a_idx, b_idx, a_name, assignment, b_name, byzantine)``."""
    assignments = assignment_battery(params.n, params.ell, seed)
    if quick:
        assignments = assignments[:2]
    for a_idx, (a_name, assignment) in enumerate(assignments):
        byz_options = byzantine_batteries(assignment, params.t, seed)
        if quick:
            byz_options = byz_options[:2]
        for b_idx, (b_name, byzantine) in enumerate(byz_options):
            yield a_idx, b_idx, a_name, assignment, b_name, byzantine


def solvable_slice_keys(
    params: SystemParams, seed: int = 0, quick: bool = False
) -> list[tuple[int, int]]:
    """Enumerate the workload slices of a solvable cell.

    A slice is one (assignment, Byzantine placement) pair of the cell's
    battery; running all slices of a cell reproduces exactly the runs of
    :func:`evaluate_solvable_cell`.  The keys are pure indices, so they
    are trivially serialisable and a worker process can reconstruct the
    slice deterministically from ``(params, seed, quick, key)``.

    Args:
        params: The (solvable) cell's system parameters.
        seed: The battery seed (must match the execution seed).
        quick: Whether the trimmed quick battery is used.

    Returns:
        The ordered list of ``(assignment_index, byzantine_index)`` keys.
    """
    return [(a, b) for a, b, *_ in _solvable_slices(params, seed, quick)]


def _resolve_slice(
    params: SystemParams, key: tuple[int, int], seed: int, quick: bool
):
    """Resolve a slice key to its named (assignment, placement) pair.

    Args:
        params: The cell's system parameters.
        key: An ``(assignment_index, byzantine_index)`` pair.
        seed: The battery seed.
        quick: Whether the trimmed quick battery is used.

    Returns:
        ``(a_name, assignment, b_name, byzantine)``.

    Raises:
        ConfigurationError: If ``key`` does not name a slice of this
            cell's battery.
    """
    a_idx, b_idx = key
    assignments = assignment_battery(params.n, params.ell, seed)
    if quick:
        assignments = assignments[:2]
    if not 0 <= a_idx < len(assignments):
        raise ConfigurationError(
            f"no workload slice {key!r} in the battery of {params.describe()}"
        )
    a_name, assignment = assignments[a_idx]
    byz_options = byzantine_batteries(assignment, params.t, seed)
    if quick:
        byz_options = byz_options[:2]
    if not 0 <= b_idx < len(byz_options):
        raise ConfigurationError(
            f"no workload slice {key!r} in the battery of {params.describe()}"
        )
    b_name, byzantine = byz_options[b_idx]
    return a_name, assignment, b_name, byzantine


def _run_slice(
    params: SystemParams,
    key: tuple[int, int],
    problem: AgreementProblem,
    seed: int,
    quick: bool,
    network_dimension: list[tuple[str, dict]],
) -> list[RunRecord]:
    """The shared slice body: patterns x network dimension x attacks.

    Both slice runners sweep the same grid and differ only in the
    middle dimension -- drop schedules for the validation battery,
    delay policies for the delay family -- expressed here as
    ``(name, run_agreement-kwargs)`` pairs.

    Args:
        params: The cell's system parameters.
        key: The slice key (see :func:`_resolve_slice`).
        problem: The agreement problem instance.
        seed: The battery seed.
        quick: Whether the trimmed quick battery is used.
        network_dimension: The middle sweep dimension, already trimmed.

    Returns:
        The run records of the slice, in sequential-harness order.
    """
    a_name, assignment, b_name, byzantine = _resolve_slice(
        params, key, seed, quick
    )
    name, factory, horizon = algorithm_for(params, problem)
    attacks = standard_attack_suite(
        factory, params.restricted,
        seeds=(seed + 1,) if quick else (seed + 1, seed + 2),
    )
    if quick:
        attacks = attacks[:4]
    correct = [k for k in range(params.n) if k not in byzantine]
    patterns = input_patterns(correct, problem, seed)
    if quick:
        patterns = patterns[:3]

    records: list[RunRecord] = []
    for p_name, proposals in patterns:
        for net_name, net_kwargs in network_dimension:
            for atk_name, adversary in attacks:
                label = "/".join((a_name, b_name, p_name, net_name, atk_name))
                run = run_agreement(
                    params=params,
                    assignment=assignment,
                    factory=factory,
                    proposals=proposals,
                    byzantine=byzantine,
                    adversary=adversary,
                    max_rounds=horizon,
                    **net_kwargs,
                )
                brief = run.brief()
                records.append(
                    RunRecord(
                        label=label,
                        ok=brief.ok,
                        detail=brief.detail,
                        rounds=brief.rounds,
                        messages=brief.messages,
                        losses=brief.losses,
                    )
                )
    return records


def run_solvable_slice(
    params: SystemParams,
    key: tuple[int, int],
    problem: AgreementProblem = BINARY,
    seed: int = 0,
    quick: bool = False,
) -> list[RunRecord]:
    """Execute one workload slice of a solvable cell.

    This is the picklable unit of work the campaign engine fans out:
    everything an execution needs (batteries, attacks, schedules) is
    rebuilt deterministically from the arguments, so the records are
    identical whether the slice runs in-process or in a worker.

    Args:
        params: The (solvable) cell's system parameters.
        key: An ``(assignment_index, byzantine_index)`` pair from
            :func:`solvable_slice_keys`.
        problem: The agreement problem instance.
        seed: The battery seed.
        quick: Whether the trimmed quick battery is used.

    Returns:
        The run records of the slice, in sequential-harness order.

    Raises:
        ConfigurationError: If ``key`` does not name a slice of this
            cell's battery.
    """
    schedules = drop_schedules(params, seed)
    if quick:
        schedules = schedules[:2]
    return _run_slice(
        params, key, problem, seed, quick,
        [(s_name, {"drop_schedule": schedule})
         for s_name, schedule in schedules],
    )


def delay_slice_keys(
    params: SystemParams, seed: int = 0, quick: bool = False
) -> list[tuple[int, int]]:
    """Enumerate the workload slices of a cell's delay-model battery.

    Delay units share the solvable battery's (assignment, Byzantine
    placement) grid -- the delay dimension varies *inside* a slice (see
    :func:`run_delay_slice`) -- so the keys are exactly
    :func:`solvable_slice_keys`.

    Args:
        params: The (partially synchronous, solvable) cell's parameters.
        seed: The battery seed (must match the execution seed).
        quick: Whether the trimmed quick battery is used.

    Returns:
        The ordered list of ``(assignment_index, byzantine_index)`` keys.
    """
    return solvable_slice_keys(params, seed, quick)


def run_delay_slice(
    params: SystemParams,
    key: tuple[int, int],
    problem: AgreementProblem = BINARY,
    seed: int = 0,
    quick: bool = False,
) -> list[RunRecord]:
    """Execute one delay-model workload slice on the unified kernel.

    The delay counterpart of :func:`run_solvable_slice`: the same
    (assignment, Byzantine placement) slice grid, but instead of the
    drop-schedule dimension each execution runs under a
    :class:`~repro.sim.kernel.DelayBased` timing model drawn from
    :func:`~repro.experiments.workloads.delay_policy_battery` -- the
    paper's delay-based partial-synchrony formulations, with late
    arrivals materialised as basic-model losses on the fabric.  Like
    the solvable slice, everything is rebuilt deterministically from
    the arguments, so records are identical in-process or in a worker.

    Args:
        params: The cell's system parameters; must be a *partially
            synchronous, solvable* cell (the delay models are the
            psync formulations -- a synchronous cell has no delay
            dimension).
        key: An ``(assignment_index, byzantine_index)`` pair from
            :func:`delay_slice_keys`.
        problem: The agreement problem instance.
        seed: The battery seed.
        quick: Whether the trimmed quick battery is used.

    Returns:
        The run records of the slice, one per
        pattern x policy x attack.

    Raises:
        ConfigurationError: If the cell is not psync-solvable or
            ``key`` does not name a slice of its battery.
    """
    if params.synchrony is not Synchrony.PARTIALLY_SYNCHRONOUS:
        raise ConfigurationError(
            f"delay workloads need a partially synchronous cell, got "
            f"{params.describe()}"
        )
    if not solvable(params):
        raise ConfigurationError(
            f"delay workloads validate solvable cells only, got "
            f"{params.describe()}"
        )
    policies = delay_policy_battery(seed)
    if quick:
        policies = policies[:2]
    return _run_slice(
        params, key, problem, seed, quick,
        [(d_name, {"timing": DelayBased(policy)})
         for d_name, policy in policies],
    )


def evaluate_solvable_cell(
    params: SystemParams,
    problem: AgreementProblem = BINARY,
    seed: int = 0,
    quick: bool = False,
) -> CellResult:
    """Run the cell's algorithm across the workload battery.

    Args:
        params: The (solvable) cell's system parameters.
        problem: The agreement problem instance.
        seed: The battery seed.
        quick: Trim the battery to keep the wall-clock sane.

    Returns:
        The :class:`CellResult` with one record per execution.
    """
    name, _, _ = algorithm_for(params, problem)
    result = CellResult(params=params, predicted_solvable=True, algorithm=name)
    for slice_key in solvable_slice_keys(params, seed, quick):
        result.runs.extend(
            run_solvable_slice(params, slice_key, problem, seed, quick)
        )
    return result


def evaluate_unsolvable_cell(
    params: SystemParams,
    problem: AgreementProblem = BINARY,
    seed: int = 0,
) -> CellResult:
    """Run the constructive impossibility demonstration for the cell.

    Args:
        params: The (unsolvable) cell's system parameters.
        problem: The agreement problem instance.
        seed: Unused by the demonstrations today; accepted for symmetry
            with :func:`evaluate_solvable_cell`.

    Returns:
        The :class:`CellResult`; ``demonstration`` carries the
        impossibility evidence detail and ``demonstration_kind`` its
        structured provenance.
    """
    name, factory, horizon = algorithm_for(params, problem, unchecked=True)
    result = CellResult(params=params, predicted_solvable=False, algorithm=name)
    kind, detail = _demonstrate_unsolvable(params, factory, horizon)
    result.demonstration_kind = kind
    result.demonstration = detail
    return result


def _demonstrate_unsolvable(
    params: SystemParams, factory, horizon: int
) -> tuple[str, str]:
    """Build the cell's impossibility demonstration.

    Returns:
        ``(kind, detail)`` -- ``kind`` is a member of
        :data:`CHECKED_DEMONSTRATION_KINDS` or
        :data:`DERIVED_DEMONSTRATION_KINDS` and ``detail`` the
        human-readable evidence, or ``("", "")`` when no demonstration
        covers the cell.
    """
    n, ell, t = params.n, params.ell, params.t
    if not params.meets_psl_bound:
        return "psl-citation", (
            f"n={n} <= 3t={3 * t}: classical PSL impossibility (assumed, "
            f"paper cites [13, 17])"
        )

    if params.restricted and params.numerate:
        # ell <= t: Lemma 17 mirror scan (valency argument).
        scan = mirror_chain_scan(params, factory, max_rounds=horizon)
        if scan.impossibility_evidence:
            return "mirror", f"mirror scan: {scan.detail}"
        return "", ""

    if ell == 3 * t:
        # Figure 1 scenario (applies to sync; psync inherits it since the
        # partially synchronous model contains all synchronous runs).
        outcome = run_scenario(n, t, factory, max_rounds=horizon)
        if outcome.contradiction_exhibited:
            broken = [v.name for v in outcome.views if not v.satisfied]
            return "scenario", f"figure-1 scenario: views {broken} violated"
        return "", ""

    if ell < 3 * t:
        return "dominance", (
            f"ell={ell} < 3t={3 * t}: dominated by the ell=3t scenario "
            f"(fewer identifiers are strictly weaker)"
        )

    # Remaining case: partially synchronous, 3t < ell, 2*ell <= n + 3t.
    if partition_attack_feasible(n, ell, t):
        outcome = run_partition_attack(
            n, ell, t, factory,
            reference_rounds=dls_horizon(params, 0),
        )
        if outcome.attack_succeeded:
            return "partition", (
                "figure-4 partition: gamma verdict "
                + "; ".join(str(v) for v in outcome.gamma.verdict.violations)
            )
        return "", ""

    return "", ""


def evaluate_cell(
    params: SystemParams,
    problem: AgreementProblem = BINARY,
    seed: int = 0,
    quick: bool = False,
) -> CellResult:
    """Dispatch on the predicted solvability of the cell.

    Args:
        params: The cell's system parameters.
        problem: The agreement problem instance.
        seed: The battery seed (solvable cells only).
        quick: Trim the battery (solvable cells only).

    Returns:
        The cell's :class:`CellResult`, from either
        :func:`evaluate_solvable_cell` or
        :func:`evaluate_unsolvable_cell`.
    """
    if solvable(params):
        return evaluate_solvable_cell(params, problem, seed, quick)
    return evaluate_unsolvable_cell(params, problem, seed)
