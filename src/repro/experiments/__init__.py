"""Experiment harness: workloads, per-cell validation, campaigns, reports.

Three layers:

* :mod:`repro.experiments.workloads` -- deterministic battery building
  blocks (inputs, assignments, Byzantine placements);
* :mod:`repro.experiments.harness` -- sequential validation of one
  Table 1 cell, sliced into picklable workload units;
* :mod:`repro.experiments.campaign` -- the parallel campaign engine:
  unit enumeration, worker-pool fan-out, disk cache, and the
  JSON/Markdown :class:`~repro.experiments.campaign.CampaignReport`.

:mod:`repro.experiments.report` renders harness results as text the way
the paper presents them.
"""

from repro.experiments.campaign import (
    CampaignCache,
    CampaignReport,
    CampaignUnit,
    enumerate_units,
    execute_unit,
    run_campaign,
    shard_units,
    table1_cells,
)
from repro.experiments.harness import (
    CellResult,
    RunRecord,
    algorithm_for,
    drop_schedules,
    evaluate_cell,
    evaluate_solvable_cell,
    evaluate_unsolvable_cell,
    run_solvable_slice,
    solvable_slice_keys,
)
from repro.experiments.report import (
    cell_grid_report,
    failures_report,
    latency_series_report,
)
from repro.experiments.workloads import (
    alternating_inputs,
    assignment_battery,
    byzantine_batteries,
    byzantine_on_homonyms,
    byzantine_on_sole_owners,
    input_patterns,
    random_byzantine,
    random_inputs,
    unanimous_inputs,
)

__all__ = [
    "CampaignCache",
    "CampaignReport",
    "CampaignUnit",
    "CellResult",
    "RunRecord",
    "algorithm_for",
    "alternating_inputs",
    "assignment_battery",
    "byzantine_batteries",
    "byzantine_on_homonyms",
    "byzantine_on_sole_owners",
    "cell_grid_report",
    "drop_schedules",
    "enumerate_units",
    "evaluate_cell",
    "evaluate_solvable_cell",
    "evaluate_unsolvable_cell",
    "execute_unit",
    "failures_report",
    "input_patterns",
    "latency_series_report",
    "random_byzantine",
    "random_inputs",
    "run_campaign",
    "run_solvable_slice",
    "shard_units",
    "solvable_slice_keys",
    "table1_cells",
    "unanimous_inputs",
]
