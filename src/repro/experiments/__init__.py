"""Experiment harness: workloads, per-cell validation, reports."""

from repro.experiments.harness import (
    CellResult,
    RunRecord,
    algorithm_for,
    drop_schedules,
    evaluate_cell,
    evaluate_solvable_cell,
    evaluate_unsolvable_cell,
)
from repro.experiments.report import (
    cell_grid_report,
    failures_report,
    latency_series_report,
)
from repro.experiments.workloads import (
    alternating_inputs,
    assignment_battery,
    byzantine_batteries,
    byzantine_on_homonyms,
    byzantine_on_sole_owners,
    input_patterns,
    random_byzantine,
    random_inputs,
    unanimous_inputs,
)

__all__ = [
    "CellResult",
    "RunRecord",
    "algorithm_for",
    "alternating_inputs",
    "assignment_battery",
    "byzantine_batteries",
    "byzantine_on_homonyms",
    "byzantine_on_sole_owners",
    "cell_grid_report",
    "drop_schedules",
    "evaluate_cell",
    "evaluate_solvable_cell",
    "evaluate_unsolvable_cell",
    "failures_report",
    "input_patterns",
    "latency_series_report",
    "random_byzantine",
    "random_inputs",
    "unanimous_inputs",
]
