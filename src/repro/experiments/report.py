"""Reporting: render harness results the way the paper presents them."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.harness import CellResult


def cell_grid_report(results: Sequence[CellResult]) -> str:
    """One line per cell: parameters, prediction, empirical verdict.

    Args:
        results: Cell results, e.g. from the harness or from
            :meth:`repro.experiments.campaign.CampaignReport.cell_results`.

    Returns:
        The fixed-width text grid, ending in a consistency tally.
    """
    lines = ["Table 1 empirical validation", "=" * 64]
    consistent = 0
    for cell in results:
        lines.append(cell.summary())
        if cell.empirically_consistent:
            consistent += 1
    lines.append("=" * 64)
    lines.append(f"{consistent}/{len(results)} cells consistent with the paper")
    return "\n".join(lines)


def failures_report(results: Iterable[CellResult]) -> str:
    """Details of every run that disagreed with the prediction.

    Args:
        results: Cell results to scan for mismatches.

    Returns:
        One block per inconsistent cell, or ``"no mismatches"``.
    """
    lines: list[str] = []
    for cell in results:
        if cell.empirically_consistent:
            continue
        lines.append(cell.params.describe())
        if cell.predicted_solvable:
            for record in cell.failures():
                lines.append(f"  FAIL {record.label}: {record.detail}")
        else:
            lines.append("  expected an impossibility demonstration, got none")
    return "\n".join(lines) if lines else "no mismatches"


def latency_series_report(
    title: str, rows: Sequence[tuple[str, float]], unit: str = "rounds"
) -> str:
    """A small fixed-width series table (used by the figure benches).

    Args:
        title: Table heading.
        rows: ``(name, value)`` pairs, printed in order.
        unit: Unit suffix appended to each value.

    Returns:
        The rendered table text.
    """
    width = max((len(name) for name, _ in rows), default=8) + 2
    lines = [title, "-" * (width + 12)]
    for name, value in rows:
        lines.append(f"{name.ljust(width)}{value:>8.1f} {unit}")
    return "\n".join(lines)
