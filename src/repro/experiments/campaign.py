"""Campaign engine: shard the Table 1 battery across a worker pool.

The sequential harness (:mod:`repro.experiments.harness`) validates one
cell at a time in one process.  A *campaign* runs a whole battery of
cells -- by default the eight canonical Table 1 boundary cells -- as a
set of independent, serialisable work units:

* :class:`CampaignUnit` describes one unit of work as plain data: the
  cell parameters plus either a workload-slice key (solvable cells,
  one unit per assignment x Byzantine-placement pair) or the
  impossibility demonstration (unsolvable cells, one unit per cell).
  Units are pure specs, so they pickle, shard, and cache by content
  hash.
* :func:`enumerate_units` expands a cell list into the ordered unit
  grid; :func:`shard_units` selects a ``shard/of`` stripe of it for
  multi-machine splits.
* :func:`execute_unit` is the picklable worker entry point: it rebuilds
  everything from the spec and returns a plain-dict result.
* :func:`run_campaign` fans units out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (or runs them inline
  for ``workers <= 1``), consults a :class:`CampaignCache` so re-runs
  only execute the delta, and folds everything into a
  :class:`CampaignReport` with JSON and Markdown emitters.

Determinism: unit results depend only on the unit spec, and the report
assembles them in enumeration order, so the same seed yields an
identical canonical report for any ``--workers`` count and for cached
vs fresh execution.  The records are byte-identical to the sequential
harness because both paths share the slice layer of
:mod:`repro.experiments.harness`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

import repro
from repro.analysis.bounds import solvable
from repro.core.canonical import canonical_json
from repro.core.errors import ConfigurationError
from repro.core.params import Synchrony, SystemParams
from repro.core.problem import BINARY, AgreementProblem
from repro.experiments.harness import (
    CellResult,
    RunRecord,
    algorithm_for,
    delay_slice_keys,
    evaluate_unsolvable_cell,
    run_delay_slice,
    run_solvable_slice,
    solvable_slice_keys,
)

#: Problems a unit spec may name (specs carry strings, not objects).
PROBLEMS: dict[str, AgreementProblem] = {"binary": BINARY}

#: Salt folded into every unit id.  Bump the schema component when the
#: shape *or semantics* of a unit result changes; the package version
#: component makes caches written by a different release miss rather
#: than serve results computed by different code.  ``campaign/7``:
#: run records carry the exact basic-model ``"losses"`` count next to
#: ``"rounds"``/``"messages"`` (delay slices and the soak farm's loss
#: accounting), so records written by the 6-key schema miss.
CACHE_SCHEMA = "campaign/7"

_SYNCHRONY = {s.short: s for s in Synchrony}

PSYNC = Synchrony.PARTIALLY_SYNCHRONOUS


def table1_cells() -> list[tuple[str, SystemParams]]:
    """The canonical campaign battery: both sides of every Table 1 boundary.

    Returns:
        ``(label, params)`` pairs -- one solvable and one unsolvable
        cell for each of the four model families of Table 1.
    """
    return [
        # -- synchronous, unrestricted (Theorem 3: ell > 3t) ------------
        ("sync solvable", SystemParams(n=5, ell=4, t=1)),
        ("sync unsolvable", SystemParams(n=5, ell=3, t=1)),
        # -- synchronous, restricted + innumerate (Theorem 19) ----------
        ("sync-restricted-innum solvable",
         SystemParams(n=5, ell=4, t=1, restricted=True)),
        ("sync-restricted-innum unsolvable",
         SystemParams(n=5, ell=3, t=1, restricted=True)),
        # -- partially synchronous, unrestricted (Theorem 13) -----------
        ("psync solvable", SystemParams(n=7, ell=6, t=1, synchrony=PSYNC)),
        ("psync unsolvable", SystemParams(n=9, ell=6, t=1, synchrony=PSYNC)),
        # -- restricted + numerate (Theorems 14/15: ell > t) ------------
        ("restricted-numerate solvable",
         SystemParams(n=4, ell=2, t=1, synchrony=PSYNC,
                      numerate=True, restricted=True)),
        ("restricted-numerate unsolvable",
         SystemParams(n=4, ell=1, t=1, synchrony=PSYNC,
                      numerate=True, restricted=True)),
    ]


def delay_cells() -> list[tuple[str, SystemParams]]:
    """The delay-model campaign battery: the psync solvable cells.

    The delay-based formulations are the partially synchronous models,
    so the battery is :func:`table1_cells` restricted to its partially
    synchronous solvable members -- each validated over the kernel's
    :class:`~repro.sim.kernel.DelayBased` timing model instead of drop
    schedules.

    Returns:
        ``(label, params)`` pairs.
    """
    return [
        (label, params)
        for label, params in table1_cells()
        if params.synchrony is PSYNC and solvable(params)
    ]


# ----------------------------------------------------------------------
# Unit specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignUnit:
    """One serialisable unit of campaign work.

    ``kind`` is ``"slice"`` for one workload slice of a solvable cell
    (``assignment_index``/``byzantine_index`` name the slice),
    ``"demonstration"`` for the whole impossibility demonstration of an
    unsolvable cell (indices are ``-1``), ``"explore"`` for one bounded
    strategy-exploration slice of the tightness frontier (indices name
    the assignment x Byzantine-placement pair of
    :func:`repro.explore.units.explore_slice_keys`), ``"delay"`` for
    one delay-model workload slice
    (:func:`repro.experiments.harness.run_delay_slice`) of a partially
    synchronous solvable cell, or ``"atlas"`` for the full evidence
    collection of one solvability-atlas cell
    (:func:`repro.atlas.evidence.run_atlas_unit`; ``variant`` selects
    the cell's evidence plan).
    """

    label: str
    n: int
    ell: int
    t: int
    synchrony: str
    numerate: bool
    restricted: bool
    kind: str
    assignment_index: int = -1
    byzantine_index: int = -1
    seed: int = 0
    quick: bool = True
    problem: str = "binary"
    variant: str = ""

    def params(self) -> SystemParams:
        """Reconstruct the cell's :class:`SystemParams` from the spec."""
        return SystemParams(
            n=self.n, ell=self.ell, t=self.t,
            synchrony=_SYNCHRONY[self.synchrony],
            numerate=self.numerate, restricted=self.restricted,
        )

    @property
    def unit_id(self) -> str:
        """Content hash of the spec -- the cache key and dedup identity.

        The hash covers the full spec plus :data:`CACHE_SCHEMA` and the
        package version, so a cache directory never serves results
        computed by a different release or result schema.  The hash
        input is :func:`repro.core.canonical.canonical_json` -- the same
        canonicalisation :meth:`ExecutionResult.brief
        <repro.sim.runner.ExecutionResult.brief>` orders decisions with
        -- so keys cannot drift across Python versions or hash seeds.
        """
        payload = canonical_json([CACHE_SCHEMA, repro.__version__, asdict(self)])
        return hashlib.sha1(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        if self.kind == "demonstration":
            where = "demonstration"
        elif self.kind == "atlas":
            where = self.variant or "atlas"
        elif self.kind == "soak":
            where = (
                f"{self.variant}[{self.assignment_index}:"
                f"{self.assignment_index + self.byzantine_index}]"
            )
        else:  # "slice" and "explore" are both (assignment, byz) slices
            where = (
                f"{self.kind} a{self.assignment_index}b{self.byzantine_index}"
            )
        return f"{self.label} [{where}]"

    def to_dict(self) -> dict:
        """Serialise the spec to plain JSON-compatible data."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignUnit":
        """Rebuild a spec from :meth:`to_dict` output.

        Args:
            data: A mapping with exactly the dataclass fields.

        Returns:
            The reconstructed unit.
        """
        return cls(**dict(data))

    @classmethod
    def for_cell(
        cls,
        label: str,
        params: SystemParams,
        kind: str,
        assignment_index: int = -1,
        byzantine_index: int = -1,
        seed: int = 0,
        quick: bool = True,
        problem: str = "binary",
        variant: str = "",
    ) -> "CampaignUnit":
        """Build a unit spec from live parameters.

        Args:
            label: The cell's display label (groups units into cells).
            params: The cell's system parameters.
            kind: ``"slice"`` or ``"demonstration"``.
            assignment_index: Slice key part (slices only).
            byzantine_index: Slice key part (slices only).
            seed: The battery seed.
            quick: Whether the trimmed quick battery is used.
            problem: Name of the agreement problem (key of
                :data:`PROBLEMS`).
            variant: Evidence-plan selector (``"atlas"`` units only).

        Returns:
            The frozen, hashable unit spec.
        """
        return cls(
            label=label,
            n=params.n, ell=params.ell, t=params.t,
            synchrony=params.synchrony.short,
            numerate=params.numerate, restricted=params.restricted,
            kind=kind,
            assignment_index=assignment_index,
            byzantine_index=byzantine_index,
            seed=seed, quick=quick, problem=problem,
            variant=variant,
        )


def enumerate_units(
    cells: Sequence[tuple[str, SystemParams]] | None = None,
    seed: int = 0,
    quick: bool = True,
    problem: str = "binary",
) -> list[CampaignUnit]:
    """Expand a cell battery into the ordered campaign unit grid.

    Solvable cells contribute one unit per workload slice; unsolvable
    cells contribute a single demonstration unit.  The order is the
    sequential harness's order, which makes report assembly (and the
    determinism guarantee) a plain sort-free fold.

    Args:
        cells: ``(label, params)`` pairs; defaults to
            :func:`table1_cells`.
        seed: The battery seed shared by every unit.
        quick: Use the trimmed quick battery.
        problem: Name of the agreement problem.

    Returns:
        The ordered list of units.

    Raises:
        ConfigurationError: On duplicate cell labels (labels are the
            aggregation key).
    """
    if cells is None:
        cells = table1_cells()
    labels = [label for label, _ in cells]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(f"duplicate cell labels in {labels}")
    units: list[CampaignUnit] = []
    for label, params in cells:
        if solvable(params):
            for a_idx, b_idx in solvable_slice_keys(params, seed, quick):
                units.append(CampaignUnit.for_cell(
                    label, params, "slice",
                    assignment_index=a_idx, byzantine_index=b_idx,
                    seed=seed, quick=quick, problem=problem,
                ))
        else:
            units.append(CampaignUnit.for_cell(
                label, params, "demonstration",
                seed=seed, quick=quick, problem=problem,
            ))
    return units


def enumerate_explore_units(
    cells: Sequence[tuple[str, SystemParams]] | None = None,
    seed: int = 0,
    quick: bool = True,
    problem: str = "binary",
) -> list[CampaignUnit]:
    """Expand a tightness-frontier battery into exploration units.

    One unit per (assignment, Byzantine placement) pair of each cell --
    the frontier sharding that lets the process pool (or ``--shard``
    stripes across machines) fan the bounded strategy exploration out.

    Args:
        cells: ``(label, params)`` pairs; defaults to
            :func:`repro.explore.units.explore_battery`.
        seed: Battery seed (recorded in the unit id; exploration itself
            is deterministic).
        quick: Trim the placement battery.
        problem: Name of the agreement problem.

    Returns:
        The ordered unit list.

    Raises:
        ConfigurationError: On duplicate cell labels.
    """
    from repro.explore.units import explore_battery, explore_slice_keys

    if cells is None:
        cells = explore_battery()
    labels = [label for label, _ in cells]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(f"duplicate cell labels in {labels}")
    return [
        CampaignUnit.for_cell(
            label, params, "explore",
            assignment_index=a_idx, byzantine_index=b_idx,
            seed=seed, quick=quick, problem=problem,
        )
        for label, params in cells
        for a_idx, b_idx in explore_slice_keys(params, seed, quick)
    ]


def enumerate_delay_units(
    cells: Sequence[tuple[str, SystemParams]] | None = None,
    seed: int = 0,
    quick: bool = True,
    problem: str = "binary",
) -> list[CampaignUnit]:
    """Expand a delay battery into delay-model workload units.

    One unit per (assignment, Byzantine placement) slice of each cell,
    exactly as :func:`enumerate_units` does for the validation battery
    -- the delay-policy dimension varies inside each unit.

    Args:
        cells: ``(label, params)`` pairs; defaults to
            :func:`delay_cells`.  Every cell must be partially
            synchronous and solvable.
        seed: The battery seed shared by every unit.
        quick: Use the trimmed quick battery.
        problem: Name of the agreement problem.

    Returns:
        The ordered unit list.

    Raises:
        ConfigurationError: On duplicate cell labels or a cell outside
            the delay-model family.
    """
    if cells is None:
        cells = delay_cells()
    labels = [label for label, _ in cells]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(f"duplicate cell labels in {labels}")
    for label, params in cells:
        if params.synchrony is not PSYNC or not solvable(params):
            raise ConfigurationError(
                f"delay campaign cell {label!r} must be partially "
                f"synchronous and solvable, got {params.describe()}"
            )
    return [
        CampaignUnit.for_cell(
            label, params, "delay",
            assignment_index=a_idx, byzantine_index=b_idx,
            seed=seed, quick=quick, problem=problem,
        )
        for label, params in cells
        for a_idx, b_idx in delay_slice_keys(params, seed, quick)
    ]


def enumerate_atlas_units(
    cells: Sequence[tuple[str, SystemParams, str]],
    seed: int = 0,
    quick: bool = True,
    problem: str = "binary",
) -> list[CampaignUnit]:
    """Expand an atlas lattice into evidence-collection units.

    One unit per lattice cell: the unit executes the whole
    evidence plan of its cell (:func:`repro.atlas.evidence.
    run_atlas_unit`), with ``variant`` naming the plan -- the atlas
    driver keeps lattice knowledge on its side so this module stays
    evidence-agnostic.

    Args:
        cells: ``(label, params, variant)`` triples in lattice order.
        seed: The battery seed shared by every unit.
        quick: Use the trimmed quick batteries.
        problem: Name of the agreement problem.

    Returns:
        The ordered unit list.

    Raises:
        ConfigurationError: On duplicate cell labels.
    """
    labels = [label for label, _, _ in cells]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(f"duplicate cell labels in {labels}")
    return [
        CampaignUnit.for_cell(
            label, params, "atlas",
            seed=seed, quick=quick, problem=problem, variant=variant,
        )
        for label, params, variant in cells
    ]


def enumerate_soak_units(
    profile: str,
    farm_seed: int,
    instances: int,
    window: int,
) -> list[CampaignUnit]:
    """Expand a soak farm budget into window units.

    One ``kind="soak"`` unit per window of the deterministic instance
    stream: ``variant`` names the profile, ``assignment_index`` the
    window's first instance, ``byzantine_index`` its instance count
    (the slice-key fields repurposed as the stream slice -- a soak
    window spans many cells, so it has no single ``(n, ell, t)``; the
    cell fields carry the trivial placeholder and are unused).  The
    unit id still content-hashes the full spec, so windows from a
    different profile, seed, window size or schema never collide in
    the cache.

    Args:
        profile: A :data:`repro.soak.mixture.PROFILES` key.
        farm_seed: The farm's seed.
        instances: Total instance budget (the last window may be
            short).
        window: Instances per window.

    Returns:
        The ordered window units.

    Raises:
        ConfigurationError: Non-positive window or negative budget.
    """
    if window < 1:
        raise ConfigurationError(f"soak window must be >= 1, got {window}")
    if instances < 0:
        raise ConfigurationError(
            f"soak instance budget must be >= 0, got {instances}"
        )
    units = []
    for start in range(0, instances, window):
        units.append(
            CampaignUnit(
                label=f"soak/{profile}",
                n=1, ell=1, t=0,
                synchrony="sync", numerate=False, restricted=False,
                kind="soak",
                assignment_index=start,
                byzantine_index=min(window, instances - start),
                seed=farm_seed,
                variant=profile,
            )
        )
    return units


def shard_units(
    units: Sequence[CampaignUnit], index: int, count: int
) -> list[CampaignUnit]:
    """Select stripe ``index`` of ``count`` from the unit grid.

    Striping by position keeps each shard a representative mix of cheap
    and expensive units; the ``count`` shards partition the grid.

    Args:
        units: The full unit list (enumeration order).
        index: Zero-based shard index, ``0 <= index < count``.
        count: Total number of shards.

    Returns:
        The units of this shard, in enumeration order.

    Raises:
        ConfigurationError: If ``index``/``count`` are out of range.
    """
    if count < 1 or not 0 <= index < count:
        raise ConfigurationError(
            f"bad shard {index}/{count}: need 0 <= index < count"
        )
    return [u for pos, u in enumerate(units) if pos % count == index]


def parse_shard(text: str) -> tuple[int, int]:
    """Parse an ``INDEX/COUNT`` shard selector.

    The CLI-facing twin of :func:`shard_units`: both the campaign and
    the atlas ``--shard`` flags accept a zero-based stripe selector and
    validate it here, so a bad selector fails before any work starts.

    Args:
        text: A selector such as ``"0/3"``.

    Returns:
        The validated ``(index, count)`` pair,
        ``0 <= index < count``, ``count >= 1``.

    Raises:
        ConfigurationError: Malformed text or an out-of-range pair
            (e.g. ``"0/0"``, ``"3/2"``, ``"x/y"``).
    """
    index_part, sep, count_part = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        index, count = int(index_part), int(count_part)
    except ValueError:
        raise ConfigurationError(
            f"bad shard selector {text!r}: expected INDEX/COUNT, "
            f"e.g. 0/3"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ConfigurationError(
            f"bad shard {index}/{count}: need 0 <= index < count"
        )
    return index, count


# ----------------------------------------------------------------------
# Worker entry point
# ----------------------------------------------------------------------
def execute_unit(unit: CampaignUnit | Mapping) -> dict:
    """Execute one unit and return its plain-dict result.

    This is the function a pool worker runs: it accepts either a
    :class:`CampaignUnit` or its ``to_dict`` form (what actually crosses
    the process boundary), rebuilds the workload deterministically, and
    returns JSON-compatible data only.

    Args:
        unit: The unit spec (object or dict).

    Returns:
        A dict with ``unit_id``, ``label``, ``kind``, ``algorithm``,
        ``records`` (one per execution: label/ok/detail/rounds/
        messages), ``demonstration``, ``demonstration_kind`` and
        ``elapsed_s``.
    """
    if not isinstance(unit, CampaignUnit):
        unit = CampaignUnit.from_dict(unit)
    start = time.perf_counter()  # reprolint: disable=RL002 -- diagnostic timing only
    params = unit.params()
    problem = PROBLEMS[unit.problem]
    demonstration = ""
    demonstration_kind = ""
    if unit.kind == "slice":
        algorithm, _, _ = algorithm_for(params, problem)
        records = run_solvable_slice(
            params,
            (unit.assignment_index, unit.byzantine_index),
            problem, unit.seed, unit.quick,
        )
    elif unit.kind == "delay":
        algorithm, _, _ = algorithm_for(params, problem)
        records = run_delay_slice(
            params,
            (unit.assignment_index, unit.byzantine_index),
            problem, unit.seed, unit.quick,
        )
    elif unit.kind == "soak":
        from repro.soak.units import run_soak_window

        algorithm = "soak-mixture"
        records = run_soak_window(
            unit.variant, unit.seed,
            unit.assignment_index, unit.byzantine_index,
        )
    elif unit.kind == "demonstration":
        cell = evaluate_unsolvable_cell(params, problem, unit.seed)
        algorithm = cell.algorithm
        records = cell.runs
        demonstration = cell.demonstration
        demonstration_kind = cell.demonstration_kind
    elif unit.kind == "explore":
        from repro.explore.units import run_explore_unit

        outcome = run_explore_unit(
            params, unit.assignment_index, unit.byzantine_index,
            unit.seed, unit.quick, problem,
        )
        return {
            "unit_id": unit.unit_id,
            "label": unit.label,
            "kind": unit.kind,
            "assignment_index": unit.assignment_index,
            "byzantine_index": unit.byzantine_index,
            "algorithm": outcome["algorithm"],
            "demonstration": outcome["demonstration"],
            "demonstration_kind": outcome["demonstration_kind"],
            "records": outcome["records"],
            "elapsed_s": time.perf_counter() - start,  # reprolint: disable=RL002 -- diagnostic timing only
        }
    elif unit.kind == "atlas":
        from repro.atlas.evidence import run_atlas_unit
        from repro.atlas.lattice import BUDGET_SKIPPED, WITH_EXPLORER

        outcome = run_atlas_unit(
            params, seed=unit.seed, quick=unit.quick, problem=problem,
            with_explorer=unit.variant == WITH_EXPLORER,
            budget_skipped=unit.variant == BUDGET_SKIPPED,
        )
        return {
            "unit_id": unit.unit_id,
            "label": unit.label,
            "kind": unit.kind,
            "assignment_index": unit.assignment_index,
            "byzantine_index": unit.byzantine_index,
            "algorithm": outcome["algorithm"],
            "demonstration": outcome["demonstration"],
            "demonstration_kind": outcome["demonstration_kind"],
            "records": outcome["records"],
            "evidence": outcome["evidence"],
            "elapsed_s": time.perf_counter() - start,  # reprolint: disable=RL002 -- diagnostic timing only
        }
    else:
        raise ConfigurationError(f"unknown unit kind {unit.kind!r}")
    return {
        "unit_id": unit.unit_id,
        "label": unit.label,
        "kind": unit.kind,
        "assignment_index": unit.assignment_index,
        "byzantine_index": unit.byzantine_index,
        "algorithm": algorithm,
        "demonstration": demonstration,
        "demonstration_kind": demonstration_kind,
        "records": [asdict(r) for r in records],
        "elapsed_s": time.perf_counter() - start,  # reprolint: disable=RL002 -- diagnostic timing only
    }


def _unit_weight(unit: CampaignUnit) -> int:
    """Crude cost estimate used to schedule heavy units first."""
    if unit.kind == "soak":
        # Windows are near-uniform; weight by instance count so a
        # short final window schedules last.
        return max(1, unit.byzantine_index)
    if unit.kind == "explore":
        # Per-round tree exploration (synchronous scopes) dwarfs the
        # persistent-face sweeps, and certificates dwarf violations.
        # (Atlas units never pass through here: their driver submits
        # in lattice order to keep its streaming reorder buffer small.)
        return unit.n ** 3 * (40 if unit.synchrony == "sync" else 4)
    weight = unit.n * unit.n
    if unit.synchrony == "psync":
        weight *= 8 if not (unit.restricted and unit.numerate) else 2
    if unit.kind == "delay":
        # A delay slice runs the whole policy battery per pattern.
        weight *= 3
    return weight


def execute_units(
    pending: Sequence[CampaignUnit],
    workers: int,
    finish: Callable[[CampaignUnit, dict], None],
) -> None:
    """Execute units inline or on a process pool, heaviest first.

    The shared fan-out loop behind :func:`run_campaign` and the soak
    farm's window shards.  ``finish`` is invoked in completion order
    with each unit's result (store to cache, fold into a report, ...).

    Failure contract: the first worker exception aborts the batch
    *promptly*.  Every queued-but-unstarted unit is cancelled before
    the pool is torn down, so one poisoned unit costs at most the units
    already running (one per worker), never the whole campaign's tail.
    The exception is re-raised with the failing unit's ``describe()``
    and id attached as a note.

    Args:
        pending: Units to execute (any order; the pool path re-sorts
            heaviest first for LPT-style makespan).
        workers: Pool size; ``<= 1`` runs inline in this process.
        finish: Callback ``(unit, result)`` run in this process for
            each completed unit, in completion order.
    """
    def attach(exc: BaseException, unit: CampaignUnit) -> None:
        exc.add_note(
            f"while executing campaign unit {unit.describe()} "
            f"({unit.unit_id})"
        )

    if workers <= 1:
        for unit in pending:
            try:
                result = execute_unit(unit)
            except Exception as exc:
                attach(exc, unit)
                raise
            finish(unit, result)
        return

    # Heavy units first: better makespan under LPT-style greedy
    # scheduling, identical results in any order.
    ordered = sorted(pending, key=_unit_weight, reverse=True)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        try:
            futures = {
                pool.submit(execute_unit, unit.to_dict()): unit
                for unit in ordered
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    unit = futures[future]
                    try:
                        result = future.result()
                    except Exception as exc:
                        attach(exc, unit)
                        raise
                    finish(unit, result)
        except BaseException:
            # Without this, the executor's __exit__ joins every
            # outstanding future, so one bad unit would make the whole
            # campaign hang until all unrelated heavy units finish.
            pool.shutdown(wait=False, cancel_futures=True)
            raise


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
class CampaignCache:
    """One-JSON-file-per-unit result cache keyed by unit content hash.

    Because the key hashes the full unit spec (cell, slice, seed,
    quick flag, problem), a cache can be shared between campaigns: only
    identical work is reused, and re-runs execute just the delta.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path(self, unit: CampaignUnit) -> Path:
        """Cache file for a unit."""
        return self.root / f"{unit.unit_id}.json"

    #: Keys every cached result must carry, and every record within it.
    _RESULT_KEYS = frozenset(
        ("unit_id", "label", "kind", "algorithm", "demonstration",
         "demonstration_kind", "records")
    )
    _RECORD_KEYS = frozenset(RunRecord.__dataclass_fields__)

    def load(self, unit: CampaignUnit) -> dict | None:
        """Return the cached result for ``unit``, or ``None``.

        Corrupt, mismatched, or wrong-shaped files (e.g. written by a
        build with a different record schema) are treated as misses.
        """
        path = self.path(unit)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("unit_id") != unit.unit_id:
            return None
        if not self._RESULT_KEYS <= set(data):
            return None
        records = data["records"]
        if not isinstance(records, list) or any(
            not isinstance(r, dict) or set(r) != self._RECORD_KEYS
            for r in records
        ):
            return None
        return data

    def store(self, unit: CampaignUnit, result: Mapping) -> None:
        """Persist a unit result atomically (write-then-rename).

        The tmp name is unique per process *and* per thread: concurrent
        writers of the same unit (two shards sharing a cache root, or a
        resumed run racing a still-draining one) must never share a tmp
        path, or one writer's rename publishes another's half-written
        file -- and the loser's ``replace`` then fails on a vanished
        source.  The payload is flushed and fsynced *before* the rename,
        so a crash between the two cannot persist a truncated entry
        under the final name; the rename itself stays the atomic commit
        point, and the last writer wins with a complete file.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(unit)
        tmp = path.with_name(
            f"{unit.unit_id}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            with tmp.open("w") as fh:
                fh.write(json.dumps(dict(result), sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
            tmp.replace(path)
        finally:
            # Only reachable with the tmp still on disk when the write
            # or rename failed; never leave orphans in the cache root.
            tmp.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """Aggregated outcome of one campaign run.

    ``unit_results`` is in unit-enumeration order regardless of the
    completion order of the pool, which is what makes
    :meth:`canonical_dict` identical across worker counts.
    """

    cells: list[tuple[str, SystemParams]]
    seed: int
    quick: bool
    unit_results: list[dict] = field(default_factory=list)
    workers: int = 1
    executed: int = 0
    cached: int = 0
    elapsed_s: float = 0.0

    # -- aggregation ---------------------------------------------------
    def _labelled_cell_results(self) -> list[tuple[str, CellResult]]:
        """``(label, CellResult)`` per cell with unit results, in order.

        The fold is memoised: a report is not mutated after
        :func:`run_campaign` builds it, and the emitters all lean on
        this result.
        """
        cached = self.__dict__.get("_labelled_cache")
        if cached is not None:
            return cached
        by_label: dict[str, list[dict]] = {}
        for result in self.unit_results:
            by_label.setdefault(result["label"], []).append(result)
        cells: list[tuple[str, CellResult]] = []
        for label, params in self.cells:
            results = by_label.get(label)
            if not results:
                continue
            cell = CellResult(
                params=params,
                predicted_solvable=solvable(params),
                algorithm=results[0]["algorithm"],
            )
            for result in results:
                cell.runs.extend(
                    RunRecord(**record) for record in result["records"]
                )
                if result["demonstration"]:
                    cell.demonstration = result["demonstration"]
                    cell.demonstration_kind = result["demonstration_kind"]
            cells.append((label, cell))
        self.__dict__["_labelled_cache"] = cells
        return cells

    def cell_results(self) -> list[CellResult]:
        """Fold unit results back into per-cell :class:`CellResult`.

        Returns:
            One :class:`CellResult` per campaign cell that has at least
            one unit result, in battery order -- directly comparable to
            (and, for a full unsharded run, equal in verdicts to) the
            sequential harness's output.
        """
        return [cell for _, cell in self._labelled_cell_results()]

    @property
    def all_consistent(self) -> bool:
        """True when every evaluated cell matches its prediction."""
        return all(c.empirically_consistent for c in self.cell_results())

    # -- emitters ------------------------------------------------------
    def to_dict(self, canonical: bool = False) -> dict:
        """Serialise the report.

        Args:
            canonical: Drop everything execution-dependent (worker
                count, cache hits, timings).  Two runs of the same
                campaign spec produce identical canonical dicts no
                matter how they were scheduled.

        Returns:
            A JSON-compatible dict with ``campaign``, ``cells``,
            ``units`` and ``summary`` sections (plus ``execution``
            unless canonical).
        """
        labelled = self._labelled_cell_results()
        cell_results = [cell for _, cell in labelled]
        cells = [
            {
                "label": label,
                "params": cell.params.describe(),
                "predicted": (
                    "solvable" if cell.predicted_solvable else "unsolvable"
                ),
                "algorithm": cell.algorithm,
                "runs": len(cell.runs),
                "failures": [
                    {"label": r.label, "detail": r.detail}
                    for r in cell.failures()
                ],
                "rounds_total": sum(r.rounds for r in cell.runs),
                "messages_total": sum(r.messages for r in cell.runs),
                "demonstration": cell.demonstration,
                "demonstration_kind": cell.demonstration_kind,
                "consistent": cell.empirically_consistent,
            }
            for label, cell in labelled
        ]
        units = []
        for result in self.unit_results:
            unit = {k: v for k, v in result.items() if k != "elapsed_s"}
            if not canonical:
                unit["elapsed_s"] = result.get("elapsed_s", 0.0)
            units.append(unit)
        data = {
            "campaign": {
                "seed": self.seed,
                "quick": self.quick,
                "cells": len(self.cells),
                "units": len(self.unit_results),
            },
            "cells": cells,
            "units": units,
            "summary": {
                "consistent_cells": sum(
                    1 for c in cell_results if c.empirically_consistent
                ),
                "evaluated_cells": len(cell_results),
                "total_runs": sum(len(c.runs) for c in cell_results),
                "failures": sum(len(c.failures()) for c in cell_results),
                "all_consistent": all(
                    c.empirically_consistent for c in cell_results
                ),
            },
        }
        if not canonical:
            data["execution"] = {
                "workers": self.workers,
                "executed": self.executed,
                "cached": self.cached,
                "elapsed_s": self.elapsed_s,
            }
        return data

    def canonical_dict(self) -> dict:
        """Shorthand for ``to_dict(canonical=True)``."""
        return self.to_dict(canonical=True)

    def to_json(self, canonical: bool = False, indent: int = 2) -> str:
        """Serialise :meth:`to_dict` as JSON text.

        Args:
            canonical: See :meth:`to_dict`.
            indent: JSON indentation.

        Returns:
            The JSON document.
        """
        return json.dumps(self.to_dict(canonical=canonical), indent=indent,
                          sort_keys=True)

    def to_markdown(self) -> str:
        """Render the report as a Markdown document."""
        labelled = self._labelled_cell_results()
        cell_results = [cell for _, cell in labelled]
        lines = [
            "# Campaign report",
            "",
            f"- battery: {'quick' if self.quick else 'full'}, "
            f"seed {self.seed}",
            f"- units: {len(self.unit_results)} "
            f"({self.executed} executed, {self.cached} from cache) "
            f"on {self.workers} worker(s) in {self.elapsed_s:.2f}s",
            "",
            "| cell | params | predicted | algorithm | runs | consistent |",
            "|---|---|---|---|---:|---|",
        ]
        for label, cell in labelled:
            lines.append(
                f"| {label} | `{cell.params.describe()}` "
                f"| {'solvable' if cell.predicted_solvable else 'unsolvable'} "
                f"| {cell.algorithm} | {len(cell.runs)} "
                f"| {'yes' if cell.empirically_consistent else '**NO**'} |"
            )
        failures = [
            (cell, record)
            for cell in cell_results for record in cell.failures()
        ]
        if failures:
            lines += ["", "## Failures", ""]
            lines += [
                f"- `{cell.params.describe()}` {record.label}: "
                f"{record.detail}"
                for cell, record in failures
            ]
        demos = [c for c in cell_results
                 if not c.predicted_solvable and c.demonstration]
        if demos:
            lines += ["", "## Impossibility demonstrations", ""]
            lines += [
                f"- `{cell.params.describe()}`: {cell.demonstration}"
                for cell in demos
            ]
        consistent = sum(1 for c in cell_results if c.empirically_consistent)
        lines += [
            "",
            f"**{consistent}/{len(cell_results)} cells consistent with "
            f"the paper.**",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_campaign(
    cells: Sequence[tuple[str, SystemParams]] | None = None,
    seed: int = 0,
    quick: bool = True,
    workers: int = 1,
    cache: CampaignCache | None = None,
    resume: bool = False,
    shard: tuple[int, int] | None = None,
    progress: Callable[[str], None] | None = None,
    unit_kind: str = "validate",
) -> CampaignReport:
    """Run a campaign and aggregate its report.

    Args:
        cells: ``(label, params)`` battery; defaults to
            :func:`table1_cells` (or the explore battery for
            ``unit_kind="explore"``).
        seed: The battery seed.
        quick: Use the trimmed quick battery.
        workers: Pool size; ``<= 1`` runs inline in this process.
        cache: Optional result cache; completed units are always stored
            when a cache is given.
        resume: Also *read* the cache, so only uncached units execute.
        shard: Optional ``(index, count)`` stripe of the unit grid.
        progress: Optional callback receiving one line per finished
            unit.
        unit_kind: ``"validate"`` runs the Table 1 validation battery;
            ``"explore"`` runs bounded strategy exploration over the
            tightness frontier; ``"delay"`` runs the delay-model
            workload family (kernel ``DelayBased`` timing) over the
            partially synchronous solvable cells.

    Returns:
        The aggregated :class:`CampaignReport`.

    Raises:
        ConfigurationError: On an unknown ``unit_kind``.
    """
    start = time.perf_counter()  # reprolint: disable=RL002 -- diagnostic timing only
    if unit_kind == "validate":
        cells = table1_cells() if cells is None else list(cells)
        units = enumerate_units(cells, seed=seed, quick=quick)
    elif unit_kind == "explore":
        from repro.explore.units import explore_battery

        cells = explore_battery() if cells is None else list(cells)
        units = enumerate_explore_units(cells, seed=seed, quick=quick)
    elif unit_kind == "delay":
        cells = delay_cells() if cells is None else list(cells)
        units = enumerate_delay_units(cells, seed=seed, quick=quick)
    else:
        raise ConfigurationError(f"unknown unit kind {unit_kind!r}")
    if shard is not None:
        units = shard_units(units, *shard)

    results: dict[str, dict] = {}
    cached = 0
    pending: list[CampaignUnit] = []
    for unit in units:
        hit = cache.load(unit) if (cache is not None and resume) else None
        if hit is not None:
            results[unit.unit_id] = hit
            cached += 1
            if progress:
                progress(f"cached   {unit.describe()}")
        else:
            pending.append(unit)

    def finish(unit: CampaignUnit, result: dict) -> None:
        results[unit.unit_id] = result
        if cache is not None:
            cache.store(unit, result)
        if progress:
            progress(
                f"executed {unit.describe()} "
                f"({result['elapsed_s']:.2f}s, "
                f"{len(result['records'])} runs)"
            )

    execute_units(pending, workers, finish)

    return CampaignReport(
        cells=cells,
        seed=seed,
        quick=quick,
        unit_results=[results[u.unit_id] for u in units],
        workers=max(1, workers),
        executed=len(pending),
        cached=cached,
        elapsed_s=time.perf_counter() - start,  # reprolint: disable=RL002 -- diagnostic timing only
    )
