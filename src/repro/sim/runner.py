"""Execution driver: build an engine, run it, check the verdict.

This is the layer most users interact with: give it an algorithm
factory, the system parameters, an identity assignment, proposals, a
Byzantine set and an adversary, and it returns an
:class:`ExecutionResult` bundling the agreement verdict, the trace and
the cost metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

from repro.core.canonical import canonical_key
from repro.core.errors import ConfigurationError
from repro.core.identity import IdentityAssignment
from repro.core.params import SystemParams
from repro.core.problem import Verdict, check_agreement_properties
from repro.sim.adversary import Adversary
from repro.sim.kernel import ExecutionKernel, TimingModel, timing_model_for
from repro.sim.metrics import Metrics, metrics_from_deliveries
from repro.sim.partial import DropSchedule
from repro.sim.process import Process
from repro.sim.topology import Topology
from repro.sim.trace import Trace


#: A factory building the correct-process object for one slot:
#: ``(identifier, proposal) -> Process``.
ProcessFactory = Callable[[int, Hashable], Process]


@dataclass(frozen=True)
class RunSummary:
    """Compact, picklable digest of one execution.

    :class:`ExecutionResult` drags the full trace and the live process
    objects along (process objects may close over factories, which do
    not pickle).  Anything that crosses a process boundary -- notably
    the campaign engine's worker pool -- ships this summary instead.
    """

    ok: bool
    detail: str
    rounds: int
    messages: int
    decisions: tuple[Hashable, ...]
    #: Basic-model loss edges materialised by a loss-logging timing
    #: model (delay models); 0 under round-granular timing.
    losses: int = 0

    def summary(self) -> str:
        return self.detail


@dataclass
class ExecutionResult:
    """Everything produced by one simulated execution.

    ``losses`` and ``ticks`` carry the delay-model bookkeeping when the
    execution ran under a loss-logging timing model
    (:class:`~repro.sim.kernel.DelayBased`): the ``(round, sender,
    recipient)`` edges materialised as basic-model losses, and the
    network ticks the executed rounds occupied.  For round-granular
    timing models ``losses`` is empty and ``ticks`` equals the executed
    round count.
    """

    params: SystemParams
    assignment: IdentityAssignment
    byzantine: tuple[int, ...]
    verdict: Verdict
    trace: Trace
    metrics: Metrics
    processes: Sequence[Process | None]
    losses: tuple[tuple[int, int, int], ...] = ()
    ticks: int = 0

    @property
    def ok(self) -> bool:
        return self.verdict.ok

    def brief(self) -> RunSummary:
        """Digest this result into a trace-free, picklable summary.

        Returns:
            A :class:`RunSummary` carrying the verdict flag and text,
            the round/message costs and the distinct decided values in
            canonical-key order.  The order comes from
            :func:`repro.core.canonical.canonical_key` -- the same
            canonicalisation the campaign cache hashes with -- not from
            ``repr``, whose formatting (and, for sets, iteration order)
            can differ across Python versions and hash seeds.
        """
        decisions = sorted(
            {p.decision for p in self.processes if p is not None and p.decided},
            key=canonical_key,
        )
        return RunSummary(
            ok=self.verdict.ok,
            detail=self.verdict.summary(),
            rounds=self.metrics.rounds,
            messages=self.metrics.total_messages,
            decisions=tuple(decisions),
            losses=len(self.losses),
        )

    def summary(self) -> str:
        return (
            f"{self.params.describe()}\n"
            f"  byzantine: {list(self.byzantine)}\n"
            f"  {self.verdict.summary()}\n"
            f"  {self.metrics.summary()}"
        )


def make_processes(
    factory: ProcessFactory,
    assignment: IdentityAssignment,
    proposals: Mapping[int, Hashable],
    byzantine: Sequence[int] = (),
) -> list[Process | None]:
    """Instantiate correct-process objects, leaving Byzantine slots empty.

    ``proposals`` maps each correct slot index to its input value; every
    correct slot must have a proposal.
    """
    byz = set(byzantine)
    slots: list[Process | None] = []
    for index in range(assignment.n):
        if index in byz:
            slots.append(None)
            continue
        if index not in proposals:
            raise ConfigurationError(f"no proposal for correct slot {index}")
        slots.append(factory(assignment.identifier_of(index), proposals[index]))
    return slots


def run_execution(
    params: SystemParams,
    assignment: IdentityAssignment,
    processes: Sequence[Process | None],
    byzantine: Sequence[int] = (),
    adversary: Adversary | None = None,
    drop_schedule: DropSchedule | None = None,
    topology: Topology | None = None,
    timing: TimingModel | None = None,
    max_rounds: int = 200,
    stop_when_all_decided: bool = True,
    require_termination: bool = True,
) -> ExecutionResult:
    """Run one execution to completion (or the round horizon).

    The execution runs on the unified kernel
    (:class:`~repro.sim.kernel.ExecutionKernel`).  Pass either a
    ``timing`` model directly -- e.g. a
    :class:`~repro.sim.kernel.DelayBased` model for the delay-based
    formulations -- or the legacy ``drop_schedule``/``topology`` pair,
    from which the matching basic-model
    :class:`~repro.sim.kernel.TimingModel` is built; combining both is
    a configuration error.

    When ``stop_when_all_decided`` is set the run ends as soon as every
    correct process has decided; otherwise it always runs ``max_rounds``
    rounds (useful when later rounds should be observed, e.g. to verify
    the paper's "continue running the algorithm" behaviour).
    """
    if timing is None:
        timing = timing_model_for(drop_schedule, topology)
    elif drop_schedule is not None or topology is not None:
        raise ConfigurationError(
            "pass either an explicit timing model or the legacy "
            "drop_schedule/topology pair, not both"
        )
    engine = ExecutionKernel(
        params=params,
        assignment=assignment,
        processes=processes,
        byzantine=byzantine,
        adversary=adversary,
        timing=timing,
    )
    executed = engine.run(
        max_rounds=max_rounds, stop_when_all_decided=stop_when_all_decided
    )
    return result_from_kernel(
        engine, executed, require_termination=require_termination
    )


def result_from_kernel(
    engine: ExecutionKernel,
    executed: int,
    require_termination: bool = True,
) -> ExecutionResult:
    """Grade a finished kernel into an :class:`ExecutionResult`.

    Shared verdict/metrics tail of :func:`run_execution`, also used by
    the soak farm's batch scheduler (:func:`repro.sim.kernel.run_batch`
    drives many kernels, then each one is graded here individually).

    Args:
        engine: A kernel that has executed its rounds.
        executed: The number of rounds actually executed (what
            :meth:`~repro.sim.kernel.ExecutionKernel.run` returned).
        require_termination: Count non-termination within the budget as
            a violation.

    Returns:
        The finished :class:`ExecutionResult`.
    """
    processes = engine.processes
    # Every correct slot's proposal is handed to the validity check,
    # explicitly including ``None``: silently dropping a None proposal
    # would let the check conclude unanimity from the remaining
    # processes and mis-verdict executions where one correct process
    # proposed nothing.
    proposals = {k: processes[k].proposal for k in engine.correct}
    decisions = {
        k: processes[k].decision for k in engine.correct if processes[k].decided
    }
    decision_rounds = {
        k: processes[k].decision_round
        for k in engine.correct
        if processes[k].decided
    }
    verdict = check_agreement_properties(
        proposals=proposals,
        decisions=decisions,
        decision_rounds=decision_rounds,
        correct=engine.correct,
        rounds_executed=len(engine.trace),
        require_termination=require_termination,
    )
    metrics = metrics_from_deliveries(engine.deliveries)
    return ExecutionResult(
        params=engine.params,
        assignment=engine.assignment,
        byzantine=engine.byzantine,
        verdict=verdict,
        trace=engine.trace,
        metrics=metrics,
        processes=list(processes),
        losses=tuple(engine.losses),
        ticks=engine.timing.ticks_executed(executed),
    )


def run_agreement(
    params: SystemParams,
    assignment: IdentityAssignment,
    factory: ProcessFactory,
    proposals: Mapping[int, Hashable],
    byzantine: Sequence[int] = (),
    adversary: Adversary | None = None,
    drop_schedule: DropSchedule | None = None,
    timing: TimingModel | None = None,
    max_rounds: int = 200,
    require_termination: bool = True,
) -> ExecutionResult:
    """Convenience wrapper: build processes from a factory, then run.

    Args:
        params: The system parameters.
        assignment: The identifier assignment.
        factory: ``(identifier, proposal) -> Process`` builder for
            correct slots.
        proposals: ``correct slot index -> input value``.
        byzantine: Byzantine slot indices.
        adversary: The Byzantine strategy (defaults to silence).
        drop_schedule: Legacy basic-model drop schedule (exclusive
            with ``timing``).
        timing: Explicit :class:`~repro.sim.kernel.TimingModel`.
        max_rounds: Round budget.
        require_termination: Count non-termination within the budget
            as a violation.

    Returns:
        The finished :class:`ExecutionResult`.
    """
    processes = make_processes(factory, assignment, proposals, byzantine)
    return run_execution(
        params=params,
        assignment=assignment,
        processes=processes,
        byzantine=byzantine,
        adversary=adversary,
        drop_schedule=drop_schedule,
        timing=timing,
        max_rounds=max_rounds,
        require_termination=require_termination,
    )
