"""ASCII rendering of executions: the debugging view of a trace.

Distributed executions are miserable to debug from logs; this module
renders a :class:`~repro.sim.trace.Trace` as fixed-width text:

* a **timeline** -- one row per process, one column per round, showing
  who broadcast (`*`), stayed silent (`.`), was Byzantine (`B`/`b` when
  emitting) and when each process decided (`0`/`1`/... at the decision
  round);
* a **phase ruler** for the phase-structured algorithms (Figures 5/7 run
  eight rounds per phase, the Figure 3 transformation three);
* per-round **detail dumps** on demand.

The renderer only reads the trace, so it works for every algorithm in
the package, including executions produced by the lower-bound
constructions (where the visible disagreement makes for instructive
pictures).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.core.identity import IdentityAssignment
from repro.sim.trace import Trace


def _decision_mark(value: Hashable) -> str:
    text = repr(value)
    return text[-1] if text else "D"


def render_timeline(
    trace: Trace,
    assignment: IdentityAssignment,
    byzantine: Sequence[int] = (),
    rounds_per_phase: int | None = None,
    max_rounds: int | None = None,
) -> str:
    """Render the execution as a process x round grid.

    Legend: ``*`` broadcast, ``.`` silent, ``b`` Byzantine emission,
    ``B`` Byzantine silence, and the final repr character of the decided
    value at the round a process first decides.
    """
    n = assignment.n
    byz = set(byzantine)
    total = len(trace) if max_rounds is None else min(len(trace), max_rounds)
    decisions = trace.decision_rounds()
    decided_values = trace.decisions()

    lines: list[str] = []
    if rounds_per_phase:
        ruler = []
        for r in range(total):
            ruler.append(
                str((r // rounds_per_phase) % 10)
                if r % rounds_per_phase == 0 else " "
            )
        lines.append("phase   " + "".join(ruler))
    tens = "".join(str((r // 10) % 10) if r % 10 == 0 else " "
                   for r in range(total))
    ones = "".join(str(r % 10) for r in range(total))
    lines.append("round   " + tens)
    lines.append("        " + ones)

    for k in range(n):
        ident = assignment.identifier_of(k)
        row = []
        for r in range(total):
            record = trace.record(r)
            if k in byz:
                row.append("b" if k in record.emissions else "B")
            elif decisions.get(k) == r:
                row.append(_decision_mark(decided_values[k]))
            elif k in record.payloads:
                row.append("*")
            else:
                row.append(".")
        tag = "byz" if k in byz else "   "
        lines.append(f"p{k:<2} id{ident:<2} {tag} " + "".join(row))

    legend = ("legend: * broadcast  . silent  b/B byzantine (emitting/quiet)  "
              "digit = decision")
    lines.append(legend)
    return "\n".join(lines)


def render_round(trace: Trace, round_no: int,
                 assignment: IdentityAssignment) -> str:
    """Full dump of one round: payloads, Byzantine emissions, decisions."""
    record = trace.record(round_no)
    lines = [f"round {round_no}:"]
    for k in sorted(record.payloads):
        ident = assignment.identifier_of(k)
        payload = repr(record.payloads[k])
        if len(payload) > 100:
            payload = payload[:97] + "..."
        lines.append(f"  p{k} (id {ident}) -> {payload}")
    for b in sorted(record.emissions):
        ident = assignment.identifier_of(b)
        for q, batch in sorted(record.emissions[b].items()):
            for payload in batch:
                text = repr(payload)
                if len(text) > 80:
                    text = text[:77] + "..."
                lines.append(f"  BYZ p{b} (id {ident}) => p{q}: {text}")
    for k, value in sorted(record.decisions.items()):
        lines.append(f"  ** p{k} DECIDES {value!r}")
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)


def render_decision_summary(
    trace: Trace, proposals: Mapping[int, Hashable]
) -> str:
    """Decisions next to proposals: the at-a-glance verdict view."""
    decisions = trace.decisions()
    rounds = trace.decision_rounds()
    lines = ["process  proposed  decided  round"]
    for k in sorted(set(proposals) | set(decisions)):
        proposed = repr(proposals.get(k, "-"))
        decided = repr(decisions[k]) if k in decisions else "(undecided)"
        round_no = rounds.get(k, "-")
        lines.append(f"p{k:<7} {proposed:<9} {decided:<8} {round_no}")
    return "\n".join(lines)
