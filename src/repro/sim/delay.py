"""Delay-based partial synchrony and its simulation of the basic model.

The paper (Section 2, following Dwork--Lynch--Stockmeyer) works in the
*basic* partially synchronous model -- lock-step rounds with finitely
many message losses -- and notes that it is equivalent to the two
delay-based formulations practitioners usually state:

* **eventually-bounded delays** -- message delivery times are bounded by
  a *known* constant ``delta``, but only from some unknown global
  stabilisation tick (GST) onwards;
* **unknown-bound delays** -- delivery times are *always* bounded by a
  constant ``delta``, but the algorithm does not know ``delta``.

This module makes the first (and, via an adapter, the second) direction
of that equivalence executable: :class:`DelayPolicy` assigns each
correct message an adversarial delay, and the classical *round
simulation* runs on top -- round ``r`` occupies the tick window
``[r*delta, (r+1)*delta)``; a message sent at the start of the window
and delivered inside it becomes part of the round-``r`` inbox, and a
message that arrives late is **discarded, which is exactly a basic-model
message loss**.  Because delays are bounded by ``delta`` from the GST
on, only finitely many messages are ever late: the simulated execution
is a legitimate basic-model execution, so every algorithm in
:mod:`repro.psync` runs unchanged over delay-based networks.

(The reverse direction -- the basic model simulating the delay models --
is the trivial inclusion the paper also notes: a basic-model round *is*
a delay-1 network.)

The round simulation itself now executes on the unified kernel: the
:class:`~repro.sim.kernel.DelayBased` timing model stamps each round's
late edges straight onto the message fabric (see
:func:`run_delay_execution`).  :class:`DelayRoundSimulator`, the old
per-message tick loop's entry point, survives as a **deprecated** shim
delegating to the kernel; the tick loop itself is kept verbatim as
:class:`ReferenceDelaySimulator`, the differential oracle the delay
equivalence tests and ``benchmarks/test_bench_delay_kernel.py`` compare
the kernel against.

Determinism: delay policies derive their per-message RNG from
:func:`repro.core.canonical.stable_seed`, never from the builtin
``hash`` (whose string salting made "deterministic given the seed"
policies differ between interpreter runs).
"""

from __future__ import annotations

import random
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.canonical import stable_seed
from repro.core.errors import ConfigurationError, SimulationError
from repro.core.identity import IdentityAssignment
from repro.core.messages import Inbox, Message, ensure_hashable
from repro.core.params import SystemParams
from repro.sim import fabric
from repro.sim.adversary import (
    Adversary,
    AdversaryView,
    NullAdversary,
    normalize_emissions,
)
from repro.sim.kernel import DelayBased, ExecutionKernel
from repro.sim.process import Process
from repro.sim.trace import RoundRecord, Trace


class DelayPolicy(ABC):
    """Chooses the delivery delay (in ticks) of each correct message.

    The returned delay is measured from the send tick; ``0`` means
    same-tick delivery.  Implementations encode one of the paper's two
    delay models via their constraints; :meth:`max_late_tick` names the
    first send tick from which no delay may reach ``delta`` (the
    finiteness witness the equivalence argument needs -- and, on the
    kernel, the gate past which rounds skip delay evaluation entirely).
    """

    def __init__(self, delta: int) -> None:
        if delta < 1:
            raise ConfigurationError(f"delta must be >= 1, got {delta}")
        self.delta = int(delta)

    @abstractmethod
    def delay(self, send_tick: int, sender: int, recipient: int) -> int:
        """Delay in ticks for this message."""

    def delay_matrix(
        self, send_tick: int, receivers: Sequence[int], senders: Sequence[int]
    ):
        """All of one tick's edge delays as a ``(receivers, senders)`` array.

        The array fabric's batch form of :meth:`delay`: entry ``[i, j]``
        is the delay of the message ``senders[j] -> receivers[i]`` sent
        at ``send_tick``.  Self-edges are skipped (left ``0``; they
        never traverse the network and ``delta >= 1`` keeps them
        punctual).  The default queries :meth:`delay` per edge in
        (receiver, sender) order, so RNG-backed policies -- whose
        per-link ``stable_seed`` draws cannot be vectorized
        byte-identically -- participate in the array path unchanged;
        closed-form policies may override with real array ops.

        Args:
            send_tick: The window's first tick.
            receivers: The receiving process indices (ascending).
            senders: This round's composing senders (ascending).

        Returns:
            A numpy int64 array of delays.
        """
        np = fabric.require_numpy()
        delays = np.zeros((len(receivers), len(senders)), dtype=np.int64)
        for i, q in enumerate(receivers):
            for j, s in enumerate(senders):
                if s == q:
                    continue
                delays[i, j] = self.delay(send_tick, s, q)
        return delays

    @abstractmethod
    def max_late_tick(self) -> int:
        """First send tick from which every delay is strictly below ``delta``.

        Sends at ticks ``< max_late_tick()`` may be late (delay
        ``>= delta``); sends at ticks ``>= max_late_tick()`` must not
        be.  The exclusive reading is load-bearing: the kernel's
        :class:`~repro.sim.kernel.DelayBased` model skips delay
        evaluation for every round whose send tick has reached it, and
        :func:`equivalent_basic_gst` derives the loss-free round from
        it -- a policy that is still late *at* this tick would deliver
        over-``delta`` messages silently.
        """


def _link_rng(*key: Hashable) -> random.Random:
    """One independent, cross-run-stable RNG per message key."""
    return random.Random(stable_seed(key))


class EventuallyBoundedDelays(DelayPolicy):
    """Known ``delta``, honoured only from ``gst_tick`` onwards.

    Before the GST the (seeded) adversary may stretch delays up to
    ``chaos_factor * delta`` ticks; afterwards every delay is within
    ``delta``.  This is the paper's "delivery times eventually bounded
    by a known constant" model.
    """

    def __init__(
        self, delta: int, gst_tick: int, chaos_factor: int = 4, seed: int = 0
    ) -> None:
        super().__init__(delta)
        if gst_tick < 0:
            raise ConfigurationError(f"gst_tick must be >= 0, got {gst_tick}")
        self.gst_tick = int(gst_tick)
        self.chaos_factor = max(1, int(chaos_factor))
        self.seed = int(seed)

    def delay(self, send_tick: int, sender: int, recipient: int) -> int:
        if send_tick >= self.gst_tick:
            rng = _link_rng(self.seed, send_tick, sender, recipient)
            return rng.randrange(0, self.delta)
        rng = _link_rng(self.seed, "pre", send_tick, sender, recipient)
        return rng.randrange(0, self.chaos_factor * self.delta + 1)

    def max_late_tick(self) -> int:
        return self.gst_tick

class AlwaysBoundedUnknownDelays(DelayPolicy):
    """Delays always within a bound the *algorithm* does not know.

    The adversary fixes ``true_delta`` once; the simulation layer is
    configured with a (possibly wrong, smaller) guess and doubles it on
    observation of late traffic -- mirroring how algorithms for this
    model probe the unknown bound.  From the tick where the guess first
    reaches ``true_delta``, no message is ever late again, which is this
    model's route to basic-model finiteness.
    """

    def __init__(self, true_delta: int, seed: int = 0) -> None:
        super().__init__(true_delta)
        self.seed = int(seed)

    def delay(self, send_tick: int, sender: int, recipient: int) -> int:
        rng = _link_rng(self.seed, send_tick, sender, recipient)
        return rng.randrange(0, self.delta)

    def max_late_tick(self) -> int:
        # Delays are always within the (unknown) bound; lateness exists
        # only relative to a too-small guess, never beyond the tick at
        # which the guess catches up.  The simulator computes that tick.
        return 0


@dataclass(frozen=True)
class _InFlight:
    """A correct-process message travelling through the delay network."""

    round_no: int
    sender: int
    recipient: int
    payload: Hashable
    deliver_tick: int


@dataclass
class DelaySimulationResult:
    """Outcome of running round-based processes over a delay network."""

    trace: Trace
    dropped: tuple[tuple[int, int, int], ...]  # (round, sender, recipient)
    ticks_executed: int
    rounds_executed: int

    @property
    def losses_are_finite_and_pre_gst(self) -> bool:
        """The basic-model guarantee extracted from the delay run."""
        return len(self.dropped) < float("inf")  # structurally guaranteed

    def last_lost_round(self) -> int:
        return max((r for r, _s, _q in self.dropped), default=-1)


def _kernel_delay_result(
    kernel: ExecutionKernel, executed: int
) -> DelaySimulationResult:
    """Package a finished delay-timed kernel run into the result type."""
    return DelaySimulationResult(
        trace=kernel.trace,
        dropped=tuple(kernel.losses),
        ticks_executed=kernel.timing.ticks_executed(executed),
        rounds_executed=len(kernel.trace),
    )


def run_delay_execution(
    params: SystemParams,
    assignment: IdentityAssignment,
    processes: Sequence[Process | None],
    policy: DelayPolicy,
    byzantine: Sequence[int] = (),
    adversary: Adversary | None = None,
    max_rounds: int = 200,
    stop_when_all_decided: bool = True,
) -> DelaySimulationResult:
    """Run round-based processes over a delay network, on the kernel.

    This is the non-deprecated replacement for
    :class:`DelayRoundSimulator`: it builds an
    :class:`~repro.sim.kernel.ExecutionKernel` with a
    :class:`~repro.sim.kernel.DelayBased` timing model, runs it, and
    packages the delay-specific bookkeeping (losses, tick count) into a
    :class:`DelaySimulationResult`.  The losses are correct-to-correct
    edges only -- a message addressed to a Byzantine slot has no
    receiving process, so its lateness is unobservable.

    Args:
        params: System parameters.
        assignment: Identifier assignment.
        processes: Process objects (``None`` in Byzantine slots).
        policy: The delay policy.
        byzantine: Byzantine slot indices.
        adversary: Byzantine adversary (round-granular, as in the basic
            model -- perfect timing is the conservative choice).
        max_rounds: Round budget.
        stop_when_all_decided: Stop as soon as every correct process
            decided.

    Returns:
        The :class:`DelaySimulationResult` (the executed kernel's trace
        is shared, not copied).
    """
    kernel = ExecutionKernel(
        params=params,
        assignment=assignment,
        processes=processes,
        byzantine=byzantine,
        adversary=adversary,
        timing=DelayBased(policy),
    )
    executed = kernel.run(
        max_rounds=max_rounds, stop_when_all_decided=stop_when_all_decided
    )
    return _kernel_delay_result(kernel, executed)


class DelayRoundSimulator:
    """**Deprecated** shim: the old entry point, now kernel-backed.

    Historically this class ran the DLS round simulation through a
    per-message tick loop; it now builds an
    :class:`~repro.sim.kernel.ExecutionKernel` with a
    :class:`~repro.sim.kernel.DelayBased` timing model and delegates --
    use the kernel (or :func:`run_delay_execution`) directly in new
    code.  Constructing it emits a :class:`DeprecationWarning`.

    One observable difference from the tick loop: recorded drops cover
    correct-to-correct edges only.  The tick loop also logged late
    messages addressed to Byzantine slots, which have no receiving
    process (the old loop's per-message oracle,
    :class:`ReferenceDelaySimulator`, still does).
    """

    def __init__(
        self,
        params: SystemParams,
        assignment: IdentityAssignment,
        processes: Sequence[Process | None],
        policy: DelayPolicy,
        byzantine: Sequence[int] = (),
        adversary: Adversary | None = None,
    ) -> None:
        warnings.warn(
            "DelayRoundSimulator is deprecated; run delay-based executions "
            "through repro.sim.kernel.ExecutionKernel with a DelayBased "
            "timing model (or repro.sim.delay.run_delay_execution)",
            DeprecationWarning,
            stacklevel=2,
        )
        if assignment.n != params.n or len(processes) != params.n:
            raise ConfigurationError("process/assignment/params size mismatch")
        self.params = params
        self.assignment = assignment
        self.processes = list(processes)
        self.policy = policy
        self.byzantine = tuple(sorted(set(byzantine)))
        self._kernel = ExecutionKernel(
            params=params,
            assignment=assignment,
            processes=self.processes,
            byzantine=self.byzantine,
            adversary=adversary,
            timing=DelayBased(policy),
        )
        self.adversary = self._kernel.adversary

    @property
    def trace(self) -> Trace:
        return self._kernel.trace

    @property
    def _correct(self) -> tuple[int, ...]:
        return self._kernel.correct

    def run(
        self, max_rounds: int, stop_when_all_decided: bool = True
    ) -> DelaySimulationResult:
        executed = self._kernel.run(
            max_rounds=max_rounds, stop_when_all_decided=stop_when_all_decided
        )
        return _kernel_delay_result(self._kernel, executed)


class ReferenceDelaySimulator:
    """The pre-kernel per-message tick loop, kept as a differential oracle.

    Implements the DLS round simulation message by message: tick ``T``
    belongs to round ``T // delta``; at the first tick of each window
    every process composes its round payload and each copy is put in
    flight with a policy-assigned delivery tick (self-delivery is
    immediate); every tick of the window is swept for arrivals; messages
    whose delay lands them outside the window are *discarded and
    recorded as drops*.  At the window's last tick the inbox is
    delivered.

    The Byzantine adversary operates at round granularity exactly as in
    the kernel -- its messages are injected into the recipient's round
    inbox directly (a Byzantine process may time its sends however it
    likes, so giving it perfect timing is the conservative choice).

    The kernel's :class:`~repro.sim.kernel.DelayBased` model computes
    the same delivered sets in O(edges) per round with no tick sweep
    (and none at all after ``max_late_tick``); the delay equivalence
    tests pin the kernel against this loop, and
    ``benchmarks/test_bench_delay_kernel.py`` measures the speedup.
    Not for production use.
    """

    def __init__(
        self,
        params: SystemParams,
        assignment: IdentityAssignment,
        processes: Sequence[Process | None],
        policy: DelayPolicy,
        byzantine: Sequence[int] = (),
        adversary: Adversary | None = None,
    ) -> None:
        if assignment.n != params.n or len(processes) != params.n:
            raise ConfigurationError("process/assignment/params size mismatch")
        self.params = params
        self.assignment = assignment
        self.processes = list(processes)
        self.policy = policy
        self.byzantine = tuple(sorted(set(byzantine)))
        self.adversary = adversary if adversary is not None else NullAdversary()
        byz = set(self.byzantine)
        self._correct = tuple(k for k in range(params.n) if k not in byz)
        self.trace = Trace()
        self._in_flight: list[_InFlight] = []
        self._dropped: list[tuple[int, int, int]] = []
        self._round_inboxes: dict[int, list[Message]] = {}

        self.adversary.setup(
            params, assignment, self.byzantine,
            {
                k: self.processes[k].proposal
                for k in self._correct
                if self.processes[k].proposal is not None
            },
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_rounds: int, stop_when_all_decided: bool = True
            ) -> DelaySimulationResult:
        delta = self.policy.delta
        ticks = 0
        for round_no in range(max_rounds):
            window_start = round_no * delta
            window_end = window_start + delta  # exclusive

            # First tick of the window: everyone composes and sends.
            payloads = self._compose_round(round_no)
            self._send_round(round_no, window_start, payloads)
            emissions = self._byzantine_round(round_no, payloads)

            # Sweep the window: collect arrivals, discard late traffic.
            for tick in range(window_start, window_end):
                self._collect_arrivals(round_no, tick, window_end)
                ticks += 1

            self._deliver_round(round_no, emissions, payloads)
            if stop_when_all_decided and all(
                self.processes[k].decided for k in self._correct
            ):
                break

        return DelaySimulationResult(
            trace=self.trace,
            dropped=tuple(self._dropped),
            ticks_executed=ticks,
            rounds_executed=len(self.trace),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compose_round(self, round_no: int) -> dict[int, Hashable]:
        payloads: dict[int, Hashable] = {}
        for k in self._correct:
            payload = self.processes[k].compose(round_no)
            if payload is not None:
                payloads[k] = ensure_hashable(payload)
        return payloads

    def _send_round(
        self, round_no: int, send_tick: int, payloads: Mapping[int, Hashable]
    ) -> None:
        for sender, payload in payloads.items():
            for recipient in range(self.params.n):
                if recipient == sender:
                    continue  # self-delivery handled at delivery time
                delay = self.policy.delay(send_tick, sender, recipient)
                if delay < 0:
                    raise SimulationError("negative delay from policy")
                self._in_flight.append(
                    _InFlight(
                        round_no=round_no,
                        sender=sender,
                        recipient=recipient,
                        payload=payload,
                        deliver_tick=send_tick + delay,
                    )
                )

    def _byzantine_round(
        self, round_no: int, payloads: Mapping[int, Hashable]
    ) -> dict[int, dict[int, tuple[Hashable, ...]]]:
        view = AdversaryView(
            round_no=round_no,
            params=self.params,
            assignment=self.assignment,
            byzantine=self.byzantine,
            correct_payloads=dict(payloads),
            processes=self.processes,
            trace=self.trace,
        )
        raw = self.adversary.emissions(view)
        return normalize_emissions(self.params, self.byzantine, raw, round_no)

    def _collect_arrivals(
        self, round_no: int, tick: int, window_end: int
    ) -> None:
        remaining: list[_InFlight] = []
        for msg in self._in_flight:
            if msg.deliver_tick != tick:
                remaining.append(msg)
                continue
            if msg.round_no == round_no and tick < window_end:
                self._round_inboxes.setdefault(msg.recipient, []).append(
                    Message(
                        self.assignment.identifier_of(msg.sender), msg.payload
                    )
                )
            else:
                # Arrived outside its round window: a basic-model loss.
                self._dropped.append((msg.round_no, msg.sender, msg.recipient))
        self._in_flight = remaining

    def _deliver_round(
        self,
        round_no: int,
        emissions: Mapping[int, Mapping[int, tuple[Hashable, ...]]],
        payloads: Mapping[int, Hashable],
    ) -> None:
        # Anything still in flight for this round is now late: drop it.
        still: list[_InFlight] = []
        for msg in self._in_flight:
            if msg.round_no == round_no:
                self._dropped.append((msg.round_no, msg.sender, msg.recipient))
            else:
                still.append(msg)
        self._in_flight = still

        decided_before = {k: self.processes[k].decided for k in self._correct}
        for q in self._correct:
            messages = list(self._round_inboxes.get(q, ()))
            if q in payloads:  # self-delivery, never delayed
                messages.append(
                    Message(self.assignment.identifier_of(q), payloads[q])
                )
            for b, per_recipient in emissions.items():
                ident = self.assignment.identifier_of(b)
                for payload in per_recipient.get(q, ()):
                    messages.append(Message(ident, payload))
            self.processes[q].deliver(
                round_no, Inbox(messages, numerate=self.params.numerate)
            )
        self._round_inboxes = {}

        decisions = {
            k: self.processes[k].decision
            for k in self._correct
            if self.processes[k].decided and not decided_before[k]
        }
        self.trace.append(
            RoundRecord(
                round_no=round_no,
                payloads=dict(payloads),
                emissions={b: dict(pr) for b, pr in emissions.items()},
                decisions=decisions,
            )
        )


def equivalent_basic_gst(policy: DelayPolicy) -> int:
    """Round from which the simulated basic-model execution loses nothing.

    A message sent at tick ``s`` with delay ``< delta`` lands inside its
    round window, so every send from ``max_late_tick()`` on is punctual;
    the first fully punctual round is ``ceil(max_late_tick / delta)``.
    """
    delta = policy.delta
    return (policy.max_late_tick() + delta - 1) // delta
