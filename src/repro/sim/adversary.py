"""Byzantine adversary interface.

The adversary is a single object that speaks for *all* Byzantine
process slots.  Each round the engine shows it a full-information
:class:`AdversaryView` -- including the payloads correct processes are
sending *this* round (a "rushing" adversary, the strongest consistent
with the paper's proofs) -- and the adversary answers with the messages
each Byzantine slot emits to each recipient.

Two model rules are enforced by the engine, not trusted to adversary
implementations:

* **authentication** -- a Byzantine process cannot forge identifiers:
  every message it emits is stamped with the identifier its slot holds;
* **restriction** -- under the restricted model a Byzantine process may
  emit at most one message per recipient per round; violations raise
  :class:`~repro.core.errors.AdversaryViolation`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Mapping, Sequence

from repro.core.identity import IdentityAssignment
from repro.core.params import SystemParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.process import Process
    from repro.sim.trace import Trace


#: Messages one Byzantine slot emits in one round:
#: ``recipient index -> sequence of payloads`` (one Message per payload).
Emission = Mapping[int, Sequence[Hashable]]


@dataclass(frozen=True)
class AdversaryView:
    """Everything the adversary may look at when choosing its messages.

    Attributes
    ----------
    round_no:
        The current round (0-indexed).
    params:
        The system parameters (model flags included).
    assignment:
        The full identity assignment, so the adversary knows which
        identifiers it owns and who the homonyms are.
    byzantine:
        The Byzantine slot indices the adversary controls.
    correct_payloads:
        Payloads the correct processes broadcast *this* round
        (``index -> payload``; silent processes absent).  This makes the
        adversary rushing.
    processes:
        The live process objects (``None`` at Byzantine slots).  The
        simulation deliberately allows state inspection: the paper's
        adversary is computationally unbounded and full-information.
    trace:
        The execution trace so far (previous rounds).
    """

    round_no: int
    params: SystemParams
    assignment: IdentityAssignment
    byzantine: tuple[int, ...]
    correct_payloads: Mapping[int, Hashable]
    processes: Sequence["Process | None"]
    trace: "Trace"

    @property
    def correct(self) -> tuple[int, ...]:
        """Indices of correct processes."""
        byz = set(self.byzantine)
        return tuple(k for k in range(self.assignment.n) if k not in byz)

    def identifier_of(self, index: int) -> int:
        return self.assignment.identifier_of(index)


class Adversary(ABC):
    """Strategy object controlling every Byzantine slot.

    Subclasses implement :meth:`emissions`.  ``setup`` is called once
    before round 0 with the static configuration; stateful adversaries
    (replay, mirror, crash) initialise there.
    """

    def setup(
        self,
        params: SystemParams,
        assignment: IdentityAssignment,
        byzantine: tuple[int, ...],
        proposals: Mapping[int, Hashable],
    ) -> None:
        """Called once before the first round.  Default: no-op."""

    @abstractmethod
    def emissions(self, view: AdversaryView) -> Mapping[int, Emission]:
        """Messages for this round: ``byz index -> recipient -> payloads``.

        Returning an empty mapping (or omitting a slot / recipient)
        means silence.  The engine stamps each payload with the slot's
        authenticated identifier and enforces the restricted-model cap.
        """


class NullAdversary(Adversary):
    """No Byzantine processes act: all Byzantine slots stay silent forever.

    Note that silence is itself Byzantine behaviour (a crash from round
    0); correct algorithms must tolerate it.
    """

    def emissions(self, view: AdversaryView) -> Mapping[int, Emission]:
        return {}
