"""Byzantine adversary interface.

The adversary is a single object that speaks for *all* Byzantine
process slots.  Each round the engine shows it a full-information
:class:`AdversaryView` -- including the payloads correct processes are
sending *this* round (a "rushing" adversary, the strongest consistent
with the paper's proofs) -- and the adversary answers with the messages
each Byzantine slot emits to each recipient.

Two model rules are enforced by the engine, not trusted to adversary
implementations:

* **authentication** -- a Byzantine process cannot forge identifiers:
  every message it emits is stamped with the identifier its slot holds;
* **restriction** -- under the restricted model a Byzantine process may
  emit at most one message per recipient per round; violations raise
  :class:`~repro.core.errors.AdversaryViolation`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Mapping, Sequence

from repro.core.errors import AdversaryViolation
from repro.core.identity import IdentityAssignment
from repro.core.messages import ensure_hashable
from repro.core.params import SystemParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.process import Process
    from repro.sim.trace import Trace


#: Messages one Byzantine slot emits in one round:
#: ``recipient index -> sequence of payloads`` (one Message per payload).
Emission = Mapping[int, Sequence[Hashable]]


@dataclass(frozen=True)
class AdversaryView:
    """Everything the adversary may look at when choosing its messages.

    Attributes
    ----------
    round_no:
        The current round (0-indexed).
    params:
        The system parameters (model flags included).
    assignment:
        The full identity assignment, so the adversary knows which
        identifiers it owns and who the homonyms are.
    byzantine:
        The Byzantine slot indices the adversary controls.
    correct_payloads:
        Payloads the correct processes broadcast *this* round
        (``index -> payload``; silent processes absent).  This makes the
        adversary rushing.
    processes:
        The live process objects (``None`` at Byzantine slots).  The
        simulation deliberately allows state inspection: the paper's
        adversary is computationally unbounded and full-information.
    trace:
        The execution trace so far (previous rounds).
    """

    round_no: int
    params: SystemParams
    assignment: IdentityAssignment
    byzantine: tuple[int, ...]
    correct_payloads: Mapping[int, Hashable]
    processes: Sequence["Process | None"]
    trace: "Trace"

    @property
    def correct(self) -> tuple[int, ...]:
        """Indices of correct processes."""
        byz = set(self.byzantine)
        return tuple(k for k in range(self.assignment.n) if k not in byz)

    def identifier_of(self, index: int) -> int:
        return self.assignment.identifier_of(index)


class Adversary(ABC):
    """Strategy object controlling every Byzantine slot.

    Subclasses implement :meth:`emissions`.  ``setup`` is called once
    before round 0 with the static configuration; stateful adversaries
    (replay, mirror, crash) initialise there.
    """

    def setup(
        self,
        params: SystemParams,
        assignment: IdentityAssignment,
        byzantine: tuple[int, ...],
        proposals: Mapping[int, Hashable],
    ) -> None:
        """Called once before the first round.  Default: no-op."""

    @abstractmethod
    def emissions(self, view: AdversaryView) -> Mapping[int, Emission]:
        """Messages for this round: ``byz index -> recipient -> payloads``.

        Returning an empty mapping (or omitting a slot / recipient)
        means silence.  The engine stamps each payload with the slot's
        authenticated identifier and enforces the restricted-model cap.
        """


def normalize_emissions(
    params: SystemParams,
    byzantine: Sequence[int],
    raw: Mapping[int, Emission],
    round_no: int,
) -> dict[int, dict[int, tuple[Hashable, ...]]]:
    """Validate and canonicalise one round of adversary emissions.

    This is the single enforcement point of the model rules every
    execution loop (:class:`repro.sim.kernel.ExecutionKernel` and the
    reference oracles) shares:

    * only Byzantine slots may emit;
    * recipients must be process indices;
    * payloads must be hashable (checked eagerly, at send time);
    * under the restricted model at most one message per recipient per
      slot per round.

    Slots and recipients are iterated in sorted order and empty batches
    are elided, so the result is the canonical form the trace records.

    Args:
        params: The system parameters (model flags).
        byzantine: The Byzantine slot indices the adversary owns.
        raw: The adversary's :meth:`Adversary.emissions` answer.
        round_no: The current round (for error messages).

    Returns:
        ``byz slot -> recipient -> tuple of payloads``, sorted, with
        silent slots and empty batches removed.

    Raises:
        AdversaryViolation: On any model-rule violation.
    """
    byz_set = set(byzantine)
    emissions: dict[int, dict[int, tuple[Hashable, ...]]] = {}
    for b, per_recipient in sorted(raw.items()):
        if b not in byz_set:
            raise AdversaryViolation(
                f"adversary emitted for non-Byzantine slot {b}"
            )
        clean: dict[int, tuple[Hashable, ...]] = {}
        for q, payload_seq in sorted(per_recipient.items()):
            if not 0 <= q < params.n:
                raise AdversaryViolation(f"recipient {q} out of range")
            batch = tuple(ensure_hashable(p) for p in payload_seq)
            if not batch:
                continue
            if params.restricted and len(batch) > 1:
                raise AdversaryViolation(
                    f"restricted Byzantine slot {b} sent {len(batch)} "
                    f"messages to recipient {q} in round {round_no}"
                )
            clean[q] = batch
        if clean:
            emissions[b] = clean
    return emissions


class NullAdversary(Adversary):
    """No Byzantine processes act: all Byzantine slots stay silent forever.

    Note that silence is itself Byzantine behaviour (a crash from round
    0); correct algorithms must tolerate it.
    """

    def emissions(self, view: AdversaryView) -> Mapping[int, Emission]:
        return {}
